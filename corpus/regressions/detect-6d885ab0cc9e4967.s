# cfed-fuzz regression v1
# mode: detect
# seed: 0x6d885ab0cc9e4967
# tier: visa
# entry: 0
# datalen: 312
# note: technique EdgCF/CMOVcc category E spec AddrBit { nth: 2, bit: 6 } (303 shrink edits)
entry:
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
cmp r3, -17
jbe +280
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
nop
nop
nop
nop
out r0
halt
