# cfed-fuzz regression v1
# mode: diff
# seed: 0x18c80a5e762810c2
# tier: visa
# entry: 0
# datalen: 312
# note: pair interp-raw|dbt-fused field output: streams differ at index 40 (lengths 43 vs 43): Some(52) vs Some(0) (65 shrink edits)
entry:
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
