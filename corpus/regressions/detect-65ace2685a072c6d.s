# cfed-fuzz regression v1
# mode: detect
# seed: 0x65ace2685a072c6d
# tier: visa
# entry: 0
# datalen: 312
# note: technique EdgCF/Jcc category E spec AddrBit { nth: 1, bit: 6 } (83 shrink edits)
entry:
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
jmp +0
nop
nop
nop
nop
out r0
halt
halt
halt
halt
halt
halt
halt
