# cfed-fuzz regression v1
# mode: diff
# seed: 0x3781b4a074d6fcc6
# tier: visa
# entry: 0
# datalen: 312
# note: pair interp-raw|dbt-fused field output: streams differ at index 0 (lengths 3 vs 3): Some(775) vs Some(18446744073709551544) (52 shrink edits)
entry:
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
