# cfed-fuzz regression v1
# mode: diff
# seed: 0x1dc28fc7eb573ea9
# tier: visa
# entry: 0
# datalen: 312
# note: pair interp-raw|dbt-fused field output: streams differ at index 1 (lengths 4 vs 4): Some(184) vs Some(18446744073709535040) (45 shrink edits)
entry:
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
