# cfed-fuzz regression v1
# mode: detect
# seed: 0xc7c9572ddea951a8
# tier: visa
# entry: 0
# datalen: 312
# note: technique EdgCF/CMOVcc category E spec AddrBit { nth: 2, bit: 7 } (47 shrink edits)
entry:
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
jl +0
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
out r0
halt
