# cfed-fuzz regression v1
# mode: diff
# seed: 0x631669651fa41445
# tier: visa
# entry: 0
# datalen: 312
# note: pair interp-raw|dbt-fused field output: streams differ at index 0 (lengths 3 vs 3): Some(1) vs Some(0) (55 shrink edits)
entry:
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
