# cfed-fuzz regression v1
# mode: diff
# seed: 0x21b71d1f381ab62e
# tier: visa
# entry: 0
# datalen: 312
# note: pair interp-raw|dbt-fused field output: streams differ at index 1 (lengths 4 vs 4): Some(18446744073709551326) vs Some(18446744073709551546) (48 shrink edits)
entry:
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
