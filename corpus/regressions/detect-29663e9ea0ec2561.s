# cfed-fuzz regression v1
# mode: detect
# seed: 0x29663e9ea0ec2561
# tier: visa
# entry: 0
# datalen: 312
# note: technique EdgCF/CMOVcc category E spec AddrBit { nth: 1, bit: 6 } (242 shrink edits)
entry:
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
jmp +0
nop
mov r2, -168
nop
nop
jae +168
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
halt
nop
nop
nop
nop
nop
nop
nop
nop
nop
nop
out r2
halt
halt
nop
halt
halt
