//! Execution tests: every workload must run to completion natively, be
//! deterministic, scale with the scale factor, and exhibit its suite's
//! structural profile (block sizes, branch density).

use cfed_core::cfg::Cfg;
use cfed_sim::{ExitReason, Machine};
use cfed_workloads::{fp_workloads, int_workloads, Scale, ALL};

fn run(image: &cfed_asm::Image) -> (ExitReason, Vec<u64>, u64) {
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let exit = m.run(300_000_000);
    let insts = m.cpu.stats().insts;
    (exit, m.cpu.take_output(), insts)
}

#[test]
fn every_workload_halts_cleanly_and_outputs() {
    for w in &ALL {
        let image = w.image(Scale::Test).unwrap();
        let (exit, out, insts) = run(&image);
        assert_eq!(exit, ExitReason::Halted { code: 0 }, "{}: {exit:?}", w.name);
        assert!(!out.is_empty(), "{} produced no output", w.name);
        assert!(insts > 5_000, "{} too trivial: {insts} insts", w.name);
    }
}

#[test]
fn workloads_are_deterministic() {
    for w in &ALL {
        let image = w.image(Scale::Test).unwrap();
        let a = run(&image);
        let b = run(&image);
        assert_eq!(a.1, b.1, "{} output not deterministic", w.name);
        assert_eq!(a.2, b.2, "{} instruction count not deterministic", w.name);
    }
}

#[test]
fn scale_increases_work() {
    for w in ALL.iter().take(4) {
        let small = run(&w.image(Scale::Custom(1)).unwrap()).2;
        let big = run(&w.image(Scale::Custom(3)).unwrap()).2;
        assert!(big > small, "{}: scale 3 ({big}) not larger than scale 1 ({small})", w.name);
    }
}

#[test]
fn fp_suite_has_larger_basic_blocks() {
    // The structural property behind the paper's int/fp contrast.
    let mean = |ws: Vec<&cfed_workloads::Workload>| {
        let vals: Vec<f64> = ws
            .iter()
            .map(|w| Cfg::recover(&w.image(Scale::Test).unwrap()).mean_block_len())
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let fp = mean(fp_workloads().collect());
    let int = mean(int_workloads().collect());
    assert!(fp > int * 1.2, "fp mean block length ({fp:.2}) should clearly exceed int ({int:.2})");
}

#[test]
fn fp_suite_has_lower_dynamic_branch_density() {
    let density = |w: &cfed_workloads::Workload| {
        let image = w.image(Scale::Test).unwrap();
        let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
        m.run(300_000_000);
        m.cpu.stats().branches as f64 / m.cpu.stats().insts as f64
    };
    let fp: f64 = fp_workloads().map(density).sum::<f64>() / fp_workloads().count() as f64;
    let int: f64 = int_workloads().map(density).sum::<f64>() / int_workloads().count() as f64;
    assert!(fp < int, "fp branch density {fp:.3} should be below int {int:.3}");
}
