//! The optimizer must preserve every workload's behaviour (the strongest
//! available differential oracle: 26 real programs with pinned outputs).

use cfed_sim::{ExitReason, Machine};
use cfed_workloads::{Scale, ALL};

fn run(image: &cfed_asm::Image) -> (ExitReason, Vec<u64>) {
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let exit = m.run(300_000_000);
    (exit, m.cpu.take_output())
}

#[test]
fn optimized_workloads_produce_identical_output() {
    for w in &ALL {
        let src = w.source(Scale::Test);
        let plain = cfed_lang::compile(&src).unwrap();
        let opt = cfed_lang::compile_optimized(&src).unwrap();
        let (ea, oa) = run(&plain);
        let (eb, ob) = run(&opt);
        assert_eq!(ea, eb, "{}: exit changed under optimization", w.name);
        assert_eq!(oa, ob, "{}: output changed under optimization", w.name);
    }
}
