//! Golden-output regression tests: the workloads are the oracle of every
//! fault-injection experiment, so their outputs must never drift silently.
//! Also round-trips every workload source through the MiniC pretty-printer.

use cfed_lang::pretty::{ast_eq, pretty};
use cfed_sim::{ExitReason, Machine};
use cfed_workloads::{Scale, ALL};

fn outputs(image: &cfed_asm::Image) -> Vec<u64> {
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    assert_eq!(m.run(300_000_000), ExitReason::Halted { code: 0 });
    m.cpu.take_output()
}

/// Golden first/last output values per workload at `Scale::Test` (full
/// streams are long; first+last+len pin the computation down).
const GOLDEN: &[(&str, usize, u64, u64)] = &[
    // (name, output_len, first, last)
    ("168.wupwise", 1, 15624787, 15624787),
    ("171.swim", 1, 329370, 329370),
    ("172.mgrid", 1, 8096258, 8096258),
    ("173.applu", 1, 5847894, 5847894),
    ("177.mesa", 1, 563048, 563048),
    ("178.galgel", 1, 3717571, 3717571),
    ("179.art", 1, 14774032, 14774032),
    ("183.equake", 1, 3927919, 3927919),
    ("187.facerec", 1, 67, 67),
    ("188.ammp", 1, 12168249, 12168249),
    ("189.lucas", 1, 339359890, 339359890),
    ("191.fma3d", 1, 1032122, 1032122),
    ("200.sixtrack", 1, 9126801, 9126801),
    ("301.apsi", 1, 2099348, 2099348),
    ("164.gzip", 2, 29, 2497882),
    ("175.vpr", 2, 42, 12228),
    ("176.gcc", 1, 9223372036854775799, 9223372036854775799),
    ("181.mcf", 2, 49, 11003071),
    ("186.crafty", 1, 244, 244),
    ("197.parser", 1, 485079, 485079),
    ("252.eon", 1, 1890, 1890),
    ("253.perlbmk", 2, 184201021, 0),
    ("254.gap", 1, 620955, 620955),
    ("255.vortex", 2, 53, 5),
    ("256.bzip2", 2, 0, 10796406),
    ("300.twolf", 2, 51, 8),
];

#[test]
#[ignore = "regenerates the golden table (run with --ignored and paste)"]
fn print_golden_table() {
    for w in &ALL {
        let out = outputs(&w.image(Scale::Test).unwrap());
        println!(
            "(\"{}\", {}, {}, {}),",
            w.name,
            out.len(),
            out.first().copied().unwrap_or(0),
            out.last().copied().unwrap_or(0)
        );
    }
}

#[test]
fn outputs_match_golden() {
    assert_eq!(GOLDEN.len(), ALL.len(), "golden table must cover every workload");
    for &(name, len, first, last) in GOLDEN {
        let w = cfed_workloads::by_name(name).expect("workload exists");
        let out = outputs(&w.image(Scale::Test).unwrap());
        assert_eq!(out.len(), len, "{name}: output length changed");
        assert_eq!(out.first().copied(), Some(first), "{name}: first output changed");
        assert_eq!(out.last().copied(), Some(last), "{name}: last output changed");
    }
}

#[test]
fn all_workload_sources_roundtrip_through_pretty_printer() {
    for w in &ALL {
        let src = w.source(Scale::Test);
        let prog =
            cfed_lang::parse(&src).unwrap_or_else(|e| panic!("{} does not parse: {e}", w.name));
        let canon = pretty(&prog);
        let back = cfed_lang::parse(&canon)
            .unwrap_or_else(|e| panic!("{} canonical text does not parse: {e}", w.name));
        assert!(ast_eq(&prog, &back), "{}: pretty-print round trip changed the AST", w.name);
    }
}
