//! SPEC CFP2000 analogs: loop-dominated numeric kernels with large
//! straight-line basic blocks, in 8-bit fixed point (all values kept
//! positive so logical shifts behave like arithmetic ones).
//!
//! These reproduce the structural property the paper leans on for the
//! fp/int contrast: "floating-point applications have big basic blocks"
//! (§2, §6), which lowers per-block instrumentation overhead and raises the
//! category-C probability relative to D.

/// 168.wupwise analog: repeated dense matrix–vector products with a fully
/// unrolled 8-wide inner row.
pub fn wupwise(scale: u64) -> String {
    let iters = 16 * scale;
    format!(
        r#"
        global a[64];
        global v[8];
        global w[8];
        global seed = 1917;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < 64) {{ a[i] = rand() % 256 + 1; i = i + 1; }}
            i = 0;
            while (i < 8) {{ v[i] = rand() % 256 + 1; i = i + 1; }}
            let it = 0;
            while (it < {iters}) {{
                let r = 0;
                while (r < 8) {{
                    let base = r * 8;
                    let acc = a[base] * v[0] + a[base + 1] * v[1]
                            + a[base + 2] * v[2] + a[base + 3] * v[3]
                            + a[base + 4] * v[4] + a[base + 5] * v[5]
                            + a[base + 6] * v[6] + a[base + 7] * v[7];
                    w[r] = (acc >> 8) + 1;
                    r = r + 1;
                }}
                i = 0;
                while (i < 8) {{ v[i] = (w[i] & 0xFFFF) + 1; i = i + 1; }}
                if (it > {iters}) {{ out(it); }}
                it = it + 1;
            }}
            let cs = 0;
            i = 0;
            while (i < 8) {{ cs = (cs * 31 + v[i]) & 0xFFFFFF; i = i + 1; }}
            out(cs);
        }}
        "#
    )
}

/// 171.swim analog: 2D shallow-water five-point stencil over a flattened
/// grid, long update expressions per point.
pub fn swim(scale: u64) -> String {
    let dim = 16;
    let steps = 4 * scale;
    let n = dim * dim;
    format!(
        r#"
        global u[{n}];
        global unew[{n}];
        global seed = 1879;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {n}) {{ u[i] = rand() % 1024 + 256; i = i + 1; }}
            let t = 0;
            while (t < {steps}) {{
                let r = 1;
                while (r < {dim} - 1) {{
                    let c = 1;
                    while (c < {dim} - 1) {{
                        let idx = r * {dim} + c;
                        let center = u[idx];
                        let north = u[idx - {dim}];
                        let south = u[idx + {dim}];
                        let east = u[idx + 1];
                        let west = u[idx - 1];
                        let lap = north + south + east + west;
                        let adv = (east * center >> 10) + (south * center >> 10);
                        unew[idx] = (center * 4 + lap + adv) / 9 + 1;
                        c = c + 1;
                    }}
                    r = r + 1;
                }}
                i = 0;
                while (i < {n}) {{ u[i] = unew[i] + 1; i = i + 1; }}
                if (t > {steps}) {{ out(t); }}
                t = t + 1;
            }}
            let cs = 0;
            i = 0;
            while (i < {n}) {{ cs = (cs + u[i]) & 0xFFFFFF; i = i + 1; }}
            out(cs);
        }}
        "#
    )
}

/// 172.mgrid analog: V-cycle-style smoothing at three resolutions of a 1D
/// grid, with unrolled three-point relaxation.
pub fn mgrid(scale: u64) -> String {
    let n = 128;
    let cycles = 6 * scale;
    format!(
        r#"
        global g[{n}];
        global seed = 1968;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn smooth(stride, sweeps) {{
            let s = 0;
            while (s < sweeps) {{
                let i = stride;
                while (i + stride < {n}) {{
                    let left = g[i - stride];
                    let right = g[i + stride];
                    let here = g[i];
                    g[i] = (left * 3 + here * 10 + right * 3) >> 4;
                    g[i] = g[i] + ((left ^ right) & 7) + 1;
                    i = i + stride;
                }}
                s = s + 1;
            }}
        }}
        fn main() {{
            let i = 0;
            while (i < {n}) {{ g[i] = rand() % 4096 + 64; i = i + 1; }}
            let c = 0;
            while (c < {cycles}) {{
                smooth(1, 2);
                smooth(2, 2);
                smooth(4, 2);
                smooth(2, 1);
                smooth(1, 1);
                if (c > {cycles}) {{ out(c); }}
                c = c + 1;
            }}
            let cs = 0;
            i = 0;
            while (i < {n}) {{ cs = (cs * 5 + g[i]) & 0xFFFFFF; i = i + 1; }}
            out(cs);
        }}
        "#
    )
}

/// 173.applu analog: forward/backward substitution sweeps of an SSOR-style
/// solver with fused per-row arithmetic.
pub fn applu(scale: u64) -> String {
    let n = 96;
    let iters = 8 * scale;
    format!(
        r#"
        global d[{n}];
        global lo[{n}];
        global hi[{n}];
        global rhs[{n}];
        global seed = 1999;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {n}) {{
                d[i] = rand() % 64 + 64;
                lo[i] = rand() % 16 + 1;
                hi[i] = rand() % 16 + 1;
                rhs[i] = rand() % 1024 + 128;
                i = i + 1;
            }}
            let it = 0;
            while (it < {iters}) {{
                // forward sweep
                i = 1;
                while (i < {n}) {{
                    let upd = rhs[i] + (lo[i] * rhs[i - 1] >> 6)
                            + ((d[i] * rhs[i]) >> 9) + (lo[i] ^ d[i]);
                    rhs[i] = (upd & 0xFFFF) + 1;
                    i = i + 1;
                }}
                // backward sweep
                i = {n} - 2;
                while (i > 0) {{
                    let upd2 = rhs[i] + (hi[i] * rhs[i + 1] >> 6)
                            + ((d[i] * rhs[i]) >> 9) + (hi[i] | 3);
                    rhs[i] = (upd2 & 0xFFFF) + 1;
                    i = i - 1;
                }}
                it = it + 1;
            }}
            let cs = 0;
            i = 0;
            while (i < {n}) {{ cs = (cs + rhs[i] * (i + 1)) & 0xFFFFFF; i = i + 1; }}
            out(cs);
        }}
        "#
    )
}

/// 177.mesa analog: a vertex-transform pipeline — 4×4 fixed-point matrix
/// times a stream of vertices, fully unrolled (16 multiplies per vertex).
pub fn mesa(scale: u64) -> String {
    let verts = 40 * scale;
    format!(
        r#"
        global m[16];
        global seed = 1992;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < 16) {{ m[i] = rand() % 512 + 1; i = i + 1; }}
            let v = 0;
            let cs = 0;
            while (v < {verts}) {{
                let x = rand() % 1024 + 1;
                let y = rand() % 1024 + 1;
                let z = rand() % 1024 + 1;
                let w = 256;
                let tx = (m[0] * x + m[1] * y + m[2] * z + m[3] * w) >> 8;
                let ty = (m[4] * x + m[5] * y + m[6] * z + m[7] * w) >> 8;
                let tz = (m[8] * x + m[9] * y + m[10] * z + m[11] * w) >> 8;
                let tw = (m[12] * x + m[13] * y + m[14] * z + m[15] * w) >> 8;
                let px = (tx * 256) / (tw + 1);
                let py = (ty * 256) / (tw + 1);
                cs = (cs * 31 + px * 7 + py * 3 + tz) & 0xFFFFFF;
                if (tw > 0x100000) {{ out(tw); }}
                v = v + 1;
            }}
            out(cs);
        }}
        "#
    )
}

/// 178.galgel analog: Gaussian elimination forward pass over a small dense
/// fixed-point matrix, re-factored repeatedly.
pub fn galgel(scale: u64) -> String {
    let dim = 12;
    let n = dim * dim;
    let iters = 4 * scale;
    format!(
        r#"
        global a[{n}];
        global seed = 1996;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn refill() {{
            let i = 0;
            while (i < {n}) {{ a[i] = rand() % 900 + 100; i = i + 1; }}
        }}
        fn main() {{
            let it = 0;
            let cs = 0;
            while (it < {iters}) {{
                refill();
                let k = 0;
                while (k < {dim} - 1) {{
                    let r = k + 1;
                    while (r < {dim}) {{
                        let factor = (a[r * {dim} + k] * 256) / a[k * {dim} + k];
                        let c = k;
                        while (c < {dim}) {{
                            let sub = (factor * a[k * {dim} + c]) >> 8;
                            let cell = a[r * {dim} + c] + 2048 - sub;
                            a[r * {dim} + c] = (cell & 0xFFF) + 1;
                            c = c + 1;
                        }}
                        r = r + 1;
                    }}
                    k = k + 1;
                }}
                let i = 0;
                while (i < {dim}) {{ cs = (cs * 13 + a[i * {dim} + i]) & 0xFFFFFF; i = i + 1; }}
                it = it + 1;
            }}
            out(cs);
        }}
        "#
    )
}

/// 179.art analog: an ART-1 style neural recognition layer — unrolled
/// weighted sums feeding a winner-take-all pass.
pub fn art(scale: u64) -> String {
    let inputs = 64;
    let classes = 8;
    let presentations = 16 * scale;
    format!(
        r#"
        global w[{}];
        global x[{inputs}];
        global act[{classes}];
        global seed = 2001;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {}) {{ w[i] = rand() % 256 + 1; i = i + 1; }}
            let p = 0;
            let cs = 0;
            while (p < {presentations}) {{
                i = 0;
                while (i < {inputs}) {{ x[i] = rand() % 256; i = i + 1; }}
                let c = 0;
                while (c < {classes}) {{
                    let base = c * {inputs};
                    let acc = 0;
                    let j = 0;
                    while (j < {inputs}) {{
                        acc = acc + w[base + j] * x[j] + (w[base + j] & x[j])
                            + ((w[base + j] ^ x[j]) >> 2) + (x[j] >> 1)
                            + ((w[base + j] + x[j]) >> 3) + 1;
                        j = j + 4;
                        acc = acc + w[base + j - 3] * x[j - 3]
                            + w[base + j - 2] * x[j - 2]
                            + w[base + j - 1] * x[j - 1];
                    }}
                    act[c] = acc >> 6;
                    c = c + 1;
                }}
                let best = 0;
                c = 1;
                while (c < {classes}) {{
                    if (act[c] > act[best]) {{ best = c; }}
                    c = c + 1;
                }}
                // resonance: nudge the winner's weights
                i = 0;
                while (i < {inputs}) {{
                    let idx = best * {inputs} + i;
                    w[idx] = ((w[idx] * 3 + x[i]) >> 2) + 1;
                    i = i + 1;
                }}
                cs = (cs * 7 + best) & 0xFFFFFF;
                if (best > {classes}) {{ out(best); }}
                p = p + 1;
            }}
            out(cs);
        }}
        "#,
        inputs * classes,
        inputs * classes,
    )
}

/// 183.equake analog: banded sparse matrix–vector products (the sparse
/// structure is fixed, so the inner body is straight-line).
pub fn equake(scale: u64) -> String {
    let n = 128;
    let iters = 10 * scale;
    format!(
        r#"
        global k0[{n}];
        global k1[{n}];
        global k2[{n}];
        global disp[{n}];
        global force[{n}];
        global seed = 1989;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {n}) {{
                k0[i] = rand() % 128 + 16;
                k1[i] = rand() % 64 + 8;
                k2[i] = rand() % 32 + 4;
                disp[i] = rand() % 512 + 64;
                i = i + 1;
            }}
            let t = 0;
            while (t < {iters}) {{
                i = 2;
                while (i < {n} - 5) {{
                    let f0 = k0[i] * disp[i]
                           + k1[i] * (disp[i - 1] + disp[i + 1])
                           + k2[i] * (disp[i - 2] + disp[i + 2]);
                    let f1 = k0[i + 1] * disp[i + 1]
                           + k1[i + 1] * (disp[i] + disp[i + 2])
                           + k2[i + 1] * (disp[i - 1] + disp[i + 3]);
                    let f2 = k0[i + 2] * disp[i + 2]
                           + k1[i + 2] * (disp[i + 1] + disp[i + 3])
                           + k2[i + 2] * (disp[i] + disp[i + 4]);
                    let f3 = k0[i + 3] * disp[i + 3]
                           + k1[i + 3] * (disp[i + 2] + disp[i + 4])
                           + k2[i + 3] * (disp[i + 1] + disp[i + 5]);
                    force[i] = (f0 >> 7) + 1;
                    force[i + 1] = (f1 >> 7) + 1;
                    force[i + 2] = (f2 >> 7) + 1;
                    force[i + 3] = (f3 >> 7) + 1;
                    i = i + 4;
                }}
                i = 2;
                while (i < {n} - 5) {{
                    disp[i] = ((disp[i] * 3 + force[i]) >> 2) + 1;
                    disp[i + 1] = ((disp[i + 1] * 3 + force[i + 1]) >> 2) + 1;
                    disp[i + 2] = ((disp[i + 2] * 3 + force[i + 2]) >> 2) + 1;
                    disp[i + 3] = ((disp[i + 3] * 3 + force[i + 3]) >> 2) + 1;
                    i = i + 4;
                }}
                if (t > {iters}) {{ out(t); }}
                t = t + 1;
            }}
            let cs = 0;
            i = 0;
            while (i < {n}) {{ cs = (cs + disp[i] * (i | 1)) & 0xFFFFFF; i = i + 1; }}
            out(cs);
        }}
        "#
    )
}

/// 187.facerec analog: sliding cross-correlation of a probe signal against a
/// gallery, inner product unrolled ×4.
pub fn facerec(scale: u64) -> String {
    let gallery = 256;
    let probe = 32;
    let iters = 4 * scale;
    format!(
        r#"
        global g[{gallery}];
        global p[{probe}];
        global seed = 2002;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {gallery}) {{ g[i] = rand() % 256; i = i + 1; }}
            i = 0;
            while (i < {probe}) {{ p[i] = rand() % 256; i = i + 1; }}
            let it = 0;
            let cs = 0;
            while (it < {iters}) {{
                let best = 0;
                let best_at = 0;
                let off = 0;
                while (off + {probe} <= {gallery}) {{
                    let acc = 0;
                    let j = 0;
                    while (j < {probe}) {{
                        acc = acc + g[off + j] * p[j]
                            + g[off + j + 1] * p[j + 1]
                            + g[off + j + 2] * p[j + 2]
                            + g[off + j + 3] * p[j + 3];
                        j = j + 4;
                    }}
                    if (acc > best) {{ best = acc; best_at = off; }}
                    off = off + 1;
                }}
                cs = (cs * 31 + best_at) & 0xFFFFFF;
                // perturb the probe so iterations differ
                i = 0;
                while (i < {probe}) {{ p[i] = (p[i] + g[(best_at + i) % {gallery}]) % 256; i = i + 1; }}
                it = it + 1;
            }}
            out(cs);
        }}
        "#
    )
}

/// 188.ammp analog: pairwise n-body force accumulation with softened
/// inverse-square interaction in fixed point.
pub fn ammp(scale: u64) -> String {
    let bodies = 24;
    let steps = 4 * scale;
    format!(
        r#"
        global px[{bodies}];
        global py[{bodies}];
        global fx[{bodies}];
        global fy[{bodies}];
        global seed = 1994;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {bodies}) {{
                px[i] = rand() % 2048 + 256;
                py[i] = rand() % 2048 + 256;
                i = i + 1;
            }}
            let t = 0;
            while (t < {steps}) {{
                i = 0;
                while (i < {bodies}) {{ fx[i] = 0; fy[i] = 0; i = i + 1; }}
                i = 0;
                while (i < {bodies}) {{
                    let j = i + 1;
                    while (j < {bodies}) {{
                        let dx = px[i] + 4096 - px[j];
                        let dy = py[i] + 4096 - py[j];
                        let r2 = (dx - 4096) * (dx - 4096) + (dy - 4096) * (dy - 4096) + 64;
                        let inv = 67108864 / r2;
                        let f = (inv * 37) >> 4;
                        fx[i] = fx[i] + f * (dx / 512);
                        fy[i] = fy[i] + f * (dy / 512);
                        fx[j] = fx[j] + f * ((8192 - dx) / 512);
                        fy[j] = fy[j] + f * ((8192 - dy) / 512);
                        j = j + 1;
                    }}
                    i = i + 1;
                }}
                i = 0;
                while (i < {bodies}) {{
                    px[i] = (px[i] + (fx[i] >> 8)) % 4096 + 128;
                    py[i] = (py[i] + (fy[i] >> 8)) % 4096 + 128;
                    i = i + 1;
                }}
                t = t + 1;
            }}
            let cs = 0;
            i = 0;
            while (i < {bodies}) {{ cs = (cs * 17 + px[i] + py[i]) & 0xFFFFFF; i = i + 1; }}
            out(cs);
        }}
        "#
    )
}

/// 189.lucas analog: Lucas–Lehmer-style chained modular squaring, unrolled
/// ×4 per loop iteration.
pub fn lucas(scale: u64) -> String {
    let iters = 120 * scale;
    format!(
        r#"
        fn main() {{
            let m = 2147483647;
            let x = 4;
            let i = 0;
            while (i < {iters}) {{
                x = (x * x + 14) % m;
                x = (x * x + 14) % m;
                x = (x * x + 14) % m;
                x = (x * x + 14) % m;
                x = (x * x + 15) % m;
                x = (x * x + 14) % m;
                x = (x * x + 14) % m;
                x = (x * x + 14) % m;
                x = (x * x + 16) % m;
                x = (x * x + 14) % m;
                x = (x * x + 14) % m;
                x = (x * x + 14) % m;
                x = (x * x + 17) % m;
                x = (x * x + 14) % m;
                x = (x * x + 14) % m;
                x = (x * x + 14) % m;
                i = i + 1;
            }}
            out(x);
        }}
        "#
    )
}

/// 191.fma3d analog: finite-element-style fused multiply–add sweeps over
/// element arrays, two unrolled passes per step.
pub fn fma3d(scale: u64) -> String {
    let n = 128;
    let steps = 8 * scale;
    format!(
        r#"
        global stress[{n}];
        global strain[{n}];
        global veloc[{n}];
        global seed = 1995;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {n}) {{
                stress[i] = rand() % 1024 + 64;
                strain[i] = rand() % 256 + 16;
                veloc[i] = rand() % 128 + 8;
                i = i + 1;
            }}
            let t = 0;
            while (t < {steps}) {{
                i = 0;
                while (i < {n}) {{
                    let e0 = strain[i] + ((veloc[i] * 13) >> 4);
                    let e1 = strain[i + 1] + ((veloc[i + 1] * 13) >> 4);
                    let e2 = strain[i + 2] + ((veloc[i + 2] * 13) >> 4);
                    let e3 = strain[i + 3] + ((veloc[i + 3] * 13) >> 4);
                    stress[i] = ((stress[i] + ((e0 * 29) >> 5) + ((e0 * e0) >> 11)) & 0x3FFF) + 1;
                    stress[i + 1] = ((stress[i + 1] + ((e1 * 29) >> 5) + ((e1 * e1) >> 11)) & 0x3FFF) + 1;
                    stress[i + 2] = ((stress[i + 2] + ((e2 * 29) >> 5) + ((e2 * e2) >> 11)) & 0x3FFF) + 1;
                    stress[i + 3] = ((stress[i + 3] + ((e3 * 29) >> 5) + ((e3 * e3) >> 11)) & 0x3FFF) + 1;
                    strain[i] = (e0 & 0xFFF) + 1;
                    strain[i + 1] = (e1 & 0xFFF) + 1;
                    strain[i + 2] = (e2 & 0xFFF) + 1;
                    strain[i + 3] = (e3 & 0xFFF) + 1;
                    i = i + 4;
                }}
                i = 1;
                while (i < {n} - 4) {{
                    let acc0 = stress[i - 1] + stress[i] * 2 + stress[i + 1];
                    let acc1 = stress[i] + stress[i + 1] * 2 + stress[i + 2];
                    let acc2 = stress[i + 1] + stress[i + 2] * 2 + stress[i + 3];
                    let acc3 = stress[i + 2] + stress[i + 3] * 2 + stress[i + 4];
                    veloc[i] = ((veloc[i] * 7 + (acc0 >> 4)) >> 3) + 1;
                    veloc[i + 1] = ((veloc[i + 1] * 7 + (acc1 >> 4)) >> 3) + 1;
                    veloc[i + 2] = ((veloc[i + 2] * 7 + (acc2 >> 4)) >> 3) + 1;
                    veloc[i + 3] = ((veloc[i + 3] * 7 + (acc3 >> 4)) >> 3) + 1;
                    i = i + 4;
                }}
                t = t + 1;
            }}
            let cs = 0;
            i = 0;
            while (i < {n}) {{ cs = (cs + stress[i] ^ veloc[i]) & 0xFFFFFF; i = i + 1; }}
            out(cs);
        }}
        "#
    )
}

/// 200.sixtrack analog: particle tracking through a lattice — phase-space
/// rotation with fixed-point trig constants plus a sextupole kick.
pub fn sixtrack(scale: u64) -> String {
    let particles = 16;
    let turns = 16 * scale;
    format!(
        r#"
        global x[{particles}];
        global p[{particles}];
        global seed = 1984;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {particles}) {{
                x[i] = rand() % 512 + 256;
                p[i] = rand() % 512 + 256;
                i = i + 1;
            }}
            // cos/sin of the tune in Q8: 0.921, 0.389
            let c = 236;
            let s = 100;
            let t = 0;
            while (t < {turns}) {{
                i = 0;
                while (i < {particles}) {{
                    let xi = x[i];
                    let pi = p[i];
                    let xr = (c * xi + 65536 + s * pi) >> 8;
                    let pr = (c * pi + 524288 - s * xi) >> 8;
                    let kick = (xr * xr) >> 12;
                    x[i] = (xr & 0x7FF) + 64;
                    p[i] = ((pr + kick) & 0x7FF) + 64;
                    let xj = x[i + 1];
                    let pj = p[i + 1];
                    let xs = (c * xj + 65536 + s * pj) >> 8;
                    let ps = (c * pj + 524288 - s * xj) >> 8;
                    let kick2 = (xs * xs) >> 12;
                    x[i + 1] = (xs & 0x7FF) + 64;
                    p[i + 1] = ((ps + kick2) & 0x7FF) + 64;
                    i = i + 2;
                }}
                t = t + 1;
            }}
            let cs = 0;
            i = 0;
            while (i < {particles}) {{ cs = (cs * 31 + x[i] * 2 + p[i]) & 0xFFFFFF; i = i + 1; }}
            out(cs);
        }}
        "#
    )
}

/// 301.apsi analog: 1D advection–diffusion of temperature and moisture with
/// coupled long-expression updates.
pub fn apsi(scale: u64) -> String {
    let n = 128;
    let steps = 8 * scale;
    format!(
        r#"
        global temp[{n}];
        global moist[{n}];
        global seed = 1966;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {n}) {{
                temp[i] = rand() % 512 + 2048;
                moist[i] = rand() % 256 + 1024;
                i = i + 1;
            }}
            let t = 0;
            while (t < {steps}) {{
                i = 1;
                while (i < {n} - 1) {{
                    let adv = (temp[i - 1] * 3 + temp[i] * 10 + temp[i + 1] * 3) >> 4;
                    let dif = (moist[i - 1] + moist[i + 1]) >> 1;
                    let coupling = (adv * dif) >> 12;
                    temp[i] = ((adv + coupling) & 0x1FFF) + 1024;
                    moist[i] = ((dif + (adv >> 3) + (temp[i] >> 4)) & 0xFFF) + 512;
                    i = i + 1;
                }}
                t = t + 1;
            }}
            let cs = 0;
            i = 0;
            while (i < {n}) {{ cs = (cs + temp[i] * 3 + moist[i]) & 0xFFFFFF; i = i + 1; }}
            out(cs);
        }}
        "#
    )
}
