//! Cold-code padding: never-executed functions appended to each workload so
//! the program's *static code footprint* resembles a real application's.
//!
//! The §2 error model classifies faulted branch targets against the whole
//! code region: a SPEC binary is hundreds of kilobytes, so many offset-bit
//! flips land in *cold* code (categories D/E) rather than outside the code
//! region (category F). Without padding our synthetic workloads would be a
//! few kilobytes and category F would absorb most of the probability mass
//! that the paper attributes to D/E. The padding is suite-flavoured:
//! integer-style padding is branchy (small blocks), fp-style padding is
//! straight-line (large blocks), so landings in cold code classify with the
//! same B/C/D/E balance as the hot code around them.

use crate::Suite;
use std::fmt::Write as _;

/// Approximate instructions emitted per padding unit (one cold function).
pub const INSTS_PER_UNIT: usize = 60;

/// Generates `units` cold functions in MiniC, flavoured for `suite`
/// (includes the shared sink global; see [`cold_fns`] for the raw pieces).
///
/// The functions reference a shared global but are never called from
/// `main`; MiniC performs no dead-code elimination, so they occupy code
/// space exactly like the cold paths of a real binary.
pub fn cold_code(suite: Suite, units: usize) -> String {
    if units == 0 {
        return String::new();
    }
    format!("{}{}", sink_decl(), cold_fns(suite, 0, units))
}

/// The global declaration shared by all cold functions (emit exactly once).
pub fn sink_decl() -> &'static str {
    "global __cold_sink[16];\n"
}

/// Generates cold functions numbered `start..end` without the sink
/// declaration, so padding can be split around the hot kernel (hot code in
/// the *middle* of the image, as in a real binary's function layout).
pub fn cold_fns(suite: Suite, start: usize, end: usize) -> String {
    let mut out = String::new();
    for k in start..end {
        match suite {
            Suite::Int => {
                // Branchy: chains of small conditional updates.
                writeln!(
                    out,
                    r#"
                    fn __cold_{k}(x, y) {{
                        let pr = x + {k};
                        if (x < y) {{ pr = pr + 3; }} else {{ pr = pr - 1; }}
                        if (pr & 1) {{ pr = pr * 3 + 1; }}
                        if (pr & 2) {{ pr = pr + y; }} else {{ pr = pr ^ y; }}
                        let pi = 0;
                        while (pi < y) {{
                            if (pi & 1) {{ pr = pr + pi; }} else {{ pr = pr - pi; }}
                            pi = pi + 1;
                        }}
                        if (pr & 4) {{ __cold_sink[{slot}] = pr; }}
                        if (pr & 8) {{ pr = pr >> 1; }} else {{ pr = pr << 1; }}
                        return pr;
                    }}"#,
                    k = k,
                    slot = k % 16,
                )
                .unwrap_or(());
            }
            Suite::Fp => {
                // Straight-line: one long arithmetic block.
                writeln!(
                    out,
                    r#"
                    fn __cold_{k}(x, y) {{
                        let pa = x * 3 + y * 5 + {k};
                        let pb = (pa >> 2) + (x << 1) + (y ^ pa);
                        let pc = pa * pb + (pa & 0xFFFF) + (pb | 7) + (x * y);
                        let pd = (pc >> 3) + pa * 7 + pb * 11 + (pc & 0xFFF);
                        let pe = pd + (pa >> 1) + (pb >> 2) + (pc >> 4) + (pd >> 5);
                        let pf = pe * 3 + pd * 5 + pc * 7 + pb * 11 + pa * 13;
                        let pg = (pf & 0xFFFFF) + (pe & 0xFFFF) + (pd & 0xFFF) + (pc & 0xFF);
                        let ph = pg + pf + pe + pd + pc + pb + pa + x + y + {k};
                        let pi = ph * 2 + pg * 3 + pf * 5 + (ph >> 6) + (pg >> 7);
                        let pj = pi + (ph << 2) + (pg << 1) + (pf ^ pe) + (pd | pc);
                        __cold_sink[{slot}] = pj + pi + ph + pg;
                        return pj & 0xFFFFFF;
                    }}"#,
                    k = k,
                    slot = k % 16,
                )
                .unwrap_or(());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_compiles_with_a_trivial_main() {
        for suite in [Suite::Int, Suite::Fp] {
            let src = format!("{}\nfn main() {{ out(1); }}", cold_code(suite, 5));
            let image = cfed_lang::compile(&src).unwrap_or_else(|e| panic!("{suite} padding: {e}"));
            assert!(image.len() > 5 * 30, "padding too small: {}", image.len());
        }
    }

    #[test]
    fn zero_units_is_empty() {
        assert!(cold_code(Suite::Int, 0).is_empty());
    }

    #[test]
    fn fp_padding_denser_than_int() {
        // Fp padding should produce larger blocks (fewer branches per inst).
        let int_src = format!("{}\nfn main() {{ }}", cold_code(Suite::Int, 8));
        let fp_src = format!("{}\nfn main() {{ }}", cold_code(Suite::Fp, 8));
        let count_branches = |src: &str| {
            let image = cfed_lang::compile(src).unwrap();
            let total = image.len() as f64;
            let branches = image.insts().iter().filter(|i| i.is_branch()).count() as f64;
            branches / total
        };
        assert!(count_branches(&fp_src) < count_branches(&int_src));
    }
}
