//! # cfed-workloads — SPEC2000-analog guest programs
//!
//! Twenty-six synthetic workloads written in MiniC, one per SPEC CPU2000
//! application the paper evaluates (12 integer + 14 floating point). They
//! are *structural* analogs, not ports: the integer programs are branchy and
//! call-heavy with small basic blocks; the "floating point" programs (fixed
//! point here — VISA is integer-only) are loop-dominated with long
//! straight-line bodies. Those are the properties the paper's results key
//! on: fp codes have larger blocks, hence lower instrumentation overhead
//! (Figures 12/15) and more category-C mass in the error model (Figure 2).
//!
//! Every workload is deterministic (LCG-generated data, fixed seeds) and
//! emits checksums through `out(..)`, the silent-data-corruption oracle of
//! the fault-injection experiments.
//!
//! ## Example
//!
//! ```
//! use cfed_workloads::{by_name, Scale};
//!
//! let w = by_name("164.gzip").unwrap();
//! let image = w.image(Scale::Test).unwrap();
//! assert!(image.len() > 50);
//! ```

pub mod fp_suite;
pub mod int_suite;
pub mod padding;

use cfed_asm::Image;
use cfed_lang::CompileError;
use std::fmt;

/// Which benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CINT2000 analogs.
    Int,
    /// SPEC CFP2000 analogs.
    Fp,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Int => f.write_str("SPEC-Int"),
            Suite::Fp => f.write_str("SPEC-Fp"),
        }
    }
}

/// Workload size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instance for (debug-mode) tests.
    Test,
    /// Full instance for experiment harnesses.
    Full,
    /// Explicit scale factor.
    Custom(u64),
}

/// One SPEC2000-analog workload.
#[derive(Clone)]
pub struct Workload {
    /// SPEC-style name, e.g. `"164.gzip"`.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    gen: fn(u64) -> String,
    test_scale: u64,
    full_scale: u64,
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload").field("name", &self.name).field("suite", &self.suite).finish()
    }
}

/// Cold-code padding units appended at [`Scale::Full`] (≈ 48k instructions,
/// ≈ 380 KiB of code — the static footprint of a mid-sized application).
pub const FULL_PADDING_UNITS: usize = 800;

/// Cold-code padding units appended at [`Scale::Test`].
pub const TEST_PADDING_UNITS: usize = 24;

impl Workload {
    /// The MiniC source at a given scale, including the suite-flavoured
    /// cold-code padding that gives the image a realistic static footprint
    /// (see [`padding`]).
    pub fn source(&self, scale: Scale) -> String {
        let units = match scale {
            Scale::Test => TEST_PADDING_UNITS,
            Scale::Full => FULL_PADDING_UNITS,
            Scale::Custom(_) => TEST_PADDING_UNITS,
        };
        // Hot kernel in the middle of the image: half the cold code before,
        // half after, as in a real binary's function layout.
        let mut src = String::from(padding::sink_decl());
        src.push_str(&padding::cold_fns(self.suite, 0, units / 2));
        src.push_str(&(self.gen)(self.scale_factor(scale)));
        src.push_str(&padding::cold_fns(self.suite, units / 2, units));
        src
    }

    /// The workload's kernel source without cold padding.
    pub fn kernel_source(&self, scale: Scale) -> String {
        (self.gen)(self.scale_factor(scale))
    }

    fn scale_factor(&self, scale: Scale) -> u64 {
        match scale {
            Scale::Test => self.test_scale,
            Scale::Full => self.full_scale,
            Scale::Custom(n) => n,
        }
    }

    /// Compiles the workload to a VISA image.
    ///
    /// # Errors
    ///
    /// Propagates MiniC compilation errors (a failure indicates a bug in the
    /// workload source; all sources are covered by tests).
    pub fn image(&self, scale: Scale) -> Result<Image, CompileError> {
        cfed_lang::compile(&self.source(scale))
    }
}

macro_rules! workload {
    ($name:literal, $suite:ident, $gen:path, $test:literal, $full:literal) => {
        Workload {
            name: $name,
            suite: Suite::$suite,
            gen: $gen,
            test_scale: $test,
            full_scale: $full,
        }
    };
}

/// All 26 workloads: the 14 fp analogs first, then the 12 int analogs — the
/// left-to-right order of the paper's Figure 12.
pub const ALL: [Workload; 26] = [
    workload!("168.wupwise", Fp, fp_suite::wupwise, 2, 40),
    workload!("171.swim", Fp, fp_suite::swim, 2, 30),
    workload!("172.mgrid", Fp, fp_suite::mgrid, 2, 40),
    workload!("173.applu", Fp, fp_suite::applu, 2, 40),
    workload!("177.mesa", Fp, fp_suite::mesa, 2, 40),
    workload!("178.galgel", Fp, fp_suite::galgel, 2, 30),
    workload!("179.art", Fp, fp_suite::art, 2, 30),
    workload!("183.equake", Fp, fp_suite::equake, 2, 40),
    workload!("187.facerec", Fp, fp_suite::facerec, 1, 20),
    workload!("188.ammp", Fp, fp_suite::ammp, 2, 40),
    workload!("189.lucas", Fp, fp_suite::lucas, 2, 60),
    workload!("191.fma3d", Fp, fp_suite::fma3d, 2, 40),
    workload!("200.sixtrack", Fp, fp_suite::sixtrack, 2, 60),
    workload!("301.apsi", Fp, fp_suite::apsi, 2, 40),
    workload!("164.gzip", Int, int_suite::gzip, 2, 50),
    workload!("175.vpr", Int, int_suite::vpr, 2, 50),
    workload!("176.gcc", Int, int_suite::gcc, 2, 50),
    workload!("181.mcf", Int, int_suite::mcf, 2, 50),
    workload!("186.crafty", Int, int_suite::crafty, 2, 40),
    workload!("197.parser", Int, int_suite::parser, 2, 40),
    workload!("252.eon", Int, int_suite::eon, 2, 40),
    workload!("253.perlbmk", Int, int_suite::perlbmk, 2, 50),
    workload!("254.gap", Int, int_suite::gap, 2, 50),
    workload!("255.vortex", Int, int_suite::vortex, 2, 50),
    workload!("256.bzip2", Int, int_suite::bzip2, 2, 50),
    workload!("300.twolf", Int, int_suite::twolf, 2, 40),
];

/// The integer-suite workloads.
pub fn int_workloads() -> impl Iterator<Item = &'static Workload> {
    ALL.iter().filter(|w| w.suite == Suite::Int)
}

/// The fp-suite workloads.
pub fn fp_workloads() -> impl Iterator<Item = &'static Workload> {
    ALL.iter().filter(|w| w.suite == Suite::Fp)
}

/// Looks a workload up by its SPEC-style name.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    ALL.iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_spec2000() {
        assert_eq!(int_workloads().count(), 12);
        assert_eq!(fp_workloads().count(), 14);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = ALL.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("171.swim").is_some());
        assert!(by_name("999.nope").is_none());
    }

    #[test]
    fn all_sources_compile() {
        for w in &ALL {
            w.image(Scale::Test).unwrap_or_else(|e| panic!("{} does not compile: {e}", w.name));
        }
    }
}
