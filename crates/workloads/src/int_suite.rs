//! SPEC CINT2000 analogs: branchy, call-heavy integer kernels with small
//! basic blocks — the structural profile that drives the integer side of
//! the paper's Figures 2, 12 and 15.
//!
//! Every generator takes a `scale` parameter controlling the dominant loop
//! bound so the same program can run as a fast test or a full measurement.

/// 164.gzip analog: run-length compression of LCG-generated, run-structured
/// data; inner loops with data-dependent exits.
pub fn gzip(scale: u64) -> String {
    let n = 64 * scale;
    format!(
        r#"
        global data[{n}];
        global seed = 11213;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn fill() {{
            let i = 0;
            while (i < {n}) {{
                let run = rand() % 7 + 1;
                let val = rand() % 4;
                while (run > 0) {{
                    if (i < {n}) {{ data[i] = val; i = i + 1; }}
                    run = run - 1;
                }}
            }}
        }}
        fn main() {{
            fill();
            let i = 0;
            let tokens = 0;
            let cs = 0;
            while (i < {n}) {{
                let v = data[i];
                let run = 0;
                while (i < {n} && data[i] == v) {{ run = run + 1; i = i + 1; }}
                cs = (cs * 31 + v * 256 + run) & 0xFFFFFF;
                if (cs > 0xFFFFFF) {{ out(cs); }}
                if (run > {n}) {{ out(run); }}
                tokens = tokens + 1;
            }}
            out(tokens);
            out(cs);
            assert(tokens > 0);
        }}
        "#
    )
}

/// 175.vpr analog: greedy placement improvement — swap two cells when the
/// wire-length cost decreases.
pub fn vpr(scale: u64) -> String {
    let cells = 48;
    let iters = 40 * scale;
    format!(
        r#"
        global pos[{cells}];
        global net[{cells}];
        global seed = 777;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn dist(a, b) {{
            if (a < b) {{ return b - a; }}
            return a - b;
        }}
        fn cell_cost(c) {{
            return dist(pos[c], pos[net[c]]);
        }}
        fn main() {{
            let i = 0;
            while (i < {cells}) {{
                pos[i] = rand() % 1000;
                net[i] = rand() % {cells};
                i = i + 1;
            }}
            let accepted = 0;
            let t = 0;
            while (t < {iters}) {{
                let a = rand() % {cells};
                let b = rand() % {cells};
                let before = cell_cost(a) + cell_cost(b);
                let tmp = pos[a];
                pos[a] = pos[b];
                pos[b] = tmp;
                let after = cell_cost(a) + cell_cost(b);
                if (after > before) {{
                    tmp = pos[a];
                    pos[a] = pos[b];
                    pos[b] = tmp;
                }} else {{
                    accepted = accepted + 1;
                }}
                if (t > {iters}) {{ out(t); }}
                t = t + 1;
            }}
            let total = 0;
            i = 0;
            while (i < {cells}) {{ total = total + cell_cost(i); i = i + 1; }}
            out(accepted);
            out(total);
        }}
        "#
    )
}

/// 176.gcc analog: a bytecode evaluator — decode/dispatch over an op stream
/// with a long else-if chain (compiler-style unpredictable branches).
pub fn gcc(scale: u64) -> String {
    let n = 96 * scale;
    format!(
        r#"
        global ops[{n}];
        global args[{n}];
        global seed = 424242;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {n}) {{
                ops[i] = rand() % 8;
                args[i] = rand() % 64 + 1;
                i = i + 1;
            }}
            let acc = 1;
            let pc = 0;
            while (pc < {n}) {{
                let op = ops[pc];
                let a = args[pc];
                if (op == 0) {{ acc = acc + a; }}
                else if (op == 1) {{ acc = acc - a; }}
                else if (op == 2) {{ acc = acc * (a & 7); }}
                else if (op == 3) {{ acc = acc / a; }}
                else if (op == 4) {{ acc = acc ^ a; }}
                else if (op == 5) {{ acc = acc | (a & 15); }}
                else if (op == 6) {{ acc = (acc << 1) & 0xFFFFF; }}
                else {{ acc = acc >> 1; }}
                if (acc == 0) {{ acc = 7; }}
                if (pc > {n}) {{ out(pc); }}
                if (op > 7) {{ out(op); }}
                pc = pc + 1;
            }}
            out(acc);
        }}
        "#
    )
}

/// 181.mcf analog: Bellman–Ford relaxation over a synthetic sparse network
/// (pointer-chasing-style index loads, highly branchy inner test).
pub fn mcf(scale: u64) -> String {
    let nodes = 40;
    let rounds = 4 * scale;
    format!(
        r#"
        global dist[{nodes}];
        global to_a[{nodes}];
        global to_b[{nodes}];
        global w_a[{nodes}];
        global w_b[{nodes}];
        global seed = 31337;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 1;
            dist[0] = 0;
            while (i < {nodes}) {{ dist[i] = 1000000; i = i + 1; }}
            i = 0;
            while (i < {nodes}) {{
                to_a[i] = (i + 1 + rand() % 3) % {nodes};
                to_b[i] = rand() % {nodes};
                w_a[i] = rand() % 50 + 1;
                w_b[i] = rand() % 50 + 1;
                i = i + 1;
            }}
            let round = 0;
            let relaxations = 0;
            while (round < {rounds}) {{
                let u = 0;
                while (u < {nodes}) {{
                    let du = dist[u];
                    if (du < 1000000) {{
                        let v = to_a[u];
                        if (du + w_a[u] < dist[v]) {{
                            dist[v] = du + w_a[u];
                            relaxations = relaxations + 1;
                        }}
                        v = to_b[u];
                        if (du + w_b[u] < dist[v]) {{
                            dist[v] = du + w_b[u];
                            relaxations = relaxations + 1;
                        }}
                    }}
                    if (u > {nodes}) {{ out(u); }}
                    u = u + 1;
                }}
                round = round + 1;
            }}
            let sum = 0;
            i = 0;
            while (i < {nodes}) {{ sum = sum + dist[i]; i = i + 1; }}
            out(relaxations);
            out(sum);
        }}
        "#
    )
}

/// 186.crafty analog: bitboard manipulation — popcounts, sliding attacks,
/// parity tricks (shift/mask heavy with short data-dependent branches).
pub fn crafty(scale: u64) -> String {
    let iters = 60 * scale;
    format!(
        r#"
        global seed = 90125;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn popcount(x) {{
            let c = 0;
            while (x != 0) {{ x = x & (x - 1); c = c + 1; }}
            return c;
        }}
        fn slide(occ, from) {{
            let attacks = 0;
            let sq = from + 1;
            while (sq < 32 && (occ >> sq) % 2 == 0) {{
                attacks = attacks | (1 << sq);
                sq = sq + 1;
            }}
            if (sq < 32) {{ attacks = attacks | (1 << sq); }}
            return attacks;
        }}
        fn main() {{
            let i = 0;
            let score = 0;
            while (i < {iters}) {{
                let occ = rand() ^ (rand() << 5);
                occ = occ & 0xFFFFFFFF;
                let from = rand() % 24;
                let att = slide(occ, from);
                score = score + popcount(att & occ);
                if (popcount(occ) % 2 == 1) {{ score = score + 3; }} else {{ score = score - 1; }}
                if (from > 24) {{ out(from); }}
                i = i + 1;
            }}
            out(score);
        }}
        "#
    )
}

/// 197.parser analog: recursive-descent evaluation of a token stream with
/// bracket nesting (deep call stacks, data-dependent recursion).
pub fn parser(scale: u64) -> String {
    let n = 128 * scale;
    format!(
        r#"
        global toks[{n}];
        global cursor = 0;
        global seed = 5417;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        // tokens: 0 '(' 1 ')' 2.. literals
        fn gen(i, depth) {{
            while (i < {n}) {{
                let r = rand() % 10;
                if (r < 3 && depth < 12) {{
                    toks[i] = 0;
                    i = gen(i + 1, depth + 1);
                }} else if (r < 5 && depth > 0) {{
                    toks[i] = 1;
                    return i + 1;
                }} else {{
                    toks[i] = r;
                    i = i + 1;
                }}
            }}
            return i;
        }}
        fn parse_expr(depth) {{
            let total = 0;
            while (cursor < {n}) {{
                let t = toks[cursor];
                cursor = cursor + 1;
                if (t == 0) {{
                    total = total + 2 * parse_expr(depth + 1);
                }} else if (t == 1) {{
                    return total;
                }} else {{
                    total = total + t;
                }}
            }}
            return total;
        }}
        fn main() {{
            let end = gen(0, 0);
            while (end < {n}) {{ toks[end] = 1; end = end + 1; }}
            out(parse_expr(0) & 0xFFFFFF);
        }}
        "#
    )
}

/// 252.eon analog: fixed-point ray stepping through an octree-like grid with
/// per-axis branch decisions.
pub fn eon(scale: u64) -> String {
    let rays = 24 * scale;
    format!(
        r#"
        global seed = 6502;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn trace(x, y, dx, dy) {{
            let steps = 0;
            let hits = 0;
            while (steps < 64) {{
                x = x + dx;
                y = y + dy;
                if (x > 4096) {{ x = x - 4096; dx = 256 - dx % 97; hits = hits + 1; }}
                if (y > 4096) {{ y = y - 4096; dy = 256 - dy % 83; hits = hits + 1; }}
                if (x < 0) {{ x = x + 4096; }}
                if (y < 0) {{ y = y + 4096; }}
                if ((x / 512 + y / 512) % 2 == 0) {{ hits = hits + 1; }}
                if (steps > 64) {{ out(steps); }}
                steps = steps + 1;
            }}
            return hits;
        }}
        fn main() {{
            let r = 0;
            let light = 0;
            while (r < {rays}) {{
                light = light + trace(rand() % 4096, rand() % 4096,
                                      rand() % 300 + 10, rand() % 300 + 10);
                r = r + 1;
            }}
            out(light);
        }}
        "#
    )
}

/// 253.perlbmk analog: string hashing plus a tiny regex-style state machine
/// over generated byte strings.
pub fn perlbmk(scale: u64) -> String {
    let n = 96 * scale;
    format!(
        r#"
        global text[{n}];
        global seed = 1965;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn main() {{
            let i = 0;
            while (i < {n}) {{ text[i] = rand() % 26; i = i + 1; }}
            // hash pass
            let h = 5381;
            i = 0;
            while (i < {n}) {{ h = (h * 33 + text[i]) & 0xFFFFFFF; i = i + 1; }}
            // match pattern a(b|c)+d as a state machine (a=0,b=1,c=2,d=3)
            let state = 0;
            let matches = 0;
            i = 0;
            while (i < {n}) {{
                let ch = text[i];
                if (state == 0) {{
                    if (ch == 0) {{ state = 1; }}
                }} else if (state == 1) {{
                    if (ch == 1 || ch == 2) {{ state = 2; }}
                    else if (ch == 0) {{ state = 1; }}
                    else {{ state = 0; }}
                }} else {{
                    if (ch == 3) {{ matches = matches + 1; state = 0; }}
                    else if (ch == 1 || ch == 2) {{ state = 2; }}
                    else if (ch == 0) {{ state = 1; }}
                    else {{ state = 0; }}
                }}
                if (state > 2) {{ out(state); }}
                i = i + 1;
            }}
            out(h);
            out(matches);
        }}
        "#
    )
}

/// 254.gap analog: permutation group arithmetic — compose random
/// permutations and compute element orders.
pub fn gap(scale: u64) -> String {
    let deg = 24;
    let iters = 12 * scale;
    format!(
        r#"
        global p[{deg}];
        global q[{deg}];
        global r[{deg}];
        global seed = 2718;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn shuffle() {{
            let i = 0;
            while (i < {deg}) {{ q[i] = i; i = i + 1; }}
            i = {deg} - 1;
            while (i > 0) {{
                let j = rand() % (i + 1);
                let t = q[i];
                q[i] = q[j];
                q[j] = t;
                i = i - 1;
            }}
        }}
        fn order_of_point(start) {{
            let x = r[start];
            let len = 1;
            while (x != start) {{ x = r[x]; len = len + 1; }}
            return len;
        }}
        fn main() {{
            let i = 0;
            while (i < {deg}) {{ p[i] = ({deg} - 1) - i; i = i + 1; }}
            let it = 0;
            let sig = 0;
            while (it < {iters}) {{
                shuffle();
                i = 0;
                while (i < {deg}) {{ r[i] = p[q[i]]; i = i + 1; }}
                i = 0;
                while (i < {deg}) {{ p[i] = r[i]; i = i + 1; }}
                sig = (sig * 7 + order_of_point(it % {deg})) & 0xFFFFF;
                if (sig > 0xFFFFF) {{ out(sig); }}
                it = it + 1;
            }}
            out(sig);
        }}
        "#
    )
}

/// 255.vortex analog: an in-memory object store — open-addressed hash table
/// insert/lookup/delete mix.
pub fn vortex(scale: u64) -> String {
    let cap = 256;
    let ops = 80 * scale;
    format!(
        r#"
        global keys[{cap}];
        global vals[{cap}];
        global seed = 80501;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn slot_for(k) {{
            let s = (k * 2654435761) % {cap};
            let probes = 0;
            while (probes < {cap}) {{
                if (keys[s] == 0 || keys[s] == k) {{ return s; }}
                s = (s + 1) % {cap};
                probes = probes + 1;
            }}
            return {cap};
        }}
        fn main() {{
            let i = 0;
            let hits = 0;
            let inserted = 0;
            while (i < {ops}) {{
                let k = rand() % 300 + 1;
                let action = rand() % 3;
                let s = slot_for(k);
                if (s < {cap}) {{
                    if (action == 0) {{
                        if (keys[s] == 0) {{ inserted = inserted + 1; }}
                        keys[s] = k;
                        vals[s] = i;
                    }} else if (action == 1) {{
                        if (keys[s] == k) {{ hits = hits + 1; }}
                    }} else {{
                        if (keys[s] == k) {{ keys[s] = 0; vals[s] = 0; }}
                    }}
                }}
                if (k > 301) {{ out(k); }}
                i = i + 1;
            }}
            out(inserted);
            out(hits);
        }}
        "#
    )
}

/// 256.bzip2 analog: move-to-front transform followed by run-length coding.
pub fn bzip2(scale: u64) -> String {
    let n = 96 * scale;
    format!(
        r#"
        global data[{n}];
        global mtf[16];
        global seed = 9001;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn mtf_encode(sym) {{
            let idx = 0;
            while (mtf[idx] != sym) {{ idx = idx + 1; }}
            let j = idx;
            while (j > 0) {{ mtf[j] = mtf[j - 1]; j = j - 1; }}
            mtf[0] = sym;
            return idx;
        }}
        fn main() {{
            let i = 0;
            while (i < 16) {{ mtf[i] = i; i = i + 1; }}
            i = 0;
            while (i < {n}) {{
                // skewed distribution: favors small symbols
                let r = rand() % 16;
                if (r > 7) {{ r = rand() % 4; }}
                data[i] = r;
                i = i + 1;
            }}
            let zeros = 0;
            let cs = 0;
            i = 0;
            while (i < {n}) {{
                let c = mtf_encode(data[i]);
                if (c == 0) {{ zeros = zeros + 1; }}
                cs = (cs * 17 + c) & 0xFFFFFF;
                if (c > 15) {{ out(c); }}
                i = i + 1;
            }}
            out(zeros);
            out(cs);
        }}
        "#
    )
}

/// 300.twolf analog: standard-cell grid placement — evaluate pairwise
/// overlap penalties and accept cost-reducing moves.
pub fn twolf(scale: u64) -> String {
    let cells = 32;
    let moves = 30 * scale;
    format!(
        r#"
        global x[{cells}];
        global y[{cells}];
        global seed = 1021;
        fn rand() {{
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }}
        fn penalty(i) {{
            let p = 0;
            let j = 0;
            while (j < {cells}) {{
                if (j != i) {{
                    let dx = x[i] - x[j];
                    if (dx < 0) {{ dx = 0 - dx; }}
                    let dy = y[i] - y[j];
                    if (dy < 0) {{ dy = 0 - dy; }}
                    if (dx + dy < 4) {{ p = p + (4 - dx - dy); }}
                }}
                j = j + 1;
            }}
            return p;
        }}
        fn main() {{
            let i = 0;
            while (i < {cells}) {{
                x[i] = rand() % 32;
                y[i] = rand() % 32;
                i = i + 1;
            }}
            let m = 0;
            let accepted = 0;
            while (m < {moves}) {{
                let c = rand() % {cells};
                let ox = x[c];
                let oy = y[c];
                let before = penalty(c);
                x[c] = rand() % 32;
                y[c] = rand() % 32;
                if (penalty(c) > before) {{ x[c] = ox; y[c] = oy; }}
                else {{ accepted = accepted + 1; }}
                if (m > {moves}) {{ out(m); }}
                m = m + 1;
            }}
            let total = 0;
            i = 0;
            while (i < {cells}) {{ total = total + penalty(i); i = i + 1; }}
            out(accepted);
            out(total);
        }}
        "#
    )
}
