//! Property tests for the histogram merge algebra: merging any partition
//! of samples in any order must equal serial recording, field for field.

use cfed_telemetry::Histogram;
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(a in proptest::collection::vec(0u64..u64::MAX, 0..64),
                            b in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in proptest::collection::vec(0u64..u64::MAX, 0..48),
                            b in proptest::collection::vec(0u64..u64::MAX, 0..48),
                            c in proptest::collection::vec(0u64..u64::MAX, 0..48)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merged_shards_equal_serial(samples in proptest::collection::vec(0u64..u64::MAX, 0..128),
                                  shards in 1usize..8) {
        let serial = hist_of(&samples);
        let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &s) in samples.iter().enumerate() {
            parts[i % shards].record(s);
        }
        let mut merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(serial, merged);
    }

    #[test]
    fn percentiles_are_monotone(samples in proptest::collection::vec(0u64..u64::MAX, 1..128),
                                qs in proptest::collection::vec(1u64..10_001, 2..16)) {
        let h = hist_of(&samples);
        let mut qs = qs;
        qs.sort_unstable();
        let ps: Vec<u64> = qs
            .iter()
            .map(|&q| h.percentile(q as f64 / 10_000.0).expect("non-empty"))
            .collect();
        for pair in ps.windows(2) {
            prop_assert!(pair[0] <= pair[1], "percentiles not monotone: {:?}", ps);
        }
        let (min, max) = (h.min().expect("non-empty"), h.max().expect("non-empty"));
        for &p in &ps {
            prop_assert!(p >= min && p <= max, "percentile {} outside [{}, {}]", p, min, max);
        }
    }

    #[test]
    fn json_roundtrips(samples in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
        let h = hist_of(&samples);
        let text = h.to_json().render();
        let parsed = cfed_telemetry::json::parse(&text).expect("rendered histogram parses");
        let back = Histogram::from_json(&parsed).expect("valid histogram json");
        prop_assert_eq!(h, back);
    }
}
