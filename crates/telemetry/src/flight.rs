//! An always-on bounded flight recorder: the last `capacity` telemetry
//! events, kept as rendered JSON lines in a fixed ring, so that crash and
//! anomaly paths (SDC/timeout forensics, coordinator SIGINT, quarantines)
//! can dump the recent-event window without any of the cost or loss modes
//! of an unbounded log.
//!
//! The hot path never blocks: each slot is guarded by its own tiny lock
//! that writers `try_lock` — a contended slot (two writers landing on the
//! same ring index simultaneously) drops the event and counts it instead
//! of waiting. Ring-buffer overwrites of old events are counted separately
//! so a dump can say how much history scrolled away.
//!
//! A recorder can *tee*: it records the window and forwards every event to
//! an inner sink (e.g. the JSONL file sink), so wiring it in never changes
//! what downstream observers see.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventSink};
use crate::json::{parse, Json};

struct Slot {
    /// 1-based sequence number of the event held; 0 while never written.
    seq: AtomicU64,
    line: Mutex<String>,
}

/// Bounded ring of the most recent events, with drop/overwrite counting.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Total events accepted (ring indices are `seq % capacity`).
    head: AtomicU64,
    /// Events lost to slot contention (writer would have blocked).
    contended: AtomicU64,
    /// Accepted events whose slot has since been overwritten.
    overwritten: AtomicU64,
    inner: Option<Arc<dyn EventSink>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder::build(capacity, None)
    }

    /// A recorder that also forwards every event to `inner`.
    pub fn tee(capacity: usize, inner: Arc<dyn EventSink>) -> FlightRecorder {
        FlightRecorder::build(capacity, Some(inner))
    }

    fn build(capacity: usize, inner: Option<Arc<dyn EventSink>>) -> FlightRecorder {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| Slot { seq: AtomicU64::new(0), line: Mutex::new(String::new()) })
            .collect();
        FlightRecorder {
            slots,
            head: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
            inner,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events accepted into the ring.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost: overwritten by newer ones plus slot-contention drops.
    pub fn dropped(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed) + self.contended.load(Ordering::Relaxed)
    }

    /// The recent-event window as rendered JSON lines, oldest first.
    ///
    /// Taken while writers may still be running the window is a best-effort
    /// snapshot (slots mid-write are skipped); quiesced, it is exact.
    pub fn recent(&self) -> Vec<String> {
        let mut entries: Vec<(u64, String)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let Ok(line) = slot.line.try_lock() else { continue };
            let seq = slot.seq.load(Ordering::Acquire);
            if seq > 0 {
                entries.push((seq, line.clone()));
            }
        }
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, line)| line).collect()
    }

    /// The recent-event window re-parsed into a JSON array (for embedding
    /// in forensics bundles and `flight_dump` events).
    pub fn recent_json(&self) -> Json {
        Json::Arr(
            self.recent()
                .iter()
                .map(|line| parse(line).unwrap_or_else(|_| Json::Str(line.clone())))
                .collect(),
        )
    }

    /// The `flight_dump` event: why the window was dumped, the window
    /// itself, and the recorder's loss counters.
    pub fn dump_event(&self, reason: &str) -> Event {
        Event::new("flight_dump")
            .str("reason", reason)
            .u64("recorded", self.recorded())
            .u64("dropped", self.dropped())
            .json("window", self.recent_json())
    }
}

impl EventSink for FlightRecorder {
    fn emit(&self, event: &Event) {
        let line = event.to_json().render();
        let seq = self.head.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &self.slots[(seq - 1) as usize % self.slots.len()];
        match slot.line.try_lock() {
            Ok(mut held) => {
                if slot.seq.load(Ordering::Relaxed) > 0 {
                    self.overwritten.fetch_add(1, Ordering::Relaxed);
                }
                *held = line;
                slot.seq.store(seq, Ordering::Release);
            }
            Err(_) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(inner) = &self.inner {
            inner.emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MemorySink;
    use crate::Telemetry;

    #[test]
    fn keeps_the_last_capacity_events_in_order() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.emit(&Event::new("tick").u64("i", i));
        }
        let window = rec.recent();
        assert_eq!(window.len(), 4);
        for (w, i) in window.iter().zip(6u64..10) {
            assert!(w.contains(&format!("\"i\":{i}")), "{w}");
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6, "six events scrolled out of the ring");
    }

    #[test]
    fn partial_ring_reports_only_written_slots() {
        let rec = FlightRecorder::new(8);
        rec.emit(&Event::new("a"));
        rec.emit(&Event::new("b"));
        assert_eq!(rec.recent().len(), 2);
        assert_eq!(rec.dropped(), 0);
        let dump = rec.dump_event("test");
        assert_eq!(dump.kind(), "flight_dump");
        let window = dump.get("window").and_then(Json::as_arr).unwrap();
        assert_eq!(window.len(), 2);
        assert_eq!(window[0].get("ev").and_then(Json::as_str), Some("a"));
    }

    #[test]
    fn tee_forwards_to_the_inner_sink() {
        let inner = Arc::new(MemorySink::new());
        let rec = Arc::new(FlightRecorder::tee(2, inner.clone()));
        let t = Telemetry::to(rec.clone());
        t.emit_with(|| Event::new("x").u64("n", 1));
        t.emit_with(|| Event::new("y"));
        assert_eq!(inner.events().len(), 2);
        assert_eq!(rec.recent().len(), 2);
    }

    #[test]
    fn concurrent_writers_never_block_and_account_for_everything() {
        let rec = Arc::new(FlightRecorder::new(16));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rec = Arc::clone(&rec);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        rec.emit(&Event::new("w").u64("v", t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 2000);
        let window = rec.recent();
        assert!(window.len() <= 16);
        // Every accepted event is either in the ring or counted as lost.
        assert_eq!(rec.dropped() + window.len() as u64, 2000);
    }
}
