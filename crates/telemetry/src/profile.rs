//! Mergeable per-static-block execution profiles — the data model of the
//! `cfed-profile` sampling profiler.
//!
//! The engines attribute retired cycles to *static* program locations
//! (guest block start addresses) split into four deterministic buckets:
//!
//! * `payload` — cycles retired inside a translated block's 1:1 body copy
//!   (the original program's work);
//! * `head` — cycles in the instrumentation prologue emitted before the
//!   body (signature update + check under the ALLBB-style policies);
//! * `tail` — cycles in the terminator glue after the body (edge-specific
//!   selector updates, end checks, exit stubs);
//! * `other` — cycles retired outside any translated block (pre-translation
//!   interpretation, dispatch, untranslated code).
//!
//! Every counter is an exact `u64` tally of a deterministic execution, so
//! profiles obey the same merge algebra as the campaign stores: merging any
//! partition in any order is bit-identical to serial accumulation, which is
//! what keeps merged profiles byte-identical across `--threads`,
//! kill/resume, and service-mode runs.

use std::collections::BTreeMap;

use crate::json::{obj, Json};

/// Cycle attribution for one static block.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BlockProfile {
    /// Times execution entered this block's head or body.
    pub hits: u64,
    /// Cycles retired in the 1:1 body copy (original program work).
    pub payload_cycles: u64,
    /// Cycles in the head instrumentation (signature update + check).
    pub head_cycles: u64,
    /// Cycles in the terminator glue (selector updates, end checks, exits).
    pub tail_cycles: u64,
}

impl BlockProfile {
    /// All cycles attributed to this block.
    pub fn total_cycles(&self) -> u64 {
        self.payload_cycles + self.head_cycles + self.tail_cycles
    }

    /// Instrumentation cycles (head + tail).
    pub fn instr_cycles(&self) -> u64 {
        self.head_cycles + self.tail_cycles
    }
}

/// A whole-run profile: per-block attribution plus the unattributed rest.
///
/// Keyed by guest block start address (a `BTreeMap`, so iteration — and
/// therefore JSON serialization — is address-ordered and deterministic).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Profile {
    blocks: BTreeMap<u64, BlockProfile>,
    /// Cycles retired outside any translated block.
    pub other_cycles: u64,
}

/// Whole-profile totals, one field per attribution bucket.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProfileTotals {
    /// Sum of per-block payload cycles.
    pub payload: u64,
    /// Sum of per-block head-instrumentation cycles.
    pub head: u64,
    /// Sum of per-block tail-glue cycles.
    pub tail: u64,
    /// Cycles outside any translated block.
    pub other: u64,
}

impl ProfileTotals {
    /// Every cycle the profile accounts for.
    pub fn total(&self) -> u64 {
        self.payload + self.head + self.tail + self.other
    }

    /// Instrumentation cycles (head + tail).
    pub fn instr(&self) -> u64 {
        self.head + self.tail
    }
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Adds attribution for one block (summing into any existing entry).
    pub fn record_block(&mut self, guest_start: u64, sample: BlockProfile) {
        let slot = self.blocks.entry(guest_start).or_default();
        slot.hits += sample.hits;
        slot.payload_cycles += sample.payload_cycles;
        slot.head_cycles += sample.head_cycles;
        slot.tail_cycles += sample.tail_cycles;
    }

    /// Adds unattributed cycles.
    pub fn record_other(&mut self, cycles: u64) {
        self.other_cycles += cycles;
    }

    /// Folds another profile into this one. Associative and commutative:
    /// any merge order over any partition yields identical counters.
    pub fn merge(&mut self, other: &Profile) {
        for (&start, sample) in &other.blocks {
            self.record_block(start, *sample);
        }
        self.other_cycles += other.other_cycles;
    }

    /// Number of distinct blocks with attribution.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.other_cycles == 0
    }

    /// Per-block entries, address-ascending.
    pub fn blocks(&self) -> impl Iterator<Item = (u64, &BlockProfile)> + '_ {
        self.blocks.iter().map(|(&k, v)| (k, v))
    }

    /// Attribution for one block, if present.
    pub fn block(&self, guest_start: u64) -> Option<&BlockProfile> {
        self.blocks.get(&guest_start)
    }

    /// Totals over every bucket.
    pub fn totals(&self) -> ProfileTotals {
        let mut t = ProfileTotals { other: self.other_cycles, ..Default::default() };
        for sample in self.blocks.values() {
            t.payload += sample.payload_cycles;
            t.head += sample.head_cycles;
            t.tail += sample.tail_cycles;
        }
        t
    }

    /// The `n` hottest blocks by total attributed cycles (ties broken by
    /// address, so the ranking is deterministic).
    pub fn top_blocks(&self, n: usize) -> Vec<(u64, BlockProfile)> {
        let mut all: Vec<(u64, BlockProfile)> = self.blocks().map(|(k, v)| (k, *v)).collect();
        all.sort_by(|a, b| b.1.total_cycles().cmp(&a.1.total_cycles()).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Serializes to the compact JSON form:
    /// `{"other":N,"blocks":[[start,hits,payload,head,tail],…]}` with
    /// blocks address-ascending — byte-deterministic for equal profiles.
    pub fn to_json(&self) -> Json {
        let blocks = self
            .blocks
            .iter()
            .map(|(&start, s)| {
                Json::Arr(vec![
                    Json::UInt(start),
                    Json::UInt(s.hits),
                    Json::UInt(s.payload_cycles),
                    Json::UInt(s.head_cycles),
                    Json::UInt(s.tail_cycles),
                ])
            })
            .collect();
        obj(vec![("other", Json::UInt(self.other_cycles)), ("blocks", Json::Arr(blocks))])
    }

    /// Deserializes [`Profile::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_json(v: &Json) -> Result<Profile, String> {
        let other_cycles = v.get("other").and_then(Json::as_u64).ok_or("profile missing other")?;
        let mut profile = Profile { blocks: BTreeMap::new(), other_cycles };
        let rows = v.get("blocks").and_then(Json::as_arr).ok_or("profile missing blocks")?;
        for row in rows {
            let row = row.as_arr().ok_or("profile block row must be an array")?;
            let [start, hits, payload, head, tail] = row else {
                return Err("profile block row must be [start,hits,payload,head,tail]".into());
            };
            let num = |v: &Json| v.as_u64().ok_or("profile block field must be a number");
            profile.record_block(
                num(start)?,
                BlockProfile {
                    hits: num(hits)?,
                    payload_cycles: num(payload)?,
                    head_cycles: num(head)?,
                    tail_cycles: num(tail)?,
                },
            );
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample(hits: u64, payload: u64, head: u64, tail: u64) -> BlockProfile {
        BlockProfile { hits, payload_cycles: payload, head_cycles: head, tail_cycles: tail }
    }

    #[test]
    fn merge_matches_serial_accumulation() {
        let mut serial = Profile::new();
        serial.record_block(0x10, sample(2, 20, 4, 2));
        serial.record_block(0x40, sample(1, 9, 3, 1));
        serial.record_block(0x10, sample(1, 10, 2, 1));
        serial.record_other(7);

        let mut a = Profile::new();
        a.record_block(0x10, sample(2, 20, 4, 2));
        let mut b = Profile::new();
        b.record_block(0x40, sample(1, 9, 3, 1));
        b.record_block(0x10, sample(1, 10, 2, 1));
        b.record_other(7);
        let mut merged = b.clone();
        merged.merge(&a);
        assert_eq!(merged, serial);
        let mut merged2 = a;
        merged2.merge(&b);
        assert_eq!(merged2, serial);

        let t = serial.totals();
        assert_eq!(t.payload, 39);
        assert_eq!(t.head, 9);
        assert_eq!(t.tail, 4);
        assert_eq!(t.other, 7);
        assert_eq!(t.total(), 59);
        assert_eq!(t.instr(), 13);
    }

    #[test]
    fn json_roundtrip_is_byte_deterministic() {
        let mut p = Profile::new();
        p.record_block(0x200, sample(5, 50, 10, 5));
        p.record_block(0x100, sample(3, 30, 6, 3));
        p.record_other(11);
        let text = p.to_json().render();
        // Address-ascending regardless of insertion order.
        assert!(text.find("256").unwrap() < text.find("512").unwrap(), "{text}");
        let back = Profile::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn top_blocks_rank_deterministically() {
        let mut p = Profile::new();
        p.record_block(0x30, sample(1, 10, 0, 0));
        p.record_block(0x10, sample(1, 10, 0, 0)); // tie with 0x30 — lower addr wins
        p.record_block(0x20, sample(1, 99, 0, 0));
        let top = p.top_blocks(2);
        assert_eq!(top[0].0, 0x20);
        assert_eq!(top[1].0, 0x10);
        assert_eq!(p.top_blocks(10).len(), 3);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Profile::from_json(&parse("{}").unwrap()).is_err());
        let bad = r#"{"other":0,"blocks":[[1,2,3]]}"#;
        assert!(Profile::from_json(&parse(bad).unwrap()).is_err());
    }
}
