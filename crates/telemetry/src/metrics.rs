//! Lock-free counters for hot-path tallies shared across threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed atomic counter: increments from any thread without
/// synchronization beyond the atomic itself. Reads are monotonic
/// snapshots; exact totals are only meaningful after the writers quiesce
/// (e.g. at run end), which is when the runner samples them.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                    c.add(10);
                });
            }
        });
        assert_eq!(c.get(), 4 * 1010);
    }
}
