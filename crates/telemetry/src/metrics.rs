//! Lock-free counters for hot-path tallies, plus the metrics registry
//! behind the campaign service's Prometheus text-format `/metrics`
//! endpoint.
//!
//! The registry is scrape-oriented: the HTTP handler builds one from the
//! authoritative service state on every scrape (families and samples are
//! declared in render order), and [`Registry::render`] emits the
//! Prometheus text exposition format — one `# HELP`/`# TYPE` pair per
//! family, samples sorted by label set, duplicate families and duplicate
//! series rejected at insertion so a malformed page can never be emitted.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::Histogram;

/// A relaxed atomic counter: increments from any thread without
/// synchronization beyond the atomic itself. Reads are monotonic
/// snapshots; exact totals are only meaningful after the writers quiesce
/// (e.g. at run end), which is when the runner samples them.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Prometheus metric kinds the registry can expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (`# TYPE … counter`).
    Counter,
    /// Point-in-time value (`# TYPE … gauge`).
    Gauge,
    /// Quantile summary with `_sum`/`_count` (`# TYPE … summary`).
    Summary,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

struct Sample {
    /// Rendered label pairs, e.g. `worker="w0",quantile="0.5"`.
    labels: String,
    value: u64,
    /// Suffix appended to the family name (`_sum`, `_count`, or empty).
    suffix: &'static str,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// A scrape-time metrics registry rendering the Prometheus text format.
#[derive(Default)]
pub struct Registry {
    families: Vec<Family>,
    seen_families: BTreeSet<String>,
    seen_series: BTreeSet<String>,
}

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect::<Vec<_>>().join(",")
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Declares a metric family. Families render in declaration order.
    ///
    /// # Panics
    ///
    /// Panics when the family name is re-declared — duplicate `# TYPE`
    /// lines are a format violation the caller must not be able to cause.
    pub fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut Registry {
        assert!(self.seen_families.insert(name.to_string()), "duplicate metric family {name}");
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self
    }

    /// Adds one sample to the most recently declared family.
    ///
    /// # Panics
    ///
    /// Panics without a preceding [`Registry::family`] call, or when the
    /// `(name, labels)` series was already sampled.
    pub fn sample(&mut self, labels: &[(&str, &str)], value: u64) -> &mut Registry {
        self.push_sample(labels, value, "")
    }

    fn push_sample(
        &mut self,
        labels: &[(&str, &str)],
        value: u64,
        suffix: &'static str,
    ) -> &mut Registry {
        let family = self.families.last_mut().expect("sample before any family");
        let labels = render_labels(labels);
        let series = format!("{}{suffix}{{{labels}}}", family.name);
        assert!(self.seen_series.insert(series.clone()), "duplicate series {series}");
        family.samples.push(Sample { labels, value, suffix });
        self
    }

    /// Adds a summary's samples from a histogram: one `quantile` series per
    /// requested quantile plus `_sum` and `_count`. An empty histogram
    /// contributes only `_sum 0` / `_count 0` (no quantile series), which
    /// is how "no data yet" renders without inventing a value.
    pub fn summary_from_hist(
        &mut self,
        labels: &[(&str, &str)],
        hist: &Histogram,
        quantiles: &[(f64, &str)],
    ) -> &mut Registry {
        for &(q, q_label) in quantiles {
            if let Some(v) = hist.percentile(q) {
                let mut with_q: Vec<(&str, &str)> = labels.to_vec();
                with_q.push(("quantile", q_label));
                self.push_sample(&with_q, v, "");
            }
        }
        self.push_sample(labels, hist.sum(), "_sum");
        self.push_sample(labels, hist.count(), "_count")
    }

    /// Renders the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for s in &family.samples {
                if s.labels.is_empty() {
                    let _ = writeln!(out, "{}{} {}", family.name, s.suffix, s.value);
                } else {
                    let _ =
                        writeln!(out, "{}{}{{{}}} {}", family.name, s.suffix, s.labels, s.value);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                    c.add(10);
                });
            }
        });
        assert_eq!(c.get(), 4 * 1010);
    }

    #[test]
    fn renders_help_type_and_samples() {
        let mut r = Registry::new();
        r.family("cfed_units_leased_total", "Units leased to workers", MetricKind::Counter)
            .sample(&[], 9);
        r.family("cfed_workers", "Connected workers", MetricKind::Gauge)
            .sample(&[("state", "alive")], 2);
        let text = r.render();
        assert!(text.contains("# HELP cfed_units_leased_total Units leased to workers"), "{text}");
        assert!(text.contains("# TYPE cfed_units_leased_total counter"), "{text}");
        assert!(text.contains("cfed_units_leased_total 9"), "{text}");
        assert!(text.contains("# TYPE cfed_workers gauge"), "{text}");
        assert!(text.contains("cfed_workers{state=\"alive\"} 2"), "{text}");
    }

    #[test]
    fn summary_from_histogram_has_quantiles_sum_count() {
        let mut h = Histogram::new();
        h.record(4);
        h.record(120);
        let mut r = Registry::new();
        r.family("cfed_unit_latency_ms", "Unit latency", MetricKind::Summary).summary_from_hist(
            &[("worker", "w0")],
            &h,
            &[(0.5, "0.5"), (0.99, "0.99")],
        );
        let text = r.render();
        assert!(text.contains("cfed_unit_latency_ms{worker=\"w0\",quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("cfed_unit_latency_ms_sum{worker=\"w0\"} 124"), "{text}");
        assert!(text.contains("cfed_unit_latency_ms_count{worker=\"w0\"} 2"), "{text}");
    }

    #[test]
    fn empty_histogram_summary_has_no_quantile_series() {
        let mut r = Registry::new();
        r.family("cfed_unit_latency_ms", "Unit latency", MetricKind::Summary).summary_from_hist(
            &[("worker", "idle")],
            &Histogram::new(),
            &[(0.5, "0.5")],
        );
        let text = r.render();
        assert!(!text.contains("quantile"), "{text}");
        assert!(text.contains("cfed_unit_latency_ms_count{worker=\"idle\"} 0"), "{text}");
    }

    #[test]
    #[should_panic(expected = "duplicate metric family")]
    fn duplicate_family_panics() {
        let mut r = Registry::new();
        r.family("x_total", "x", MetricKind::Counter);
        r.family("x_total", "x again", MetricKind::Counter);
    }

    #[test]
    #[should_panic(expected = "duplicate series")]
    fn duplicate_series_panics() {
        let mut r = Registry::new();
        r.family("x_total", "x", MetricKind::Counter)
            .sample(&[("a", "1")], 1)
            .sample(&[("a", "1")], 2);
    }
}
