//! Structured events, sinks, and the cheap-when-disabled [`Telemetry`]
//! handle.
//!
//! An [`Event`] is a kind tag plus ordered `(key, value)` fields in the
//! workspace JSON subset. Sinks receive fully-built events; the
//! [`Telemetry`] handle defers event *construction* behind a closure so
//! that instrumented hot paths pay a single branch when no sink is
//! attached — the property the `< 3%` overhead acceptance bound on
//! `fig12_slowdown` rests on.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::Histogram;
use crate::json::{obj, Json};

/// One structured event: a kind tag plus ordered fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    kind: &'static str,
    fields: Vec<(&'static str, Json)>,
}

impl Event {
    /// Starts an event of the given kind.
    pub fn new(kind: &'static str) -> Event {
        Event { kind, fields: Vec::new() }
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Event {
        self.fields.push((key, Json::UInt(value)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &'static str, value: &str) -> Event {
        self.fields.push((key, Json::Str(value.to_string())));
        self
    }

    /// Adds an arbitrary JSON field.
    pub fn json(mut self, key: &'static str, value: Json) -> Event {
        self.fields.push((key, value));
        self
    }

    /// The kind tag.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Serializes as `{"ev":kind, …fields}`.
    pub fn to_json(&self) -> Json {
        let mut pairs = Vec::with_capacity(self.fields.len() + 1);
        pairs.push(("ev", Json::Str(self.kind.to_string())));
        pairs.extend(self.fields.iter().map(|(k, v)| (*k, v.clone())));
        obj(pairs)
    }
}

/// Receives built events. Implementations must be cheap to call from
/// worker threads (the JSONL sink serializes under a mutex).
pub trait EventSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
}

/// Discards everything (useful as an explicit placeholder in tests).
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Appends each event as one JSON line to a file, flushing per event so a
/// killed process leaves at most one truncated line (the same durability
/// contract as the campaign result store).
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    emitted: AtomicU64,
}

impl JsonlSink {
    /// Creates (truncating) the sink file.
    ///
    /// # Errors
    ///
    /// Returns the `std::io` error message if the file cannot be created.
    pub fn create(path: &Path) -> Result<JsonlSink, String> {
        let file = File::create(path)
            .map_err(|e| format!("cannot create event sink {}: {e}", path.display()))?;
        Ok(JsonlSink { writer: Mutex::new(BufWriter::new(file)), emitted: AtomicU64::new(0) })
    }

    /// Events written so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json().render();
        let mut writer = self.writer.lock().expect("event sink poisoned");
        let _ = writeln!(writer, "{line}");
        let _ = writer.flush();
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }
}

/// A bounded in-memory event queue with drop counting — the backpressure
/// building block the `cfed-serve` worker uses to forward telemetry over
/// the wire without letting a slow connection stall shard execution.
/// `emit` never blocks: when the queue is at capacity the event is
/// dropped and counted instead.
#[derive(Debug)]
pub struct ChannelSink {
    queue: Mutex<std::collections::VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl ChannelSink {
    /// A sink holding at most `capacity` undrained events (minimum 1).
    pub fn new(capacity: usize) -> ChannelSink {
        ChannelSink {
            queue: Mutex::new(std::collections::VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Removes and returns every queued event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.queue.lock().expect("channel sink poisoned").drain(..).collect()
    }

    /// Events discarded because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.queue.lock().expect("channel sink poisoned").len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for ChannelSink {
    fn emit(&self, event: &Event) {
        let mut queue = self.queue.lock().expect("channel sink poisoned");
        if queue.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            queue.push_back(event.clone());
        }
    }
}

/// Collects events in memory for assertions in tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of everything emitted so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Snapshot of events of one kind.
    pub fn of_kind(&self, kind: &str) -> Vec<Event> {
        self.events().into_iter().filter(|e| e.kind() == kind).collect()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().expect("memory sink poisoned").push(event.clone());
    }
}

/// A cheaply-cloneable handle instrumented code holds. Disabled (the
/// default) it is a `None` and every emit site costs one branch; enabled
/// it forwards to a shared [`EventSink`].
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn EventSink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled()).finish()
    }
}

impl Telemetry {
    /// The disabled handle: every `emit_with` is a single branch.
    pub fn off() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A handle forwarding to `sink`.
    pub fn to(sink: Arc<dyn EventSink>) -> Telemetry {
        Telemetry { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached sink, if any — lets a harness interpose (e.g. tee a
    /// [`crate::FlightRecorder`] in front of the configured sink) without
    /// the handle growing mutation APIs.
    pub fn sink(&self) -> Option<Arc<dyn EventSink>> {
        self.sink.clone()
    }

    /// Emits the event built by `build` — the closure runs only when a
    /// sink is attached, so field formatting never burdens disabled runs.
    pub fn emit_with(&self, build: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.emit(&build());
        }
    }
}

/// A span-style timer: start it, then observe the elapsed microseconds
/// into a histogram or an event field.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Timer {
        Timer { start: Instant::now() }
    }

    /// Microseconds elapsed since `start`, saturating at `u64::MAX`.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed microseconds into `hist` and returns them.
    pub fn observe_into(&self, hist: &mut Histogram) -> u64 {
        let us = self.elapsed_us();
        hist.record(us);
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn event_serializes_with_kind_first() {
        let e = Event::new("shard_done").str("shard", "cell#3").u64("trials", 64);
        assert_eq!(e.to_json().render(), r#"{"ev":"shard_done","shard":"cell#3","trials":64}"#);
        assert_eq!(e.get("trials").and_then(Json::as_u64), Some(64));
    }

    #[test]
    fn disabled_telemetry_never_builds_events() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        t.emit_with(|| panic!("must not build when disabled"));
    }

    #[test]
    fn memory_sink_collects_by_kind() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::to(sink.clone());
        assert!(t.enabled());
        t.emit_with(|| Event::new("a").u64("x", 1));
        t.emit_with(|| Event::new("b"));
        t.emit_with(|| Event::new("a").u64("x", 2));
        assert_eq!(sink.events().len(), 3);
        let a = sink.of_kind("a");
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].get("x").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("cfed-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        let t = Telemetry::to(sink.clone());
        t.emit_with(|| Event::new("run_meta").u64("trials", 30));
        t.emit_with(|| Event::new("shard_done").str("shard", "k#0"));
        assert_eq!(sink.emitted(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = parse(line).unwrap();
            assert!(v.get("ev").and_then(Json::as_str).is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn channel_sink_bounds_and_counts_drops() {
        let sink = ChannelSink::new(2);
        assert!(sink.is_empty());
        sink.emit(&Event::new("a").u64("x", 0));
        sink.emit(&Event::new("a").u64("x", 1));
        sink.emit(&Event::new("a").u64("x", 2)); // over capacity — dropped
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].get("x").and_then(Json::as_u64), Some(0));
        assert_eq!(drained[1].get("x").and_then(Json::as_u64), Some(1));
        assert!(sink.is_empty());
        // Capacity frees up after a drain.
        sink.emit(&Event::new("a").u64("x", 3));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn timer_observes_into_histogram() {
        let timer = Timer::start();
        let mut h = Histogram::new();
        let us = timer.observe_into(&mut h);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), us);
    }
}
