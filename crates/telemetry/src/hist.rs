//! Log2-bucketed histograms with exact mergeability.
//!
//! A [`Histogram`] records `u64` samples into 65 power-of-two buckets
//! (bucket 0 holds the value 0; bucket `i ≥ 1` holds values whose bit
//! length is `i`, i.e. `[2^(i-1), 2^i)`), alongside exact `count`, `sum`,
//! `min` and `max` accumulators. Every field merges with a commutative,
//! associative operation (sums add, min/max take min/max), so a histogram
//! built by merging shard histograms in any order is bit-identical to one
//! built by recording the same samples serially — the same algebra
//! `CampaignReport::merge` guarantees for its outcome tallies, extended to
//! latency distributions.
//!
//! Percentiles are computed from the merged buckets deterministically
//! (bucket upper bound, clamped to the observed min/max), so a resumed
//! campaign renders byte-identical percentile tables to an uninterrupted
//! one.

use crate::json::{obj, Json};

/// Number of buckets: one for zero plus one per possible bit length.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples with exact merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    /// Saturating sum of all samples (latencies are far below overflow in
    /// practice; saturation keeps merge total and associative regardless).
    sum: u64,
    /// `u64::MAX` while empty, so `min` merges with `min()`.
    min: u64,
    /// `0` while empty, so `max` merges with `max()`.
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Bucket index of a sample: 0 for 0, otherwise its bit length (1–64).
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Largest value a bucket can hold (the percentile representative).
pub fn bucket_high(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Associative and commutative:
    /// any merge order over any partition of the samples yields identical
    /// fields.
    pub fn merge(&mut self, other: &Histogram) {
        for (into, from) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *into += from;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, `None` while empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` while empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, `None` while empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of the bucket
    /// containing the rank-`ceil(q·count)` sample, clamped to the observed
    /// `[min, max]`. Deterministic over merged buckets, so resumed and
    /// uninterrupted campaigns print identical percentile tables.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(bucket_high(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Serializes to the sparse JSON form (`null` when empty, otherwise
    /// `{"n":…,"sum":…,"min":…,"max":…,"b":[[index,count],…]}`).
    pub fn to_json(&self) -> Json {
        if self.count == 0 {
            return Json::Null;
        }
        let buckets = self
            .nonzero_buckets()
            .map(|(i, c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(c)]))
            .collect();
        obj(vec![
            ("n", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("min", Json::UInt(self.min)),
            ("max", Json::UInt(self.max)),
            ("b", Json::Arr(buckets)),
        ])
    }

    /// Deserializes the sparse JSON form (`null` parses as empty).
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a valid histogram record
    /// (missing fields, bucket index out of range, count mismatch).
    pub fn from_json(v: &Json) -> Result<Histogram, String> {
        if *v == Json::Null {
            return Ok(Histogram::default());
        }
        let field = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("hist missing {k}"));
        let mut h = Histogram {
            buckets: [0; HIST_BUCKETS],
            count: field("n")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
        };
        let pairs = v.get("b").and_then(Json::as_arr).ok_or("hist missing b")?;
        let mut total = 0u64;
        for pair in pairs {
            let pair = pair.as_arr().ok_or("hist bucket must be [index,count]")?;
            let (i, c) = match pair {
                [i, c] => (
                    i.as_u64().ok_or("bucket index must be a number")?,
                    c.as_u64().ok_or("bucket count must be a number")?,
                ),
                _ => return Err("hist bucket must be [index,count]".into()),
            };
            if i as usize >= HIST_BUCKETS {
                return Err(format!("bucket index {i} out of range"));
            }
            h.buckets[i as usize] += c;
            total += c;
        }
        if total != h.count {
            return Err(format!("hist count {} != bucket total {total}", h.count));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_high(i)), i, "high of bucket {i} maps back");
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
        for v in [3u64, 9, 0, 100, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 121);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.mean(), Some(24.2));
    }

    #[test]
    fn percentiles_are_bucket_bounds_clamped() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 lands in bucket 6 ([32,64)); upper bound 63.
        assert_eq!(h.percentile(0.5), Some(63));
        // p99+ clamps at the observed max.
        assert_eq!(h.percentile(0.99), Some(100));
        assert_eq!(h.percentile(1.0), Some(100));
        // A single-sample histogram reports the sample for every quantile.
        let mut one = Histogram::new();
        one.record(42);
        assert_eq!(one.percentile(0.5), Some(42));
        assert_eq!(one.percentile(0.99), Some(42));
    }

    #[test]
    fn merge_matches_serial_recording() {
        let samples: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E3779B9) >> 40).collect();
        let mut serial = Histogram::new();
        for &s in &samples {
            serial.record(s);
        }
        // Partition into 7 shards, merge in reverse order.
        let mut shards: Vec<Histogram> = (0..7).map(|_| Histogram::new()).collect();
        for (i, &s) in samples.iter().enumerate() {
            shards[i % 7].record(s);
        }
        let mut merged = Histogram::new();
        for shard in shards.iter().rev() {
            merged.merge(shard);
        }
        assert_eq!(serial, merged);
    }

    #[test]
    fn empty_is_merge_identity() {
        let mut h = Histogram::new();
        h.record(17);
        h.record(3);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn json_roundtrip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let text = h.to_json().render();
        let back = Histogram::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(h, back);

        let empty = Histogram::new();
        assert_eq!(empty.to_json(), Json::Null);
        assert_eq!(Histogram::from_json(&Json::Null).unwrap(), empty);
    }

    #[test]
    fn merge_of_empty_and_saturated_buckets() {
        // A histogram whose top bucket is saturated with u64::MAX samples
        // merges with an empty one without disturbing any field.
        let mut saturated = Histogram::new();
        for _ in 0..3 {
            saturated.record(u64::MAX);
        }
        assert_eq!(saturated.sum(), u64::MAX, "sum saturates instead of wrapping");
        let before = saturated.clone();
        saturated.merge(&Histogram::new());
        assert_eq!(saturated, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
        // Merging two saturated histograms keeps the saturating-sum
        // invariant and doubles the top-bucket count.
        let mut both = before.clone();
        both.merge(&before);
        assert_eq!(both.sum(), u64::MAX);
        assert_eq!(both.count(), 6);
        assert_eq!(both.nonzero_buckets().collect::<Vec<_>>(), vec![(64, 6)]);
    }

    #[test]
    fn u64_max_sample_lands_in_the_top_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.nonzero_buckets().collect::<Vec<_>>(), vec![(64, 1)]);
        assert_eq!(h.min(), Some(u64::MAX));
        assert_eq!(h.max(), Some(u64::MAX));
        // Every quantile of a single-sample histogram is that sample, even
        // though bucket_high(64) == u64::MAX needs no clamping here.
        assert_eq!(h.percentile(0.01), Some(u64::MAX));
        assert_eq!(h.percentile(1.0), Some(u64::MAX));
        // Round-trips exactly.
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 7, 31, 32, 1000, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let qs = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let ps: Vec<u64> = qs.iter().map(|&q| h.percentile(q).unwrap()).collect();
        for pair in ps.windows(2) {
            assert!(pair[0] <= pair[1], "percentiles must be monotone: {ps:?}");
        }
        assert!(ps[0] >= h.min().unwrap() && ps[7] == h.max().unwrap());
    }

    #[test]
    fn json_rejects_inconsistent_counts() {
        let text = r#"{"n":3,"sum":1,"min":0,"max":1,"b":[[0,1]]}"#;
        assert!(Histogram::from_json(&parse(text).unwrap()).is_err());
        let oob = r#"{"n":1,"sum":1,"min":1,"max":1,"b":[[99,1]]}"#;
        assert!(Histogram::from_json(&parse(oob).unwrap()).is_err());
    }
}
