//! Hand-rolled minimal JSON, shared by the telemetry event sinks and the
//! checkpointed JSONL result store in `cfed-runner`.
//!
//! The workspace has no serde (offline build, std-only policy), and the
//! consumers only need objects, arrays, strings, unsigned integers, and
//! booleans — every number the store and the event sinks write is a `u64`
//! tally. The writer emits exactly that subset; the parser accepts exactly
//! that subset and rejects everything else, which doubles as corruption
//! detection for half-written lines after a killed run.

use std::fmt::Write as _;

/// A JSON value in the store's subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (all store numbers are tallies).
    UInt(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience constructor for an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parses one JSON document; the whole input must be consumed.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).expect("digits are utf8");
            text.parse::<u64>().map(Json::UInt).map_err(|e| format!("bad number {text:?}: {e}"))
        }
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid utf8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = obj(vec![
            ("shard", Json::Str("a|b#3".into())),
            ("n", Json::UInt(u64::MAX)),
            ("cats", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("msg", Json::Str("weird \"chars\"\n\tand\\slashes é".into())),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_truncated_lines() {
        let full = obj(vec![("k", Json::UInt(12345)), ("s", Json::Str("x".into()))]).render();
        for cut in 1..full.len() {
            assert!(parse(&full[..cut]).is_err(), "accepted truncation {:?}", &full[..cut]);
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} extra").is_err());
        assert!(parse("12 34").is_err());
    }
}
