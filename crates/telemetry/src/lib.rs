//! # cfed-telemetry — unified tracing, metrics, and forensics layer
//!
//! Every layer of the workspace (sim → dbt → fault → runner) reports
//! through this crate:
//!
//! * [`metrics`] — lock-free relaxed counters for hot-path tallies, plus
//!   the scrape-time registry behind the Prometheus `/metrics` endpoint;
//! * [`hist`] — log2-bucketed histograms whose merge is associative and
//!   commutative with *exact* count/sum/min/max, the same algebra
//!   `CampaignReport::merge` guarantees, so sharded campaigns aggregate
//!   latency distributions without loss;
//! * [`event`] — structured events, JSONL / in-memory sinks, and the
//!   [`Telemetry`] handle whose disabled path costs one branch (events are
//!   built inside a closure that never runs without a sink);
//! * [`flight`] — the always-on bounded flight recorder whose recent-event
//!   window is dumped into forensics bundles and `flight_dump` events;
//! * [`profile`] — mergeable per-static-block execution profiles (payload
//!   vs instrumentation cycle attribution) for the `cfed-profile`
//!   sampling profiler;
//! * [`json`] — the hand-rolled offline JSON subset shared with the
//!   `cfed-runner` result store.
//!
//! The crate deliberately depends on nothing, so any layer can use it
//! without cycles.

pub mod event;
pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;

pub use event::{ChannelSink, Event, EventSink, JsonlSink, MemorySink, NullSink, Telemetry, Timer};
pub use flight::FlightRecorder;
pub use hist::{bucket_high, bucket_index, Histogram, HIST_BUCKETS};
pub use metrics::{Counter, MetricKind, Registry};
pub use profile::{BlockProfile, Profile, ProfileTotals};
