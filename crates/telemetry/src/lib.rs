//! # cfed-telemetry — unified tracing, metrics, and forensics layer
//!
//! Every layer of the workspace (sim → dbt → fault → runner) reports
//! through this crate:
//!
//! * [`metrics`] — lock-free relaxed counters for hot-path tallies;
//! * [`hist`] — log2-bucketed histograms whose merge is associative and
//!   commutative with *exact* count/sum/min/max, the same algebra
//!   `CampaignReport::merge` guarantees, so sharded campaigns aggregate
//!   latency distributions without loss;
//! * [`event`] — structured events, JSONL / in-memory sinks, and the
//!   [`Telemetry`] handle whose disabled path costs one branch (events are
//!   built inside a closure that never runs without a sink);
//! * [`json`] — the hand-rolled offline JSON subset shared with the
//!   `cfed-runner` result store.
//!
//! The crate deliberately depends on nothing, so any layer can use it
//! without cycles.

pub mod event;
pub mod hist;
pub mod json;
pub mod metrics;

pub use event::{ChannelSink, Event, EventSink, JsonlSink, MemorySink, NullSink, Telemetry, Timer};
pub use hist::{bucket_high, bucket_index, Histogram, HIST_BUCKETS};
pub use metrics::Counter;
