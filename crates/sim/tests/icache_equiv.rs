//! Equivalence of the decoded execution paths with raw fetch+decode.
//!
//! The decoded i-cache is only admissible because it is invisible: for any
//! program — including self-modifying code and external writes landing in
//! executed pages — stepping through the cache, running fused bursts and
//! raw per-instruction decode must produce bit-identical CPU state (regs,
//! flags, ip, halted, stats, output), traps, dirty-page logs and memory
//! contents. These properties drive random programs (valid and invalid
//! encodings) interleaved with random code-page writes through all three
//! paths and demand exact agreement.

use cfed_isa::{AluOp, Cond, Inst, Reg, INST_SIZE_U64};
use cfed_sim::{Cpu, DecodedCache, Memory, Perms, Step, Trap, PAGE_SIZE};
use proptest::prelude::*;

const CODE_PAGES: u64 = 2;
const DATA_BASE: u64 = CODE_PAGES * PAGE_SIZE;
const MEM_SIZE: u64 = 4 * PAGE_SIZE;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..Reg::COUNT).prop_map(|i| Reg::all().nth(i).expect("in range"))
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0usize..4).prop_map(|i| [Cond::E, Cond::Ne, Cond::L, Cond::Ae][i])
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..6)
        .prop_map(|i| [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Cmp, AluOp::Mul, AluOp::And][i])
}

/// A word of guest code: valid instructions (short loops, stores into the
/// code region, ALU traffic), with an occasional arm of raw bytes that may
/// not decode at all.
/// Branch offsets stay aligned and small so loops actually form.
fn arb_joff() -> impl Strategy<Value = i32> {
    (-24i32..24).prop_map(|w| w * 8)
}

fn arb_word() -> impl Strategy<Value = [u8; 8]> {
    let inst = prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        (arb_reg(), -100i32..100).prop_map(|(dst, imm)| Inst::MovRI { dst, imm }),
        (arb_alu_op(), arb_reg(), 1i32..50).prop_map(|(op, dst, imm)| Inst::AluI { op, dst, imm }),
        (arb_alu_op(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Inst::Alu { op, dst, src }),
        (arb_cond(), arb_joff()).prop_map(|(cc, offset)| Inst::Jcc { cc, offset }),
        (arb_reg(), arb_joff()).prop_map(|(src, offset)| Inst::JRnz { src, offset }),
        // Stores through R1 land in the code pages (self-modifying code);
        // through R2 in the data page.
        (arb_reg(), 0i32..64).prop_map(|(src, disp)| Inst::St {
            base: Reg::R1,
            src,
            disp: disp * 8
        }),
        (arb_reg(), 0i32..256).prop_map(|(src, disp)| Inst::St8 { base: Reg::R2, src, disp }),
        (arb_reg(), 0i32..64).prop_map(|(dst, disp)| Inst::Ld {
            dst,
            base: Reg::R2,
            disp: disp * 8
        }),
        arb_reg().prop_map(|src| Inst::Out { src }),
        arb_reg().prop_map(|src| Inst::Push { src }),
        arb_reg().prop_map(|dst| Inst::Pop { dst }),
    ];
    (inst, any::<u64>(), 0usize..8).prop_map(|(inst, raw, sel)| {
        // One word in eight is raw bytes (usually an invalid encoding), so
        // the InvalidInst path gets the same equivalence scrutiny.
        if sel == 0 {
            raw.to_le_bytes()
        } else {
            inst.encode()
        }
    })
}

/// One external event: run up to `steps` instructions, then (maybe) write
/// `word` into the code region at `slot` — the SMC-from-outside case (DBT
/// chain patching, fault injection) the cache must observe.
#[derive(Debug, Clone)]
struct Op {
    steps: u64,
    write: Option<(u64, [u8; 8])>,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let write = prop_oneof![
        Just(None),
        (0u64..(CODE_PAGES * PAGE_SIZE / INST_SIZE_U64), arb_word())
            .prop_map(|(slot, word)| Some((slot * INST_SIZE_U64, word))),
    ];
    (0u64..40, write).prop_map(|(steps, write)| Op { steps, write })
}

fn build(words: &[[u8; 8]]) -> (Cpu, Memory) {
    let mut mem = Memory::new(MEM_SIZE);
    mem.map(0..DATA_BASE, Perms::RWX);
    mem.map(DATA_BASE..MEM_SIZE, Perms::RW);
    for (i, w) in words.iter().enumerate() {
        mem.install(i as u64 * INST_SIZE_U64, w);
    }
    let mut cpu = Cpu::new();
    cpu.set_ip(0);
    cpu.set_reg(Reg::SP, MEM_SIZE);
    cpu.set_reg(Reg::R1, 0x40); // store base inside the code page
    cpu.set_reg(Reg::R2, DATA_BASE);
    (cpu, mem)
}

/// What a run segment ended with, for exact cross-path comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SegEnd {
    Budget,
    Halt,
    Trap(Trap),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    Raw,
    Stepped,
    Fused,
}

/// Runs the op sequence down one execution path and returns everything
/// observable: per-segment outcomes, final CPU, dirty log and code bytes.
fn execute(words: &[[u8; 8]], ops: &[Op], path: Path) -> (Vec<SegEnd>, Cpu, Vec<u64>, Vec<u8>) {
    let (mut cpu, mut mem) = build(words);
    let mut icache = DecodedCache::new();
    let mut log = Vec::new();
    let mut live = true;
    for op in ops {
        if live {
            let end = match path {
                Path::Fused => match cpu.run_fused(&mut mem, &mut icache, op.steps) {
                    Ok(Step::Continue) => SegEnd::Budget,
                    Ok(Step::Halt) => SegEnd::Halt,
                    Err(t) => SegEnd::Trap(t),
                },
                Path::Raw | Path::Stepped => {
                    let mut end = SegEnd::Budget;
                    for _ in 0..op.steps {
                        let step = match path {
                            Path::Raw => cpu.step(&mut mem),
                            _ => cpu.step_decoded(&mut mem, &mut icache),
                        };
                        match step {
                            Ok(Step::Continue) => {}
                            Ok(Step::Halt) => {
                                end = SegEnd::Halt;
                                break;
                            }
                            Err(t) => {
                                end = SegEnd::Trap(t);
                                break;
                            }
                        }
                    }
                    end
                }
            };
            live = end == SegEnd::Budget;
            log.push(end);
        }
        if let Some((addr, word)) = op.write {
            mem.install(addr, &word);
        }
    }
    let code = mem.peek(0, (CODE_PAGES * PAGE_SIZE) as usize).to_vec();
    (log, cpu, mem.dirty_pages(), code)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random code-page writes interleaved with execution: the decoded
    /// stepping path and the fused burst path are bit-identical to raw
    /// decode in results, traps, stats, dirty log and memory.
    #[test]
    fn decoded_paths_bit_identical_to_raw(
        words in prop::collection::vec(arb_word(), 1..96),
        ops in prop::collection::vec(arb_op(), 1..24),
    ) {
        let raw = execute(&words, &ops, Path::Raw);
        let stepped = execute(&words, &ops, Path::Stepped);
        let fused = execute(&words, &ops, Path::Fused);
        prop_assert_eq!(&raw, &stepped);
        prop_assert_eq!(&raw, &fused);
    }

    /// The guest's own stores into its code page (classic SMC, no external
    /// writer involved) behave identically down all three paths.
    #[test]
    fn guest_smc_bit_identical(
        words in prop::collection::vec(arb_word(), 1..96),
        budget in 1u64..600,
    ) {
        let ops = [Op { steps: budget, write: None }];
        let raw = execute(&words, &ops, Path::Raw);
        let stepped = execute(&words, &ops, Path::Stepped);
        let fused = execute(&words, &ops, Path::Fused);
        prop_assert_eq!(&raw, &stepped);
        prop_assert_eq!(&raw, &fused);
    }
}
