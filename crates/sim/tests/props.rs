//! Property-based tests for the simulator: memory permission algebra and
//! CPU determinism/trap-safety invariants.

use cfed_isa::{encode_all, AluOp, Cond, Inst, Reg};
use cfed_sim::{Cpu, Memory, Perms, Trap, PAGE_SIZE};
use proptest::prelude::*;

fn arb_perms() -> impl Strategy<Value = Perms> {
    prop_oneof![
        Just(Perms::NONE),
        Just(Perms::R),
        Just(Perms::RW),
        Just(Perms::RX),
        Just(Perms::RWX),
        Just(Perms::W),
        Just(Perms::X),
    ]
}

proptest! {
    /// Reads/writes respect the page permissions exactly.
    #[test]
    fn memory_access_respects_perms(
        perms in arb_perms(),
        offset in 0u64..(PAGE_SIZE - 8),
        value in any::<u64>(),
    ) {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.map(0..PAGE_SIZE, perms);
        prop_assert_eq!(mem.read_u64(offset).is_ok(), perms.can_read());
        prop_assert_eq!(mem.write_u64(offset, value).is_ok(), perms.can_write());
        let aligned = offset & !7;
        prop_assert_eq!(mem.fetch(aligned).is_ok(), perms.can_exec());
        if perms.can_write() && perms.can_read() {
            mem.write_u64(offset, value).unwrap();
            prop_assert_eq!(mem.read_u64(offset).unwrap(), value);
        }
    }

    /// Byte writes and reads round-trip and never touch neighbours.
    #[test]
    fn byte_writes_are_isolated(addr in 8u64..(PAGE_SIZE - 16), value in any::<u8>()) {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.map(0..PAGE_SIZE, Perms::RW);
        let before_lo = mem.read_u8(addr - 1).unwrap();
        let before_hi = mem.read_u8(addr + 1).unwrap();
        mem.write_u8(addr, value).unwrap();
        prop_assert_eq!(mem.read_u8(addr).unwrap(), value);
        prop_assert_eq!(mem.read_u8(addr - 1).unwrap(), before_lo);
        prop_assert_eq!(mem.read_u8(addr + 1).unwrap(), before_hi);
    }

    /// protect/unprotect compose to the identity on permission behaviour.
    #[test]
    fn protect_roundtrip(perms in arb_perms(), addr in 0u64..PAGE_SIZE) {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.map(0..PAGE_SIZE, perms);
        let old = mem.protect_page(addr);
        prop_assert_eq!(old, perms);
        prop_assert!(!mem.perms_at(addr).can_write());
        prop_assert_eq!(mem.perms_at(addr).can_read(), perms.can_read());
        prop_assert_eq!(mem.perms_at(addr).can_exec(), perms.can_exec());
        mem.unprotect_page(addr);
        prop_assert!(mem.perms_at(addr).can_write());
    }

    /// Execution is deterministic: two CPUs running the same program reach
    /// identical state.
    #[test]
    fn cpu_execution_deterministic(seed in any::<i32>(), iters in 1i32..40) {
        let prog = encode_all(&[
            Inst::MovRI { dst: Reg::R0, imm: seed },
            Inst::MovRI { dst: Reg::R1, imm: iters },
            // loop: r0 = r0 * 3 + 7 (wrapping); r1 -= 1; jne loop
            Inst::AluI { op: AluOp::Mul, dst: Reg::R0, imm: 3 },
            Inst::AluI { op: AluOp::Add, dst: Reg::R0, imm: 7 },
            Inst::AluI { op: AluOp::Sub, dst: Reg::R1, imm: 1 },
            Inst::Jcc { cc: Cond::Ne, offset: -32 },
            Inst::Out { src: Reg::R0 },
            Inst::Halt,
        ]);
        let run = || {
            let mut mem = Memory::new(1 << 16);
            mem.map(0..0x1000, Perms::RX);
            mem.install(0, &prog);
            let mut cpu = Cpu::new();
            cpu.set_ip(0);
            let exit = cpu.run(&mut mem, 10_000);
            (exit, cpu.reg(Reg::R0), cpu.stats(), cpu.output().to_vec())
        };
        prop_assert_eq!(run(), run());
    }

    /// A trap never commits state: after any trapping step, ip still points
    /// at the faulting instruction and registers are unchanged.
    #[test]
    fn traps_do_not_commit(disp in any::<i32>()) {
        // A store to an unmapped page traps.
        let prog = encode_all(&[
            Inst::MovRI { dst: Reg::R1, imm: 0x8000 }, // unmapped region
            Inst::St { base: Reg::R1, src: Reg::R0, disp },
            Inst::Halt,
        ]);
        let mut mem = Memory::new(1 << 16);
        mem.map(0..0x1000, Perms::RX);
        mem.install(0, &prog);
        let mut cpu = Cpu::new();
        cpu.set_ip(0);
        cpu.step(&mut mem).unwrap();
        let regs_before: Vec<u64> = Reg::all().map(|r| cpu.reg(r)).collect();
        match cpu.step(&mut mem) {
            Err(Trap::PermWrite { .. }) | Err(Trap::OutOfRange { .. }) => {
                prop_assert_eq!(cpu.ip(), 8, "ip must stay at the faulting store");
                let regs_after: Vec<u64> = Reg::all().map(|r| cpu.reg(r)).collect();
                prop_assert_eq!(regs_before, regs_after);
            }
            other => prop_assert!(false, "expected a write trap, got {:?}", other),
        }
    }

    /// Cycle accounting is strictly increasing per retired instruction.
    #[test]
    fn cycles_monotone(n in 1usize..64) {
        let mut insts = vec![Inst::Nop; n];
        insts.push(Inst::Halt);
        let prog = encode_all(&insts);
        let mut mem = Memory::new(1 << 16);
        mem.map(0..0x2000, Perms::RX);
        mem.install(0, &prog);
        let mut cpu = Cpu::new();
        cpu.set_ip(0);
        let mut last = 0;
        while let Ok(step) = cpu.step(&mut mem) {
            prop_assert!(cpu.stats().cycles > last);
            last = cpu.stats().cycles;
            if step == cfed_sim::Step::Halt {
                break;
            }
        }
        prop_assert_eq!(cpu.stats().insts as usize, n + 1);
    }
}
