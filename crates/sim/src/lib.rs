//! # cfed-sim — guest machine simulator
//!
//! Deterministic simulation substrate for the CGO'06 control-flow error
//! detection reproduction: a paged [`Memory`] with per-page R/W/X
//! permissions, a fetch–decode–execute [`Cpu`] with cycle accounting, the
//! [`Trap`] model (execute-protection faults stand in for the execute-disable
//! bit that catches category-F branch errors; write-protection faults drive
//! the DBT's self-modifying-code handling), and a conventional [`Layout`] +
//! [`Machine`] loader.
//!
//! Traps never commit the faulting instruction, so supervisors — the DBT
//! runtime in `cfed-dbt`, or the fault injector in `cfed-fault` — can catch
//! a trap, repair or redirect state, and resume.
//!
//! ## Example
//!
//! ```
//! use cfed_isa::{encode_all, AluOp, Inst, Reg};
//! use cfed_sim::{ExitReason, Machine};
//!
//! let code = encode_all(&[
//!     Inst::MovRI { dst: Reg::R0, imm: 40 },
//!     Inst::AluI { op: AluOp::Add, dst: Reg::R0, imm: 2 },
//!     Inst::Out { src: Reg::R0 },
//!     Inst::Halt,
//! ]);
//! let mut m = Machine::load(&code, &[], 0);
//! assert_eq!(m.run(100), ExitReason::Halted { code: 42 });
//! assert_eq!(m.cpu.output(), &[42]);
//! ```

pub mod cpu;
pub mod icache;
pub mod machine;
pub mod mem;
pub mod profiler;
pub mod tracer;
pub mod trap;

pub use cpu::{Cpu, ExecStats, ExitReason, Step};
pub use icache::{DecodeCacheStats, DecodedCache, LINES_PER_PAGE};
pub use machine::{Layout, Machine, MachineSnapshot, SnapshotTracker};
pub use mem::{Memory, Perms, RawMemParts, PAGE_SIZE};
pub use profiler::ExecProfiler;
pub use tracer::{TraceEntry, Tracer};
pub use trap::{trap_codes, Trap};
