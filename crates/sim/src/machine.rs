//! A whole guest machine: CPU + memory + a conventional address-space
//! layout, with a loader for raw program images.

use crate::icache::{DecodeCacheStats, DecodedCache};
use crate::profiler::ExecProfiler;
use crate::{Cpu, ExitReason, Memory, Perms, Step, Tracer, Trap};
use cfed_isa::Inst;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

/// Address-space layout conventions shared by the assembler, loader, DBT and
/// fault-injection tooling.
///
/// The defaults give an 8 MiB guest with a guard page at 0, code at 64 KiB,
/// a data/heap region, a region reserved for the DBT's code cache (mapped by
/// the DBT itself, with execute permission — the paper places the code cache
/// in executable pages so category-F errors are still caught, §5), and a
/// stack below an unmapped guard page at the top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Total guest address-space size in bytes.
    pub mem_size: u64,
    /// Base address where program code is loaded.
    pub code_base: u64,
    /// Base address of the data/heap region.
    pub data_base: u64,
    /// Extent of the data/heap region.
    pub data_size: u64,
    /// Region reserved for the DBT code cache (not mapped by the loader).
    pub cache_region: Range<u64>,
    /// Mapped stack region; the initial stack pointer is `stack.end`.
    pub stack: Range<u64>,
}

impl Default for Layout {
    fn default() -> Layout {
        Layout {
            mem_size: 0x80_0000, // 8 MiB
            code_base: 0x1_0000,
            data_base: 0x20_0000,
            data_size: 0x20_0000, // 2 MiB data + heap
            cache_region: 0x50_0000..0x78_0000,
            stack: 0x78_0000..0x7F_F000,
        }
    }
}

impl Layout {
    /// The initial stack pointer (top of the stack region).
    pub fn initial_sp(&self) -> u64 {
        self.stack.end
    }
}

/// A loaded guest machine ready to run.
///
/// # Examples
///
/// ```
/// use cfed_isa::{encode_all, AluOp, Inst, Reg};
/// use cfed_sim::{ExitReason, Machine};
///
/// let code = encode_all(&[
///     Inst::MovRI { dst: Reg::R0, imm: 21 },
///     Inst::AluI { op: AluOp::Add, dst: Reg::R0, imm: 21 },
///     Inst::Halt,
/// ]);
/// let mut m = Machine::load(&code, &[], 0);
/// assert_eq!(m.run(1_000), ExitReason::Halted { code: 42 });
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    /// The processor.
    pub cpu: Cpu,
    /// The address space.
    pub mem: Memory,
    /// Optional execution tracer; when attached, every step through
    /// [`Machine::step_cpu`] is recorded (used by fault-injection
    /// forensics to capture the window before a detection).
    pub tracer: Option<Tracer>,
    /// Pre-decoded instruction cache (attached by default). Purely a
    /// speedup: execution through it is architecturally identical to raw
    /// fetch+decode; see [`DecodedCache`]. [`Machine::set_decode_cache`]
    /// disables it for raw-path benchmarking and equivalence testing.
    pub icache: Option<DecodedCache>,
    /// Optional execution profiler. When attached (and a decode cache is
    /// present), fused runs tally per-address retirements and cycles;
    /// detached (the default), the fused loop is the unprofiled
    /// monomorphization and pays nothing.
    pub profiler: Option<Box<ExecProfiler>>,
    layout: Layout,
    code_len: u64,
}

impl Machine {
    /// Builds a machine with the default [`Layout`], installs `code` at
    /// `code_base` (mapped RWX — guest code is writable so self-modifying
    /// code works until the DBT protects it) and `data` at `data_base`
    /// (mapped RW), and points the CPU at `code_base + entry_offset`.
    ///
    /// # Panics
    ///
    /// Panics if code or data do not fit their regions.
    pub fn load(code: &[u8], data: &[u8], entry_offset: u64) -> Machine {
        Machine::load_with_layout(Layout::default(), code, data, entry_offset)
    }

    /// As [`Machine::load`] with an explicit layout.
    ///
    /// # Panics
    ///
    /// Panics if code or data do not fit their regions.
    pub fn load_with_layout(
        layout: Layout,
        code: &[u8],
        data: &[u8],
        entry_offset: u64,
    ) -> Machine {
        assert!(
            layout.code_base + code.len() as u64 <= layout.data_base,
            "code overflows its region ({} bytes)",
            code.len()
        );
        assert!(data.len() as u64 <= layout.data_size, "data overflows its region");
        let mut mem = Memory::new(layout.mem_size);
        // Map exactly the pages the code occupies: the executable footprint
        // defines the "code region" the error model classifies against.
        let code_end = layout.code_base + (code.len() as u64).max(1);
        mem.map(layout.code_base..code_end, Perms::RWX);
        mem.map(layout.data_base..layout.data_base + layout.data_size, Perms::RW);
        mem.map(layout.stack.clone(), Perms::RW);
        mem.install(layout.code_base, code);
        mem.install(layout.data_base, data);

        let mut cpu = Cpu::new();
        cpu.set_ip(layout.code_base + entry_offset);
        cpu.set_reg(cfed_isa::Reg::SP, layout.initial_sp());
        Machine {
            cpu,
            mem,
            tracer: None,
            icache: Some(DecodedCache::new()),
            profiler: None,
            layout,
            code_len: code.len() as u64,
        }
    }

    /// Attaches a fresh [`ExecProfiler`]; subsequent fused runs tally
    /// per-address retirements and cycles. Never changes what the machine
    /// computes.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Box::new(ExecProfiler::new()));
    }

    /// Detaches and returns the profiler (with everything it recorded),
    /// reverting fused runs to the unprofiled path.
    pub fn take_profiler(&mut self) -> Option<Box<ExecProfiler>> {
        self.profiler.take()
    }

    /// Enables (with a fresh, empty cache) or disables the pre-decoded
    /// instruction cache. Never changes what the machine computes — only
    /// whether execution pays a decode per retired instruction.
    pub fn set_decode_cache(&mut self, enabled: bool) {
        self.icache = enabled.then(DecodedCache::new);
    }

    /// Whether a pre-decoded instruction cache is attached.
    pub fn has_decode_cache(&self) -> bool {
        self.icache.is_some()
    }

    /// Decode-cache hit/miss/invalidation counters, if a cache is attached.
    pub fn decode_cache_stats(&self) -> Option<DecodeCacheStats> {
        self.icache.as_ref().map(DecodedCache::stats)
    }

    /// Attaches a fresh [`Tracer`] keeping the last `capacity` instructions
    /// (replacing any previous tracer). Supervisors that step the machine
    /// through [`Machine::step_cpu`] feed it automatically.
    pub fn attach_tracer(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
    }

    /// As [`Machine::attach_tracer`], but with the retired-instruction
    /// counter pre-set to `retired` — for supervisors resuming execution
    /// from a mid-run snapshot, so the tracer's counter keeps matching the
    /// CPU's total instruction count rather than restarting from zero.
    pub fn attach_tracer_resumed(&mut self, capacity: usize, retired: u64) {
        self.tracer = Some(Tracer::resumed(capacity, retired));
    }

    /// Steps the CPU once, through the attached tracer if any. Supervisors
    /// (the DBT runtime, fault harnesses) should prefer this over calling
    /// `cpu.step` directly so tracing stays transparent.
    ///
    /// # Errors
    ///
    /// Propagates the CPU's trap without committing state.
    pub fn step_cpu(&mut self) -> Result<Step, Trap> {
        match (&mut self.tracer, &mut self.icache) {
            (Some(tracer), Some(ic)) => tracer.step_decoded(&mut self.cpu, &mut self.mem, ic),
            (Some(tracer), None) => tracer.step(&mut self.cpu, &mut self.mem),
            (None, Some(ic)) => self.cpu.step_decoded(&mut self.mem, ic),
            (None, None) => self.cpu.step(&mut self.mem),
        }
    }

    /// Decodes (without executing) the instruction at the current `ip`,
    /// through the decoded cache when one is attached — warming the line
    /// the next step will execute. Same traps and statistics-neutrality as
    /// [`Cpu::peek_inst`].
    ///
    /// # Errors
    ///
    /// Same conditions as a fetch during [`Cpu::step`].
    pub fn peek_inst(&mut self) -> Result<Inst, Trap> {
        match &mut self.icache {
            Some(ic) => ic.fetch(&self.mem, self.cpu.ip()),
            None => self.cpu.peek_inst(&self.mem),
        }
    }

    /// Runs up to `max_steps` instructions through the fused decoded path
    /// (falling back to per-instruction stepping when no decode cache is
    /// attached), returning the raw supervisor-level step result instead of
    /// an [`ExitReason`] — the DBT's dispatch loop wants the trap itself.
    /// The attached tracer, if any, is *not* fed (callers that trace must
    /// use [`Machine::step_cpu`]).
    ///
    /// # Errors
    ///
    /// The first trap raised, exactly as `max_steps` individual steps.
    pub fn run_burst(&mut self, max_steps: u64) -> Result<Step, Trap> {
        match (&mut self.icache, &mut self.profiler) {
            (Some(ic), Some(p)) => self.cpu.run_fused_profiled(&mut self.mem, ic, max_steps, p),
            (Some(ic), None) => self.cpu.run_fused(&mut self.mem, ic, max_steps),
            (None, _) => {
                let mut used = 0;
                while used < max_steps {
                    match self.cpu.step(&mut self.mem)? {
                        Step::Halt => return Ok(Step::Halt),
                        Step::Continue => used += 1,
                    }
                }
                Ok(Step::Continue)
            }
        }
    }

    /// The machine's layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The loaded code region `[code_base, code_base + len)`.
    pub fn code_range(&self) -> Range<u64> {
        self.layout.code_base..self.layout.code_base + self.code_len
    }

    /// Runs the CPU until halt, trap or step limit, through the decoded
    /// cache when one is attached.
    pub fn run(&mut self, max_steps: u64) -> ExitReason {
        match (&mut self.icache, &mut self.profiler) {
            (Some(ic), Some(p)) => {
                match self.cpu.run_fused_profiled(&mut self.mem, ic, max_steps, p) {
                    Ok(Step::Halt) => ExitReason::Halted { code: self.cpu.reg(cfed_isa::Reg::R0) },
                    Ok(Step::Continue) => ExitReason::StepLimit,
                    Err(trap) => ExitReason::Trapped(trap),
                }
            }
            (Some(ic), None) => self.cpu.run_decoded(&mut self.mem, ic, max_steps),
            (None, _) => self.cpu.run(&mut self.mem, max_steps),
        }
    }
}

/// A compact, restorable copy of a [`Machine`]'s architectural state.
///
/// A full `Machine` clone duplicates the whole address space (8 MiB under
/// the default [`Layout`]); a snapshot keeps only the pages holding nonzero
/// bytes plus the per-page permission table, which for the workloads in
/// this repository is a few dozen KiB. A fresh address space is all-zero,
/// so [`MachineSnapshot::restore`] rebuilds a bit-identical machine by
/// re-installing just those pages. The attached [`Tracer`] (if any) is
/// *not* captured — supervisors attach their own after restoring.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    cpu: Cpu,
    layout: Layout,
    code_len: u64,
    mem_size: u64,
    /// Page contents behind `Arc`: snapshots taken in sequence (see
    /// [`SnapshotTracker`]) share the pages that did not change between
    /// them.
    pages: Vec<(u64, Arc<[u8]>)>,
    perms: Vec<Perms>,
}

impl MachineSnapshot {
    /// Captures the machine's CPU, memory contents and page permissions.
    pub fn capture(m: &Machine) -> MachineSnapshot {
        MachineSnapshot {
            cpu: m.cpu.clone(),
            layout: m.layout.clone(),
            code_len: m.code_len,
            mem_size: m.mem.size(),
            pages: m.mem.nonzero_pages().map(|(base, bytes)| (base, Arc::from(bytes))).collect(),
            perms: m.mem.perms_table().to_vec(),
        }
    }

    /// Reconstructs a machine bit-identical to the captured one (with no
    /// tracer attached).
    pub fn restore(&self) -> Machine {
        let mut mem = Memory::new(self.mem_size);
        for (base, bytes) in &self.pages {
            mem.install(*base, bytes);
        }
        mem.set_perms_table(&self.perms);
        Machine {
            cpu: self.cpu.clone(),
            mem,
            tracer: None,
            // A fresh (empty) decode cache: caches are derived state, so
            // restoring one is never needed for bit-identical behaviour.
            icache: Some(DecodedCache::new()),
            profiler: None,
            layout: self.layout.clone(),
            code_len: self.code_len,
        }
    }

    /// Instructions the captured CPU had retired.
    pub fn insts(&self) -> u64 {
        self.cpu.stats().insts
    }

    /// Whether `m`'s architectural state (CPU including counters, memory
    /// contents, page permissions) is bit-identical to the captured one.
    /// Since execution is deterministic, a match means `m`'s future is
    /// exactly the captured machine's future — the basis for convergence
    /// pruning in fault injection. Cheap when states differ: the CPU
    /// compare rejects first, and the page walk covers only pages that
    /// were ever written on either side (everything else is zero-zero).
    pub fn matches(&self, m: &Machine) -> bool {
        use crate::mem::PAGE_SIZE;
        if self.cpu != m.cpu || self.mem_size != m.mem.size() || self.perms != m.mem.perms_table() {
            return false;
        }
        const ZERO: &[u8] = &[0u8; PAGE_SIZE as usize];
        let mut bases = m.mem.dirty_pages();
        bases.extend(self.pages.iter().map(|&(b, _)| b));
        bases.sort_unstable();
        bases.dedup();
        bases.into_iter().all(|base| {
            let captured = self
                .pages
                .binary_search_by_key(&base, |&(b, _)| b)
                .map(|i| &*self.pages[i].1)
                .unwrap_or(ZERO);
            m.mem.peek(base, PAGE_SIZE as usize) == captured
        })
    }

    /// Approximate heap bytes this snapshot retains (page contents plus the
    /// permission table). Pages shared with other snapshots via
    /// [`SnapshotTracker`] are counted in full by each holder.
    pub fn bytes(&self) -> u64 {
        self.pages.iter().map(|(_, b)| b.len() as u64).sum::<u64>() + self.perms.len() as u64
    }
}

/// Incremental snapshot capture over a machine's dirty-page log.
///
/// [`MachineSnapshot::capture`] scans the whole address space for nonzero
/// pages — fine once, wasteful for the periodic checkpoints a fault-
/// injection golden run takes. A tracker instead keeps a running map of
/// every page the machine has written (fed by [`Memory::drain_dirty`]) and
/// copies only the pages dirtied since the previous capture; untouched
/// pages are shared between consecutive snapshots via `Arc`.
///
/// The tracker must observe the machine from its creation (before the
/// first guest store) and drains the dirty log at every capture, so one
/// machine supports one tracker at a time.
#[derive(Debug, Default)]
pub struct SnapshotTracker {
    pages: BTreeMap<u64, Arc<[u8]>>,
}

impl SnapshotTracker {
    /// Creates an empty tracker. Attach it to a machine by simply passing
    /// that machine to every [`SnapshotTracker::capture`] call.
    pub fn new() -> SnapshotTracker {
        SnapshotTracker::default()
    }

    /// Captures a snapshot, copying only the pages written since the last
    /// capture. Equivalent to [`MachineSnapshot::capture`] (restores are
    /// bit-identical) when the tracker has seen the machine since its
    /// creation.
    pub fn capture(&mut self, m: &mut Machine) -> MachineSnapshot {
        use crate::mem::PAGE_SIZE;
        for base in m.mem.drain_dirty() {
            self.pages.insert(base, Arc::from(m.mem.peek(base, PAGE_SIZE as usize)));
        }
        MachineSnapshot {
            cpu: m.cpu.clone(),
            layout: m.layout.clone(),
            code_len: m.code_len,
            mem_size: m.mem.size(),
            pages: self.pages.iter().map(|(&base, data)| (base, Arc::clone(data))).collect(),
            perms: m.mem.perms_table().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trap;
    use cfed_isa::{encode_all, Inst, Reg};

    #[test]
    fn default_layout_is_consistent() {
        let l = Layout::default();
        assert!(l.code_base < l.data_base);
        assert!(l.data_base + l.data_size <= l.cache_region.start);
        assert!(l.cache_region.end <= l.stack.start);
        assert!(l.stack.end < l.mem_size);
        assert_eq!(l.initial_sp() % 8, 0);
    }

    #[test]
    fn load_and_run() {
        let code = encode_all(&[Inst::MovRI { dst: Reg::R0, imm: 5 }, Inst::Halt]);
        let mut m = Machine::load(&code, &[], 0);
        assert_eq!(m.run(10), ExitReason::Halted { code: 5 });
    }

    #[test]
    fn data_visible_to_guest() {
        let l = Layout::default();
        let code = encode_all(&[
            Inst::MovRI { dst: Reg::R1, imm: l.data_base as i32 },
            Inst::Ld { dst: Reg::R0, base: Reg::R1, disp: 0 },
            Inst::Halt,
        ]);
        let mut m = Machine::load(&code, &99u64.to_le_bytes(), 0);
        assert_eq!(m.run(10), ExitReason::Halted { code: 99 });
    }

    #[test]
    fn entry_offset_respected() {
        let code = encode_all(&[
            Inst::Halt,                           // offset 0: not the entry
            Inst::MovRI { dst: Reg::R0, imm: 3 }, // offset 8: entry
            Inst::Halt,
        ]);
        let mut m = Machine::load(&code, &[], 8);
        assert_eq!(m.run(10), ExitReason::Halted { code: 3 });
    }

    #[test]
    fn guard_page_at_zero_catches_null_deref() {
        let code = encode_all(&[
            Inst::MovRI { dst: Reg::R1, imm: 0 },
            Inst::Ld { dst: Reg::R0, base: Reg::R1, disp: 0 },
        ]);
        let mut m = Machine::load(&code, &[], 0);
        assert_eq!(m.run(10), ExitReason::Trapped(Trap::PermRead { addr: 0 }));
    }

    #[test]
    fn stack_usable_immediately() {
        let code =
            encode_all(&[Inst::Push { src: Reg::R0 }, Inst::Pop { dst: Reg::R1 }, Inst::Halt]);
        let mut m = Machine::load(&code, &[], 0);
        assert_eq!(m.run(10), ExitReason::Halted { code: 0 });
    }

    #[test]
    fn code_range_matches_image() {
        let code = encode_all(&[Inst::Halt, Inst::Halt, Inst::Halt]);
        let m = Machine::load(&code, &[], 0);
        assert_eq!(m.code_range().end - m.code_range().start, 24);
        assert!(m.mem.is_code(m.code_range().start));
    }

    #[test]
    #[should_panic(expected = "code overflows")]
    fn oversized_code_rejected() {
        let huge = vec![0u8; 0x20_0000];
        let _ = Machine::load(&huge, &[], 0);
    }

    #[test]
    fn snapshot_restores_bit_identical_state() {
        let code = encode_all(&[
            Inst::MovRI { dst: Reg::R0, imm: 11 },
            Inst::Push { src: Reg::R0 },
            Inst::MovRI { dst: Reg::R0, imm: 0 },
            Inst::Pop { dst: Reg::R1 },
            Inst::Halt,
        ]);
        let mut m = Machine::load(&code, &7u64.to_le_bytes(), 0);
        // Run partway so registers, stack memory and stats are non-trivial.
        assert_eq!(m.step_cpu(), Ok(Step::Continue));
        assert_eq!(m.step_cpu(), Ok(Step::Continue));
        let snap = MachineSnapshot::capture(&m);
        assert_eq!(snap.insts(), 2);
        assert!(snap.bytes() < m.mem.size(), "snapshot must be sparse");
        let mut r = snap.restore();
        assert_eq!(r.cpu, m.cpu);
        assert_eq!(r.code_range(), m.code_range());
        for (a, b) in r.mem.nonzero_pages().zip(m.mem.nonzero_pages()) {
            assert_eq!(a, b);
        }
        assert_eq!(r.mem.perms_table(), m.mem.perms_table());
        // Both machines finish identically.
        assert_eq!(m.run(10), ExitReason::Halted { code: 0 });
        assert_eq!(r.run(10), ExitReason::Halted { code: 0 });
        assert_eq!(r.cpu.reg(Reg::R1), 11);
    }

    #[test]
    fn tracker_capture_matches_full_scan() {
        let code = encode_all(&[
            Inst::MovRI { dst: Reg::R0, imm: 3 },
            Inst::Push { src: Reg::R0 },
            Inst::MovRI { dst: Reg::R0, imm: 9 },
            Inst::Push { src: Reg::R0 },
            Inst::Pop { dst: Reg::R1 },
            Inst::Pop { dst: Reg::R2 },
            Inst::Halt,
        ]);
        let mut m = Machine::load(&code, &5u64.to_le_bytes(), 0);
        let mut tracker = SnapshotTracker::new();
        // Capture after every step; each must restore to the same machine
        // a full-scan capture rebuilds.
        while m.step_cpu() == Ok(Step::Continue) {
            let incremental = tracker.capture(&mut m).restore();
            let full = MachineSnapshot::capture(&m).restore();
            assert_eq!(incremental.cpu, full.cpu);
            assert_eq!(incremental.cpu, m.cpu);
            for (a, b) in incremental.mem.nonzero_pages().zip(full.mem.nonzero_pages()) {
                assert_eq!(a, b);
            }
            assert_eq!(incremental.mem.perms_table(), full.mem.perms_table());
        }
    }

    #[test]
    fn profiled_run_is_architecturally_identical_and_accounts_every_cycle() {
        use cfed_isa::AluOp;
        let code = encode_all(&[
            Inst::MovRI { dst: Reg::R0, imm: 5 },
            Inst::MovRI { dst: Reg::R1, imm: 0 },
            Inst::Alu { op: AluOp::Add, dst: Reg::R1, src: Reg::R0 },
            Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 },
            Inst::Jcc { cc: cfed_isa::Cond::Ne, offset: -24 },
            Inst::Out { src: Reg::R1 },
            Inst::Halt,
        ]);
        let mut plain = Machine::load(&code, &[], 0);
        let plain_exit = plain.run(1_000);

        let mut prof = Machine::load(&code, &[], 0);
        prof.enable_profiler();
        let prof_exit = prof.run(1_000);
        assert_eq!(prof_exit, plain_exit);
        assert_eq!(prof.cpu, plain.cpu, "profiling must not change architectural state");

        let p = prof.take_profiler().expect("profiler attached");
        assert_eq!(p.attributed_cycles(), prof.cpu.stats().cycles);
        let insts: u64 = p.samples().map(|(_, hits, _)| hits).sum();
        assert_eq!(insts, prof.cpu.stats().insts);
        // The loop body addresses are the hottest samples.
        let add_addr = prof.layout().code_base + 16;
        let (_, hits, _) = p.samples().find(|&(a, _, _)| a == add_addr).expect("loop body sampled");
        assert_eq!(hits, 5);
    }

    #[test]
    fn snapshot_preserves_page_protection() {
        let code = encode_all(&[Inst::Halt]);
        let mut m = Machine::load(&code, &[], 0);
        let base = m.layout().code_base;
        m.mem.protect_page(base);
        let r = MachineSnapshot::capture(&m).restore();
        assert!(!r.mem.perms_at(base).can_write());
        assert!(r.mem.perms_at(base).can_exec());
    }
}
