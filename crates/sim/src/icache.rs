//! Pre-decoded instruction cache: decode each guest instruction once, not
//! on every retirement.
//!
//! VISA instructions are fixed-size (8 bytes), so a 4 KiB page holds exactly
//! [`LINES_PER_PAGE`] instruction slots and a guest address maps to a
//! `(page, line)` pair with two shifts. The cache stores the decoded
//! [`Inst`] per slot and revalidates lazily against the memory's per-page
//! write-generation counters ([`Memory::page_gen`]): any store to a page —
//! guest stores, loader installs, DBT code emission and chain patching,
//! fault injection — bumps that page's generation, and the next fetch
//! through a stale page discards only that page's lines.
//!
//! Equivalence with the raw path is load-bearing: the fault-injection
//! campaigns, the snapshot fast-forward engine and the figure pipelines all
//! assume a retired instruction behaves identically whether it was decoded
//! this step or a million steps ago. [`DecodedCache::fetch`] therefore
//! reproduces `Memory::fetch` trap-for-trap (alignment, range, execute
//! permission, decode order) and never caches decode failures.

use crate::mem::{Memory, PAGE_SIZE};
use crate::Trap;
use cfed_isa::{AluOp, CostModel, Inst, INST_SIZE_U64};
use std::fmt;

/// Instruction slots per page (`PAGE_SIZE / INST_SIZE`).
pub const LINES_PER_PAGE: usize = (PAGE_SIZE / INST_SIZE_U64) as usize;

// Cost/statistics classes. One per distinct row of [`CostModel::cost`], so a
// decoded line can charge cycles and update branch counters with a table
// lookup instead of re-matching the instruction every retirement. Classes
// from [`C_JMP`] upward are exactly the control transfers ([`Inst::is_branch`]);
// [`C_COND`] is exactly [`Inst::is_cond_branch`]. `class_table_matches_cost_model`
// below pins the mapping to the authoritative `CostModel::cost`.
pub(crate) const C_ONE: u8 = 0;
pub(crate) const C_OUT: u8 = 1;
pub(crate) const C_ALU: u8 = 2;
pub(crate) const C_MUL: u8 = 3;
pub(crate) const C_DIV: u8 = 4;
pub(crate) const C_LOAD: u8 = 5;
pub(crate) const C_STORE: u8 = 6;
pub(crate) const C_STACK: u8 = 7;
pub(crate) const C_CMOV: u8 = 8;
/// `Halt` alone, so the fused loop can detect retirement of a halt from the
/// cached class without reloading `Cpu::halted` every instruction.
pub(crate) const C_HALT: u8 = 9;
pub(crate) const C_JMP: u8 = 10;
pub(crate) const C_COND: u8 = 11;
pub(crate) const C_CALL: u8 = 12;
pub(crate) const C_CALLR: u8 = 13;
pub(crate) const C_JMPR: u8 = 14;
pub(crate) const C_RET: u8 = 15;
pub(crate) const N_CLASSES: usize = 16;
/// Sentinel class marking an undecoded line slot.
pub(crate) const CLASS_EMPTY: u8 = u8::MAX;

/// Cycle cost per class, indexed `[class][taken as usize]`. Only [`C_COND`]
/// distinguishes the two columns; every other class charges the same either
/// way, mirroring how `CostModel::cost` ignores `taken` for them.
pub(crate) fn cost_table(m: &CostModel) -> [[u64; 2]; N_CLASSES] {
    let mut t = [[0; 2]; N_CLASSES];
    t[C_ONE as usize] = [1, 1];
    t[C_OUT as usize] = [m.out, m.out];
    t[C_ALU as usize] = [m.alu, m.alu];
    t[C_MUL as usize] = [m.mul, m.mul];
    t[C_DIV as usize] = [m.div, m.div];
    t[C_LOAD as usize] = [m.load, m.load];
    t[C_STORE as usize] = [m.store, m.store];
    t[C_STACK as usize] = [m.stack, m.stack];
    t[C_CMOV as usize] = [m.cmov, m.cmov];
    t[C_HALT as usize] = [1, 1];
    t[C_JMP as usize] = [m.branch_taken, m.branch_taken];
    t[C_COND as usize] = [m.branch_not_taken, m.branch_taken];
    t[C_CALL as usize] = [m.call, m.call];
    t[C_CALLR as usize] = [m.call + m.indirect_penalty, m.call + m.indirect_penalty];
    t[C_JMPR as usize] = [m.branch_taken + m.indirect_penalty, m.branch_taken + m.indirect_penalty];
    t[C_RET as usize] = [m.ret, m.ret];
    t
}

/// One decoded line: the instruction plus everything about it that is fixed
/// per `(slot, bytes)` and would otherwise be recomputed every retirement —
/// its cost/stat class, whether it can write guest memory (and hence
/// invalidate decoded pages), and the absolute taken-target of direct
/// branches (a pure function of the slot address).
#[derive(Clone, Copy)]
pub(crate) struct Line {
    pub(crate) inst: Inst,
    pub(crate) class: u8,
    pub(crate) writes_mem: bool,
    pub(crate) target: u64,
}

impl Line {
    pub(crate) const EMPTY: Line =
        Line { inst: Inst::Nop, class: CLASS_EMPTY, writes_mem: false, target: 0 };

    /// Classifies `inst` decoded from address `addr`.
    pub(crate) fn new(inst: Inst, addr: u64) -> Line {
        let class = match inst {
            // `Trap` never retires (it aborts before the statistics
            // epilogue), so its class is never charged; C_ONE is arbitrary.
            Inst::Nop | Inst::Trap { .. } => C_ONE,
            Inst::Halt => C_HALT,
            Inst::Out { .. } => C_OUT,
            Inst::MovRR { .. }
            | Inst::MovRI { .. }
            | Inst::Lea { .. }
            | Inst::Lea2 { .. }
            | Inst::LeaSub { .. }
            | Inst::Neg { .. }
            | Inst::Not { .. } => C_ALU,
            Inst::Ld { .. } | Inst::Ld8 { .. } => C_LOAD,
            Inst::St { .. } | Inst::St8 { .. } => C_STORE,
            Inst::Push { .. } | Inst::Pop { .. } => C_STACK,
            Inst::CMov { .. } => C_CMOV,
            Inst::Alu { op, .. } | Inst::AluI { op, .. } => match op {
                AluOp::Mul => C_MUL,
                AluOp::Div => C_DIV,
                _ => C_ALU,
            },
            Inst::Jmp { .. } => C_JMP,
            Inst::Jcc { .. } | Inst::JRz { .. } | Inst::JRnz { .. } => C_COND,
            Inst::Call { .. } => C_CALL,
            Inst::CallR { .. } => C_CALLR,
            Inst::JmpR { .. } => C_JMPR,
            Inst::Ret => C_RET,
        };
        Line {
            inst,
            class,
            writes_mem: crate::cpu::inst_writes_mem(&inst),
            target: inst.direct_target(addr).unwrap_or(0),
        }
    }
}

/// Hit/miss/invalidation counters for a [`DecodedCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Fetches served from an already-decoded line.
    pub hits: u64,
    /// Fetches that had to decode (cold line or freshly invalidated page).
    pub misses: u64,
    /// Page-granular invalidations: a cached page found stale (its
    /// write-generation moved) and discarded. Lazy — a written page is
    /// counted when next executed, not when written.
    pub invalidations: u64,
}

/// One page worth of decoded lines, valid while `gen` still matches the
/// memory's write-generation for the page.
#[derive(Clone)]
pub(crate) struct DecodedPage {
    gen: u64,
    pub(crate) lines: [Line; LINES_PER_PAGE],
}

impl DecodedPage {
    fn new(gen: u64) -> Box<DecodedPage> {
        Box::new(DecodedPage { gen, lines: [Line::EMPTY; LINES_PER_PAGE] })
    }
}

/// A decode-once instruction cache over one guest address space.
///
/// The cache holds no architectural state: attaching, detaching or clearing
/// it never changes what a [`crate::Cpu`] computes, only how fast. It is
/// private to one `Memory` — generations from a different address space
/// would validate meaninglessly — which the owning [`crate::Machine`]
/// guarantees by construction.
///
/// # Examples
///
/// ```
/// use cfed_isa::{encode_all, Inst, Reg};
/// use cfed_sim::{DecodedCache, Memory, Perms};
///
/// let mut mem = Memory::new(1 << 16);
/// mem.map(0..0x1000, Perms::RX);
/// mem.install(0, &encode_all(&[Inst::MovRI { dst: Reg::R0, imm: 7 }]));
/// let mut cache = DecodedCache::new();
/// let first = cache.fetch(&mem, 0).unwrap();
/// let second = cache.fetch(&mem, 0).unwrap();
/// assert_eq!(first, second);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Clone, Default)]
pub struct DecodedCache {
    pub(crate) pages: Vec<Option<Box<DecodedPage>>>,
    pub(crate) stats: DecodeCacheStats,
}

impl fmt::Debug for DecodedCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodedCache")
            .field("cached_pages", &self.pages.iter().filter(|p| p.is_some()).count())
            .field("stats", &self.stats)
            .finish()
    }
}

impl DecodedCache {
    /// Creates an empty cache. Pages are allocated lazily on first
    /// execution, so an idle cache costs nothing.
    pub fn new() -> DecodedCache {
        DecodedCache::default()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DecodeCacheStats {
        self.stats
    }

    /// Returns the (re)validated decoded page for page index `pi`, clearing
    /// its lines if the remembered write-generation no longer matches
    /// `gen`. Lifetime is tied to `pages` alone so callers can keep using
    /// `stats` while holding the page.
    #[inline]
    pub(crate) fn validate_page<'a>(
        pages: &'a mut Vec<Option<Box<DecodedPage>>>,
        stats: &mut DecodeCacheStats,
        pi: usize,
        gen: u64,
    ) -> &'a mut DecodedPage {
        if pages.len() <= pi {
            pages.resize_with(pi + 1, || None);
        }
        match &mut pages[pi] {
            Some(page) if page.gen == gen => {}
            Some(page) => {
                page.lines = [Line::EMPTY; LINES_PER_PAGE];
                page.gen = gen;
                stats.invalidations += 1;
            }
            slot @ None => *slot = Some(DecodedPage::new(gen)),
        }
        pages[pi].as_mut().expect("just ensured")
    }

    /// Fetches and decodes the instruction at `addr` through the cache.
    ///
    /// Trap-for-trap identical to `mem.fetch(addr)` followed by
    /// `Inst::decode`: alignment, then range, then execute permission, then
    /// decode validity, with the same [`Trap`] payloads. Does not execute
    /// anything, so it doubles as a cached `peek`.
    ///
    /// # Errors
    ///
    /// [`Trap::UnalignedFetch`], [`Trap::OutOfRange`], [`Trap::PermExec`]
    /// or [`Trap::InvalidInst`], exactly as the raw fetch/decode path.
    pub fn fetch(&mut self, mem: &Memory, addr: u64) -> Result<Inst, Trap> {
        if !addr.is_multiple_of(INST_SIZE_U64) {
            return Err(Trap::UnalignedFetch { addr });
        }
        let pi = (addr / PAGE_SIZE) as usize;
        if pi >= mem.page_count() {
            return Err(Trap::OutOfRange { addr });
        }
        if !mem.perms_at(addr).can_exec() {
            return Err(Trap::PermExec { addr });
        }
        let page = Self::validate_page(&mut self.pages, &mut self.stats, pi, mem.page_gen(pi));
        let li = ((addr % PAGE_SIZE) / INST_SIZE_U64) as usize;
        let line = page.lines[li];
        if line.class != CLASS_EMPTY {
            self.stats.hits += 1;
            return Ok(line.inst);
        }
        let bytes: [u8; 8] = mem.peek(addr, 8).try_into().expect("aligned within page");
        let inst = Inst::decode(&bytes).map_err(|cause| Trap::InvalidInst { addr, cause })?;
        page.lines[li] = Line::new(inst, addr);
        self.stats.misses += 1;
        Ok(inst)
    }

    /// Number of currently valid decoded lines in the page containing
    /// `addr`: zero when the page was never executed or has been
    /// invalidated by a write (generation mismatch). Test/diagnostic
    /// helper.
    pub fn valid_lines(&self, mem: &Memory, addr: u64) -> usize {
        let pi = (addr / PAGE_SIZE) as usize;
        match self.pages.get(pi).and_then(Option::as_ref) {
            Some(page) if page.gen == mem.page_gen(pi) => {
                page.lines.iter().filter(|l| l.class != CLASS_EMPTY).count()
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Perms;
    use cfed_isa::{encode_all, Reg};

    fn code_mem(insts: &[Inst]) -> Memory {
        let mut mem = Memory::new(1 << 16);
        mem.map(0..2 * PAGE_SIZE, Perms::RWX);
        mem.install(0, &encode_all(insts));
        mem
    }

    /// One instruction per `Inst` variant (and per `AluOp` for the ALU
    /// forms), so class-based bookkeeping can be pinned to the
    /// authoritative per-instruction helpers exhaustively.
    fn representative_insts() -> Vec<Inst> {
        use cfed_isa::{AluOp, Cond};
        let r = Reg::R1;
        let mut v = vec![
            Inst::Nop,
            Inst::Halt,
            Inst::Trap { code: 3 },
            Inst::Out { src: r },
            Inst::MovRR { dst: r, src: Reg::R2 },
            Inst::MovRI { dst: r, imm: -5 },
            Inst::Ld { dst: r, base: Reg::SP, disp: 8 },
            Inst::St { base: Reg::SP, src: r, disp: 8 },
            Inst::Ld8 { dst: r, base: Reg::SP, disp: 1 },
            Inst::St8 { base: Reg::SP, src: r, disp: 1 },
            Inst::Push { src: r },
            Inst::Pop { dst: r },
            Inst::CMov { cc: Cond::E, dst: r, src: Reg::R2 },
            Inst::Neg { dst: r },
            Inst::Not { dst: r },
            Inst::Lea { dst: r, base: Reg::R2, disp: 4 },
            Inst::Lea2 { dst: r, base: Reg::R2, index: Reg::R3, disp: 4 },
            Inst::LeaSub { dst: r, base: Reg::R2, index: Reg::R3, disp: 4 },
            Inst::Jmp { offset: 16 },
            Inst::Jcc { cc: Cond::Ne, offset: -16 },
            Inst::JRz { src: r, offset: 24 },
            Inst::JRnz { src: r, offset: 24 },
            Inst::Call { offset: 32 },
            Inst::CallR { target: r },
            Inst::JmpR { target: r },
            Inst::Ret,
        ];
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Sar,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Cmp,
            AluOp::Test,
        ] {
            v.push(Inst::Alu { op, dst: r, src: Reg::R2 });
            v.push(Inst::AluI { op, dst: r, imm: 3 });
        }
        v
    }

    #[test]
    fn class_table_matches_cost_model() {
        // An intentionally skewed model so no two classes share a cost.
        let model = CostModel {
            alu: 2,
            cmov: 3,
            mul: 5,
            div: 7,
            load: 11,
            store: 13,
            stack: 17,
            branch_taken: 19,
            branch_not_taken: 23,
            call: 29,
            ret: 31,
            indirect_penalty: 37,
            out: 41,
        };
        let table = cost_table(&model);
        for inst in representative_insts() {
            let line = Line::new(inst, 0x100);
            if matches!(inst, Inst::Trap { .. }) {
                continue; // never retires, class never charged
            }
            for taken in [false, true] {
                assert_eq!(
                    table[line.class as usize][taken as usize],
                    model.cost(&inst, taken),
                    "cost mismatch for {inst:?} taken={taken}"
                );
            }
            assert_eq!(line.class >= C_JMP, inst.is_branch(), "branch class for {inst:?}");
            assert_eq!(line.class == C_COND, inst.is_cond_branch(), "cond class for {inst:?}");
        }
    }

    #[test]
    fn line_metadata_matches_inst_helpers() {
        for inst in representative_insts() {
            let addr = 0x2000;
            let line = Line::new(inst, addr);
            assert_eq!(
                line.writes_mem,
                crate::cpu::inst_writes_mem(&inst),
                "writes_mem for {inst:?}"
            );
            assert_eq!(line.target, inst.direct_target(addr).unwrap_or(0), "target for {inst:?}");
        }
    }

    #[test]
    fn fetch_matches_raw_decode() {
        let mem = code_mem(&[Inst::MovRI { dst: Reg::R1, imm: 5 }, Inst::Halt]);
        let mut cache = DecodedCache::new();
        for addr in [0u64, 8, 0, 8] {
            let raw = Inst::decode(&mem.fetch(addr).unwrap()).unwrap();
            assert_eq!(cache.fetch(&mem, addr).unwrap(), raw);
        }
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn traps_identical_to_raw_fetch() {
        let mem = code_mem(&[Inst::Halt]);
        let mut cache = DecodedCache::new();
        // Misaligned, unmapped (no exec), out of range.
        for addr in [4u64, 3 * PAGE_SIZE, mem.size(), u64::MAX - 7] {
            let raw = mem.fetch(addr).map(|_| ()).unwrap_err();
            assert_eq!(cache.fetch(&mem, addr).unwrap_err(), raw);
        }
    }

    #[test]
    fn decode_failures_propagate_and_are_not_cached() {
        let mut mem = code_mem(&[]);
        mem.install(0, &[0xFF; 8]);
        let mut cache = DecodedCache::new();
        assert!(matches!(cache.fetch(&mem, 0), Err(Trap::InvalidInst { addr: 0, .. })));
        assert!(matches!(cache.fetch(&mem, 0), Err(Trap::InvalidInst { addr: 0, .. })));
        assert_eq!(cache.stats().misses, 0);
        // Overwriting with a valid instruction decodes fine afterwards.
        mem.install(0, &encode_all(&[Inst::Nop]));
        assert_eq!(cache.fetch(&mem, 0).unwrap(), Inst::Nop);
    }

    #[test]
    fn write_invalidates_exactly_that_page() {
        let insts = vec![Inst::Nop; 2 * LINES_PER_PAGE];
        let mut mem = code_mem(&insts);
        let mut cache = DecodedCache::new();
        // Warm one line in each of the two pages.
        cache.fetch(&mem, 0).unwrap();
        cache.fetch(&mem, PAGE_SIZE).unwrap();
        assert_eq!(cache.valid_lines(&mem, 0), 1);
        assert_eq!(cache.valid_lines(&mem, PAGE_SIZE), 1);
        // A write to the first (executable) page invalidates its lines and
        // only its lines.
        mem.write_u64(16, 0).unwrap();
        assert_eq!(cache.valid_lines(&mem, 0), 0, "written page must drop");
        assert_eq!(cache.valid_lines(&mem, PAGE_SIZE), 1, "other page must survive");
        // Re-fetch decodes the new contents and counts one invalidation.
        cache.fetch(&mem, 0).unwrap();
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.valid_lines(&mem, 0), 1);
    }

    #[test]
    fn install_also_invalidates() {
        let mut mem = code_mem(&[Inst::Nop]);
        let mut cache = DecodedCache::new();
        assert_eq!(cache.fetch(&mem, 0).unwrap(), Inst::Nop);
        mem.install(0, &encode_all(&[Inst::Halt]));
        assert_eq!(cache.fetch(&mem, 0).unwrap(), Inst::Halt, "stale line must not survive");
    }

    #[test]
    fn revoked_exec_permission_traps_despite_cached_line() {
        let mut mem = code_mem(&[Inst::Nop]);
        let mut cache = DecodedCache::new();
        cache.fetch(&mem, 0).unwrap();
        mem.map(0..PAGE_SIZE, Perms::RW);
        assert_eq!(cache.fetch(&mem, 0), Err(Trap::PermExec { addr: 0 }));
    }
}
