//! The VISA CPU interpreter.
//!
//! A straightforward fetch–decode–execute interpreter with deterministic
//! cycle accounting. Traps abort the faulting instruction *before* any state
//! commits, so a supervisor (the DBT runtime, or a fault-injection harness)
//! can inspect and repair state and resume execution.

use crate::icache::{self, DecodedCache};
use crate::mem::PAGE_SIZE;
use crate::profiler::ExecProfiler;
use crate::LINES_PER_PAGE;
use crate::{Memory, Trap};
use cfed_isa::{flags, AluOp, Cond, CostModel, Flags, Inst, Reg, INST_SIZE_U64};

/// Execution statistics accumulated by a [`Cpu`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub insts: u64,
    /// Cycles accumulated under the CPU's [`CostModel`].
    pub cycles: u64,
    /// Control-transfer instructions retired.
    pub branches: u64,
    /// Of those, how many redirected control (taken conditionals plus all
    /// unconditional transfers).
    pub branches_taken: u64,
    /// Traps raised. The faulting instruction never commits, so a trap that
    /// a supervisor services and resumes (e.g. a DBT exit stub) counts here
    /// but not in `insts`.
    pub traps: u64,
}

/// Result of a single successful [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The instruction retired; execution continues.
    Continue,
    /// A `halt` retired; the machine is stopped.
    Halt,
}

/// Reason a [`Cpu::run`] loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The program executed `halt`; the code is taken from `r0`.
    Halted { code: u64 },
    /// A trap was raised and no supervisor consumed it.
    Trapped(Trap),
    /// The step budget was exhausted (used to bound faulty runs that enter
    /// infinite loops).
    StepLimit,
}

/// The simulated processor.
///
/// # Examples
///
/// ```
/// use cfed_isa::{encode_all, Inst, Reg};
/// use cfed_sim::{Cpu, ExitReason, Memory, Perms};
///
/// let code = encode_all(&[Inst::MovRI { dst: Reg::R0, imm: 7 }, Inst::Halt]);
/// let mut mem = Memory::new(1 << 16);
/// mem.map(0..0x1000, Perms::RX);
/// mem.install(0, &code);
/// let mut cpu = Cpu::new();
/// cpu.set_ip(0);
/// assert_eq!(cpu.run(&mut mem, 100), ExitReason::Halted { code: 7 });
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    regs: [u64; Reg::COUNT],
    flags: Flags,
    ip: u64,
    halted: bool,
    cost: CostModel,
    stats: ExecStats,
    output: Vec<u64>,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new()
    }
}

impl Cpu {
    /// Creates a CPU with zeroed registers and the default cost model.
    pub fn new() -> Cpu {
        Cpu::with_cost_model(CostModel::default())
    }

    /// Creates a CPU using a custom cycle-cost model.
    pub fn with_cost_model(cost: CostModel) -> Cpu {
        Cpu {
            regs: [0; Reg::COUNT],
            flags: Flags::empty(),
            ip: 0,
            halted: false,
            cost,
            stats: ExecStats::default(),
            output: Vec::new(),
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// The condition flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Overwrites the condition flags (used by flag-fault injection).
    pub fn set_flags(&mut self, f: Flags) {
        self.flags = f;
    }

    /// The instruction pointer.
    pub fn ip(&self) -> u64 {
        self.ip
    }

    /// Sets the instruction pointer (supervisor-level redirect).
    pub fn set_ip(&mut self, ip: u64) {
        self.ip = ip;
    }

    /// Whether a `halt` has retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Clears the halted latch so execution can be resumed (supervisor use).
    pub fn clear_halted(&mut self) {
        self.halted = false;
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Resets the statistics counters to zero.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// Charges extra cycles to the running total — used by supervisors to
    /// model costs that happen outside simulated code (e.g. the DBT's
    /// indirect-branch dispatcher).
    pub fn add_cycles(&mut self, cycles: u64) {
        self.stats.cycles += cycles;
    }

    /// The values emitted by `out` so far — the observable program output
    /// compared against a golden run to detect silent data corruption.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Takes ownership of the output stream, leaving it empty.
    pub fn take_output(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.output)
    }

    /// The program's exit code (`r0` at `halt`), if halted.
    pub fn exit_code(&self) -> Option<u64> {
        self.halted.then(|| self.reg(Reg::R0))
    }

    /// The cost model this CPU charges cycles under — native code
    /// generators bake the same per-instruction costs into emitted code
    /// so cycle counts stay identical across engines.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Folds the statistics deltas accumulated by a burst of natively
    /// executed guest code into this CPU, as if each instruction had
    /// retired through [`Cpu::step`].
    pub fn apply_native_delta(
        &mut self,
        insts: u64,
        cycles: u64,
        branches: u64,
        branches_taken: u64,
        traps: u64,
    ) {
        self.stats.insts += insts;
        self.stats.cycles += cycles;
        self.stats.branches += branches;
        self.stats.branches_taken += branches_taken;
        self.stats.traps += traps;
    }

    /// Appends one value to the observable output stream — the reporting
    /// path for natively executed `out` instructions.
    pub fn push_output(&mut self, value: u64) {
        self.output.push(value);
    }

    /// Latches the halted state without retiring an instruction — used by
    /// supervisors whose emitted code already accounted the `halt`.
    pub fn set_halted(&mut self) {
        self.halted = true;
    }

    #[inline(always)]
    fn push(&mut self, mem: &mut Memory, value: u64) -> Result<(), Trap> {
        let sp = self.reg(Reg::SP).wrapping_sub(8);
        mem.write_u64(sp, value)?;
        self.set_reg(Reg::SP, sp);
        Ok(())
    }

    #[inline(always)]
    fn pop(&mut self, mem: &Memory) -> Result<u64, Trap> {
        let sp = self.reg(Reg::SP);
        let value = mem.read_u64(sp)?;
        self.set_reg(Reg::SP, sp.wrapping_add(8));
        Ok(value)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] without committing any architectural state (the
    /// instruction pointer still addresses the faulting instruction); only
    /// the `traps` statistic advances.
    pub fn step(&mut self, mem: &mut Memory) -> Result<Step, Trap> {
        let result = self.step_inner(mem);
        if result.is_err() {
            self.stats.traps += 1;
        }
        result
    }

    fn step_inner(&mut self, mem: &mut Memory) -> Result<Step, Trap> {
        debug_assert!(!self.halted, "stepping a halted cpu");
        let addr = self.ip;
        let bytes = mem.fetch(addr)?;
        let inst = Inst::decode(&bytes).map_err(|cause| Trap::InvalidInst { addr, cause })?;
        self.exec_inst(mem, addr, inst)
    }

    /// Executes an already-fetched-and-decoded `inst` taken from `addr`.
    /// The single execute stage shared by the raw and decoded paths, so the
    /// two are equivalent by construction.
    fn exec_inst(&mut self, mem: &mut Memory, addr: u64, inst: Inst) -> Result<Step, Trap> {
        self.exec_inst_impl::<false>(mem, addr, inst, 0).map(|(step, _, _)| step)
    }

    /// The execute stage proper. Both instantiations share every arm, so
    /// raw and pre-decoded execution agree by construction:
    ///
    /// * `PRE = false` (raw [`Cpu::step`]): direct branch targets are
    ///   computed here and the statistics epilogue (instruction, cycle and
    ///   branch counters) runs before returning.
    /// * `PRE = true` ([`Cpu::run_fused`]): `target` supplies the
    ///   precomputed absolute taken-target of direct branches (a pure
    ///   function of the instruction and its fixed address) and the caller
    ///   takes over the epilogue using the returned `taken` and the line's
    ///   cached cost class.
    #[inline(always)]
    fn exec_inst_impl<const PRE: bool>(
        &mut self,
        mem: &mut Memory,
        addr: u64,
        inst: Inst,
        target: u64,
    ) -> Result<(Step, bool, u64), Trap> {
        let next = addr.wrapping_add(INST_SIZE_U64);
        macro_rules! taken_target {
            () => {
                if PRE {
                    target
                } else {
                    inst.direct_target(addr).expect("direct")
                }
            };
        }

        // `taken` is meaningful only for conditional branches. `new_ip` is
        // committed to `self.ip` after the match (for `PRE`, by the caller
        // at burst exit), which preserves the trap contract: a trapping
        // instruction leaves `self.ip` untouched.
        let mut taken = false;
        let new_ip;
        match inst {
            Inst::Nop => new_ip = next,
            Inst::Halt => {
                self.halted = true;
                new_ip = next;
            }
            Inst::Out { src } => {
                self.output.push(self.reg(src));
                new_ip = next;
            }
            Inst::Trap { code } => return Err(Trap::Software { addr, code }),

            Inst::MovRR { dst, src } => {
                let v = self.reg(src);
                self.set_reg(dst, v);
                new_ip = next;
            }
            Inst::MovRI { dst, imm } => {
                self.set_reg(dst, imm as i64 as u64);
                new_ip = next;
            }
            Inst::Ld { dst, base, disp } => {
                let a = self.reg(base).wrapping_add(disp as i64 as u64);
                let v = mem.read_u64(a)?;
                self.set_reg(dst, v);
                new_ip = next;
            }
            Inst::St { base, src, disp } => {
                let a = self.reg(base).wrapping_add(disp as i64 as u64);
                mem.write_u64(a, self.reg(src))?;
                new_ip = next;
            }
            Inst::Ld8 { dst, base, disp } => {
                let a = self.reg(base).wrapping_add(disp as i64 as u64);
                let v = mem.read_u8(a)?;
                self.set_reg(dst, v as u64);
                new_ip = next;
            }
            Inst::St8 { base, src, disp } => {
                let a = self.reg(base).wrapping_add(disp as i64 as u64);
                mem.write_u8(a, self.reg(src) as u8)?;
                new_ip = next;
            }
            Inst::Push { src } => {
                let v = self.reg(src);
                self.push(mem, v)?;
                new_ip = next;
            }
            Inst::Pop { dst } => {
                let v = self.pop(mem)?;
                self.set_reg(dst, v);
                new_ip = next;
            }
            Inst::CMov { cc, dst, src } => {
                if cc.eval(self.flags) {
                    let v = self.reg(src);
                    self.set_reg(dst, v);
                }
                new_ip = next;
            }

            Inst::Alu { op, dst, src } => {
                self.exec_alu(op, dst, self.reg(src), addr)?;
                new_ip = next;
            }
            Inst::AluI { op, dst, imm } => {
                self.exec_alu(op, dst, imm as i64 as u64, addr)?;
                new_ip = next;
            }
            Inst::Neg { dst } => {
                let (r, f) = flags::sub_with_flags(0, self.reg(dst));
                self.set_reg(dst, r);
                self.flags = f;
                new_ip = next;
            }
            Inst::Not { dst } => {
                let r = !self.reg(dst);
                self.set_reg(dst, r);
                self.flags = flags::logic_flags(r);
                new_ip = next;
            }

            Inst::Lea { dst, base, disp } => {
                let v = self.reg(base).wrapping_add(disp as i64 as u64);
                self.set_reg(dst, v);
                new_ip = next;
            }
            Inst::Lea2 { dst, base, index, disp } => {
                let v =
                    self.reg(base).wrapping_add(self.reg(index)).wrapping_add(disp as i64 as u64);
                self.set_reg(dst, v);
                new_ip = next;
            }
            Inst::LeaSub { dst, base, index, disp } => {
                let v =
                    self.reg(base).wrapping_sub(self.reg(index)).wrapping_add(disp as i64 as u64);
                self.set_reg(dst, v);
                new_ip = next;
            }

            Inst::Jmp { .. } => {
                new_ip = taken_target!();
            }
            Inst::Jcc { cc, .. } => {
                taken = cc.eval(self.flags);
                new_ip = if taken { taken_target!() } else { next };
            }
            Inst::JRz { src, .. } => {
                taken = self.reg(src) == 0;
                new_ip = if taken { taken_target!() } else { next };
            }
            Inst::JRnz { src, .. } => {
                taken = self.reg(src) != 0;
                new_ip = if taken { taken_target!() } else { next };
            }
            Inst::Call { .. } => {
                self.push(mem, next)?;
                new_ip = taken_target!();
            }
            Inst::CallR { target } => {
                let t = self.reg(target);
                self.push(mem, next)?;
                new_ip = t;
            }
            Inst::JmpR { target } => {
                new_ip = self.reg(target);
            }
            Inst::Ret => {
                new_ip = self.pop(mem)?;
            }
        }

        if !PRE {
            self.ip = new_ip;
            self.stats.insts += 1;
            self.stats.cycles += self.cost.cost(&inst, taken);
            if inst.is_branch() {
                self.stats.branches += 1;
                let redirected = taken || !inst.is_cond_branch();
                if redirected {
                    self.stats.branches_taken += 1;
                }
            }
        }
        // `PRE` callers keep `self.ip` in a register across the burst and
        // detect halts from the cached class, so neither field is touched.
        let step = if !PRE && self.halted { Step::Halt } else { Step::Continue };
        Ok((step, taken, new_ip))
    }

    #[inline(always)]
    fn exec_alu(&mut self, op: AluOp, dst: Reg, rhs: u64, addr: u64) -> Result<(), Trap> {
        let lhs = self.reg(dst);
        let (result, f) = match op {
            AluOp::Add => flags::add_with_flags(lhs, rhs),
            AluOp::Sub | AluOp::Cmp => flags::sub_with_flags(lhs, rhs),
            AluOp::And | AluOp::Test => {
                let r = lhs & rhs;
                (r, flags::logic_flags(r))
            }
            AluOp::Or => {
                let r = lhs | rhs;
                (r, flags::logic_flags(r))
            }
            AluOp::Xor => {
                let r = lhs ^ rhs;
                (r, flags::logic_flags(r))
            }
            AluOp::Shl => flags::shl_with_flags(lhs, rhs),
            AluOp::Shr => flags::shr_with_flags(lhs, rhs),
            AluOp::Sar => flags::sar_with_flags(lhs, rhs),
            AluOp::Mul => flags::mul_with_flags(lhs, rhs),
            AluOp::Div => {
                if rhs == 0 {
                    return Err(Trap::DivByZero { addr });
                }
                let r = lhs / rhs;
                (r, flags::logic_flags(r))
            }
        };
        if !op.is_compare() {
            self.set_reg(dst, result);
        }
        self.flags = f;
        Ok(())
    }

    /// Runs until halt, trap, or `max_steps` retired instructions.
    pub fn run(&mut self, mem: &mut Memory, max_steps: u64) -> ExitReason {
        for _ in 0..max_steps {
            match self.step(mem) {
                Ok(Step::Continue) => {}
                Ok(Step::Halt) => {
                    return ExitReason::Halted { code: self.reg(Reg::R0) };
                }
                Err(trap) => return ExitReason::Trapped(trap),
            }
        }
        ExitReason::StepLimit
    }

    /// As [`Cpu::step`], but fetching through a pre-decoded instruction
    /// cache instead of raw fetch+decode. Architecturally equivalent
    /// (identical results, traps, stats and dirty-log behaviour); only the
    /// decode work is saved.
    ///
    /// # Errors
    ///
    /// Same conditions and guarantees as [`Cpu::step`].
    pub fn step_decoded(
        &mut self,
        mem: &mut Memory,
        icache: &mut DecodedCache,
    ) -> Result<Step, Trap> {
        let result = self.step_decoded_inner(mem, icache);
        if result.is_err() {
            self.stats.traps += 1;
        }
        result
    }

    fn step_decoded_inner(
        &mut self,
        mem: &mut Memory,
        icache: &mut DecodedCache,
    ) -> Result<Step, Trap> {
        debug_assert!(!self.halted, "stepping a halted cpu");
        let addr = self.ip;
        let inst = icache.fetch(mem, addr)?;
        self.exec_inst(mem, addr, inst)
    }

    /// Executes up to `max` instructions from the decoded cache in fused
    /// bursts: the fetch checks (alignment, range, execute permission) and
    /// cache-page validation are hoisted to burst entry, and runs within
    /// the page execute with a single array read per instruction. Control
    /// transfers that stay on the page (to an aligned slot) keep the burst
    /// alive — permissions and mapping are host-controlled and cannot
    /// change mid-run — so tight loops execute whole iterations fused. A
    /// burst ends — forcing revalidation — when a memory write moves the
    /// executing page's write generation, at any transfer off the page or
    /// to an unaligned target, on halt, trap or the budget.
    ///
    /// Equivalent to calling [`Cpu::step`] `max` times: same architectural
    /// state, same statistics, and the same trap at the same instruction
    /// (with `traps` advanced and nothing committed). Returns
    /// `Ok(Step::Continue)` when the budget is exhausted, `Ok(Step::Halt)`
    /// when a `halt` retires.
    ///
    /// # Errors
    ///
    /// The first trap any of the executed instructions raises.
    pub fn run_fused(
        &mut self,
        mem: &mut Memory,
        icache: &mut DecodedCache,
        max: u64,
    ) -> Result<Step, Trap> {
        // The scratch profiler is never touched: the `PROF = false`
        // instantiation contains no profiling code, so this path is the
        // exact pre-profiler loop.
        self.run_fused_impl::<false>(mem, icache, max, &mut ExecProfiler::new())
    }

    /// As [`Cpu::run_fused`], recording every retirement's address and
    /// cycle cost into `prof`. Architecturally identical to the unprofiled
    /// path (the profiler observes, never influences); the per-instruction
    /// cost is two array adds, with the counter page resolved once per
    /// burst entry alongside the decoded page.
    ///
    /// # Errors
    ///
    /// As [`Cpu::run_fused`].
    pub fn run_fused_profiled(
        &mut self,
        mem: &mut Memory,
        icache: &mut DecodedCache,
        max: u64,
        prof: &mut ExecProfiler,
    ) -> Result<Step, Trap> {
        self.run_fused_impl::<true>(mem, icache, max, prof)
    }

    fn run_fused_impl<const PROF: bool>(
        &mut self,
        mem: &mut Memory,
        icache: &mut DecodedCache,
        max: u64,
        prof: &mut ExecProfiler,
    ) -> Result<Step, Trap> {
        // Per-class cycle costs under the *current* cost model, so cached
        // lines never embed stale costs even if the model is exotic.
        let table = icache::cost_table(&self.cost);
        let mut retired: u64 = 0;
        let mut misses: u64 = 0;
        // One extra fetch was classified (hit or miss) but not retired:
        // set when an executed instruction traps after a successful fetch.
        let mut trapped_fetch: u64 = 0;
        // Retirement statistics accumulate in locals and flush once at the
        // end, keeping per-instruction bookkeeping in registers.
        let mut d_cycles: u64 = 0;
        let mut d_branches: u64 = 0;
        let mut d_taken: u64 = 0;
        // The instruction pointer lives in `ip` for the whole call — the
        // execute stage returns the successor instead of storing it — and
        // is committed to `self.ip` once at the end. On a trap `ip` is the
        // trapping instruction's address, exactly where the raw path leaves
        // `self.ip` (a trapping instruction never commits its successor).
        let mut ip = self.ip;
        let result = 'outer: loop {
            if retired >= max {
                break Ok(Step::Continue);
            }
            debug_assert!(!self.halted, "stepping a halted cpu");
            // Burst-entry checks, trap-for-trap identical to `Memory::fetch`
            // (an aligned in-range page fetch can never straddle pages, so
            // page-level checks cover the full 8 bytes).
            if !ip.is_multiple_of(INST_SIZE_U64) {
                self.stats.traps += 1;
                break Err(Trap::UnalignedFetch { addr: ip });
            }
            let pi = (ip / PAGE_SIZE) as usize;
            if pi >= mem.page_count() {
                self.stats.traps += 1;
                break Err(Trap::OutOfRange { addr: ip });
            }
            if !mem.perms_at(ip).can_exec() {
                self.stats.traps += 1;
                break Err(Trap::PermExec { addr: ip });
            }
            let page_base = pi as u64 * PAGE_SIZE;
            let gen = mem.page_gen(pi);
            let page = DecodedCache::validate_page(&mut icache.pages, &mut icache.stats, pi, gen);
            // Profiling counter page, resolved once per burst like the
            // decoded page. `None` (and dead code below) when `!PROF`.
            let mut pp = PROF.then(|| prof.page_mut(pi));
            // Fused run within the validated page. The line index is masked
            // into range so the hot loop carries no bounds checks.
            let mut li = ((ip & (PAGE_SIZE - 1)) / INST_SIZE_U64) as usize;
            loop {
                let mut line = page.lines[li & (LINES_PER_PAGE - 1)];
                if line.class == icache::CLASS_EMPTY {
                    let bytes: [u8; 8] = mem.peek(ip, 8).try_into().expect("aligned within page");
                    match Inst::decode(&bytes) {
                        Ok(inst) => {
                            misses += 1;
                            line = icache::Line::new(inst, ip);
                            page.lines[li & (LINES_PER_PAGE - 1)] = line;
                        }
                        Err(cause) => {
                            self.stats.traps += 1;
                            break 'outer Err(Trap::InvalidInst { addr: ip, cause });
                        }
                    }
                }
                let (_, taken, next) =
                    match self.exec_inst_impl::<true>(mem, ip, line.inst, line.target) {
                        Ok(r) => r,
                        Err(trap) => {
                            self.stats.traps += 1;
                            trapped_fetch = 1;
                            break 'outer Err(trap);
                        }
                    };
                // Statistics epilogue via the cached class — equivalent to
                // the `PRE = false` epilogue inside `exec_inst_impl`
                // (pinned by `class_table_matches_cost_model`).
                let cost = table[line.class as usize][taken as usize];
                d_cycles += cost;
                if PROF {
                    let pp = pp.as_mut().expect("PROF implies a counter page");
                    pp.hits[li & (LINES_PER_PAGE - 1)] += 1;
                    pp.cycles[li & (LINES_PER_PAGE - 1)] += cost;
                }
                if line.class >= icache::C_JMP {
                    d_branches += 1;
                    if taken || line.class != icache::C_COND {
                        d_taken += 1;
                    }
                }
                retired += 1;
                if line.class == icache::C_HALT {
                    ip = next;
                    break 'outer Ok(Step::Halt);
                }
                if line.class < icache::C_JMP {
                    // Fall-through: `next == ip + 8`, so alignment and the
                    // page lower bound hold by construction; only the page
                    // end, the budget and a store that moved this page's
                    // write generation can end the burst.
                    ip = next;
                    if retired >= max
                        || (line.writes_mem && mem.page_gen(pi) != gen)
                        || next >= page_base + PAGE_SIZE
                    {
                        continue 'outer;
                    }
                    li += 1;
                } else {
                    ip = next;
                    if retired >= max
                        || (line.writes_mem && mem.page_gen(pi) != gen)
                        || !next.is_multiple_of(INST_SIZE_U64)
                        || next < page_base
                        || next >= page_base + PAGE_SIZE
                    {
                        continue 'outer;
                    }
                    li = ((ip & (PAGE_SIZE - 1)) / INST_SIZE_U64) as usize;
                }
            }
        };
        self.ip = ip;
        self.stats.insts += retired;
        self.stats.cycles += d_cycles;
        self.stats.branches += d_branches;
        self.stats.branches_taken += d_taken;
        // Every classified fetch (the retired instructions, plus a final one
        // whose execution trapped) was either a hit or a decode miss.
        icache.stats.hits += retired + trapped_fetch - misses;
        icache.stats.misses += misses;
        result
    }

    /// As [`Cpu::run`], but through the decoded cache via [`Cpu::run_fused`]
    /// — same [`ExitReason`] for the same program, state and budget.
    pub fn run_decoded(
        &mut self,
        mem: &mut Memory,
        icache: &mut DecodedCache,
        max_steps: u64,
    ) -> ExitReason {
        match self.run_fused(mem, icache, max_steps) {
            Ok(Step::Halt) => ExitReason::Halted { code: self.reg(Reg::R0) },
            Ok(Step::Continue) => ExitReason::StepLimit,
            Err(trap) => ExitReason::Trapped(trap),
        }
    }

    /// Decodes (without executing) the instruction at the current `ip`.
    /// Observation helper for analyzers that need to inspect upcoming
    /// branches; does not affect statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as a fetch during [`Cpu::step`].
    pub fn peek_inst(&self, mem: &Memory) -> Result<Inst, Trap> {
        let bytes = mem.fetch(self.ip)?;
        Inst::decode(&bytes).map_err(|cause| Trap::InvalidInst { addr: self.ip, cause })
    }

    /// Evaluates whether the conditional branch `inst` would be taken in the
    /// current machine state.
    pub fn would_take(&self, inst: &Inst) -> bool {
        match *inst {
            Inst::Jcc { cc, .. } => cc.eval(self.flags),
            Inst::JRz { src, .. } => self.reg(src) == 0,
            Inst::JRnz { src, .. } => self.reg(src) != 0,
            _ => !inst.is_cond_branch() && inst.is_branch(),
        }
    }

    /// Evaluates whether `inst` would be taken under a hypothetical flags
    /// value — the flag-fault side of the error model (§2).
    pub fn would_take_with_flags(&self, inst: &Inst, f: Flags) -> bool {
        match *inst {
            Inst::Jcc { cc, .. } => cc.eval(f),
            _ => self.would_take(inst),
        }
    }

    /// The dynamic target of the branch `inst` at the current state (reads
    /// the stack for `ret`), or `None` for non-branches.
    pub fn branch_target(&self, inst: &Inst, mem: &Memory) -> Option<u64> {
        match *inst {
            Inst::JmpR { target } | Inst::CallR { target } => Some(self.reg(target)),
            Inst::Ret => mem.read_u64(self.reg(Reg::SP)).ok(),
            _ => inst.direct_target(self.ip),
        }
    }
}

/// Convenience: evaluate a `Jcc` condition under explicit flags.
pub fn cond_taken(cc: Cond, f: Flags) -> bool {
    cc.eval(f)
}

/// Whether `inst` can store to guest memory — the only way a retiring
/// instruction can invalidate decoded lines, so the fused runner must
/// revalidate its page after one of these.
pub(crate) fn inst_writes_mem(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::St { .. }
            | Inst::St8 { .. }
            | Inst::Push { .. }
            | Inst::Call { .. }
            | Inst::CallR { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Perms;
    use cfed_isa::encode_all;

    fn machine(insts: &[Inst]) -> (Cpu, Memory) {
        let mut mem = Memory::new(1 << 20);
        mem.map(0..0x4000, Perms::RX);
        mem.map(0x4000..0x10000, Perms::RW); // data + stack
        mem.install(0, &encode_all(insts));
        let mut cpu = Cpu::new();
        cpu.set_ip(0);
        cpu.set_reg(Reg::SP, 0x10000);
        (cpu, mem)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (mut cpu, mut mem) = machine(&[
            Inst::MovRI { dst: Reg::R0, imm: 6 },
            Inst::AluI { op: AluOp::Mul, dst: Reg::R0, imm: 7 },
            Inst::Halt,
        ]);
        assert_eq!(cpu.run(&mut mem, 10), ExitReason::Halted { code: 42 });
        assert_eq!(cpu.stats().insts, 3);
    }

    #[test]
    fn loop_with_conditional_branch() {
        // r1 = 0; for r0 in 5..0 { r1 += r0 }  => r1 = 15
        let (mut cpu, mut mem) = machine(&[
            Inst::MovRI { dst: Reg::R0, imm: 5 },
            Inst::MovRI { dst: Reg::R1, imm: 0 },
            Inst::Alu { op: AluOp::Add, dst: Reg::R1, src: Reg::R0 },
            Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 },
            Inst::Jcc { cc: Cond::Ne, offset: -24 },
            Inst::Halt,
        ]);
        cpu.run(&mut mem, 100);
        assert_eq!(cpu.reg(Reg::R1), 15);
        assert_eq!(cpu.stats().branches, 5);
        assert_eq!(cpu.stats().branches_taken, 4);
    }

    #[test]
    fn call_and_ret() {
        let (mut cpu, mut mem) = machine(&[
            Inst::Call { offset: 16 },            // 0: call 0x18
            Inst::Halt,                           // 8
            Inst::Nop,                            // 16 (padding)
            Inst::MovRI { dst: Reg::R0, imm: 9 }, // 24: callee
            Inst::Ret,                            // 32
        ]);
        assert_eq!(cpu.run(&mut mem, 10), ExitReason::Halted { code: 9 });
    }

    #[test]
    fn push_pop_roundtrip() {
        let (mut cpu, mut mem) = machine(&[
            Inst::MovRI { dst: Reg::R1, imm: 1234 },
            Inst::Push { src: Reg::R1 },
            Inst::Pop { dst: Reg::R2 },
            Inst::Halt,
        ]);
        cpu.run(&mut mem, 10);
        assert_eq!(cpu.reg(Reg::R2), 1234);
        assert_eq!(cpu.reg(Reg::SP), 0x10000);
    }

    #[test]
    fn memory_ops_and_output() {
        let (mut cpu, mut mem) = machine(&[
            Inst::MovRI { dst: Reg::R1, imm: 0x5000 },
            Inst::MovRI { dst: Reg::R2, imm: 77 },
            Inst::St { base: Reg::R1, src: Reg::R2, disp: 8 },
            Inst::Ld { dst: Reg::R3, base: Reg::R1, disp: 8 },
            Inst::Out { src: Reg::R3 },
            Inst::Halt,
        ]);
        cpu.run(&mut mem, 10);
        assert_eq!(cpu.output(), &[77]);
    }

    #[test]
    fn byte_ops_zero_extend() {
        let (mut cpu, mut mem) = machine(&[
            Inst::MovRI { dst: Reg::R1, imm: 0x5000 },
            Inst::MovRI { dst: Reg::R2, imm: -1 }, // 0xFF..FF
            Inst::St8 { base: Reg::R1, src: Reg::R2, disp: 0 },
            Inst::Ld8 { dst: Reg::R3, base: Reg::R1, disp: 0 },
            Inst::Halt,
        ]);
        cpu.run(&mut mem, 10);
        assert_eq!(cpu.reg(Reg::R3), 0xFF);
    }

    #[test]
    fn cmov_obeys_condition() {
        let (mut cpu, mut mem) = machine(&[
            Inst::MovRI { dst: Reg::R1, imm: 1 },
            Inst::MovRI { dst: Reg::R2, imm: 2 },
            Inst::AluI { op: AluOp::Cmp, dst: Reg::R1, imm: 1 }, // ZF=1
            Inst::CMov { cc: Cond::E, dst: Reg::R3, src: Reg::R2 },
            Inst::CMov { cc: Cond::Ne, dst: Reg::R4, src: Reg::R2 },
            Inst::Halt,
        ]);
        cpu.run(&mut mem, 10);
        assert_eq!(cpu.reg(Reg::R3), 2);
        assert_eq!(cpu.reg(Reg::R4), 0);
    }

    #[test]
    fn lea_preserves_flags() {
        let (mut cpu, mut mem) = machine(&[
            Inst::AluI { op: AluOp::Cmp, dst: Reg::R0, imm: 0 }, // ZF=1
            Inst::Lea { dst: Reg::R8, base: Reg::R8, disp: 100 },
            Inst::LeaSub { dst: Reg::R8, base: Reg::R8, index: Reg::R9, disp: 1 },
            Inst::Halt,
        ]);
        cpu.run(&mut mem, 10);
        assert!(cpu.flags().zf(), "lea family must not clobber flags");
        assert_eq!(cpu.reg(Reg::R8), 101);
    }

    #[test]
    fn xor_clobbers_flags() {
        let (mut cpu, mut mem) = machine(&[
            Inst::AluI { op: AluOp::Cmp, dst: Reg::R0, imm: 0 }, // ZF=1
            Inst::AluI { op: AluOp::Xor, dst: Reg::R8, imm: 5 },
            Inst::Halt,
        ]);
        cpu.run(&mut mem, 10);
        assert!(!cpu.flags().zf(), "xor writes flags (the §5.1 problem)");
    }

    #[test]
    fn jrz_jrnz_ignore_flags() {
        let (mut cpu, mut mem) = machine(&[
            Inst::MovRI { dst: Reg::R8, imm: 0 },
            Inst::AluI { op: AluOp::Cmp, dst: Reg::R0, imm: 1 }, // ZF=0
            Inst::JRz { src: Reg::R8, offset: 8 },               // taken: r8 == 0
            Inst::Halt,                                          // skipped
            Inst::MovRI { dst: Reg::R0, imm: 1 },
            Inst::Halt,
        ]);
        assert_eq!(cpu.run(&mut mem, 10), ExitReason::Halted { code: 1 });
        assert!(!cpu.flags().zf(), "jrz must not touch flags");
    }

    #[test]
    fn div_by_zero_traps_without_commit() {
        let (mut cpu, mut mem) = machine(&[
            Inst::MovRI { dst: Reg::R0, imm: 10 },
            Inst::Alu { op: AluOp::Div, dst: Reg::R0, src: Reg::R1 },
            Inst::Halt,
        ]);
        let r = cpu.run(&mut mem, 10);
        assert_eq!(r, ExitReason::Trapped(Trap::DivByZero { addr: 8 }));
        assert_eq!(cpu.ip(), 8, "ip must still address the faulting div");
        assert_eq!(cpu.reg(Reg::R0), 10, "dst not clobbered");
    }

    #[test]
    fn trap_instruction_reports_code() {
        let (mut cpu, mut mem) = machine(&[Inst::Trap { code: 0xC0DE_0001 }]);
        assert_eq!(
            cpu.run(&mut mem, 10),
            ExitReason::Trapped(Trap::Software { addr: 0, code: 0xC0DE_0001 })
        );
    }

    #[test]
    fn wild_jump_detected_at_fetch() {
        // Jump into the data region: next fetch raises PermExec (category F).
        let (mut cpu, mut mem) = machine(&[Inst::Jmp { offset: 0x4ff8 }]);
        assert_eq!(cpu.run(&mut mem, 10), ExitReason::Trapped(Trap::PermExec { addr: 0x5000 }));
    }

    #[test]
    fn misaligned_jump_detected_at_fetch() {
        let (mut cpu, mut mem) = machine(&[Inst::Jmp { offset: -4 }]);
        assert_eq!(cpu.run(&mut mem, 10), ExitReason::Trapped(Trap::UnalignedFetch { addr: 4 }));
    }

    #[test]
    fn step_limit_bounds_infinite_loops() {
        let (mut cpu, mut mem) = machine(&[Inst::Jmp { offset: -8 }]);
        assert_eq!(cpu.run(&mut mem, 50), ExitReason::StepLimit);
        assert_eq!(cpu.stats().insts, 50);
    }

    #[test]
    fn push_to_bad_stack_does_not_commit_sp() {
        let (mut cpu, mut mem) = machine(&[Inst::Push { src: Reg::R0 }]);
        cpu.set_reg(Reg::SP, 0x4000); // push writes to 0x3FF8 (code page, RX)
        let before = cpu.reg(Reg::SP);
        assert!(matches!(cpu.run(&mut mem, 10), ExitReason::Trapped(Trap::PermWrite { .. })));
        assert_eq!(cpu.reg(Reg::SP), before);
    }

    #[test]
    fn would_take_and_branch_target() {
        let (mut cpu, mut mem) = machine(&[
            Inst::AluI { op: AluOp::Cmp, dst: Reg::R0, imm: 0 },
            Inst::Jcc { cc: Cond::E, offset: 16 },
        ]);
        cpu.step(&mut mem).unwrap();
        let inst = cpu.peek_inst(&mem).unwrap();
        assert!(cpu.would_take(&inst));
        assert_eq!(cpu.branch_target(&inst, &mem), Some(8 + 8 + 16));
        // Flipping ZF changes the hypothetical decision.
        let flipped = cpu.flags().with_bit_flipped(Flags::ZF);
        assert!(!cpu.would_take_with_flags(&inst, flipped));
    }

    #[test]
    fn stats_cycles_monotone() {
        let (mut cpu, mut mem) =
            machine(&[Inst::Ld { dst: Reg::R0, base: Reg::SP, disp: -8 }, Inst::Halt]);
        cpu.set_reg(Reg::SP, 0x6000);
        cpu.run(&mut mem, 10);
        assert!(cpu.stats().cycles > cpu.stats().insts, "loads cost > 1 cycle");
    }
}
