//! Guest physical memory with per-page access permissions.
//!
//! A flat address space starting at 0, divided into 4 KiB pages, each with
//! independent read/write/execute permissions. Execute permission is the
//! mechanism behind the paper's category-F detection ("jumps to memory
//! regions that do not contain code can be detected by the hardware", §2 —
//! the execute-disable bit); revoking write permission on translated guest
//! pages is how the DBT learns about self-modifying code (§5).

use crate::Trap;
use std::cell::RefCell;
use std::fmt;
use std::ops::Range;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Per-thread recycling pool for address-space buffers. Allocating (and
/// zeroing) a fresh multi-MiB `Vec` per [`Memory::new`] dominates the cost
/// of restoring a machine snapshot, so dropped address spaces whose dirty
/// log is still complete (never drained) scrub just their written pages
/// and park the buffer here for the next `Memory::new` of the same size.
const BUFFER_POOL_CAP: usize = 4;

thread_local! {
    static BUFFER_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Page access permissions (read / write / execute).
///
/// # Examples
///
/// ```
/// use cfed_sim::Perms;
///
/// let rx = Perms::R | Perms::X;
/// assert!(rx.can_exec() && !rx.can_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms(0);
    /// Readable.
    pub const R: Perms = Perms(1);
    /// Writable.
    pub const W: Perms = Perms(2);
    /// Executable.
    pub const X: Perms = Perms(4);
    /// Read + write (data pages).
    pub const RW: Perms = Perms(3);
    /// Read + execute (protected code pages).
    pub const RX: Perms = Perms(5);
    /// Read + write + execute (unprotected guest code).
    pub const RWX: Perms = Perms(7);

    /// Whether reads are allowed.
    pub fn can_read(self) -> bool {
        self.0 & 1 != 0
    }
    /// Whether writes are allowed.
    pub fn can_write(self) -> bool {
        self.0 & 2 != 0
    }
    /// Whether instruction fetch is allowed.
    pub fn can_exec(self) -> bool {
        self.0 & 4 != 0
    }

    /// Returns these permissions with write access removed (the DBT's
    /// code-page protection).
    pub fn without_write(self) -> Perms {
        Perms(self.0 & !2)
    }

    /// Returns these permissions with write access added.
    pub fn with_write(self) -> Perms {
        Perms(self.0 | 2)
    }
}

impl std::ops::BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' }
        )
    }
}

/// Raw pointers into a [`Memory`]'s backing storage (see
/// [`Memory::raw_parts`]).
pub struct RawMemParts {
    /// The flat byte array, `pages * PAGE_SIZE` long.
    pub bytes: *mut u8,
    /// One [`Perms`] byte per page (R = 1, W = 2, X = 4).
    pub page_perms: *const u8,
    /// The dirty-page bitmap (bit *i* = page *i*).
    pub dirty: *mut u64,
    /// Per-page write-generation counters.
    pub page_gens: *mut u64,
    /// Number of pages.
    pub pages: u64,
}

/// The guest address space.
///
/// # Examples
///
/// ```
/// use cfed_sim::{Memory, Perms};
///
/// let mut mem = Memory::new(1 << 20);
/// mem.map(0x1000..0x3000, Perms::RW);
/// mem.write_u64(0x1000, 42).unwrap();
/// assert_eq!(mem.read_u64(0x1000).unwrap(), 42);
/// assert!(mem.fetch(0x1000).is_err()); // not executable
/// ```
#[derive(Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    page_perms: Vec<Perms>,
    /// One bit per page, set on every byte store since the last
    /// [`Memory::drain_dirty`]. Bookkeeping only — never affects execution.
    dirty: Vec<u64>,
    /// Whether [`Memory::drain_dirty`] has ever run: a drained dirty log no
    /// longer covers every written page, so the buffer cannot be scrubbed
    /// page-wise and returned to the pool on drop.
    drained: bool,
    /// Per-page write-generation counters, bumped on every store (including
    /// loader-level [`Memory::install`]). Consumers that cache derived views
    /// of page contents — the decoded instruction cache — revalidate by
    /// comparing a remembered generation against the current one, so a page
    /// write cheaply invalidates only that page's cached lines. Unlike the
    /// dirty bitmap this is never drained, so any number of observers can
    /// watch it independently.
    page_gens: Vec<u64>,
}

impl Drop for Memory {
    fn drop(&mut self) {
        // Recycle the buffer: an all-zero address space is semantically
        // identical to a fresh allocation, and scrubbing just the written
        // pages is far cheaper than zeroing (or re-allocating) the whole
        // space. Only possible while the dirty log is complete — once
        // drained, written pages are unknown and the buffer is discarded.
        if self.drained || self.bytes.is_empty() {
            return;
        }
        let dirty = self.dirty_pages();
        let bytes = std::mem::take(&mut self.bytes);
        // `try_with`: never panic if the thread-local was already torn down.
        let _ = BUFFER_POOL.try_with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() >= BUFFER_POOL_CAP {
                return;
            }
            let mut bytes = bytes;
            for base in &dirty {
                let a = *base as usize;
                bytes[a..a + PAGE_SIZE as usize].fill(0);
            }
            pool.push(bytes);
        });
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("size", &self.bytes.len())
            .field("pages", &self.page_perms.len())
            .finish()
    }
}

impl Memory {
    /// Creates an address space of `size` bytes (rounded up to a whole number
    /// of pages), with no access permissions anywhere.
    pub fn new(size: u64) -> Memory {
        let pages = size.div_ceil(PAGE_SIZE);
        let size = pages * PAGE_SIZE;
        let bytes = BUFFER_POOL
            .with(|p| {
                let mut pool = p.borrow_mut();
                let i = pool.iter().position(|b| b.len() == size as usize)?;
                Some(pool.swap_remove(i))
            })
            .unwrap_or_else(|| vec![0; size as usize]);
        Memory {
            bytes,
            page_perms: vec![Perms::NONE; pages as usize],
            dirty: vec![0; (pages as usize).div_ceil(64)],
            drained: false,
            page_gens: vec![0; pages as usize],
        }
    }

    fn mark_dirty(&mut self, addr: u64, len: u64) {
        let first = (addr / PAGE_SIZE) as usize;
        let last = ((addr + len - 1) / PAGE_SIZE) as usize;
        for p in first..=last {
            self.dirty[p / 64] |= 1 << (p % 64);
            self.page_gens[p] += 1;
        }
    }

    /// Number of pages in the address space.
    pub fn page_count(&self) -> usize {
        self.page_perms.len()
    }

    /// Write-generation counter of page `page` (zero for out-of-range
    /// indices). Increases monotonically on every store touching the page;
    /// see the field docs on `page_gens`.
    pub fn page_gen(&self, page: usize) -> u64 {
        self.page_gens.get(page).copied().unwrap_or(0)
    }

    /// Total size of the address space in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn page_of(&self, addr: u64) -> Option<usize> {
        let idx = (addr / PAGE_SIZE) as usize;
        (idx < self.page_perms.len()).then_some(idx)
    }

    /// Sets the permissions of every page overlapping `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the address space.
    pub fn map(&mut self, range: Range<u64>, perms: Perms) {
        assert!(range.end <= self.size(), "map range beyond address space");
        let first = range.start / PAGE_SIZE;
        let last = range.end.div_ceil(PAGE_SIZE);
        for p in first..last {
            self.page_perms[p as usize] = perms;
        }
    }

    /// Raw constituents of the address space, for JIT fast paths that
    /// reproduce [`Memory::read_u64`]/[`Memory::write_u64`]'s in-page
    /// check, permission test and dirty/generation bookkeeping in emitted
    /// code. The pointers stay valid (and stable) for the lifetime of the
    /// `Memory`: none of the backing vectors ever reallocate after
    /// construction. `page_perms` points at one byte per page holding the
    /// [`Perms`] bits (R = 1, W = 2, X = 4); `dirty` is the page bitmap
    /// (bit *i* = page *i*); `page_gens` is one `u64` counter per page.
    /// Writes taken through the fast path must set the dirty bit and bump
    /// the generation exactly as the slow path does.
    pub fn raw_parts(&mut self) -> RawMemParts {
        RawMemParts {
            bytes: self.bytes.as_mut_ptr(),
            page_perms: self.page_perms.as_ptr() as *const u8,
            dirty: self.dirty.as_mut_ptr(),
            page_gens: self.page_gens.as_mut_ptr(),
            pages: self.page_perms.len() as u64,
        }
    }

    /// Permissions of the page containing `addr`, or `NONE` if out of range.
    pub fn perms_at(&self, addr: u64) -> Perms {
        self.page_of(addr).map_or(Perms::NONE, |p| self.page_perms[p])
    }

    /// Returns `true` when `addr` lies in an executable page — the
    /// classifier's notion of "code region" for category F.
    pub fn is_code(&self, addr: u64) -> bool {
        self.perms_at(addr).can_exec()
    }

    /// Removes write permission from the page containing `addr`, returning
    /// the old permissions (DBT code-page protection for SMC detection).
    pub fn protect_page(&mut self, addr: u64) -> Perms {
        let p = self.page_of(addr).expect("protect_page out of range");
        let old = self.page_perms[p];
        self.page_perms[p] = old.without_write();
        old
    }

    /// Restores write permission on the page containing `addr`.
    pub fn unprotect_page(&mut self, addr: u64) {
        let p = self.page_of(addr).expect("unprotect_page out of range");
        self.page_perms[p] = self.page_perms[p].with_write();
    }

    /// The base address of the page containing `addr`.
    pub fn page_base(addr: u64) -> u64 {
        addr & !(PAGE_SIZE - 1)
    }

    fn check(&self, addr: u64, len: u64, kind: Access) -> Result<(), Trap> {
        let end = addr.checked_add(len).ok_or(Trap::OutOfRange { addr })?;
        if end > self.size() {
            return Err(Trap::OutOfRange { addr });
        }
        // Accesses are small (≤ 8 bytes) and never straddle more than two
        // pages; check each page touched.
        let mut page_addr = addr;
        loop {
            let perms = self.perms_at(page_addr);
            let ok = match kind {
                Access::Read => perms.can_read(),
                Access::Write => perms.can_write(),
                Access::Exec => perms.can_exec(),
            };
            if !ok {
                return Err(match kind {
                    Access::Read => Trap::PermRead { addr },
                    Access::Write => Trap::PermWrite { addr },
                    Access::Exec => Trap::PermExec { addr },
                });
            }
            let next = Memory::page_base(page_addr) + PAGE_SIZE;
            if next >= end {
                return Ok(());
            }
            page_addr = next;
        }
    }

    /// Page index of an access that provably stays within one in-range
    /// page, or `None` when the general (slow) checks must run. A `Some`
    /// index also proves `addr + len <= self.size()`, since the byte array
    /// is exactly `page_count * PAGE_SIZE` long.
    #[inline]
    fn in_page(&self, addr: u64, len: u64) -> Option<usize> {
        let pi = (addr / PAGE_SIZE) as usize;
        ((addr & (PAGE_SIZE - 1)) + len <= PAGE_SIZE && pi < self.page_perms.len()).then_some(pi)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`Trap::PermRead`] / [`Trap::OutOfRange`] on access violations.
    #[inline(always)]
    pub fn read_u64(&self, addr: u64) -> Result<u64, Trap> {
        if let Some(pi) = self.in_page(addr, 8) {
            if !self.page_perms[pi].can_read() {
                return Err(Trap::PermRead { addr });
            }
        } else {
            self.check(addr, 8, Access::Read)?;
        }
        let a = addr as usize;
        Ok(u64::from_le_bytes(self.bytes[a..a + 8].try_into().expect("checked")))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`Trap::PermWrite`] / [`Trap::OutOfRange`] on access violations.
    #[inline(always)]
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), Trap> {
        if let Some(pi) = self.in_page(addr, 8) {
            if !self.page_perms[pi].can_write() {
                return Err(Trap::PermWrite { addr });
            }
            self.dirty[pi / 64] |= 1 << (pi % 64);
            self.page_gens[pi] += 1;
        } else {
            self.check(addr, 8, Access::Write)?;
            self.mark_dirty(addr, 8);
        }
        let a = addr as usize;
        self.bytes[a..a + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::PermRead`] / [`Trap::OutOfRange`] on access violations.
    #[inline(always)]
    pub fn read_u8(&self, addr: u64) -> Result<u8, Trap> {
        if let Some(pi) = self.in_page(addr, 1) {
            if !self.page_perms[pi].can_read() {
                return Err(Trap::PermRead { addr });
            }
        } else {
            self.check(addr, 1, Access::Read)?;
        }
        Ok(self.bytes[addr as usize])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::PermWrite`] / [`Trap::OutOfRange`] on access violations.
    #[inline(always)]
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), Trap> {
        if let Some(pi) = self.in_page(addr, 1) {
            if !self.page_perms[pi].can_write() {
                return Err(Trap::PermWrite { addr });
            }
            self.dirty[pi / 64] |= 1 << (pi % 64);
            self.page_gens[pi] += 1;
        } else {
            self.check(addr, 1, Access::Write)?;
            self.mark_dirty(addr, 1);
        }
        self.bytes[addr as usize] = value;
        Ok(())
    }

    /// Fetches the 8 instruction bytes at `addr`, enforcing execute
    /// permission and instruction alignment.
    ///
    /// # Errors
    ///
    /// [`Trap::UnalignedFetch`] for misaligned addresses (a control-flow
    /// error landed mid-instruction), [`Trap::PermExec`] for non-code pages
    /// (category F), [`Trap::OutOfRange`] outside the address space.
    pub fn fetch(&self, addr: u64) -> Result<[u8; 8], Trap> {
        if !addr.is_multiple_of(cfed_isa::INST_SIZE_U64) {
            return Err(Trap::UnalignedFetch { addr });
        }
        self.check(addr, 8, Access::Exec)?;
        let a = addr as usize;
        Ok(self.bytes[a..a + 8].try_into().expect("checked"))
    }

    /// Copies `data` into memory at `addr`, ignoring page permissions
    /// (loader-level access).
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds.
    pub fn install(&mut self, addr: u64, data: &[u8]) {
        if !data.is_empty() {
            self.mark_dirty(addr, data.len() as u64);
        }
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes starting at `addr`, ignoring page permissions
    /// (debugger-level access).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn peek(&self, addr: u64, len: usize) -> &[u8] {
        &self.bytes[addr as usize..addr as usize + len]
    }

    /// Pages whose contents are not all zero, as `(page base, contents)`
    /// pairs in ascending address order. A fresh address space is
    /// all-zero, so this is the complete delta needed to reconstruct the
    /// byte contents — the basis of compact machine snapshots.
    pub fn nonzero_pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.bytes
            .chunks_exact(PAGE_SIZE as usize)
            .enumerate()
            .filter(|(_, page)| page.iter().any(|&b| b != 0))
            .map(|(i, page)| (i as u64 * PAGE_SIZE, page))
    }

    /// Base addresses of the pages written since the last drain (every
    /// page is considered written at creation-to-first-drain only if a
    /// store touched it — a fresh address space starts all-clean as well
    /// as all-zero). Clears the dirty set.
    pub fn drain_dirty(&mut self) -> Vec<u64> {
        self.drained = true;
        let mut out = Vec::new();
        for (w, word) in self.dirty.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(((w * 64 + b) as u64) * PAGE_SIZE);
                bits &= bits - 1;
            }
            *word = 0;
        }
        out
    }

    /// As [`Memory::drain_dirty`], but without clearing the dirty set —
    /// for observers that need "every page written so far" while a
    /// supervisor keeps its own drain cadence (or none at all). Does not
    /// disqualify the buffer from pooling.
    pub fn dirty_pages(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (w, word) in self.dirty.iter().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(((w * 64 + b) as u64) * PAGE_SIZE);
                bits &= bits - 1;
            }
        }
        out
    }

    /// The per-page permission table (one entry per page, ascending).
    pub fn perms_table(&self) -> &[Perms] {
        &self.page_perms
    }

    /// Restores a permission table captured via [`Memory::perms_table`].
    ///
    /// # Panics
    ///
    /// Panics if `perms` does not have one entry per page.
    pub fn set_perms_table(&mut self, perms: &[Perms]) {
        assert_eq!(perms.len(), self.page_perms.len(), "perms table size mismatch");
        self.page_perms.copy_from_slice(perms);
    }
}

#[derive(Clone, Copy)]
enum Access {
    Read,
    Write,
    Exec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rounds_to_pages() {
        let mem = Memory::new(PAGE_SIZE + 1);
        assert_eq!(mem.size(), 2 * PAGE_SIZE);
    }

    #[test]
    fn unmapped_memory_denies_everything() {
        let mem = Memory::new(1 << 16);
        assert_eq!(mem.read_u64(0), Err(Trap::PermRead { addr: 0 }));
        assert!(matches!(mem.fetch(8), Err(Trap::PermExec { .. })));
    }

    #[test]
    fn rw_mapping_allows_data_but_not_fetch() {
        let mut mem = Memory::new(1 << 16);
        mem.map(0..PAGE_SIZE, Perms::RW);
        mem.write_u64(16, 0xABCD).unwrap();
        assert_eq!(mem.read_u64(16).unwrap(), 0xABCD);
        assert_eq!(mem.fetch(16), Err(Trap::PermExec { addr: 16 }));
    }

    #[test]
    fn fetch_requires_alignment() {
        let mut mem = Memory::new(1 << 16);
        mem.map(0..PAGE_SIZE, Perms::RX);
        assert_eq!(mem.fetch(4), Err(Trap::UnalignedFetch { addr: 4 }));
        assert!(mem.fetch(8).is_ok());
    }

    #[test]
    fn out_of_range_detected() {
        let mem = Memory::new(PAGE_SIZE);
        assert_eq!(mem.read_u64(PAGE_SIZE - 4), Err(Trap::OutOfRange { addr: PAGE_SIZE - 4 }));
        assert_eq!(mem.read_u64(u64::MAX - 2), Err(Trap::OutOfRange { addr: u64::MAX - 2 }));
    }

    #[test]
    fn straddling_access_checks_both_pages() {
        let mut mem = Memory::new(2 * PAGE_SIZE);
        mem.map(0..PAGE_SIZE, Perms::RW);
        // Second page unmapped: an 8-byte access crossing the boundary fails.
        let addr = PAGE_SIZE - 4;
        assert!(mem.write_u64(addr, 1).is_err());
        mem.map(PAGE_SIZE..2 * PAGE_SIZE, Perms::RW);
        assert!(mem.write_u64(addr, 1).is_ok());
        assert_eq!(mem.read_u64(addr).unwrap(), 1);
    }

    #[test]
    fn protect_unprotect_page() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.map(0..PAGE_SIZE, Perms::RWX);
        let old = mem.protect_page(100);
        assert_eq!(old, Perms::RWX);
        assert_eq!(mem.write_u8(100, 1), Err(Trap::PermWrite { addr: 100 }));
        assert!(mem.fetch(96).is_ok());
        mem.unprotect_page(100);
        assert!(mem.write_u8(100, 1).is_ok());
    }

    #[test]
    fn byte_accessors() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.map(0..PAGE_SIZE, Perms::RW);
        mem.write_u8(5, 0x7F).unwrap();
        assert_eq!(mem.read_u8(5).unwrap(), 0x7F);
    }

    #[test]
    fn install_and_peek_bypass_perms() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.install(0, &[1, 2, 3]);
        assert_eq!(mem.peek(0, 3), &[1, 2, 3]);
    }

    #[test]
    fn is_code_tracks_exec_perm() {
        let mut mem = Memory::new(2 * PAGE_SIZE);
        mem.map(0..PAGE_SIZE, Perms::RX);
        assert!(mem.is_code(10));
        assert!(!mem.is_code(PAGE_SIZE + 10));
        assert!(!mem.is_code(u64::MAX));
    }

    #[test]
    fn page_base_masks_offset() {
        assert_eq!(Memory::page_base(0x1234), 0x1000);
        assert_eq!(Memory::page_base(0x1000), 0x1000);
    }

    #[test]
    fn recycled_buffers_come_back_all_zero() {
        // Use a size no other test allocates so the pooled buffer this
        // test gets back is necessarily its own.
        const SIZE: u64 = 13 * PAGE_SIZE;
        let mut mem = Memory::new(SIZE);
        mem.map(0..SIZE, Perms::RW);
        mem.write_u64(3 * PAGE_SIZE + 8, u64::MAX).unwrap();
        mem.install(7 * PAGE_SIZE, &[0xAB; 100]);
        drop(mem);
        // The next same-size Memory reuses the scrubbed buffer and must be
        // indistinguishable from a fresh allocation.
        let mem = Memory::new(SIZE);
        assert_eq!(mem.nonzero_pages().count(), 0);
        assert!(mem.dirty_pages().is_empty());

        // A drained memory is not recyclable: its dirty log no longer
        // covers every written page, so its buffer must not resurface.
        let mut mem = Memory::new(SIZE);
        mem.map(0..SIZE, Perms::RW);
        mem.write_u8(PAGE_SIZE, 9).unwrap();
        mem.drain_dirty();
        mem.write_u8(2 * PAGE_SIZE, 9).unwrap();
        drop(mem);
        let mem = Memory::new(SIZE);
        assert_eq!(mem.nonzero_pages().count(), 0);
    }
}
