//! Execution tracing: a bounded ring buffer of retired instructions and a
//! branch history, for debugging guest programs and for fault-injection
//! forensics (what executed between injection and detection).

use crate::icache::DecodedCache;
use crate::{Cpu, Memory, Step, Trap};
use cfed_isa::Inst;
use cfed_telemetry::json::{obj, Json};
use std::collections::VecDeque;
use std::fmt;

/// One retired instruction in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Address the instruction was fetched from.
    pub addr: u64,
    /// The instruction.
    pub inst: Inst,
    /// For conditional branches, whether it was taken.
    pub taken: Option<bool>,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: {}", self.addr, self.inst)?;
        match self.taken {
            Some(true) => write!(f, "  [taken]"),
            Some(false) => write!(f, "  [not taken]"),
            None => Ok(()),
        }
    }
}

/// A bounded execution tracer wrapping [`Cpu::step`].
///
/// # Examples
///
/// ```
/// use cfed_isa::{encode_all, Inst, Reg};
/// use cfed_sim::{Cpu, Memory, Perms, Tracer};
///
/// let code = encode_all(&[Inst::MovRI { dst: Reg::R0, imm: 1 }, Inst::Halt]);
/// let mut mem = Memory::new(1 << 16);
/// mem.map(0..0x1000, Perms::RX);
/// mem.install(0, &code);
/// let mut cpu = Cpu::new();
/// cpu.set_ip(0);
/// let mut tracer = Tracer::new(16);
/// while let Ok(step) = tracer.step(&mut cpu, &mut mem) {
///     if step == cfed_sim::Step::Halt { break; }
/// }
/// assert_eq!(tracer.entries().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    capacity: usize,
    ring: VecDeque<TraceEntry>,
    branch_ring: VecDeque<TraceEntry>,
    retired: u64,
}

impl Tracer {
    /// Creates a tracer keeping the last `capacity` instructions (and the
    /// last `capacity` branches, tracked separately).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tracer {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            branch_ring: VecDeque::with_capacity(capacity),
            retired: 0,
        }
    }

    /// As [`Tracer::new`], with the retired counter starting at `retired`
    /// instead of zero — for execution resumed from a snapshot, where the
    /// instructions before the snapshot retired without this tracer
    /// watching but must still be reflected in [`Tracer::retired`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn resumed(capacity: usize, retired: u64) -> Tracer {
        let mut t = Tracer::new(capacity);
        t.retired = retired;
        t
    }

    /// Steps the CPU once, recording the retired instruction.
    ///
    /// # Errors
    ///
    /// Propagates the CPU's trap; the faulting (uncommitted) instruction is
    /// *not* recorded, matching the architectural state.
    pub fn step(&mut self, cpu: &mut Cpu, mem: &mut Memory) -> Result<Step, Trap> {
        let addr = cpu.ip();
        let inst = cpu.peek_inst(mem)?;
        let taken = inst.is_cond_branch().then(|| cpu.would_take(&inst));
        let step = cpu.step(mem)?;
        let entry = TraceEntry { addr, inst, taken };
        push_bounded(&mut self.ring, self.capacity, entry);
        if inst.is_branch() {
            push_bounded(&mut self.branch_ring, self.capacity, entry);
        }
        self.retired += 1;
        Ok(step)
    }

    /// As [`Tracer::step`], but fetching through a pre-decoded instruction
    /// cache: the peek warms the line the step then executes, so a traced
    /// instruction decodes (at most) once instead of twice. Records exactly
    /// what [`Tracer::step`] would.
    ///
    /// # Errors
    ///
    /// Propagates the CPU's trap; the faulting (uncommitted) instruction is
    /// *not* recorded, matching the architectural state.
    pub fn step_decoded(
        &mut self,
        cpu: &mut Cpu,
        mem: &mut Memory,
        icache: &mut DecodedCache,
    ) -> Result<Step, Trap> {
        let addr = cpu.ip();
        let inst = icache.fetch(mem, addr)?;
        let taken = inst.is_cond_branch().then(|| cpu.would_take(&inst));
        let step = cpu.step_decoded(mem, icache)?;
        let entry = TraceEntry { addr, inst, taken };
        push_bounded(&mut self.ring, self.capacity, entry);
        if inst.is_branch() {
            push_bounded(&mut self.branch_ring, self.capacity, entry);
        }
        self.retired += 1;
        Ok(step)
    }

    /// The recorded tail of the instruction stream, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.ring.iter()
    }

    /// The recorded tail of the branch stream, oldest first.
    pub fn branches(&self) -> impl Iterator<Item = &TraceEntry> {
        self.branch_ring.iter()
    }

    /// Total instructions retired through this tracer (not just retained).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Clears the retained entries (keeps the retired counter).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.branch_ring.clear();
    }

    /// Exports the ring buffers as a JSON object for telemetry events and
    /// forensics bundles: `{"retired":…,"window":[…],"branches":[…]}`, each
    /// entry `{"addr":…,"inst":"…"[,"taken":…]}` oldest first.
    pub fn export(&self) -> Json {
        let entry_json = |e: &TraceEntry| {
            let mut pairs =
                vec![("addr", Json::UInt(e.addr)), ("inst", Json::Str(e.inst.to_string()))];
            if let Some(taken) = e.taken {
                pairs.push(("taken", Json::Bool(taken)));
            }
            obj(pairs)
        };
        obj(vec![
            ("retired", Json::UInt(self.retired)),
            ("window", Json::Arr(self.ring.iter().map(entry_json).collect())),
            ("branches", Json::Arr(self.branch_ring.iter().map(entry_json).collect())),
        ])
    }

    /// Renders the retained trace as a listing.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.ring {
            let _ = writeln!(out, "{e}");
        }
        out
    }
}

fn push_bounded(ring: &mut VecDeque<TraceEntry>, cap: usize, entry: TraceEntry) {
    if ring.len() == cap {
        ring.pop_front();
    }
    ring.push_back(entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Perms;
    use cfed_isa::{encode_all, AluOp, Cond, Reg};

    fn setup(insts: &[Inst]) -> (Cpu, Memory) {
        let mut mem = Memory::new(1 << 16);
        mem.map(0..0x1000, Perms::RX);
        mem.install(0, &encode_all(insts));
        let mut cpu = Cpu::new();
        cpu.set_ip(0);
        (cpu, mem)
    }

    fn run(tracer: &mut Tracer, cpu: &mut Cpu, mem: &mut Memory) {
        while let Ok(Step::Continue) = tracer.step(cpu, mem) {}
    }

    #[test]
    fn records_in_order_with_taken_bits() {
        let (mut cpu, mut mem) = setup(&[
            Inst::MovRI { dst: Reg::R0, imm: 2 },
            Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 }, // loop head
            Inst::Jcc { cc: Cond::Ne, offset: -16 },
            Inst::Halt,
        ]);
        let mut t = Tracer::new(64);
        run(&mut t, &mut cpu, &mut mem);
        let entries: Vec<_> = t.entries().collect();
        assert_eq!(entries[0].addr, 0);
        assert_eq!(t.retired(), entries.len() as u64);
        // The jcc appears twice: taken once, then not taken.
        let branches: Vec<_> = t.branches().collect();
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0].taken, Some(true));
        assert_eq!(branches[1].taken, Some(false));
    }

    #[test]
    fn ring_is_bounded() {
        let (mut cpu, mut mem) = setup(&[
            Inst::MovRI { dst: Reg::R0, imm: 50 },
            Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 },
            Inst::Jcc { cc: Cond::Ne, offset: -16 },
            Inst::Halt,
        ]);
        let mut t = Tracer::new(8);
        run(&mut t, &mut cpu, &mut mem);
        assert_eq!(t.entries().count(), 8);
        assert!(t.retired() > 8);
        // The last retained entry is the halt.
        assert_eq!(t.entries().last().unwrap().inst, Inst::Halt);
    }

    #[test]
    fn faulting_instruction_not_recorded() {
        let (mut cpu, mut mem) = setup(&[
            Inst::Nop,
            // Load from an unmapped page.
            Inst::Ld { dst: Reg::R0, base: Reg::R1, disp: 0x2000 },
        ]);
        let mut t = Tracer::new(8);
        assert!(matches!(t.step(&mut cpu, &mut mem), Ok(Step::Continue)));
        assert!(t.step(&mut cpu, &mut mem).is_err());
        assert_eq!(t.entries().count(), 1, "the trapped load must not appear");
        assert_eq!(t.retired(), 1);
    }

    #[test]
    fn render_and_clear() {
        let (mut cpu, mut mem) = setup(&[Inst::Nop, Inst::Halt]);
        let mut t = Tracer::new(4);
        run(&mut t, &mut cpu, &mut mem);
        let text = t.render();
        assert!(text.contains("nop"));
        assert!(text.contains("halt"));
        t.clear();
        assert_eq!(t.entries().count(), 0);
        assert_eq!(t.retired(), 2);
    }

    #[test]
    fn export_matches_rings() {
        let (mut cpu, mut mem) = setup(&[
            Inst::MovRI { dst: Reg::R0, imm: 1 },
            Inst::Jcc { cc: Cond::Ne, offset: 8 },
            Inst::Halt,
        ]);
        let mut t = Tracer::new(8);
        run(&mut t, &mut cpu, &mut mem);
        let v = t.export();
        assert_eq!(v.get("retired").and_then(Json::as_u64), Some(t.retired()));
        let window = v.get("window").and_then(Json::as_arr).unwrap();
        assert_eq!(window.len(), t.entries().count());
        assert_eq!(window[0].get("addr").and_then(Json::as_u64), Some(0));
        let branches = v.get("branches").and_then(Json::as_arr).unwrap();
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].get("taken"), Some(&Json::Bool(true)));
        // The export renders and reparses in the store's JSON subset.
        let text = v.render();
        assert_eq!(cfed_telemetry::json::parse(&text).unwrap(), v);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Tracer::new(0);
    }
}
