//! Trap (synchronous exception) definitions.
//!
//! Traps model the hardware detection mechanisms the paper leans on:
//! execute-protection faults catch branch-errors of category F ("jump to a
//! non-code memory region", §2), write-protection faults drive the DBT's
//! self-modifying-code handling (§5), divide-by-zero is the reporting channel
//! of the ECCA technique, and [`Trap::Software`] is the channel the
//! control-flow checking instrumentation uses to report a detected error.

use cfed_isa::DecodeError;
use std::error::Error;
use std::fmt;

/// A synchronous exception raised during simulated execution.
///
/// The faulting instruction is *not* committed: register state, flags and the
/// instruction pointer are unchanged, so a handler (e.g. the DBT runtime) can
/// repair state and resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Access to an address outside the configured address space.
    OutOfRange { addr: u64 },
    /// Read from a page without read permission.
    PermRead { addr: u64 },
    /// Write to a page without write permission (also the self-modifying-code
    /// notification used by the DBT).
    PermWrite { addr: u64 },
    /// Instruction fetch from a page without execute permission — the
    /// "execute disable bit" detection of branch-error category F.
    PermExec { addr: u64 },
    /// Instruction fetch from an address that is not 8-byte aligned (a
    /// control-flow error landed mid-instruction).
    UnalignedFetch { addr: u64 },
    /// Fetched bytes do not decode to a valid instruction.
    InvalidInst { addr: u64, cause: DecodeError },
    /// Unsigned division by zero (ECCA's error-reporting channel).
    DivByZero { addr: u64 },
    /// Software trap (`trap` instruction); `code` distinguishes uses — see
    /// [`trap_codes`].
    Software { addr: u64, code: u32 },
}

/// Well-known software trap codes.
pub mod trap_codes {
    /// Control-flow checking instrumentation detected a signature mismatch.
    pub const CFE_DETECTED: u32 = 0xC0DE_0001;
    /// Guest program assertion failure (used by workloads for self-checks).
    pub const GUEST_ASSERT: u32 = 0xC0DE_0002;
    /// Base of the range used by the DBT for exit stubs back to the runtime;
    /// codes `DBT_EXIT_BASE..` index the DBT's exit descriptor table.
    pub const DBT_EXIT_BASE: u32 = 0xD000_0000;
}

impl Trap {
    /// The faulting address (instruction address for execution faults, data
    /// address for memory faults).
    pub fn addr(&self) -> u64 {
        match *self {
            Trap::OutOfRange { addr }
            | Trap::PermRead { addr }
            | Trap::PermWrite { addr }
            | Trap::PermExec { addr }
            | Trap::UnalignedFetch { addr }
            | Trap::InvalidInst { addr, .. }
            | Trap::DivByZero { addr }
            | Trap::Software { addr, .. } => addr,
        }
    }

    /// Returns `true` for traps that hardware memory protection would raise
    /// on a real machine when a control-flow error escapes the code region
    /// (the paper's category-F detection plus mid-instruction landings).
    pub fn is_hardware_cfe_detection(&self) -> bool {
        matches!(
            self,
            Trap::PermExec { .. }
                | Trap::UnalignedFetch { .. }
                | Trap::InvalidInst { .. }
                | Trap::OutOfRange { .. }
        )
    }

    /// Returns `true` when this is the instrumentation's explicit
    /// "control-flow error detected" report.
    pub fn is_cfe_report(&self) -> bool {
        matches!(self, Trap::Software { code, .. } if *code == trap_codes::CFE_DETECTED)
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfRange { addr } => write!(f, "access out of address space at {addr:#x}"),
            Trap::PermRead { addr } => write!(f, "read permission fault at {addr:#x}"),
            Trap::PermWrite { addr } => write!(f, "write permission fault at {addr:#x}"),
            Trap::PermExec { addr } => write!(f, "execute permission fault at {addr:#x}"),
            Trap::UnalignedFetch { addr } => write!(f, "unaligned instruction fetch at {addr:#x}"),
            Trap::InvalidInst { addr, cause } => {
                write!(f, "invalid instruction at {addr:#x}: {cause}")
            }
            Trap::DivByZero { addr } => write!(f, "division by zero at {addr:#x}"),
            Trap::Software { addr, code } => {
                write!(f, "software trap {code:#x} at {addr:#x}")
            }
        }
    }
}

impl Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_extraction() {
        assert_eq!(Trap::PermExec { addr: 0x123 }.addr(), 0x123);
        assert_eq!(Trap::Software { addr: 4, code: 9 }.addr(), 4);
    }

    #[test]
    fn hardware_detection_classification() {
        assert!(Trap::PermExec { addr: 0 }.is_hardware_cfe_detection());
        assert!(Trap::UnalignedFetch { addr: 1 }.is_hardware_cfe_detection());
        assert!(!Trap::DivByZero { addr: 0 }.is_hardware_cfe_detection());
        assert!(
            !Trap::Software { addr: 0, code: trap_codes::CFE_DETECTED }.is_hardware_cfe_detection()
        );
    }

    #[test]
    fn cfe_report_classification() {
        assert!(Trap::Software { addr: 0, code: trap_codes::CFE_DETECTED }.is_cfe_report());
        assert!(!Trap::Software { addr: 0, code: 7 }.is_cfe_report());
        assert!(!Trap::DivByZero { addr: 0 }.is_cfe_report());
    }

    #[test]
    fn display_mentions_address() {
        let t = Trap::PermWrite { addr: 0xABC };
        assert!(t.to_string().contains("0xabc"));
    }
}
