//! Raw per-address execution profiling for the fused interpreter loop.
//!
//! An [`ExecProfiler`] tallies retirements and model cycles per instruction
//! slot, organized exactly like the decoded cache: one lazily-allocated
//! counter page per guest page, indexed by line. The fused runner resolves
//! the counter page once per burst entry (alongside the decoded page), so
//! the per-instruction cost of profiling is two array adds — and the cost
//! with profiling *off* is zero, because the unprofiled loop is a separate
//! monomorphization that contains no profiling code at all.
//!
//! The profiler is execution-state only: it never influences what the CPU
//! computes, and it counts *addresses as executed* (guest addresses under
//! interpretation, code-cache addresses under the DBT). Mapping those raw
//! addresses onto static blocks and instrumentation ranges is the job of
//! higher layers that know the code layout.

use crate::LINES_PER_PAGE;
use cfed_isa::INST_SIZE_U64;

/// Per-page counters: one `(hits, cycles)` pair per instruction slot.
#[derive(Clone)]
pub(crate) struct ProfPage {
    pub(crate) hits: Box<[u64; LINES_PER_PAGE]>,
    pub(crate) cycles: Box<[u64; LINES_PER_PAGE]>,
}

impl ProfPage {
    fn new() -> ProfPage {
        ProfPage { hits: Box::new([0; LINES_PER_PAGE]), cycles: Box::new([0; LINES_PER_PAGE]) }
    }
}

/// Per-address retirement/cycle tallies for one machine's execution.
#[derive(Clone, Default)]
pub struct ExecProfiler {
    pages: Vec<Option<ProfPage>>,
}

impl std::fmt::Debug for ExecProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecProfiler")
            .field("pages", &self.pages.iter().filter(|p| p.is_some()).count())
            .field("cycles", &self.attributed_cycles())
            .finish()
    }
}

impl ExecProfiler {
    /// An empty profiler (no counter pages allocated).
    pub fn new() -> ExecProfiler {
        ExecProfiler::default()
    }

    /// The counter page for page index `pi`, allocated on first touch.
    #[inline]
    pub(crate) fn page_mut(&mut self, pi: usize) -> &mut ProfPage {
        if self.pages.len() <= pi {
            self.pages.resize_with(pi + 1, || None);
        }
        self.pages[pi].get_or_insert_with(ProfPage::new)
    }

    /// Records one retirement at `addr` costing `cycles` (slow-path entry
    /// for non-fused callers; the fused loop writes the page arrays
    /// directly).
    #[inline]
    pub fn record(&mut self, addr: u64, cycles: u64) {
        let pi = (addr / crate::mem::PAGE_SIZE) as usize;
        let li = ((addr % crate::mem::PAGE_SIZE) / INST_SIZE_U64) as usize;
        let page = self.page_mut(pi);
        page.hits[li] += 1;
        page.cycles[li] += cycles;
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.pages.iter().all(Option::is_none)
    }

    /// Total cycles recorded across every address.
    pub fn attributed_cycles(&self) -> u64 {
        self.samples().map(|(_, _, c)| c).sum()
    }

    /// Retirement count recorded at exactly `addr` (zero when the address
    /// was never executed or its page was never touched). Point queries
    /// like this are how tier-up consumers cross-check a block's observed
    /// execution count against the engine's own hot counters.
    pub fn hits_at(&self, addr: u64) -> u64 {
        let pi = (addr / crate::mem::PAGE_SIZE) as usize;
        let li = ((addr % crate::mem::PAGE_SIZE) / INST_SIZE_U64) as usize;
        self.pages.get(pi).and_then(Option::as_ref).map_or(0, |page| page.hits[li])
    }

    /// Every nonzero `(addr, hits, cycles)` sample, address-ascending.
    pub fn samples(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.pages.iter().enumerate().filter_map(|(pi, p)| p.as_ref().map(|p| (pi, p))).flat_map(
            |(pi, page)| {
                let base = pi as u64 * crate::mem::PAGE_SIZE;
                (0..LINES_PER_PAGE).filter_map(move |li| {
                    let hits = page.hits[li];
                    (hits > 0).then(|| (base + li as u64 * INST_SIZE_U64, hits, page.cycles[li]))
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PAGE_SIZE;

    #[test]
    fn records_and_iterates_in_address_order() {
        let mut p = ExecProfiler::new();
        assert!(p.is_empty());
        p.record(PAGE_SIZE + 16, 3);
        p.record(8, 2);
        p.record(8, 5);
        assert!(!p.is_empty());
        let samples: Vec<_> = p.samples().collect();
        assert_eq!(samples, vec![(8, 2, 7), (PAGE_SIZE + 16, 1, 3)]);
        assert_eq!(p.attributed_cycles(), 10);
        assert_eq!(p.hits_at(8), 2);
        assert_eq!(p.hits_at(PAGE_SIZE + 16), 1);
        assert_eq!(p.hits_at(64), 0, "untouched line");
        assert_eq!(p.hits_at(50 * PAGE_SIZE), 0, "unallocated page");
    }

    #[test]
    fn pages_allocate_lazily() {
        let mut p = ExecProfiler::new();
        p.record(100 * PAGE_SIZE, 1);
        assert_eq!(p.pages.iter().filter(|x| x.is_some()).count(), 1);
    }
}
