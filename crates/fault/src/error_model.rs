//! The single-bit-flip error model of paper §2 (Figures 2 and 3).
//!
//! At every *dynamic* execution of a direct branch, the model considers one
//! hypothetical single-bit fault in each of the 32 address-offset bits and
//! each of the 6 condition-flag bits, all equiprobable, and classifies the
//! control flow that would result. Indirect branches are excluded, as in
//! the paper ("less than 5% of the total branches execution frequency, we
//! simplify the analysis by not accounting the errors in these branches").
//!
//! Faults in the address offset of a *not-taken* branch do not change the
//! control flow and are counted as No&nbsp;Error — this is why the paper's
//! Figure 2 splits every column into taken/not-taken.

use cfed_asm::Image;
use cfed_core::cfg::Cfg;
use cfed_core::{classify_addr_fault, classify_flag_fault, BranchFault, Category};
use cfed_isa::{Flags, INST_SIZE_U64, OFFSET_BITS};
use cfed_sim::{Cpu, ExitReason, Machine, Step};
use std::collections::HashMap;

/// Which half of the fault surface a bit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSide {
    /// A bit of the branch's 32-bit address offset.
    Addr,
    /// A bit of the 6-bit condition-flags register.
    Flags,
}

/// Accumulated branch-error probabilities (the content of Figure 2).
///
/// Counts are indexed by (taken, side, category); probabilities divide by
/// the total number of (dynamic branch, bit) pairs considered, i.e. every
/// counted bit is equiprobable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorModelTable {
    counts: [[[u64; 7]; 2]; 2],
    total_bits: u64,
}

fn cat_idx(c: Category) -> usize {
    match c {
        Category::A => 0,
        Category::B => 1,
        Category::C => 2,
        Category::D => 3,
        Category::E => 4,
        Category::F => 5,
        Category::NoError => 6,
    }
}

impl ErrorModelTable {
    /// Records one hypothetical single-bit fault.
    pub fn record(&mut self, taken: bool, side: FaultSide, category: Category) {
        let t = taken as usize;
        let s = matches!(side, FaultSide::Flags) as usize;
        self.counts[t][s][cat_idx(category)] += 1;
        self.total_bits += 1;
    }

    /// Records a whole bit-classification row at once: `row[c]` faults of
    /// category index `c` (the `cat_idx` order). Exactly equivalent to
    /// that many [`ErrorModelTable::record`] calls — counts are integers, so
    /// bulk addition is associative and the table stays bit-identical.
    pub fn record_bulk(&mut self, taken: bool, side: FaultSide, row: &[u64; 7]) {
        let t = taken as usize;
        let s = matches!(side, FaultSide::Flags) as usize;
        for (c, add) in row.iter().enumerate() {
            self.counts[t][s][c] += add;
            self.total_bits += add;
        }
    }

    /// Total number of (branch execution, bit) samples.
    pub fn samples(&self) -> u64 {
        self.total_bits
    }

    /// Probability of (taken?, side, category) — one cell of Figure 2.
    pub fn prob(&self, taken: bool, side: FaultSide, category: Category) -> f64 {
        if self.total_bits == 0 {
            return 0.0;
        }
        let t = taken as usize;
        let s = matches!(side, FaultSide::Flags) as usize;
        self.counts[t][s][cat_idx(category)] as f64 / self.total_bits as f64
    }

    /// Marginal probability of a category (the Total column of Figure 2).
    pub fn prob_total(&self, category: Category) -> f64 {
        [true, false]
            .into_iter()
            .flat_map(|t| {
                [FaultSide::Addr, FaultSide::Flags]
                    .into_iter()
                    .map(move |s| self.prob(t, s, category))
            })
            .sum()
    }

    /// Figure 3: probabilities renormalized over the SDC-prone categories
    /// A–E, in category order.
    pub fn sdc_restricted(&self) -> [(Category, f64); 5] {
        let total: f64 = Category::SDC_PRONE.iter().map(|&c| self.prob_total(c)).sum();
        let mut out = [(Category::A, 0.0); 5];
        for (i, &c) in Category::SDC_PRONE.iter().enumerate() {
            out[i] = (c, if total > 0.0 { self.prob_total(c) / total } else { 0.0 });
        }
        out
    }

    /// Merges another table into this one (suite aggregation).
    pub fn merge(&mut self, other: &ErrorModelTable) {
        for t in 0..2 {
            for s in 0..2 {
                for c in 0..7 {
                    self.counts[t][s][c] += other.counts[t][s][c];
                }
            }
        }
        self.total_bits += other.total_bits;
    }

    /// Renders the table in the layout of the paper's Figure 2.
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "{:>9} | {:>8} {:>8} | {:>8} {:>8} | {:>8}",
            "Category", "T.Addr", "T.Flags", "NT.Addr", "NT.Flags", "Total"
        );
        let _ = writeln!(out, "{}", "-".repeat(62));
        for c in Category::ALL {
            let _ = writeln!(
                out,
                "{:>9} | {:>7.2}% {:>7.2}% | {:>7.2}% {:>7.2}% | {:>7.2}%",
                c.to_string(),
                100.0 * self.prob(true, FaultSide::Addr, c),
                100.0 * self.prob(true, FaultSide::Flags, c),
                100.0 * self.prob(false, FaultSide::Addr, c),
                100.0 * self.prob(false, FaultSide::Flags, c),
                100.0 * self.prob_total(c),
            );
        }
        out
    }
}

/// Result of analyzing one image.
#[derive(Debug, Clone)]
pub struct ErrorModelReport {
    /// The accumulated probability table.
    pub table: ErrorModelTable,
    /// How the analyzed run ended.
    pub exit: ExitReason,
    /// Dynamic direct-branch executions analyzed.
    pub branches_analyzed: u64,
    /// Dynamic indirect-branch executions skipped (paper's simplification).
    pub indirect_skipped: u64,
}

/// Runs `image` natively, applying the single-bit error model at every
/// dynamic direct-branch execution.
///
/// # Examples
///
/// ```
/// use cfed_fault::error_model::analyze_image;
/// use cfed_lang::compile;
///
/// let image = compile("fn main() { let i = 0; while (i < 10) { i = i + 1; } }")?;
/// let report = analyze_image(&image, 1_000_000);
/// assert!(report.branches_analyzed > 10);
/// assert!(report.table.samples() > 0);
/// # Ok::<(), cfed_lang::CompileError>(())
/// ```
pub fn analyze_image(image: &Image, max_insts: u64) -> ErrorModelReport {
    let cfg = Cfg::recover(image);
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut table = ErrorModelTable::default();
    let mut memo = SiteMemo::default();
    let mut branches = 0u64;
    let mut indirect = 0u64;

    let exit = loop {
        if m.cpu.stats().insts >= max_insts {
            break ExitReason::StepLimit;
        }
        if let Ok(inst) = m.peek_inst() {
            if inst.is_branch() {
                if inst.is_indirect_branch() {
                    indirect += 1;
                } else {
                    branches += 1;
                    analyze_branch(&m.cpu, &inst, &cfg, &mut table, &mut memo);
                }
            }
        }
        match m.step_cpu() {
            Ok(Step::Continue) => {}
            Ok(Step::Halt) => break ExitReason::Halted { code: m.cpu.reg(cfed_isa::Reg::R0) },
            Err(t) => break ExitReason::Trapped(t),
        }
    };

    ErrorModelReport { table, exit, branches_analyzed: branches, indirect_skipped: indirect }
}

/// Per-bit classification totals for one (branch execution, fault side), in
/// `cat_idx` order.
type BitRow = [u64; 7];

/// A taken branch whose offset faults never redirect: the 32 address bits of
/// a not-taken branch all classify as No&nbsp;Error.
const NOT_TAKEN_ADDR_ROW: BitRow = [0, 0, 0, 0, 0, 0, OFFSET_BITS as u64];

/// The 6 flag bits of an instruction that never reads the flags for its
/// direction all classify as No&nbsp;Error.
const FLAGS_NO_ERROR_ROW: BitRow = [0, 0, 0, 0, 0, 0, Flags::BITS as u64];

/// Memoized per-site bit classifications.
///
/// Both halves of the fault surface are pure functions of static program
/// facts plus a tiny dynamic key, so classification cost is O(static sites),
/// not O(dynamic branches):
///
/// - address-offset faults of a *taken* branch depend only on the site (its
///   offset and the CFG) — one row per site, computed on first taken
///   execution;
/// - flag faults depend only on the site and the 6-bit flags value — at most
///   64 rows per `jcc` site, computed on first sight of each flags value.
#[derive(Default)]
struct SiteMemo {
    addr_taken: HashMap<u64, BitRow>,
    flag_rows: HashMap<(u64, u8), BitRow>,
}

fn compute_addr_row(cpu: &Cpu, inst: &cfed_isa::Inst, cfg: &Cfg) -> BitRow {
    let addr = cpu.ip();
    let offset = inst.branch_offset().expect("direct branch");
    let fall = addr + INST_SIZE_U64;
    let correct = inst.direct_target(addr).expect("direct");
    let block = cfg
        .block_containing(addr)
        .map(|id| cfg.blocks()[id].range())
        .unwrap_or(addr..addr + INST_SIZE_U64);
    let mut row = [0u64; 7];
    for bit in 0..OFFSET_BITS {
        let faulty_off = offset ^ (1i32 << bit);
        let faulty = addr.wrapping_add(INST_SIZE_U64).wrapping_add(faulty_off as i64 as u64);
        let category = classify_addr_fault(
            &BranchFault {
                branch_block: block.clone(),
                fall_through: fall,
                correct_target: correct,
                faulty_target: faulty,
            },
            cfg,
        );
        row[cat_idx(category)] += 1;
    }
    row
}

fn compute_flag_row(cpu: &Cpu, inst: &cfed_isa::Inst, taken: bool) -> BitRow {
    let mut row = [0u64; 7];
    for bit in 0..Flags::BITS as u8 {
        let flipped = cpu.flags().with_bit_flipped(bit);
        let category = classify_flag_fault(cpu.would_take_with_flags(inst, flipped) != taken);
        row[cat_idx(category)] += 1;
    }
    row
}

fn analyze_branch(
    cpu: &Cpu,
    inst: &cfed_isa::Inst,
    cfg: &Cfg,
    table: &mut ErrorModelTable,
    memo: &mut SiteMemo,
) {
    let addr = cpu.ip();
    let taken = cpu.would_take(inst);

    // Address-offset bits: only matter when the branch redirects control.
    let addr_row: &BitRow = if !taken {
        &NOT_TAKEN_ADDR_ROW
    } else {
        memo.addr_taken.entry(addr).or_insert_with(|| compute_addr_row(cpu, inst, cfg))
    };
    table.record_bulk(taken, FaultSide::Addr, addr_row);

    // Flag bits: only `jcc` reads the flags for its direction.
    let flag_row: &BitRow = if inst.reads_flags_for_direction() {
        memo.flag_rows
            .entry((addr, cpu.flags().bits()))
            .or_insert_with(|| compute_flag_row(cpu, inst, taken))
    } else {
        &FLAGS_NO_ERROR_ROW
    };
    table.record_bulk(taken, FaultSide::Flags, flag_row);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_lang::compile;

    fn report(src: &str) -> ErrorModelReport {
        analyze_image(&compile(src).unwrap(), 5_000_000)
    }

    #[test]
    fn probabilities_sum_to_one() {
        let r = report("fn main() { let i = 0; while (i < 50) { i = i + 1; } out(i); }");
        let sum: f64 = Category::ALL.iter().map(|&c| r.table.prob_total(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn bits_per_branch_is_38() {
        let r = report("fn main() { let i = 0; while (i < 7) { i = i + 1; } }");
        assert_eq!(
            r.table.samples(),
            r.branches_analyzed * (OFFSET_BITS as u64 + Flags::BITS as u64)
        );
    }

    #[test]
    fn not_taken_addr_bits_are_no_error() {
        let r = report(
            "fn main() { let i = 0; while (i < 20) { if (i == 1000) { out(i); } i = i + 1; } }",
        );
        // The never-taken `if` contributes not-taken addr bits, all NoError.
        assert!(r.table.prob(false, FaultSide::Addr, Category::NoError) > 0.0);
        for c in Category::SDC_PRONE {
            assert_eq!(r.table.prob(false, FaultSide::Addr, c), 0.0, "{c}");
        }
    }

    #[test]
    fn flag_faults_only_produce_a_or_noerror() {
        let r = report("fn main() { let i = 0; while (i < 30) { i = i + 1; } }");
        for taken in [true, false] {
            for c in [Category::B, Category::C, Category::D, Category::E, Category::F] {
                assert_eq!(r.table.prob(taken, FaultSide::Flags, c), 0.0);
            }
        }
        assert!(r.table.prob_total(Category::A) > 0.0);
    }

    #[test]
    fn category_e_dominates_sdc_prone_mass() {
        // Paper Figure 3: E is by far the largest SDC-prone category.
        let r = report(
            r#"
            fn work(x) { if (x % 3 == 0) { return x * 2; } return x + 1; }
            fn main() {
                let i = 0;
                let acc = 0;
                while (i < 200) { acc = acc + work(i); i = i + 1; }
                out(acc);
            }
            "#,
        );
        let sdc = r.table.sdc_restricted();
        let e = sdc.iter().find(|(c, _)| *c == Category::E).unwrap().1;
        for (c, p) in sdc {
            if c != Category::E {
                assert!(e >= p, "E ({e:.3}) must dominate {c} ({p:.3})");
            }
        }
        assert!(e > 0.4, "E should carry most SDC-prone mass, got {e:.3}");
    }

    #[test]
    fn indirect_branches_skipped() {
        let r = report("fn f() { return 1; } fn main() { out(f()); }");
        assert!(r.indirect_skipped > 0, "ret must be skipped, not analyzed");
    }

    #[test]
    fn merge_accumulates() {
        let a = report("fn main() { let i = 0; while (i < 5) { i = i + 1; } }");
        let b = report("fn main() { let i = 0; while (i < 9) { i = i + 1; } }");
        let mut merged = a.table.clone();
        merged.merge(&b.table);
        assert_eq!(merged.samples(), a.table.samples() + b.table.samples());
        let sum: f64 = Category::ALL.iter().map(|&c| merged.prob_total(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Reference implementation: classify and record every one of the 38
    /// bits at every dynamic branch, no memoization. The production path
    /// must produce an identical table.
    fn naive_report(src: &str, max_insts: u64) -> ErrorModelReport {
        let image = compile(src).unwrap();
        let cfg = Cfg::recover(&image);
        let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
        let mut table = ErrorModelTable::default();
        let mut branches = 0u64;
        let mut indirect = 0u64;
        let exit = loop {
            if m.cpu.stats().insts >= max_insts {
                break ExitReason::StepLimit;
            }
            if let Ok(inst) = m.cpu.peek_inst(&m.mem) {
                if inst.is_branch() {
                    if inst.is_indirect_branch() {
                        indirect += 1;
                    } else {
                        branches += 1;
                        let taken = m.cpu.would_take(&inst);
                        if taken {
                            let row = compute_addr_row(&m.cpu, &inst, &cfg);
                            for (c, &n) in row.iter().enumerate() {
                                for _ in 0..n {
                                    table.record(taken, FaultSide::Addr, Category::ALL[c]);
                                }
                            }
                        } else {
                            for _ in 0..OFFSET_BITS {
                                table.record(taken, FaultSide::Addr, Category::NoError);
                            }
                        }
                        for bit in 0..Flags::BITS as u8 {
                            let category = if inst.reads_flags_for_direction() {
                                let flipped = m.cpu.flags().with_bit_flipped(bit);
                                classify_flag_fault(
                                    m.cpu.would_take_with_flags(&inst, flipped) != taken,
                                )
                            } else {
                                Category::NoError
                            };
                            table.record(taken, FaultSide::Flags, category);
                        }
                    }
                }
            }
            match m.cpu.step(&mut m.mem) {
                Ok(Step::Continue) => {}
                Ok(Step::Halt) => break ExitReason::Halted { code: m.cpu.reg(cfed_isa::Reg::R0) },
                Err(t) => break ExitReason::Trapped(t),
            }
        };
        ErrorModelReport { table, exit, branches_analyzed: branches, indirect_skipped: indirect }
    }

    #[test]
    fn memoized_table_identical_to_naive_per_bit() {
        let src = r#"
            fn work(x) { if (x % 3 == 0) { return x * 2; } return x + 1; }
            fn main() {
                let i = 0;
                let acc = 0;
                while (i < 150) { acc = acc + work(i); i = i + 1; }
                out(acc);
            }
        "#;
        let fast = analyze_image(&compile(src).unwrap(), 5_000_000);
        let slow = naive_report(src, 5_000_000);
        assert_eq!(fast.table, slow.table, "memoized table must be bit-identical");
        assert_eq!(fast.branches_analyzed, slow.branches_analyzed);
        assert_eq!(fast.indirect_skipped, slow.indirect_skipped);
        assert_eq!(fast.exit, slow.exit);
    }

    #[test]
    fn render_contains_all_rows() {
        let r = report("fn main() { let i = 0; while (i < 5) { i = i + 1; } }");
        let text = r.table.render("TEST");
        for c in ["A", "B", "C", "D", "E", "F", "No Error"] {
            assert!(text.contains(c), "missing row {c}");
        }
    }
}
