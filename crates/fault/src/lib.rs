//! # cfed-fault — error model and fault injection
//!
//! Two experiment engines for the CGO'06 reproduction:
//!
//! * [`error_model`] — the single-bit-flip branch-error probability model of
//!   paper §2, regenerating the Figure 2 table and the Figure 3
//!   SDC-restricted view;
//! * [`mod@inject`] / [`campaign`] — actual soft-error injection into
//!   DBT-translated code (the study the paper names as future work),
//!   measuring per-category detection coverage of each technique.
//!
//! ## Example
//!
//! ```
//! use cfed_fault::error_model::analyze_image;
//! use cfed_lang::compile;
//!
//! let image = compile("fn main() { let i = 0; while (i < 20) { i = i + 1; } }")?;
//! let report = analyze_image(&image, 1_000_000);
//! let total: f64 = cfed_core::Category::ALL
//!     .iter()
//!     .map(|&c| report.table.prob_total(c))
//!     .sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! # Ok::<(), cfed_lang::CompileError>(())
//! ```

pub mod campaign;
pub mod error_model;
pub mod forensics;
pub mod inject;
pub mod snapshot;

pub use campaign::{
    Campaign, CampaignReport, CategoryStats, ExhaustiveSweep, LatencyGrid, SHARD_TRIALS,
};
pub use error_model::{analyze_image, ErrorModelReport, ErrorModelTable, FaultSide};
pub use forensics::{ForensicsBundle, DEFAULT_TRACE_WINDOW};
pub use inject::{
    golden_run, inject, inject_traced, inject_traced_with, inject_with, FaultSpec, Golden,
    InjectionResult, Outcome, WorkloadError,
};
pub use snapshot::{SnapshotSet, SnapshotStats};
