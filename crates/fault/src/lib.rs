//! # cfed-fault — error model, fault injection, and attack generation
//!
//! Three experiment engines for the CGO'06 reproduction:
//!
//! * [`error_model`] — the single-bit-flip branch-error probability model of
//!   paper §2, regenerating the Figure 2 table and the Figure 3
//!   SDC-restricted view;
//! * [`mod@inject`] / [`campaign`] — actual soft-error injection into
//!   DBT-translated code (the study the paper names as future work),
//!   measuring per-category detection coverage of each technique;
//! * [`mod@attack`] — adversarial control-flow corruptions (seven
//!   archetypes, from branch flips to data-segment pivots), classified
//!   into the same A–F taxonomy and run as first-class campaigns to
//!   measure the security detection frontier (DESIGN.md § "Attack
//!   model").
//!
//! ## Example
//!
//! ```
//! use cfed_fault::error_model::analyze_image;
//! use cfed_lang::compile;
//!
//! let image = compile("fn main() { let i = 0; while (i < 20) { i = i + 1; } }")?;
//! let report = analyze_image(&image, 1_000_000);
//! let total: f64 = cfed_core::Category::ALL
//!     .iter()
//!     .map(|&c| report.table.prob_total(c))
//!     .sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! # Ok::<(), cfed_lang::CompileError>(())
//! ```

pub mod attack;
pub mod campaign;
pub mod error_model;
pub mod forensics;
pub mod inject;
pub mod snapshot;

pub use attack::{
    attack, attack_traced_with, attack_with, pause_attack, pause_attack_interp, AttackCampaign,
    AttackExit, AttackKind, AttackModel, AttackProvenance, AttackSpec, AttackSurface, PauseAttack,
};
pub use campaign::{
    Campaign, CampaignReport, CategoryStats, ExhaustiveSweep, LatencyGrid, SHARD_TRIALS,
};
pub use error_model::{analyze_image, ErrorModelReport, ErrorModelTable, FaultSide};
pub use forensics::{AttackForensics, ForensicsBundle, DEFAULT_TRACE_WINDOW};
pub use inject::{
    golden_run, inject, inject_traced, inject_traced_with, inject_with, FaultSpec, Golden,
    InjectionResult, Outcome, WorkloadError,
};
pub use snapshot::{SnapshotSet, SnapshotStats};
