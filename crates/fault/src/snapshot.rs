//! Checkpointed fast-forward for fault injection.
//!
//! Every injection trial must first replay the fault-free prefix up to the
//! nth dynamic branch — O(program length) of single-stepping and a full
//! re-translation per trial. During the golden run this module captures
//! periodic `(Machine, Dbt)` snapshots keyed by dynamic-branch index;
//! [`crate::inject::inject_with`] then restores the nearest snapshot
//! at-or-below the target branch and steps only the residual prefix,
//! reusing the translated code cache instead of re-translating.
//!
//! Both halves of a snapshot are captured at the same instant and restored
//! together: the [`cfed_sim::MachineSnapshot`] holds the architectural
//! state *including* the code-cache bytes, and the [`Dbt`] clone holds the
//! bookkeeping (block table, cursor, exit stubs) describing exactly those
//! bytes. Restoring either half alone desynchronizes them. Signature
//! state needs no separate reset: the techniques keep their running
//! signatures in guest registers, which the machine snapshot captures, and
//! the instrumenter itself is stateless (shared read-only by every clone).
//!
//! Snapshot memory stays bounded by adaptive thinning: capture every
//! [`INITIAL_INTERVAL`] branches until [`MAX_SNAPSHOTS`] are held, then
//! drop every other snapshot and double the interval, so arbitrarily long
//! runs keep at most `MAX_SNAPSHOTS` snapshots at power-of-two-scaled
//! spacing.

use crate::inject::{golden_inner, Golden, WorkloadError};
use cfed_asm::Image;
use cfed_core::RunConfig;
use cfed_dbt::Dbt;
use cfed_sim::{Machine, MachineSnapshot, SnapshotTracker};
use cfed_telemetry::Counter;

/// Branch interval between snapshots before any adaptive thinning.
pub const INITIAL_INTERVAL: u64 = 8;

/// Snapshot-count bound: when a golden run would exceed it, every other
/// snapshot is dropped and the capture interval doubles.
pub const MAX_SNAPSHOTS: usize = 48;

/// One checkpoint: the machine and translator exactly as they were when
/// the golden run was about to execute dynamic branch `branch_index`.
#[derive(Clone)]
pub(crate) struct Snapshot {
    pub(crate) branch_index: u64,
    pub(crate) machine: MachineSnapshot,
    pub(crate) dbt: Dbt,
}

/// An immutable set of golden-run checkpoints for one `(image, config)`,
/// shared read-only across worker threads (the usage counters are atomic).
pub struct SnapshotSet {
    config: RunConfig,
    /// Ascending by `branch_index`; index 0 is the first dynamic branch.
    snapshots: Vec<Snapshot>,
    interval: u64,
    bytes: u64,
    restores: Counter,
    misses: Counter,
    fast_forwarded: Counter,
    stepped: Counter,
    pruned: Counter,
}

impl std::fmt::Debug for SnapshotSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotSet")
            .field("snapshots", &self.snapshots.len())
            .field("interval", &self.interval)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl SnapshotSet {
    /// Runs the golden run with snapshot capture, returning the golden
    /// reference together with the checkpoint set.
    ///
    /// The golden result is identical to [`crate::golden_run`]'s —
    /// capturing observes the machine, never perturbs it.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] when the fault-free program traps or exceeds its
    /// instruction budget.
    pub fn capture(image: &Image, cfg: &RunConfig) -> Result<(Golden, SnapshotSet), WorkloadError> {
        let mut builder = SnapshotBuilder::new();
        let golden = golden_inner(image, cfg, Some(&mut builder))?;
        Ok((golden, builder.finish(*cfg)))
    }

    /// Whether this set was captured under `cfg`. Fast-forwarding with a
    /// mismatched configuration would replay the wrong translation, so
    /// injection falls back to from-scratch when this is false.
    pub fn matches(&self, cfg: &RunConfig) -> bool {
        self.config == *cfg
    }

    /// Number of checkpoints held.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the set holds no checkpoints (a branch-free golden run).
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Approximate heap bytes retained by the machine snapshots.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The final capture interval in branches (after adaptive thinning).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The checkpoints strictly after dynamic branch `nth`, ascending —
    /// the convergence-pruning boundaries for a fault injected at `nth`.
    pub(crate) fn after(&self, nth: u64) -> &[Snapshot] {
        let i = self.snapshots.partition_point(|s| s.branch_index <= nth);
        &self.snapshots[i..]
    }

    /// The checkpoint with the greatest `branch_index <= max_branch`.
    pub(crate) fn nearest(&self, max_branch: u64) -> Option<&Snapshot> {
        match self.snapshots.binary_search_by_key(&max_branch, |s| s.branch_index) {
            Ok(i) => Some(&self.snapshots[i]),
            Err(0) => None,
            Err(i) => Some(&self.snapshots[i - 1]),
        }
    }

    /// Records a successful restore that skipped `fast_forwarded` branches
    /// and left `stepped` branches of residual prefix.
    pub(crate) fn note_restore(&self, fast_forwarded: u64, stepped: u64) {
        self.restores.inc();
        self.fast_forwarded.add(fast_forwarded);
        self.stepped.add(stepped);
    }

    /// Records an injection that had to run from scratch (no usable
    /// checkpoint), stepping the whole `stepped`-branch prefix.
    pub(crate) fn note_miss(&self, stepped: u64) {
        self.misses.inc();
        self.stepped.add(stepped);
    }

    /// Records a trial whose post-injection state converged back onto a
    /// golden checkpoint, letting the injector skip the benign suffix.
    pub(crate) fn note_pruned(&self) {
        self.pruned.inc();
    }

    /// A point-in-time copy of the set's shape and usage counters.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            snapshot_sets: 1,
            snapshots: self.snapshots.len() as u64,
            bytes: self.bytes,
            restores: self.restores.get(),
            misses: self.misses.get(),
            branches_fast_forwarded: self.fast_forwarded.get(),
            branches_stepped: self.stepped.get(),
            benign_pruned: self.pruned.get(),
        }
    }
}

/// Snapshot shape and usage counters, mergeable across sets for pool-wide
/// telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Snapshot sets aggregated into these totals.
    pub snapshot_sets: u64,
    /// Checkpoints held.
    pub snapshots: u64,
    /// Approximate heap bytes retained.
    pub bytes: u64,
    /// Injections that restored a checkpoint.
    pub restores: u64,
    /// Injections that ran from scratch despite snapshots being available
    /// (target before the first checkpoint, or a traced run needing more
    /// margin than any checkpoint leaves).
    pub misses: u64,
    /// Prefix branches skipped by restoring instead of stepping.
    pub branches_fast_forwarded: u64,
    /// Prefix branches stepped after the restore point (or from scratch).
    pub branches_stepped: u64,
    /// Trials whose post-injection state converged back onto a golden
    /// checkpoint, skipping the (provably benign) remainder of the run.
    pub benign_pruned: u64,
}

impl SnapshotStats {
    /// Accumulates another set's stats into this one (all fields are sums).
    pub fn absorb(&mut self, other: &SnapshotStats) {
        self.snapshot_sets += other.snapshot_sets;
        self.snapshots += other.snapshots;
        self.bytes += other.bytes;
        self.restores += other.restores;
        self.misses += other.misses;
        self.branches_fast_forwarded += other.branches_fast_forwarded;
        self.branches_stepped += other.branches_stepped;
        self.benign_pruned += other.benign_pruned;
    }
}

/// Accumulates snapshots during a golden run. Captures are incremental —
/// a [`SnapshotTracker`] over the machine's dirty-page log copies only the
/// pages written since the previous checkpoint, so checkpointing stays
/// cheap relative to the golden run itself.
pub(crate) struct SnapshotBuilder {
    interval: u64,
    snapshots: Vec<Snapshot>,
    tracker: SnapshotTracker,
}

impl SnapshotBuilder {
    pub(crate) fn new() -> SnapshotBuilder {
        SnapshotBuilder {
            interval: INITIAL_INTERVAL,
            snapshots: Vec::new(),
            tracker: SnapshotTracker::new(),
        }
    }

    /// Called by the golden run when it is about to execute dynamic branch
    /// `branch_index`; captures a checkpoint on interval boundaries. The
    /// machine is only observed — dirty-page bookkeeping aside, its state
    /// is untouched.
    pub(crate) fn observe_branch(&mut self, branch_index: u64, m: &mut Machine, dbt: &Dbt) {
        if !branch_index.is_multiple_of(self.interval) {
            return;
        }
        if self.snapshots.len() >= MAX_SNAPSHOTS {
            self.thin();
            if !branch_index.is_multiple_of(self.interval) {
                return;
            }
        }
        self.snapshots.push(Snapshot {
            branch_index,
            machine: self.tracker.capture(m),
            dbt: dbt.clone(),
        });
    }

    /// Doubles the interval and drops the checkpoints that no longer fall
    /// on it (every other one, since the kept indices are the even
    /// multiples of the old interval).
    fn thin(&mut self) {
        self.interval *= 2;
        let interval = self.interval;
        self.snapshots.retain(|s| s.branch_index % interval == 0);
    }

    pub(crate) fn finish(self, config: RunConfig) -> SnapshotSet {
        let bytes = self.snapshots.iter().map(|s| s.machine.bytes()).sum();
        SnapshotSet {
            config,
            snapshots: self.snapshots,
            interval: self.interval,
            bytes,
            restores: Counter::new(),
            misses: Counter::new(),
            fast_forwarded: Counter::new(),
            stepped: Counter::new(),
            pruned: Counter::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_core::TechniqueKind;
    use cfed_lang::compile;

    fn image(iters: u32) -> Image {
        compile(&format!(
            r#"
            fn main() {{
                let i = 0;
                let acc = 1;
                while (i < {iters}) {{
                    if (i % 2 == 0) {{ acc = acc + i; }} else {{ acc = acc * 2; }}
                    i = i + 1;
                }}
                out(acc);
            }}
            "#
        ))
        .unwrap()
    }

    #[test]
    fn capture_matches_plain_golden_run() {
        let img = image(30);
        let cfg = RunConfig::technique(TechniqueKind::EdgCf);
        let plain = crate::golden_run(&img, &cfg).unwrap();
        let (golden, snaps) = SnapshotSet::capture(&img, &cfg).unwrap();
        assert_eq!(plain, golden);
        assert!(!snaps.is_empty());
        assert!(snaps.len() <= MAX_SNAPSHOTS);
        assert!(snaps.bytes() > 0);
        assert!(snaps.matches(&cfg));
        assert!(!snaps.matches(&RunConfig::baseline()));
    }

    #[test]
    fn nearest_picks_greatest_at_or_below() {
        let img = image(60);
        let cfg = RunConfig::baseline();
        let (golden, snaps) = SnapshotSet::capture(&img, &cfg).unwrap();
        assert!(golden.branches > INITIAL_INTERVAL);
        // Branch 0 always has a checkpoint; a target below it has none.
        assert_eq!(snaps.nearest(0).unwrap().branch_index, 0);
        for target in [1, INITIAL_INTERVAL, golden.branches] {
            let s = snaps.nearest(target).expect("checkpoint at or below");
            assert!(s.branch_index <= target);
            // No later checkpoint also fits under the target.
            assert!(snaps
                .nearest(target)
                .map(|s| s.branch_index)
                .unwrap()
                .checked_add(snaps.interval())
                .map(|next| {
                    snaps.nearest(next.min(golden.branches)).unwrap().branch_index >= s.branch_index
                })
                .unwrap_or(true));
        }
    }

    #[test]
    fn snapshot_count_stays_bounded_and_interval_adapts() {
        // A long loop forces thinning: many more branches than
        // MAX_SNAPSHOTS * INITIAL_INTERVAL.
        let img = image(400);
        let cfg = RunConfig::baseline();
        let (golden, snaps) = SnapshotSet::capture(&img, &cfg).unwrap();
        assert!(golden.branches > (MAX_SNAPSHOTS as u64) * INITIAL_INTERVAL);
        assert!(snaps.len() <= MAX_SNAPSHOTS);
        assert!(snaps.interval() > INITIAL_INTERVAL, "thinning must have doubled the interval");
        // Checkpoints sit exactly on the final interval.
        let stats = snaps.stats();
        assert_eq!(stats.snapshots, snaps.len() as u64);
        assert_eq!(stats.restores, 0);
    }

    #[test]
    fn stats_absorb_sums_fields() {
        let a = SnapshotStats {
            snapshot_sets: 1,
            snapshots: 3,
            bytes: 100,
            restores: 5,
            misses: 1,
            branches_fast_forwarded: 40,
            branches_stepped: 7,
            benign_pruned: 2,
        };
        let mut b = a;
        b.absorb(&a);
        assert_eq!(b.snapshot_sets, 2);
        assert_eq!(b.snapshots, 6);
        assert_eq!(b.bytes, 200);
        assert_eq!(b.branches_fast_forwarded, 80);
        assert_eq!(b.benign_pruned, 4);
    }
}
