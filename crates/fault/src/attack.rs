//! Adversarial control-flow attack synthesis.
//!
//! The paper's §2 error model is single-bit soft errors, but its branch-error
//! categories A–F describe *any* illegal control transfer — including
//! deliberate ones. This module synthesizes attacker-style corruptions
//! (overwritten return addresses, corrupted jump-table targets,
//! mid-instruction gadget entry, cross-block edge splices past the
//! instrumentation head, stack/data pivots, predicate bypasses) as
//! first-class injection campaigns: each archetype strikes at a chosen
//! dynamic branch in *translated* code, is mechanically classified into the
//! paper's categories by the same `classify_*` machinery as the SEU model,
//! and runs to the same [`Outcome`](crate::inject::Outcome) vocabulary — so campaign tallies,
//! stores, merges, and the coordinator/worker service work byte-identically
//! for attacks and soft errors alike.
//!
//! What separates an attack from an SEU here is *reach*: a single bit flip
//! perturbs a branch target to a power-of-two neighbour, while an attacker
//! writes an arbitrary value. [`AttackKind`] therefore selects targets the
//! bit-flip model cannot express — any other block's head, the first byte
//! *past* another block's signature check, a byte-misaligned gadget inside
//! the current block, or a non-executable data page.

use crate::campaign::{CampaignReport, SHARD_TRIALS};
use crate::inject::{build, run_trial_inner, Golden, InjectionResult, WorkloadError};
use crate::snapshot::SnapshotSet;
use cfed_asm::Image;
use cfed_core::{
    classify_addr_fault, classify_flag_fault, trace_tier_config, BlockLayout, BranchFault,
    CacheLayout, CachePart, Category, RunConfig,
};
use cfed_dbt::{Dbt, DbtExit, DbtStep, NativeDbt, NullInstrumenter, TransBlock};
use cfed_isa::{Flags, Inst, INST_SIZE_U64};
use cfed_sim::{ExitReason, Machine, Trap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// An attack archetype: *how* the adversary corrupts control flow at the
/// chosen dynamic branch. Each archetype maps onto a pinned subset of the
/// paper's categories (see [`AttackKind::expected_categories`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Predicate bypass: corrupt the flags so the conditional branch takes
    /// the wrong — but legal — direction (category A). The control-flow
    /// analogue of flipping an `if (authorized)` check.
    FlipBranch,
    /// Replay: redirect control to the current block's own head, re-running
    /// it with live state (category B).
    ReenterBlock,
    /// Mid-instruction gadget: enter the current block at a byte offset
    /// that is not an instruction boundary (category C) — the classic
    /// unintended-gadget entry of return-oriented programming.
    GadgetEntry,
    /// Return-address overwrite: redirect control to the head of an
    /// arbitrary other translated block (category D).
    RetGadget,
    /// Cross-block splice *past* the instrumentation head: land on the
    /// first 1:1-copied body instruction of another block, skipping its
    /// signature check — the canonical CFI bypass (category E; D when the
    /// target block carries no head).
    EdgeSplice,
    /// Jump-table index slide: displace the legitimate target by a few
    /// slots, the classic out-of-bounds indirect-jump index (any of A–F,
    /// depending on where the slid target lands).
    JumpCorrupt,
    /// Stack/shellcode pivot: redirect control into the writable,
    /// non-executable data region (category F — the hardware-detected
    /// path).
    DataPivot,
}

impl AttackKind {
    /// All archetypes, in the order campaign matrices and reports use.
    pub const ALL: [AttackKind; 7] = [
        AttackKind::FlipBranch,
        AttackKind::ReenterBlock,
        AttackKind::GadgetEntry,
        AttackKind::RetGadget,
        AttackKind::EdgeSplice,
        AttackKind::JumpCorrupt,
        AttackKind::DataPivot,
    ];

    /// This archetype's position in [`AttackKind::ALL`].
    pub fn idx(self) -> usize {
        AttackKind::ALL.iter().position(|&k| k == self).expect("kind in ALL")
    }

    /// Stable kebab-case name, used in cell keys, wire frames and reports.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::FlipBranch => "flip-branch",
            AttackKind::ReenterBlock => "reenter-block",
            AttackKind::GadgetEntry => "gadget-entry",
            AttackKind::RetGadget => "ret-gadget",
            AttackKind::EdgeSplice => "edge-splice",
            AttackKind::JumpCorrupt => "jump-corrupt",
            AttackKind::DataPivot => "data-pivot",
        }
    }

    /// Parses a [`AttackKind::name`] back to the archetype.
    pub fn from_name(s: &str) -> Option<AttackKind> {
        AttackKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The categories this archetype is pinned to produce. Every placed
    /// attack classifies inside this set (enforced by the taxonomy tests);
    /// no attack ever classifies as `NoError` — an attack that would land
    /// on the correct target is unplaceable instead.
    pub fn expected_categories(self) -> &'static [Category] {
        match self {
            AttackKind::FlipBranch => &[Category::A],
            AttackKind::ReenterBlock => &[Category::B],
            AttackKind::GadgetEntry => &[Category::C],
            AttackKind::RetGadget => &[Category::D],
            AttackKind::EdgeSplice => &[Category::D, Category::E],
            AttackKind::JumpCorrupt => {
                &[Category::A, Category::B, Category::C, Category::D, Category::E, Category::F]
            }
            AttackKind::DataPivot => &[Category::F],
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One attack to mount: archetype, the dynamic branch execution it strikes
/// at (0-based, like [`crate::FaultSpec`]), and a free parameter that
/// selects among the archetype's candidate gadget targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackSpec {
    /// How to corrupt control flow.
    pub kind: AttackKind,
    /// The dynamic branch execution to strike at.
    pub nth: u64,
    /// Selects among candidate targets (flag bits, gadget blocks, slide
    /// distances); any `u64` is valid.
    pub param: u64,
}

/// Where an attack actually went — the evidence the forensics bundles
/// carry beyond what [`InjectionResult`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackProvenance {
    /// The corrupted control-transfer target (for `flip-branch`, the wrong
    /// arm the flipped predicate diverts to).
    pub target: u64,
    /// Which translated block and part the target landed on, when it landed
    /// inside one (`None` for out-of-cache targets such as data pivots).
    pub attribution: Option<(u64, CachePart)>,
}

/// How an attack corrupts the machine at the strike point.
#[derive(Debug, Clone, Copy)]
enum AttackAction {
    /// Seize the program counter (the branch itself never retires).
    Redirect { target: u64 },
    /// Corrupt the flags, then let the branch execute on them.
    FlipFlags { flipped: Flags },
}

/// A fully-resolved attack at a concrete strike point.
#[derive(Debug, Clone)]
struct AttackPlan {
    category: Category,
    site: u64,
    landing: bool,
    provenance: AttackProvenance,
    action: AttackAction,
}

/// Scans a translated block's *guest* source range for a `halt`. Landing
/// mid-block past the signature checks of a block that can halt before the
/// next check fires sits below the paper's block-granular detection model
/// (§2's sub-block caveat), so target selection skips such blocks for the
/// mid-block-landing archetypes.
fn guest_block_can_halt(image: &Image, b: &TransBlock) -> bool {
    let base = image.base();
    if b.guest_start < base {
        return false;
    }
    let start = (b.guest_start - base) as usize;
    let code = image.code();
    let end = start.saturating_add(b.guest_len as usize).min(code.len());
    if start >= end {
        return false;
    }
    code[start..end]
        .chunks(INST_SIZE_U64 as usize)
        .any(|c| matches!(Inst::decode_from_slice(c), Some(Ok(Inst::Halt))))
}

/// The strike-point context target selection works from.
struct TargetCtx<'a> {
    /// Cache address control is being seized at.
    site: u64,
    /// Address execution would continue at if nothing were corrupted.
    correct: u64,
    /// Fall-through of the strike site.
    fall: u64,
    /// Translated block containing the site, when there is one.
    own: Option<Range<u64>>,
    /// Every translated block, sorted by cache start (deterministic).
    blocks: &'a [TransBlock],
    image: &'a Image,
    /// Base of the guest's writable, non-executable data region.
    data_base: u64,
}

/// Picks the archetype's concrete target. `None` means the archetype is
/// unplaceable at this strike point (no candidate gadget, or the only
/// candidate coincides with the correct target).
fn select_target(kind: AttackKind, param: u64, ctx: &TargetCtx<'_>) -> Option<u64> {
    let pick = |c: &[u64]| (!c.is_empty()).then(|| c[(param as usize) % c.len()]);
    match kind {
        AttackKind::FlipBranch => None, // not a redirect; handled separately
        AttackKind::ReenterBlock => {
            let own = ctx.own.clone()?;
            (own.start != ctx.correct).then_some(own.start)
        }
        AttackKind::GadgetEntry => {
            // Any non-zero byte offset below the instruction size is off the
            // 8-byte instruction grid: an unintended decode point.
            Some(ctx.site + 1 + param % (INST_SIZE_U64 - 1))
        }
        AttackKind::RetGadget => {
            let c: Vec<u64> = ctx
                .blocks
                .iter()
                .map(|b| b.cache_start)
                .filter(|&s| {
                    ctx.own.as_ref().is_none_or(|o| s != o.start)
                        && s != ctx.correct
                        && s != ctx.fall
                })
                .collect();
            pick(&c)
        }
        AttackKind::EdgeSplice => {
            let c: Vec<u64> = ctx
                .blocks
                .iter()
                .filter(|b| b.body_len > 0 && !guest_block_can_halt(ctx.image, b))
                .map(|b| b.body_start)
                .filter(|&t| {
                    ctx.own.as_ref().is_none_or(|o| !o.contains(&t))
                        && t != ctx.correct
                        && t != ctx.fall
                })
                .collect();
            pick(&c)
        }
        AttackKind::JumpCorrupt => {
            let slide = (1 + param % 3) * INST_SIZE_U64;
            let t = if (param >> 2) & 1 == 0 {
                ctx.correct.wrapping_add(slide)
            } else {
                ctx.correct.wrapping_sub(slide)
            };
            // Sub-block caveat (see `guest_block_can_halt`): skip slides
            // landing mid-block in a block that can halt before a check.
            let risky = ctx.blocks.iter().any(|b| {
                b.cache_range().contains(&t)
                    && t != b.cache_start
                    && guest_block_can_halt(ctx.image, b)
            });
            (t != ctx.correct && !risky).then_some(t)
        }
        AttackKind::DataPivot => Some(ctx.data_base + (param % 1024) * INST_SIZE_U64),
    }
}

/// Resolves `kind`/`param` into a concrete plan at the current strike point
/// (the machine is stopped at a branch in translated code). Pure
/// observation: the machine and engine are not perturbed.
fn plan_attack(
    m: &mut Machine,
    dbt: &Dbt,
    image: &Image,
    kind: AttackKind,
    param: u64,
) -> Option<AttackPlan> {
    let site = m.cpu.ip();
    let inst = m.peek_inst().ok()?;
    debug_assert!(inst.is_branch());
    let taken = m.cpu.would_take(&inst);
    let fall = site + INST_SIZE_U64;
    let correct = if taken {
        inst.direct_target(site)
            .expect("all cache branches are direct (indirects become dispatcher exits)")
    } else {
        fall
    };
    let layout = CacheLayout::snapshot(dbt, image.base()..image.base() + image.code().len() as u64);

    if kind == AttackKind::FlipBranch {
        // Find a flag corruption that flips the branch's direction; the
        // param picks among the flippable bits.
        if !inst.reads_flags_for_direction() {
            return None;
        }
        let flags = m.cpu.flags();
        let flips: Vec<u8> = (0..Flags::BITS as u8)
            .filter(|&b| m.cpu.would_take_with_flags(&inst, flags.with_bit_flipped(b)) != taken)
            .collect();
        let bit = *flips.get(param as usize % flips.len().max(1))?;
        // The wrong-but-legal arm the flipped predicate diverts to.
        let diverted = if taken { fall } else { inst.direct_target(site)? };
        return Some(AttackPlan {
            category: classify_flag_fault(true),
            site,
            landing: false,
            provenance: AttackProvenance {
                target: diverted,
                attribution: layout.attribute(diverted),
            },
            action: AttackAction::FlipFlags { flipped: flags.with_bit_flipped(bit) },
        });
    }

    let mut blocks: Vec<TransBlock> = dbt.blocks().copied().collect();
    blocks.sort_by_key(|b| b.cache_start);
    let own = layout.block_of(site);
    let ctx = TargetCtx {
        site,
        correct,
        fall,
        own: own.clone(),
        blocks: &blocks,
        image,
        data_base: m.layout().data_base,
    };
    let target = select_target(kind, param, &ctx)?;
    if target == correct {
        return None;
    }
    let category = classify_addr_fault(
        &BranchFault {
            branch_block: own.unwrap_or(site..site + INST_SIZE_U64),
            fall_through: fall,
            correct_target: correct,
            faulty_target: target,
        },
        &layout,
    );
    if category == Category::NoError {
        return None;
    }
    Some(AttackPlan {
        category,
        site,
        landing: layout.is_instrumentation(target),
        provenance: AttackProvenance { target, attribution: layout.attribute(target) },
        action: AttackAction::Redirect { target },
    })
}

/// Applies a resolved plan: redirects seize the program counter (the branch
/// never retires — a corrupted return address or jump target), flag flips
/// execute the branch on the corrupted flags.
fn attack_now(
    m: &mut Machine,
    dbt: &mut Dbt,
    image: &Image,
    spec: AttackSpec,
) -> Option<(AttackPlan, DbtStep)> {
    let plan = plan_attack(m, dbt, image, spec.kind, spec.param)?;
    let step = match plan.action {
        AttackAction::Redirect { target } => {
            m.cpu.set_ip(target);
            DbtStep::Continue
        }
        AttackAction::FlipFlags { flipped } => {
            m.cpu.set_flags(flipped);
            dbt.step(m)
        }
    };
    Some((plan, step))
}

/// Mounts one attack and runs to an outcome, replaying the attack-free
/// prefix from scratch. Returns `Ok(None)` when the attack is unplaceable:
/// the strike branch is beyond the program's execution, or the archetype
/// has no candidate target there.
///
/// # Errors
///
/// [`WorkloadError`] when the attack-free prefix itself misbehaves — only
/// possible when `golden` does not describe this `(image, config)`.
pub fn attack(
    image: &Image,
    cfg: &RunConfig,
    spec: AttackSpec,
    golden: &Golden,
) -> Result<Option<InjectionResult>, WorkloadError> {
    attack_with(image, cfg, spec, golden, None)
}

/// As [`attack`], fast-forwarding through `snapshots` when provided (see
/// [`crate::inject_with`]); the outcome is bit-identical either way.
///
/// # Errors
///
/// As [`attack`].
pub fn attack_with(
    image: &Image,
    cfg: &RunConfig,
    spec: AttackSpec,
    golden: &Golden,
    snapshots: Option<&SnapshotSet>,
) -> Result<Option<InjectionResult>, WorkloadError> {
    let r = run_trial_inner(image, cfg, spec.nth, golden, None, snapshots, |m, dbt, image| {
        attack_now(m, dbt, image, spec).map(|(p, step)| (p.category, p.site, p.landing, step))
    })?;
    Ok(r.map(|(result, _)| result))
}

/// As [`attack_with`] with an execution tracer of `capacity` instructions
/// attached, returning the gadget provenance alongside — the forensics
/// path. Deterministic: re-running a plain [`attack`] trial through here
/// reproduces the identical outcome with evidence attached.
///
/// # Errors
///
/// As [`attack`].
pub fn attack_traced_with(
    image: &Image,
    cfg: &RunConfig,
    spec: AttackSpec,
    golden: &Golden,
    capacity: usize,
    snapshots: Option<&SnapshotSet>,
) -> Result<Option<(InjectionResult, cfed_sim::Tracer, AttackProvenance)>, WorkloadError> {
    let mut provenance = None;
    let r =
        run_trial_inner(image, cfg, spec.nth, golden, Some(capacity), snapshots, |m, dbt, img| {
            attack_now(m, dbt, img, spec).map(|(p, step)| {
                provenance = Some(p.provenance);
                (p.category, p.site, p.landing, step)
            })
        })?;
    Ok(r.map(|(result, tracer)| {
        (result, tracer.expect("tracer attached"), provenance.expect("attack placed"))
    }))
}

/// A randomized attack campaign over one image + DBT configuration: the
/// adversarial counterpart of [`crate::Campaign`], sharing its shard
/// geometry, seed derivation and report type — which is what lets attack
/// cells flow through stores, merges, kill/resume and the serve pipeline
/// unchanged.
#[derive(Debug, Clone)]
pub struct AttackCampaign {
    /// DBT configuration under test.
    pub config: RunConfig,
    /// Attack archetype this campaign mounts.
    pub kind: AttackKind,
    /// Number of attacks to mount.
    pub trials: u64,
    /// RNG seed (campaigns are deterministic given the seed).
    pub seed: u64,
}

impl AttackCampaign {
    /// A campaign with the given trial count and the fixed default seed.
    pub fn new(config: RunConfig, kind: AttackKind, trials: u64) -> AttackCampaign {
        AttackCampaign { config, kind, trials, seed: 0xCFED_2006 }
    }

    /// Number of shards ([`SHARD_TRIALS`] trials each, last possibly short).
    pub fn num_shards(&self) -> u64 {
        self.trials.div_ceil(SHARD_TRIALS)
    }

    /// Trials in shard `shard_index`.
    pub fn shard_trials(&self, shard_index: u64) -> u64 {
        let start = shard_index * SHARD_TRIALS;
        SHARD_TRIALS.min(self.trials.saturating_sub(start))
    }

    /// Shard seed derivation — identical to [`crate::Campaign::shard_seed`],
    /// so attack shards are bit-identical however they are scheduled.
    pub fn shard_seed(&self, shard_index: u64) -> u64 {
        let mut state = self.seed.wrapping_add(shard_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rand::splitmix64(&mut state)
    }

    /// Runs one shard against a precomputed golden reference.
    ///
    /// Each trial strikes a uniformly random dynamic branch execution with a
    /// uniformly random target parameter; unplaceable attacks count as
    /// skipped, mirroring out-of-range faults.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] when a trial's attack-free prefix misbehaves.
    pub fn run_shard(
        &self,
        image: &Image,
        golden: &Golden,
        shard_index: u64,
    ) -> Result<CampaignReport, WorkloadError> {
        self.run_shard_with(image, golden, None, shard_index, |_, _| {})
    }

    /// As [`AttackCampaign::run_shard`], fast-forwarding through `snapshots`
    /// when provided and invoking `observer` with every placed trial.
    /// Observers are side channels (telemetry, forensics) and must not
    /// influence the tallies.
    ///
    /// # Errors
    ///
    /// As [`AttackCampaign::run_shard`].
    pub fn run_shard_with(
        &self,
        image: &Image,
        golden: &Golden,
        snapshots: Option<&SnapshotSet>,
        shard_index: u64,
        mut observer: impl FnMut(AttackSpec, &InjectionResult),
    ) -> Result<CampaignReport, WorkloadError> {
        let mut rng = StdRng::seed_from_u64(self.shard_seed(shard_index));
        let mut report = CampaignReport::new(golden.clone());
        for _ in 0..self.shard_trials(shard_index) {
            let nth = rng.gen_range(0..golden.branches.max(1));
            let param = rng.gen::<u64>();
            let spec = AttackSpec { kind: self.kind, nth, param };
            if let Some(r) = attack_with(image, &self.config, spec, golden, snapshots)? {
                observer(spec, &r);
                report.record(r.category, r.outcome, r.latency_insts);
            } else {
                report.skipped += 1;
            }
        }
        Ok(report)
    }

    /// Runs the campaign against a caller-supplied golden reference.
    ///
    /// # Errors
    ///
    /// As [`AttackCampaign::run_shard`].
    pub fn run_with_golden(
        &self,
        image: &Image,
        golden: &Golden,
        snapshots: Option<&SnapshotSet>,
    ) -> Result<CampaignReport, WorkloadError> {
        let mut report = CampaignReport::new(golden.clone());
        for shard in 0..self.num_shards() {
            report.merge(&self.run_shard_with(image, golden, snapshots, shard, |_, _| {})?);
        }
        Ok(report)
    }

    /// Runs the campaign: golden run (capturing fast-forward checkpoints),
    /// then every shard in order.
    ///
    /// # Errors
    ///
    /// As [`AttackCampaign::run_shard`], plus golden-run failures.
    pub fn run(&self, image: &Image) -> Result<CampaignReport, WorkloadError> {
        let (golden, snapshots) = SnapshotSet::capture(image, &self.config)?;
        self.run_with_golden(image, &golden, Some(&snapshots))
    }
}

fn cat_idx(c: Category) -> usize {
    Category::ALL.iter().position(|&x| x == c).expect("category in ALL")
}

/// Per-archetype × per-category counts of *plannable* attacks over an
/// execution — the adversarial counterpart of the §2 error-model table,
/// answering "which categories can each archetype reach on this workload?"
/// without running the attacked suffixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackSurface {
    /// counts[archetype][category], in [`AttackKind::ALL`] ×
    /// [`Category::ALL`] order.
    counts: [[u64; 7]; 7],
    /// Strike points where the archetype had no candidate target.
    pub unplaceable: [u64; 7],
    /// Dynamic branches analyzed.
    pub branches: u64,
}

impl AttackSurface {
    fn new() -> AttackSurface {
        AttackSurface { counts: [[0; 7]; 7], unplaceable: [0; 7], branches: 0 }
    }

    /// Plannable attacks of `kind` classifying as `c`.
    pub fn count(&self, kind: AttackKind, c: Category) -> u64 {
        self.counts[kind.idx()][cat_idx(c)]
    }

    /// Total plannable attacks of `kind`.
    pub fn placed(&self, kind: AttackKind) -> u64 {
        self.counts[kind.idx()].iter().sum()
    }

    /// Categories `kind` actually reached, in [`Category::ALL`] order.
    pub fn observed(&self, kind: AttackKind) -> Vec<Category> {
        Category::ALL.into_iter().filter(|&c| self.count(kind, c) > 0).collect()
    }

    /// Folds another surface in (associative, commutative).
    pub fn merge(&mut self, other: &AttackSurface) {
        for (into, from) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (i, f) in into.iter_mut().zip(from.iter()) {
                *i += f;
            }
        }
        for (i, f) in self.unplaceable.iter_mut().zip(other.unplaceable.iter()) {
            *i += f;
        }
        self.branches += other.branches;
    }

    /// Renders the archetype × category table.
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = write!(out, "{:>14} |", "archetype");
        for c in Category::ALL {
            if c == Category::NoError {
                continue;
            }
            let _ = write!(out, " {:>7}", c.to_string());
        }
        let _ = writeln!(out, " | {:>8}", "unplaced");
        let _ = writeln!(out, "{}", "-".repeat(14 + 3 + 8 * 6 + 3 + 8));
        for kind in AttackKind::ALL {
            let _ = write!(out, "{:>14} |", kind.name());
            for c in Category::ALL {
                if c == Category::NoError {
                    continue;
                }
                let _ = write!(out, " {:>7}", self.count(kind, c));
            }
            let _ = writeln!(out, " | {:>8}", self.unplaceable[kind.idx()]);
        }
        out
    }
}

/// The attack-surface analyzer: walks one fault-free execution under a DBT
/// configuration and plans (without mounting) every archetype at every
/// dynamic branch, tabulating which categories each archetype reaches.
#[derive(Debug, Clone)]
pub struct AttackModel {
    /// DBT configuration whose translated-code geometry defines the
    /// attack surface.
    pub config: RunConfig,
}

impl AttackModel {
    /// An analyzer for the given configuration.
    pub fn new(config: RunConfig) -> AttackModel {
        AttackModel { config }
    }

    /// Analyzes `image`'s attack surface. At each dynamic branch the target
    /// parameter is the branch index, cycling deterministically through
    /// each archetype's candidates.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] when the attack-free run misbehaves.
    pub fn analyze(&self, image: &Image) -> Result<AttackSurface, WorkloadError> {
        let (mut m, mut dbt) = build(image, &self.config);
        let mut surface = AttackSurface::new();
        loop {
            if m.cpu.stats().insts >= self.config.max_insts {
                return Err(WorkloadError::BudgetExhausted { insts: m.cpu.stats().insts });
            }
            if m.peek_inst().map(|i| i.is_branch()).unwrap_or(false) {
                for kind in AttackKind::ALL {
                    match plan_attack(&mut m, &dbt, image, kind, surface.branches) {
                        Some(p) => surface.counts[kind.idx()][cat_idx(p.category)] += 1,
                        None => surface.unplaceable[kind.idx()] += 1,
                    }
                }
                surface.branches += 1;
            }
            match dbt.step(&mut m) {
                DbtStep::Continue => {}
                DbtStep::Halted => return Ok(surface),
                DbtStep::Exit(t) => return Err(WorkloadError::Trapped(t)),
            }
        }
    }
}

/// How a pause-style engine attack ended — normalized across the fused
/// interpreter, the native backend and the plain interpreter so runs are
/// directly comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackExit {
    /// Guest halted with this exit code.
    Halted {
        /// Exit code from `r0`.
        code: u64,
    },
    /// A trap surfaced.
    Trapped(Trap),
    /// The resume budget ran out.
    StepLimit,
}

impl From<DbtExit> for AttackExit {
    fn from(e: DbtExit) -> AttackExit {
        match e {
            DbtExit::Halted { code } => AttackExit::Halted { code },
            DbtExit::Trapped(t) => AttackExit::Trapped(t),
            DbtExit::StepLimit => AttackExit::StepLimit,
        }
    }
}

impl From<ExitReason> for AttackExit {
    fn from(e: ExitReason) -> AttackExit {
        match e {
            ExitReason::Halted { code } => AttackExit::Halted { code },
            ExitReason::Trapped(t) => AttackExit::Trapped(t),
            ExitReason::StepLimit => AttackExit::StepLimit,
        }
    }
}

/// Outcome of one pause/seize/resume engine attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauseAttack {
    /// Whether a target was selected and the program counter seized (when
    /// `false`, the run is the unattacked continuation).
    pub placed: bool,
    /// How the run ended.
    pub exit: AttackExit,
    /// Observable output stream.
    pub output: Vec<u64>,
    /// Instructions retired in total.
    pub insts: u64,
}

impl PauseAttack {
    /// Whether the attack was caught — by a signature check or by the
    /// hardware (category-F) path.
    pub fn detected(&self) -> bool {
        matches!(&self.exit, AttackExit::Trapped(t)
            if t.is_cfe_report() || t.is_hardware_cfe_detection())
    }
}

/// Mounts a pause-style attack on a DBT engine: run `pause` instructions,
/// seize the program counter with the archetype's target (selected from the
/// live translated-code geometry), resume to an outcome. Works identically
/// on the fused interpreter and the native backend — both resume purely
/// from the architectural program counter — which is what the cross-engine
/// differential tests and the fuzz oracle compare. `flip-branch` is not a
/// program-counter seizure and is never placed here.
pub fn pause_attack(
    image: &Image,
    cfg: &RunConfig,
    kind: AttackKind,
    param: u64,
    pause: u64,
    native: bool,
    tier_threshold: Option<u32>,
) -> PauseAttack {
    let instr: Box<dyn cfed_dbt::Instrumenter> = match cfg.technique {
        Some(k) => k.instrumenter_for(image, cfg.policy),
        None => Box::new(NullInstrumenter),
    };
    let tier = tier_threshold.and_then(|t| trace_tier_config(cfg, t));
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = NativeDbt::with_options(instr, cfg.style, &mut m, native, tier);
    let (placed, exit) = match dbt.run(&mut m, pause) {
        DbtExit::StepLimit => {
            let ip = m.cpu.ip();
            let mut blocks: Vec<TransBlock> = dbt.dbt().blocks().copied().collect();
            blocks.sort_by_key(|b| b.cache_start);
            let own = blocks
                .iter()
                .find(|b| b.cache_range().contains(&ip))
                .map(|b| b.cache_start..b.cache_end);
            // At a pause there is no branch in flight: the "correct" next
            // address is simply where the run would resume.
            let ctx = TargetCtx {
                site: ip,
                correct: ip,
                fall: ip,
                own,
                blocks: &blocks,
                image,
                data_base: m.layout().data_base,
            };
            match select_target(kind, param, &ctx).filter(|&t| t != ip) {
                Some(t) => {
                    m.cpu.set_ip(t);
                    (true, dbt.run(&mut m, cfg.max_insts))
                }
                None => (false, dbt.run(&mut m, cfg.max_insts)),
            }
        }
        other => (false, other),
    };
    PauseAttack {
        placed,
        exit: exit.into(),
        output: m.cpu.take_output(),
        insts: m.cpu.stats().insts,
    }
}

/// The plain-interpreter counterpart of [`pause_attack`]: targets come from
/// the *guest* control-flow graph (there is no translated code), so this
/// measures the hardware-only detection floor of an uninstrumented run.
pub fn pause_attack_interp(image: &Image, kind: AttackKind, param: u64, pause: u64) -> PauseAttack {
    let cfg = cfed_core::cfg::Cfg::recover(image);
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let (placed, exit) = match m.run(pause) {
        ExitReason::StepLimit => {
            let ip = m.cpu.ip();
            // Mirror the cache-space selection over guest blocks.
            let blocks: Vec<TransBlock> = cfg
                .blocks()
                .iter()
                .map(|b| TransBlock {
                    guest_start: b.start,
                    guest_len: b.end - b.start,
                    cache_start: b.start,
                    cache_end: b.end,
                    body_start: b.start,
                    body_len: b.end - b.start,
                })
                .collect();
            let own = blocks
                .iter()
                .find(|b| b.cache_range().contains(&ip))
                .map(|b| b.cache_start..b.cache_end);
            let ctx = TargetCtx {
                site: ip,
                correct: ip,
                fall: ip,
                own,
                blocks: &blocks,
                image,
                data_base: m.layout().data_base,
            };
            match select_target(kind, param, &ctx).filter(|&t| t != ip) {
                Some(t) => {
                    m.cpu.set_ip(t);
                    (true, m.run(10_000_000))
                }
                None => (false, m.run(10_000_000)),
            }
        }
        other => (false, other),
    };
    PauseAttack {
        placed,
        exit: exit.into(),
        output: m.cpu.take_output(),
        insts: m.cpu.stats().insts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::Outcome;
    use cfed_core::TechniqueKind;
    use cfed_dbt::native_enabled;
    use cfed_lang::compile;

    fn image() -> Image {
        compile(
            r#"
            fn leaf(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
            fn main() {
                let i = 0;
                let acc = 5;
                while (i < 30) {
                    if (i % 3 == 1) { acc = acc * 2 - i; } else { acc = acc + leaf(i); }
                    i = i + 1;
                }
                out(acc);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in AttackKind::ALL {
            assert_eq!(AttackKind::from_name(k.name()), Some(k));
        }
        assert_eq!(AttackKind::from_name("nonsense"), None);
    }

    #[test]
    fn surface_stays_within_expected_categories() {
        // The A–F taxonomy is total and pinned: every plannable attack
        // classifies inside its archetype's expected set, never NoError.
        let img = image();
        for cfg in [RunConfig::baseline(), RunConfig::technique(TechniqueKind::EdgCf)] {
            let s = AttackModel::new(cfg).analyze(&img).unwrap();
            assert!(s.branches > 50);
            for kind in AttackKind::ALL {
                assert!(s.placed(kind) > 0, "{kind} never placed");
                assert_eq!(s.count(kind, Category::NoError), 0, "{kind} planned a NoError");
                for c in s.observed(kind) {
                    assert!(
                        kind.expected_categories().contains(&c),
                        "{kind} reached unexpected category {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn instrumented_splices_land_mid_block() {
        // Under a checking technique the splice target sits past the head:
        // category E. Under baseline there is no head: category D.
        let img = image();
        let base = AttackModel::new(RunConfig::baseline()).analyze(&img).unwrap();
        assert_eq!(base.observed(AttackKind::EdgeSplice), vec![Category::D]);
        let edg =
            AttackModel::new(RunConfig::technique(TechniqueKind::EdgCf)).analyze(&img).unwrap();
        assert_eq!(edg.observed(AttackKind::EdgeSplice), vec![Category::E]);
    }

    #[test]
    fn attacks_are_deterministic_and_fast_forward_equivalent() {
        let img = image();
        let cfg = RunConfig::technique(TechniqueKind::EdgCf);
        let (golden, snaps) = SnapshotSet::capture(&img, &cfg).unwrap();
        for kind in AttackKind::ALL {
            for nth in [0u64, 9, 33] {
                let spec = AttackSpec { kind, nth, param: nth * 17 + 3 };
                let a = attack(&img, &cfg, spec, &golden).unwrap();
                let b = attack(&img, &cfg, spec, &golden).unwrap();
                let fast = attack_with(&img, &cfg, spec, &golden, Some(&snaps)).unwrap();
                assert_eq!(a, b, "{kind} nth={nth} not deterministic");
                assert_eq!(a, fast, "{kind} nth={nth} fast-forward diverged");
            }
        }
    }

    #[test]
    fn data_pivot_is_hardware_detected() {
        let img = image();
        let cfg = RunConfig::baseline();
        let golden = crate::inject::golden_run(&img, &cfg).unwrap();
        let mut placed = 0;
        for nth in 0..10 {
            let spec = AttackSpec { kind: AttackKind::DataPivot, nth, param: nth };
            if let Some(r) = attack(&img, &cfg, spec, &golden).unwrap() {
                assert_eq!(r.category, Category::F);
                assert_eq!(r.outcome, Outcome::DetectedByHw, "pivot at {nth} escaped hardware");
                placed += 1;
            }
        }
        assert!(placed > 0);
    }

    #[test]
    fn gadget_entry_trips_alignment_hardware() {
        let img = image();
        let cfg = RunConfig::baseline();
        let golden = crate::inject::golden_run(&img, &cfg).unwrap();
        let mut placed = 0;
        for nth in 0..10 {
            let spec = AttackSpec { kind: AttackKind::GadgetEntry, nth, param: 2 };
            if let Some(r) = attack(&img, &cfg, spec, &golden).unwrap() {
                assert_eq!(r.category, Category::C);
                assert_eq!(r.outcome, Outcome::DetectedByHw, "gadget at {nth} escaped hardware");
                placed += 1;
            }
        }
        assert!(placed > 0);
    }

    #[test]
    fn campaign_shard_merge_equals_serial_run() {
        let img = image();
        let c = AttackCampaign::new(
            RunConfig::technique(TechniqueKind::EdgCf),
            AttackKind::RetGadget,
            150,
        );
        let serial = c.run(&img).unwrap();
        let golden = crate::inject::golden_run(&img, &c.config).unwrap();
        let mut merged = CampaignReport::new(golden.clone());
        for shard in (0..c.num_shards()).rev() {
            merged.merge(&c.run_shard(&img, &golden, shard).unwrap());
        }
        for cat in Category::ALL {
            assert_eq!(serial.category(cat), merged.category(cat));
        }
        assert_eq!(serial.skipped, merged.skipped);
        assert_eq!(serial.latency_totals(), merged.latency_totals());
    }

    #[test]
    fn campaign_accounts_every_trial() {
        let img = image();
        for kind in AttackKind::ALL {
            let c = AttackCampaign::new(RunConfig::technique(TechniqueKind::Rcf), kind, 40);
            let r = c.run(&img).unwrap();
            let total: u64 = Category::ALL.iter().map(|&cat| r.category(cat).total()).sum();
            assert_eq!(total + r.skipped, 40, "{kind}");
        }
    }

    #[test]
    fn traced_attack_reproduces_plain_outcome_with_provenance() {
        let img = image();
        let cfg = RunConfig::technique(TechniqueKind::EdgCf);
        let (golden, snaps) = SnapshotSet::capture(&img, &cfg).unwrap();
        let spec = AttackSpec { kind: AttackKind::EdgeSplice, nth: 12, param: 5 };
        let plain = attack(&img, &cfg, spec, &golden).unwrap();
        let traced = attack_traced_with(&img, &cfg, spec, &golden, 64, Some(&snaps)).unwrap();
        match (plain, traced) {
            (Some(p), Some((t, _, prov))) => {
                assert_eq!(p, t);
                assert!(prov.attribution.is_some(), "splice target attributes to a block");
            }
            (None, None) => {}
            (p, t) => panic!("placement diverged: {:?} vs {}", p, t.is_some()),
        }
    }

    #[test]
    fn pause_attack_fused_and_native_agree() {
        let img = image();
        let cfg = RunConfig::technique(TechniqueKind::EdgCf);
        for kind in AttackKind::ALL {
            if kind == AttackKind::FlipBranch {
                continue;
            }
            for pause in [900u64, 2400] {
                let fused = pause_attack(&img, &cfg, kind, 7, pause, false, None);
                if native_enabled() {
                    let native = pause_attack(&img, &cfg, kind, 7, pause, true, None);
                    assert_eq!(fused, native, "{kind} pause={pause}");
                }
            }
        }
    }

    #[test]
    fn interp_pause_attack_runs() {
        let img = image();
        let mut placed = 0;
        for kind in [AttackKind::DataPivot, AttackKind::RetGadget, AttackKind::GadgetEntry] {
            let r = pause_attack_interp(&img, kind, 3, 500);
            if r.placed {
                placed += 1;
            }
        }
        assert!(placed > 0, "interp attacks must place");
    }

    #[test]
    fn surface_render_lists_archetypes() {
        let img = image();
        let s = AttackModel::new(RunConfig::baseline()).analyze(&img).unwrap();
        let text = s.render("attack surface");
        for kind in AttackKind::ALL {
            assert!(text.contains(kind.name()), "render missing {kind}");
        }
    }
}
