//! Forensics bundles: what executed around a fault that ended badly.
//!
//! When a campaign trial produces silent data corruption, a timeout, or a
//! misdetection (a fault classified as harmless that was not benign), the
//! runner re-injects the *same* deterministic fault with an execution
//! tracer attached and packages the evidence: the faulted instruction
//! address, the flipped bit, the classification, and the tracer's last-N
//! instruction window and branch history ending at the detection point.

use crate::attack::{attack_traced_with, AttackProvenance, AttackSpec};
use crate::inject::{inject_traced_with, FaultSpec, Golden, InjectionResult, Outcome};
use crate::snapshot::SnapshotSet;
use cfed_asm::Image;
use cfed_core::{CachePart, Category, RunConfig};
use cfed_telemetry::json::{obj, Json};

/// Default instruction-window length retained by forensics captures.
pub const DEFAULT_TRACE_WINDOW: usize = 64;

/// Evidence package for one interesting trial.
#[derive(Debug, Clone)]
pub struct ForensicsBundle {
    /// The injected fault.
    pub spec: FaultSpec,
    /// The (re-produced) result.
    pub result: InjectionResult,
    /// The tracer export: `{"retired":…,"window":[…],"branches":[…]}`,
    /// oldest first, ending at the detection point.
    pub trace: Json,
}

impl ForensicsBundle {
    /// Whether a trial's result warrants a forensics capture: SDC, a
    /// timeout, or a misdetection (classified [`Category::NoError`] — the
    /// flipped bit supposedly could not change control flow — yet the run
    /// was not benign).
    pub fn wanted(result: &InjectionResult) -> bool {
        matches!(result.outcome, Outcome::Sdc | Outcome::Timeout)
            || (result.category == Category::NoError && result.outcome != Outcome::Benign)
    }

    /// Re-injects `spec` with a tracer of `window` instructions attached
    /// and bundles the evidence. Injection is deterministic, so the result
    /// matches the plain trial's. Returns `None` if the fault cannot be
    /// placed (which a previously-placed trial never hits) or if the
    /// fault-free prefix misbehaves (ditto — the golden run succeeded).
    pub fn capture(
        image: &Image,
        cfg: &RunConfig,
        spec: FaultSpec,
        golden: &Golden,
        window: usize,
    ) -> Option<ForensicsBundle> {
        ForensicsBundle::capture_with(image, cfg, spec, golden, window, None)
    }

    /// As [`ForensicsBundle::capture`], fast-forwarding through
    /// `snapshots` when provided. The bundle — result *and* trace — is
    /// bit-identical to the from-scratch capture (see
    /// [`inject_traced_with`]).
    pub fn capture_with(
        image: &Image,
        cfg: &RunConfig,
        spec: FaultSpec,
        golden: &Golden,
        window: usize,
        snapshots: Option<&SnapshotSet>,
    ) -> Option<ForensicsBundle> {
        let (result, tracer) =
            inject_traced_with(image, cfg, spec, golden, window, snapshots).ok()??;
        Some(ForensicsBundle { spec, result, trace: tracer.export() })
    }

    /// Serializes the bundle for the JSONL event sink.
    pub fn to_json(&self) -> Json {
        let (kind, nth, bit) = match self.spec {
            FaultSpec::AddrBit { nth, bit } => ("addr_bit", nth, bit),
            FaultSpec::FlagBit { nth, bit } => ("flag_bit", nth, bit),
        };
        obj(vec![
            ("fault", Json::Str(kind.to_string())),
            ("nth_branch", Json::UInt(nth)),
            ("flipped_bit", Json::UInt(bit as u64)),
            ("site", Json::UInt(self.result.site)),
            ("category", Json::Str(self.result.category.to_string())),
            ("outcome", Json::Str(self.result.outcome.to_string())),
            ("latency_insts", Json::UInt(self.result.latency_insts)),
            ("trace", self.trace.clone()),
        ])
    }
}

/// Evidence package for one interesting *attack* trial: the
/// [`ForensicsBundle`] shape plus gadget provenance — where the seized
/// control transfer actually went, and which translated-block part it
/// landed on.
#[derive(Debug, Clone)]
pub struct AttackForensics {
    /// The mounted attack.
    pub spec: AttackSpec,
    /// The (re-produced) result.
    pub result: InjectionResult,
    /// Where the attack went.
    pub provenance: AttackProvenance,
    /// The tracer export, oldest first, ending at the detection point.
    pub trace: Json,
}

impl AttackForensics {
    /// Re-mounts `spec` with a tracer of `window` instructions attached and
    /// bundles the evidence; deterministic, so the result matches the plain
    /// trial's. The capture criterion is [`ForensicsBundle::wanted`] —
    /// attacks and faults share the same notion of "interesting".
    pub fn capture_with(
        image: &Image,
        cfg: &RunConfig,
        spec: AttackSpec,
        golden: &Golden,
        window: usize,
        snapshots: Option<&SnapshotSet>,
    ) -> Option<AttackForensics> {
        let (result, tracer, provenance) =
            attack_traced_with(image, cfg, spec, golden, window, snapshots).ok()??;
        Some(AttackForensics { spec, result, provenance, trace: tracer.export() })
    }

    /// Serializes the bundle for the JSONL event sink.
    pub fn to_json(&self) -> Json {
        let part = |p: CachePart| match p {
            CachePart::Head => "head",
            CachePart::Payload => "payload",
            CachePart::Tail => "tail",
        };
        let attribution = match self.provenance.attribution {
            Some((guest_start, p)) => obj(vec![
                ("guest_block", Json::UInt(guest_start)),
                ("part", Json::Str(part(p).to_string())),
            ]),
            None => Json::Null,
        };
        obj(vec![
            ("attack", Json::Str(self.spec.kind.name().to_string())),
            ("nth_branch", Json::UInt(self.spec.nth)),
            ("param", Json::UInt(self.spec.param)),
            ("site", Json::UInt(self.result.site)),
            ("target", Json::UInt(self.provenance.target)),
            ("attribution", attribution),
            ("category", Json::Str(self.result.category.to_string())),
            ("outcome", Json::Str(self.result.outcome.to_string())),
            ("latency_insts", Json::UInt(self.result.latency_insts)),
            ("trace", self.trace.clone()),
        ])
    }
}
