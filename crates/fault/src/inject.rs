//! Single-fault injection into DBT-translated code.
//!
//! Realizes the experiment the paper leaves as future work ("we will also
//! work on soft-error injection to measure the actual effectiveness of our
//! techniques"): flip one bit — in a branch's address offset as fetched, or
//! in the flags register at a branch — at a chosen dynamic branch execution
//! inside the code cache, then observe the outcome. Faults strike the
//! *translated* code, so the instrumentation's own inserted branches are
//! fault sites too — exactly the surface RCF exists to protect (§3.2).

use crate::snapshot::{SnapshotBuilder, SnapshotSet};
use cfed_asm::Image;
use cfed_core::{
    classify_addr_fault, classify_flag_fault, BlockLayout, BranchFault, CacheLayout, Category,
    RunConfig,
};
use cfed_dbt::{Dbt, DbtStep, NullInstrumenter};
use cfed_isa::{Flags, INST_SIZE_U64};
use cfed_sim::{Machine, Trap};

/// The *fault-free* execution misbehaved: the workload itself is unsound
/// under the given configuration. Distinct from an unplaceable fault
/// (`Ok(None)` from [`inject`]) — an error here means every trial against
/// this `(image, config)` is meaningless, so campaign runners fail the
/// owning shard/cell rather than the whole process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// The fault-free program did not halt within the instruction budget.
    BudgetExhausted {
        /// Instructions retired when the budget cut the run off.
        insts: u64,
    },
    /// The fault-free program trapped.
    Trapped(Trap),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::BudgetExhausted { insts } => {
                write!(f, "fault-free run exceeded instruction budget ({insts} insts)")
            }
            WorkloadError::Trapped(t) => write!(f, "fault-free run trapped: {t}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A single-bit fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Flip bit `bit` (0–31) of the address offset of the `nth` dynamic
    /// branch execution (0-based) in translated code. Transient: the
    /// encoding is restored after the branch executes once.
    AddrBit { nth: u64, bit: u8 },
    /// Flip bit `bit` (0–5) of the flags register immediately before the
    /// `nth` dynamic branch execution.
    FlagBit { nth: u64, bit: u8 },
}

impl FaultSpec {
    fn nth(&self) -> u64 {
        match self {
            FaultSpec::AddrBit { nth, .. } | FaultSpec::FlagBit { nth, .. } => *nth,
        }
    }
}

/// How an injected run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The control-flow checking instrumentation reported the error.
    DetectedByCheck,
    /// Hardware memory protection caught it (execute permission, alignment,
    /// invalid instruction — the paper's category-F detection path).
    DetectedByHw,
    /// The program raised a visible fault (guest assert, division by zero,
    /// data access fault) — fail-stop, but not via control-flow checking.
    OtherFault,
    /// The program completed with output identical to the golden run.
    Benign,
    /// The program completed with wrong output or exit code — silent data
    /// corruption, the outcome the techniques exist to prevent.
    Sdc,
    /// The program exceeded its instruction budget (e.g. a fault-induced
    /// infinite loop).
    Timeout,
}

impl Outcome {
    /// All outcomes, in the order campaign reports index them.
    pub const ALL: [Outcome; 6] = [
        Outcome::DetectedByCheck,
        Outcome::DetectedByHw,
        Outcome::OtherFault,
        Outcome::Benign,
        Outcome::Sdc,
        Outcome::Timeout,
    ];

    /// This outcome's position in [`Outcome::ALL`].
    pub fn idx(self) -> usize {
        match self {
            Outcome::DetectedByCheck => 0,
            Outcome::DetectedByHw => 1,
            Outcome::OtherFault => 2,
            Outcome::Benign => 3,
            Outcome::Sdc => 4,
            Outcome::Timeout => 5,
        }
    }

    /// Whether the error was detected (by software or hardware) before
    /// producing silent data corruption.
    pub fn is_detected(self) -> bool {
        matches!(self, Outcome::DetectedByCheck | Outcome::DetectedByHw | Outcome::OtherFault)
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Outcome::DetectedByCheck => "detected(check)",
            Outcome::DetectedByHw => "detected(hw)",
            Outcome::OtherFault => "fault",
            Outcome::Benign => "benign",
            Outcome::Sdc => "SDC",
            Outcome::Timeout => "timeout",
        };
        f.write_str(s)
    }
}

/// Result of one injection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionResult {
    /// What happened.
    pub outcome: Outcome,
    /// The §2 category of the injected fault (NoError when the flipped bit
    /// could not change control flow).
    pub category: Category,
    /// Cache address of the faulted branch.
    pub site: u64,
    /// Instructions retired between injection and the end of the run.
    pub latency_insts: u64,
    /// Whether the faulty target landed on a translated block's
    /// *instrumentation* (head check sequence or terminator glue) rather
    /// than on a 1:1-copied guest instruction. Such sub-block landings sit
    /// below the paper's §2 block-granular error model: one past the
    /// signature updates is indistinguishable from taking the edge
    /// legitimately. Always `false` for flag faults.
    pub instrumentation_landing: bool,
}

/// The golden (fault-free) reference for SDC comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Golden {
    /// Observable output stream.
    pub output: Vec<u64>,
    /// Exit code.
    pub exit_code: u64,
    /// Instructions retired.
    pub insts: u64,
    /// Dynamic branch executions in translated code (the fault-site count).
    pub branches: u64,
}

/// Runs `image` under the DBT configuration without faults, collecting the
/// golden output and the number of dynamic branch fault sites.
///
/// # Errors
///
/// [`WorkloadError`] when the fault-free program traps or does not halt
/// within the budget — the workload itself is unsound under this
/// configuration.
pub fn golden_run(image: &Image, cfg: &RunConfig) -> Result<Golden, WorkloadError> {
    golden_inner(image, cfg, None)
}

/// The golden-run loop, optionally capturing fast-forward checkpoints.
/// Capture observes the machine without perturbing it, so the returned
/// golden is identical with or without a builder.
pub(crate) fn golden_inner(
    image: &Image,
    cfg: &RunConfig,
    mut snapshots: Option<&mut SnapshotBuilder>,
) -> Result<Golden, WorkloadError> {
    let (mut m, mut dbt) = build(image, cfg);
    let mut branches = 0u64;
    loop {
        if m.cpu.stats().insts >= cfg.max_insts {
            return Err(WorkloadError::BudgetExhausted { insts: m.cpu.stats().insts });
        }
        if let Ok(inst) = m.peek_inst() {
            if inst.is_branch() {
                // About to execute dynamic branch `branches`: the same
                // instant inject_inner's prefix loop identifies as
                // `seen_branches == branches`, which is what makes a
                // restored checkpoint equivalent to stepping here.
                if let Some(b) = snapshots.as_deref_mut() {
                    b.observe_branch(branches, &mut m, &dbt);
                }
                branches += 1;
            }
        }
        match dbt.step(&mut m) {
            DbtStep::Continue => {}
            DbtStep::Halted => {
                return Ok(Golden {
                    output: m.cpu.take_output(),
                    exit_code: m.cpu.reg(cfed_isa::Reg::R0),
                    insts: m.cpu.stats().insts,
                    branches,
                })
            }
            DbtStep::Exit(t) => return Err(WorkloadError::Trapped(t)),
        }
    }
}

pub(crate) fn build(image: &Image, cfg: &RunConfig) -> (Machine, Dbt) {
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let instr: Box<dyn cfed_dbt::Instrumenter> = match cfg.technique {
        Some(kind) => kind.instrumenter_for(image, cfg.policy),
        None => Box::new(NullInstrumenter),
    };
    let mut dbt = Dbt::new(instr, cfg.style, &mut m);
    // Attach eagerly: branch counting and fault placement must happen on
    // translated code, never on raw guest bytes (a fault applied to guest
    // memory would be baked into the translation permanently).
    dbt.attach(&mut m).expect("entry point translates");
    (m, dbt)
}

/// Injects one fault and runs to an outcome, replaying the fault-free
/// prefix from scratch.
///
/// Returns `Ok(None)` when `spec` names a dynamic branch beyond the
/// program's execution (use [`golden_run`]'s branch count to stay in
/// range).
///
/// # Errors
///
/// [`WorkloadError`] when the fault-free prefix itself misbehaves — only
/// possible when `golden` does not actually describe this
/// `(image, config)`.
pub fn inject(
    image: &Image,
    cfg: &RunConfig,
    spec: FaultSpec,
    golden: &Golden,
) -> Result<Option<InjectionResult>, WorkloadError> {
    inject_with(image, cfg, spec, golden, None)
}

/// As [`inject`], fast-forwarding through `snapshots` when provided: the
/// nearest checkpoint at-or-below the target branch is restored and only
/// the residual prefix is stepped, reusing the checkpoint's translated
/// code cache. Falls back to from-scratch when the set was captured under
/// a different configuration or holds no usable checkpoint. The outcome is
/// bit-identical to the from-scratch path either way.
///
/// # Errors
///
/// As [`inject`].
pub fn inject_with(
    image: &Image,
    cfg: &RunConfig,
    spec: FaultSpec,
    golden: &Golden,
    snapshots: Option<&SnapshotSet>,
) -> Result<Option<InjectionResult>, WorkloadError> {
    Ok(inject_inner(image, cfg, spec, golden, None, snapshots)?.map(|(r, _)| r))
}

/// As [`inject`], but with an execution tracer of `capacity` instructions
/// attached, returning the result alongside the tracer at its final state
/// — the last-N window ends at the detection point (the trapping
/// instruction itself never commits, hence never appears). Injection is
/// deterministic, so re-running a plain [`inject`] trial through here
/// reproduces the identical outcome with forensics attached.
///
/// # Errors
///
/// As [`inject`].
pub fn inject_traced(
    image: &Image,
    cfg: &RunConfig,
    spec: FaultSpec,
    golden: &Golden,
    capacity: usize,
) -> Result<Option<(InjectionResult, cfed_sim::Tracer)>, WorkloadError> {
    inject_traced_with(image, cfg, spec, golden, capacity, None)
}

/// As [`inject_traced`] with fast-forward (see [`inject_with`]). The trace
/// stays bit-identical to the from-scratch path: only checkpoints at least
/// `capacity` branches before the injection point are used (every branch
/// is an instruction, so at least `capacity` instructions and `capacity`
/// branches retire between restore and injection, filling both tracer
/// rings with exactly the entries the from-scratch run would hold), and
/// the tracer's retired counter resumes from the checkpoint's instruction
/// count.
///
/// # Errors
///
/// As [`inject`].
pub fn inject_traced_with(
    image: &Image,
    cfg: &RunConfig,
    spec: FaultSpec,
    golden: &Golden,
    capacity: usize,
    snapshots: Option<&SnapshotSet>,
) -> Result<Option<(InjectionResult, cfed_sim::Tracer)>, WorkloadError> {
    Ok(inject_inner(image, cfg, spec, golden, Some(capacity), snapshots)?
        .map(|(r, t)| (r, t.expect("tracer attached"))))
}

fn inject_inner(
    image: &Image,
    cfg: &RunConfig,
    spec: FaultSpec,
    golden: &Golden,
    trace_capacity: Option<usize>,
    snapshots: Option<&SnapshotSet>,
) -> Result<Option<(InjectionResult, Option<cfed_sim::Tracer>)>, WorkloadError> {
    run_trial_inner(image, cfg, spec.nth(), golden, trace_capacity, snapshots, |m, dbt, image| {
        inject_now(m, dbt, image, spec)
    })
}

/// The shared trial loop behind both fault injection and attack synthesis:
/// replay (or fast-forward) the fault-free prefix to the `nth` dynamic
/// branch, let `apply` corrupt the machine there, then run to an outcome.
/// `apply` returns the corruption's `(category, site, instrumentation
/// landing, step result)`, or `None` when it cannot be placed at this
/// branch.
pub(crate) fn run_trial_inner(
    image: &Image,
    cfg: &RunConfig,
    nth: u64,
    golden: &Golden,
    trace_capacity: Option<usize>,
    snapshots: Option<&SnapshotSet>,
    apply: impl FnOnce(&mut Machine, &mut Dbt, &Image) -> Option<(Category, u64, bool, DbtStep)>,
) -> Result<Option<(InjectionResult, Option<cfed_sim::Tracer>)>, WorkloadError> {
    // Fast-forward: restore the nearest checkpoint at-or-below the target
    // branch instead of replaying the prefix. Traced runs additionally
    // require `capacity` branches of margin before the injection point so
    // the last-N windows fill identically to the from-scratch stream.
    let usable = snapshots.filter(|s| s.matches(cfg));
    let target = match trace_capacity {
        None => Some(nth),
        Some(cap) => nth.checked_sub(cap as u64),
    };
    let restored = usable.and_then(|s| target.and_then(|t| s.nearest(t)));
    if let Some(s) = usable {
        match restored {
            Some(snap) => s.note_restore(snap.branch_index, nth - snap.branch_index),
            None => s.note_miss(nth),
        }
    }
    let (mut m, mut dbt, mut seen_branches) = match restored {
        Some(snap) => (snap.machine.restore(), snap.dbt.clone(), snap.branch_index),
        None => {
            let (m, dbt) = build(image, cfg);
            (m, dbt, 0)
        }
    };
    if let Some(capacity) = trace_capacity {
        // From scratch this is a plain fresh tracer (zero retired); from a
        // checkpoint it resumes the count at the instructions already
        // executed before the restore point.
        m.attach_tracer_resumed(capacity, m.cpu.stats().insts);
    }
    let budget = golden.insts * 3 + 100_000;

    // Phase 1: run to the injection point.
    let injected = loop {
        if m.cpu.stats().insts >= budget {
            return Ok(None);
        }
        let at_branch = m.peek_inst().map(|i| i.is_branch()).unwrap_or(false);
        if at_branch {
            if seen_branches == nth {
                break apply(&mut m, &mut dbt, image);
            }
            seen_branches += 1;
        }
        match dbt.step(&mut m) {
            DbtStep::Continue => {}
            // Program ended before the nth branch.
            DbtStep::Halted => return Ok(None),
            DbtStep::Exit(t) => return Err(WorkloadError::Trapped(t)),
        }
    };
    let Some((category, site, instrumentation_landing, faulted_step)) = injected else {
        return Ok(None);
    };
    let insts_at_injection = m.cpu.stats().insts;

    // Phase 2: run to an outcome (the faulted step itself may already have
    // produced one). With snapshots available and no tracer attached, the
    // loop additionally performs convergence pruning: whenever the trial is
    // about to execute a dynamic branch for which the golden run holds a
    // checkpoint, and the trial's architectural state is bit-identical to
    // that checkpoint (CPU including counters and the output stream, every
    // written page — the code cache among them — and page permissions),
    // the deterministic remainder *is* the golden remainder. The outcome is
    // then provably Benign with exactly the latency the full run would
    // report, so the suffix is skipped. Traced runs never prune: the
    // tracer window must hold the genuinely executed final instructions.
    let prune = match trace_capacity {
        None => usable,
        Some(_) => None,
    };
    let mut boundaries = prune.map(|s| s.after(nth).iter()).into_iter().flatten().peekable();
    // The faulted step consumed dynamic branch `nth`; later trial branch
    // indices only stay aligned with golden's while the paths coincide —
    // exactly the situation state equality certifies, and misaligned
    // comparisons simply fail (the CPU's retired counters differ).
    let mut trial_branch = nth;
    let mut pending = Some(faulted_step);
    let (outcome, pruned_latency) = loop {
        if m.cpu.stats().insts >= budget {
            break (Outcome::Timeout, None);
        }
        let step = match pending.take() {
            Some(DbtStep::Continue) | None => {
                if boundaries.peek().is_some()
                    && m.peek_inst().map(|i| i.is_branch()).unwrap_or(false)
                {
                    trial_branch += 1;
                    while boundaries.next_if(|s| s.branch_index < trial_branch).is_some() {}
                    if let Some(snap) = boundaries.next_if(|s| s.branch_index == trial_branch) {
                        if snap.machine.matches(&m) {
                            prune.expect("pruning implies a snapshot set").note_pruned();
                            break (Outcome::Benign, Some(golden.insts - insts_at_injection));
                        }
                    }
                }
                dbt.step(&mut m)
            }
            Some(other) => other,
        };
        match step {
            DbtStep::Continue => {}
            DbtStep::Halted => {
                let ok = m.cpu.output() == golden.output.as_slice()
                    && m.cpu.reg(cfed_isa::Reg::R0) == golden.exit_code;
                break (if ok { Outcome::Benign } else { Outcome::Sdc }, None);
            }
            DbtStep::Exit(t) => break (outcome_of_trap(t), None),
        }
    };

    let result = InjectionResult {
        outcome,
        category,
        site,
        latency_insts: pruned_latency.unwrap_or(m.cpu.stats().insts - insts_at_injection),
        instrumentation_landing,
    };
    Ok(Some((result, m.tracer.take())))
}

/// Scans straight-line code from `from` for the next flag-reading branch
/// (stopping at flag writers, non-flag branches, or after a small window)
/// and reports whether `flipped` changes its direction relative to the
/// current flags.
fn stale_flags_flip_downstream(m: &Machine, from: u64, flipped: Flags) -> bool {
    let mut addr = from;
    for _ in 0..8 {
        let Ok(bytes) = m.mem.fetch(addr) else { return false };
        let Ok(inst) = cfed_isa::Inst::decode(&bytes) else { return false };
        if inst.reads_flags_for_direction() {
            return m.cpu.would_take_with_flags(&inst, flipped)
                != m.cpu.would_take_with_flags(&inst, m.cpu.flags());
        }
        if inst.writes_flags() || inst.is_branch() || inst.is_terminator() {
            return false;
        }
        addr += INST_SIZE_U64;
    }
    false
}

/// Classifies a surfaced trap as a detection outcome.
pub(crate) fn outcome_of_trap(t: Trap) -> Outcome {
    if t.is_cfe_report() {
        Outcome::DetectedByCheck
    } else if t.is_hardware_cfe_detection() {
        Outcome::DetectedByHw
    } else {
        Outcome::OtherFault
    }
}

/// Applies the fault at the current instruction (a branch), executes that
/// one instruction, and restores any transient state. Returns the fault's
/// category, site, whether the faulty target landed on instrumentation,
/// and the step result of the faulted instruction.
fn inject_now(
    m: &mut Machine,
    dbt: &mut Dbt,
    image: &Image,
    spec: FaultSpec,
) -> Option<(Category, u64, bool, DbtStep)> {
    let site = m.cpu.ip();
    let inst = m.peek_inst().expect("branch decodes");
    debug_assert!(inst.is_branch());
    let layout = CacheLayout::snapshot(dbt, image.base()..image.base() + image.code().len() as u64);
    let taken = m.cpu.would_take(&inst);
    let fall = site + INST_SIZE_U64;

    match spec {
        FaultSpec::AddrBit { bit, .. } => {
            let offset = inst
                .branch_offset()
                .expect("all cache branches are direct (indirects become dispatcher exits)");
            let faulty_off = offset ^ (1i32 << (bit % 32));
            let correct = if taken { inst.direct_target(site).expect("direct") } else { fall };
            let faulty_target =
                site.wrapping_add(INST_SIZE_U64).wrapping_add(faulty_off as i64 as u64);
            let category = if !taken {
                Category::NoError
            } else {
                let block = layout.block_of(site).unwrap_or(site..site + INST_SIZE_U64);
                classify_addr_fault(
                    &BranchFault {
                        branch_block: block,
                        fall_through: fall,
                        correct_target: correct,
                        faulty_target,
                    },
                    &layout,
                )
            };
            let glue = category != Category::NoError && layout.is_instrumentation(faulty_target);
            // Transient corruption of the fetched encoding.
            let original: [u8; 8] = m.mem.peek(site, 8).try_into().expect("slot");
            let faulted = inst.with_branch_offset(faulty_off).encode();
            m.mem.install(site, &faulted);
            let step = dbt.step(m);
            m.mem.install(site, &original);
            Some((category, site, glue, step))
        }
        FaultSpec::FlagBit { bit, .. } => {
            let flipped = m.cpu.flags().with_bit_flipped(bit % Flags::BITS as u8);
            let mut direction_changed = m.cpu.would_take_with_flags(&inst, flipped) != taken;
            if !direction_changed && !inst.reads_flags_for_direction() {
                // The faulted branch ignores the flags, but the corruption
                // persists: if the next flag-reading branch downstream (with
                // no flag write in between) flips, this is still a mistaken
                // branch — the paper's "caused by instructions executed
                // earlier than the branch" case of category A.
                let from = if taken {
                    inst.direct_target(site).unwrap_or(site + INST_SIZE_U64)
                } else {
                    site + INST_SIZE_U64
                };
                direction_changed = stale_flags_flip_downstream(m, from, flipped);
            }
            let category = classify_flag_fault(direction_changed);
            m.cpu.set_flags(flipped);
            let step = dbt.step(m);
            Some((category, site, false, step))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_core::TechniqueKind;
    use cfed_lang::compile;

    fn image() -> Image {
        compile(
            r#"
            fn main() {
                let i = 0;
                let acc = 0;
                while (i < 40) {
                    if (i % 3 == 0) { acc = acc + i; } else { acc = acc + 1; }
                    i = i + 1;
                }
                out(acc);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn golden_run_counts_branches() {
        let img = image();
        let g = golden_run(&img, &RunConfig::technique(TechniqueKind::EdgCf)).unwrap();
        assert!(g.branches > 100);
        assert_eq!(g.output.len(), 1);
    }

    #[test]
    fn golden_run_budget_exhaustion_is_typed() {
        let img = compile("fn main() { let i = 0; while (i < 10) { i = i * 1; } }").unwrap();
        let cfg = RunConfig { max_insts: 5_000, ..RunConfig::baseline() };
        match golden_run(&img, &cfg) {
            Err(WorkloadError::BudgetExhausted { insts }) => assert!(insts >= 5_000),
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_nth_returns_none() {
        let img = image();
        let cfg = RunConfig::technique(TechniqueKind::EdgCf);
        let g = golden_run(&img, &cfg).unwrap();
        let r =
            inject(&img, &cfg, FaultSpec::AddrBit { nth: g.branches + 100, bit: 3 }, &g).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn flag_fault_without_direction_change_is_benign() {
        let img = image();
        let cfg = RunConfig::technique(TechniqueKind::EdgCf);
        let g = golden_run(&img, &cfg).unwrap();
        // Find an injection whose classification is NoError; it must end
        // benign (single-fault model, no other corruption).
        let mut found = false;
        for nth in 0..40 {
            let r = inject(&img, &cfg, FaultSpec::FlagBit { nth, bit: 1 }, &g).unwrap();
            if let Some(r) = r {
                if r.category == Category::NoError {
                    assert_eq!(r.outcome, Outcome::Benign, "NoError fault at {nth} not benign");
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "expected at least one direction-preserving flag fault");
    }

    #[test]
    fn high_offset_bits_detected_by_hardware() {
        // Flipping bit 30 of an offset flings control far outside code:
        // hardware (category F path) must catch it under any technique.
        let img = image();
        let cfg = RunConfig::baseline();
        let g = golden_run(&img, &cfg).unwrap();
        let mut hw = 0;
        let mut tried = 0;
        for nth in (0..g.branches.min(60)).step_by(7) {
            if let Some(r) = inject(&img, &cfg, FaultSpec::AddrBit { nth, bit: 30 }, &g).unwrap() {
                tried += 1;
                if r.category == Category::F {
                    assert!(
                        matches!(r.outcome, Outcome::DetectedByHw | Outcome::OtherFault),
                        "F fault at branch {nth} ended as {:?}",
                        r.outcome
                    );
                    hw += 1;
                }
            }
        }
        assert!(tried > 0);
        assert!(hw > 0, "no category-F faults produced");
    }

    #[test]
    fn techniques_catch_what_baseline_misses() {
        // Low offset bits keep the target inside code: without checking,
        // some SDC or silent weirdness; with RCF, detection.
        let img = image();
        let base_cfg = RunConfig::baseline();
        let rcf_cfg = RunConfig::technique(TechniqueKind::Rcf);
        let g_base = golden_run(&img, &base_cfg).unwrap();
        let g_rcf = golden_run(&img, &rcf_cfg).unwrap();

        let mut baseline_undetected = 0;
        let mut rcf_detected = 0;
        let mut rcf_sdc = 0;
        for nth in 0..60 {
            for bit in [3u8, 4, 5] {
                let spec_b = FaultSpec::AddrBit { nth, bit };
                if let Some(r) = inject(&img, &base_cfg, spec_b, &g_base).unwrap() {
                    if r.category != Category::NoError && !r.outcome.is_detected() {
                        baseline_undetected += 1;
                    }
                }
                if let Some(r) = inject(&img, &rcf_cfg, spec_b, &g_rcf).unwrap() {
                    if r.category != Category::NoError {
                        match r.outcome {
                            Outcome::DetectedByCheck => rcf_detected += 1,
                            Outcome::Sdc => rcf_sdc += 1,
                            _ => {}
                        }
                    }
                }
            }
        }
        assert!(baseline_undetected > 0, "baseline should let some errors through");
        assert!(rcf_detected > 0, "RCF must detect in-code control-flow errors");
        assert_eq!(rcf_sdc, 0, "RCF must not allow SDC from single branch faults");
    }
}
