//! Fault-injection campaigns: many randomized single-bit faults, aggregated
//! into a per-category coverage matrix.

use crate::inject::{inject_with, FaultSpec, Golden, InjectionResult, Outcome, WorkloadError};
use crate::snapshot::SnapshotSet;
use cfed_asm::Image;
use cfed_core::{Category, RunConfig};
use cfed_isa::{Flags, OFFSET_BITS};
use cfed_telemetry::Histogram;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Latency histograms per category × outcome, in [`Category::ALL`] ×
/// [`Outcome::ALL`] order — the exact-merge replacement for the old lossy
/// global `latency_sum/latency_n` pair.
pub type LatencyGrid = [[Histogram; 6]; 7];

fn empty_grid() -> LatencyGrid {
    std::array::from_fn(|_| std::array::from_fn(|_| Histogram::new()))
}

/// Outcome tallies for one branch-error category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryStats {
    /// Faults detected by the signature-checking instrumentation.
    pub detected_check: u64,
    /// Faults detected by hardware memory protection.
    pub detected_hw: u64,
    /// Faults surfacing as other program faults (fail-stop, not CF check).
    pub other_fault: u64,
    /// Faults absorbed without observable effect.
    pub benign: u64,
    /// Faults producing silent data corruption.
    pub sdc: u64,
    /// Faults producing non-terminating runs.
    pub timeout: u64,
}

impl CategoryStats {
    /// Total injections in this category.
    pub fn total(&self) -> u64 {
        self.detected_check
            + self.detected_hw
            + self.other_fault
            + self.benign
            + self.sdc
            + self.timeout
    }

    /// Fraction of *harmful* faults (everything but benign) that were
    /// detected before corrupting output. Timeouts count as undetected:
    /// a hung program is a failure the relaxed policies explicitly risk
    /// (paper §6: END "may not report branch-errors that lead the program to
    /// infinite loops").
    pub fn coverage(&self) -> f64 {
        let harmful = self.total() - self.benign;
        if harmful == 0 {
            return 1.0;
        }
        (self.detected_check + self.detected_hw + self.other_fault) as f64 / harmful as f64
    }

    fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::DetectedByCheck => self.detected_check += 1,
            Outcome::DetectedByHw => self.detected_hw += 1,
            Outcome::OtherFault => self.other_fault += 1,
            Outcome::Benign => self.benign += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Timeout => self.timeout += 1,
        }
    }
}

/// Trials per shard: the unit of work distributed by `cfed-runner`.
///
/// [`Campaign::run`] executes its trials as a sequence of shards of this
/// size, each with an independently derived RNG seed, so a campaign's
/// tallies are the associative merge of its shard reports — bit-identical
/// whether the shards run serially here or spread over a worker pool.
pub const SHARD_TRIALS: u64 = 64;

/// A randomized injection campaign over one image + DBT configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// DBT configuration under test.
    pub config: RunConfig,
    /// Number of faults to inject.
    pub trials: u64,
    /// RNG seed (campaigns are deterministic given the seed).
    pub seed: u64,
}

impl Campaign {
    /// A campaign with the given trial count and a fixed default seed.
    pub fn new(config: RunConfig, trials: u64) -> Campaign {
        Campaign { config, trials, seed: 0xCFED_2006 }
    }

    /// Number of shards this campaign splits into ([`SHARD_TRIALS`] trials
    /// each, last shard possibly smaller).
    pub fn num_shards(&self) -> u64 {
        self.trials.div_ceil(SHARD_TRIALS)
    }

    /// Trials in shard `shard_index` (all [`SHARD_TRIALS`] except a
    /// possibly-short final shard).
    pub fn shard_trials(&self, shard_index: u64) -> u64 {
        let start = shard_index * SHARD_TRIALS;
        SHARD_TRIALS.min(self.trials.saturating_sub(start))
    }

    /// The RNG seed of shard `shard_index`: the `shard_index`-th output of
    /// a splitmix64 stream seeded with the campaign seed. Depends only on
    /// `(campaign seed, shard index)` — never on worker count or
    /// scheduling order — which is what makes sharded execution
    /// bit-identical to the serial path.
    pub fn shard_seed(&self, shard_index: u64) -> u64 {
        let mut state = self.seed.wrapping_add(shard_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rand::splitmix64(&mut state)
    }

    /// Runs one shard against a precomputed golden reference, replaying
    /// every trial's prefix from scratch.
    ///
    /// Each trial picks a uniformly random dynamic branch execution and a
    /// uniformly random bit among the 32 offset bits + 6 flag bits — the
    /// same fault space as the §2 error model, but executed rather than
    /// classified hypothetically.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] when a trial's fault-free prefix misbehaves —
    /// the workload is unsound under this configuration, so the shard
    /// (not the process) fails.
    pub fn run_shard(
        &self,
        image: &Image,
        golden: &Golden,
        shard_index: u64,
    ) -> Result<CampaignReport, WorkloadError> {
        self.run_shard_with(image, golden, None, shard_index, |_, _| {})
    }

    /// As [`Campaign::run_shard`], fast-forwarding through `snapshots`
    /// when provided (see [`inject_with`]) and invoking `observer` with
    /// every placed trial's spec and result. Observers are for side
    /// channels — telemetry events, forensics capture of interesting
    /// outcomes — and must not influence the tallies; the report is
    /// identical to the observer-free, snapshot-free path.
    ///
    /// # Errors
    ///
    /// As [`Campaign::run_shard`].
    pub fn run_shard_with(
        &self,
        image: &Image,
        golden: &Golden,
        snapshots: Option<&SnapshotSet>,
        shard_index: u64,
        mut observer: impl FnMut(FaultSpec, &InjectionResult),
    ) -> Result<CampaignReport, WorkloadError> {
        let mut rng = StdRng::seed_from_u64(self.shard_seed(shard_index));
        let mut report = CampaignReport::new(golden.clone());
        for _ in 0..self.shard_trials(shard_index) {
            let nth = rng.gen_range(0..golden.branches.max(1));
            let bit = rng.gen_range(0..OFFSET_BITS + Flags::BITS) as u8;
            let spec = if (bit as u32) < OFFSET_BITS {
                FaultSpec::AddrBit { nth, bit }
            } else {
                FaultSpec::FlagBit { nth, bit: bit - OFFSET_BITS as u8 }
            };
            if let Some(r) = inject_with(image, &self.config, spec, golden, snapshots)? {
                observer(spec, &r);
                report.record(r.category, r.outcome, r.latency_insts);
            } else {
                report.skipped += 1;
            }
        }
        Ok(report)
    }

    /// Runs the campaign against a caller-supplied golden reference,
    /// skipping the golden re-run (callers that batch campaigns over one
    /// image cache the golden once — see `cfed-runner`), optionally
    /// fast-forwarding through `snapshots`.
    ///
    /// # Errors
    ///
    /// As [`Campaign::run_shard`].
    pub fn run_with_golden(
        &self,
        image: &Image,
        golden: &Golden,
        snapshots: Option<&SnapshotSet>,
    ) -> Result<CampaignReport, WorkloadError> {
        let mut report = CampaignReport::new(golden.clone());
        for shard in 0..self.num_shards() {
            report.merge(&self.run_shard_with(image, golden, snapshots, shard, |_, _| {})?);
        }
        Ok(report)
    }

    /// Runs the campaign: the fault-free golden run (capturing
    /// fast-forward checkpoints), then every shard in order. Equals the
    /// merge of the shard reports in any order.
    ///
    /// # Errors
    ///
    /// As [`Campaign::run_shard`], plus golden-run failures.
    pub fn run(&self, image: &Image) -> Result<CampaignReport, WorkloadError> {
        let (golden, snapshots) = SnapshotSet::capture(image, &self.config)?;
        self.run_with_golden(image, &golden, Some(&snapshots))
    }
}

/// An exhaustive sweep over the fault space of a *prefix* of the execution:
/// every (branch execution, bit) pair for the first `branches` dynamic
/// branches — the deterministic complement to [`Campaign`]'s sampling.
#[derive(Debug, Clone)]
pub struct ExhaustiveSweep {
    /// DBT configuration under test.
    pub config: RunConfig,
    /// How many leading dynamic branch executions to sweep (each costs
    /// 38 whole-program runs).
    pub branches: u64,
}

impl ExhaustiveSweep {
    /// Creates a sweep over the first `branches` dynamic branches.
    pub fn new(config: RunConfig, branches: u64) -> ExhaustiveSweep {
        ExhaustiveSweep { config, branches }
    }

    /// Runs the sweep: `branches × (32 offset bits + 6 flag bits)`
    /// injections, fast-forwarding through checkpoints captured during
    /// the golden run.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] when the fault-free run misbehaves.
    pub fn run(&self, image: &Image) -> Result<CampaignReport, WorkloadError> {
        let (golden, snapshots) = SnapshotSet::capture(image, &self.config)?;
        self.run_with_golden(image, &golden, Some(&snapshots))
    }

    /// Runs the sweep against a caller-supplied golden reference, skipping
    /// the golden re-run, optionally fast-forwarding through `snapshots`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] when a trial's fault-free prefix misbehaves.
    pub fn run_with_golden(
        &self,
        image: &Image,
        golden: &Golden,
        snapshots: Option<&SnapshotSet>,
    ) -> Result<CampaignReport, WorkloadError> {
        let mut report = CampaignReport::new(golden.clone());
        for nth in 0..self.branches.min(golden.branches) {
            for bit in 0..OFFSET_BITS as u8 {
                let spec = FaultSpec::AddrBit { nth, bit };
                match inject_with(image, &self.config, spec, golden, snapshots)? {
                    Some(r) => report.record(r.category, r.outcome, r.latency_insts),
                    None => report.skipped += 1,
                }
            }
            for bit in 0..Flags::BITS as u8 {
                let spec = FaultSpec::FlagBit { nth, bit };
                match inject_with(image, &self.config, spec, golden, snapshots)? {
                    Some(r) => report.record(r.category, r.outcome, r.latency_insts),
                    None => report.skipped += 1,
                }
            }
        }
        Ok(report)
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Golden reference of the fault-free run.
    pub golden: Golden,
    /// Per-category outcome tallies, indexed by [`Category::ALL`] order.
    stats: [CategoryStats; 7],
    /// Injections that could not be placed (program ended first).
    pub skipped: u64,
    /// Detection-latency histograms (instructions from injection to end of
    /// run) per category × outcome.
    lat: LatencyGrid,
}

fn cat_idx(c: Category) -> usize {
    Category::ALL.iter().position(|&x| x == c).expect("category in ALL")
}

impl CampaignReport {
    /// An empty report for the given golden reference.
    pub fn new(golden: Golden) -> CampaignReport {
        CampaignReport {
            golden,
            stats: [CategoryStats::default(); 7],
            skipped: 0,
            lat: empty_grid(),
        }
    }

    /// Reconstructs a report from persisted tallies (the JSONL resume path
    /// of `cfed-runner`). `stats` is in [`Category::ALL`] order, `lat` in
    /// [`Category::ALL`] × [`Outcome::ALL`] order.
    pub fn from_parts(
        golden: Golden,
        stats: [CategoryStats; 7],
        skipped: u64,
        lat: LatencyGrid,
    ) -> CampaignReport {
        CampaignReport { golden, stats, skipped, lat }
    }

    /// Records one injection outcome.
    pub fn record(&mut self, category: Category, outcome: Outcome, latency: u64) {
        self.stats[cat_idx(category)].record(outcome);
        self.lat[cat_idx(category)][outcome.idx()].record(latency);
    }

    /// Folds another report's tallies into this one. Associative and
    /// commutative (every field is a sum), so shard reports reduce to the
    /// serial campaign's exact tallies in any merge order.
    ///
    /// # Panics
    ///
    /// Panics if the two reports reference different golden runs — merging
    /// across images or configurations is always a bug.
    pub fn merge(&mut self, other: &CampaignReport) {
        assert_eq!(self.golden, other.golden, "CampaignReport::merge across different golden runs");
        for (into, from) in self.stats.iter_mut().zip(other.stats.iter()) {
            into.detected_check += from.detected_check;
            into.detected_hw += from.detected_hw;
            into.other_fault += from.other_fault;
            into.benign += from.benign;
            into.sdc += from.sdc;
            into.timeout += from.timeout;
        }
        self.skipped += other.skipped;
        for (into_row, from_row) in self.lat.iter_mut().zip(other.lat.iter()) {
            for (into, from) in into_row.iter_mut().zip(from_row.iter()) {
                into.merge(from);
            }
        }
    }

    /// The latency histogram of one category × outcome cell.
    pub fn latency_hist(&self, c: Category, o: Outcome) -> &Histogram {
        &self.lat[cat_idx(c)][o.idx()]
    }

    /// The full latency grid, for persistence.
    pub fn latency_grid(&self) -> &LatencyGrid {
        &self.lat
    }

    /// Detection latencies over `DetectedByCheck` outcomes, merged across
    /// categories (the paper's Fig. 15 quantity).
    pub fn detection_latency_hist(&self) -> Histogram {
        let mut h = Histogram::new();
        for row in &self.lat {
            h.merge(&row[Outcome::DetectedByCheck.idx()]);
        }
        h
    }

    /// The detection-latency accumulators `(sum, count)` over
    /// `DetectedByCheck` outcomes — exact, derived from the histograms.
    pub fn latency_totals(&self) -> (u64, u64) {
        let h = self.detection_latency_hist();
        (h.sum(), h.count())
    }

    /// Tallies for one category.
    pub fn category(&self, c: Category) -> &CategoryStats {
        &self.stats[cat_idx(c)]
    }

    /// Tallies summed over the SDC-prone categories A–E.
    pub fn sdc_prone_total(&self) -> CategoryStats {
        let mut out = CategoryStats::default();
        for c in Category::SDC_PRONE {
            let s = self.category(c);
            out.detected_check += s.detected_check;
            out.detected_hw += s.detected_hw;
            out.other_fault += s.other_fault;
            out.benign += s.benign;
            out.sdc += s.sdc;
            out.timeout += s.timeout;
        }
        out
    }

    /// Mean instructions between injection and a check-based detection.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        self.detection_latency_hist().mean()
    }

    /// Renders a per-category outcome table.
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>8}",
            "Category", "chk", "hw", "fault", "benign", "SDC", "timeout", "coverage"
        );
        let _ = writeln!(out, "{}", "-".repeat(72));
        for c in Category::ALL {
            let s = self.category(c);
            if s.total() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>7.1}%",
                c.to_string(),
                s.detected_check,
                s.detected_hw,
                s.other_fault,
                s.benign,
                s.sdc,
                s.timeout,
                100.0 * s.coverage(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_core::TechniqueKind;
    use cfed_lang::compile;

    fn image() -> Image {
        compile(
            r#"
            fn main() {
                let i = 0;
                let acc = 7;
                while (i < 25) {
                    if (i % 4 == 1) { acc = acc * 3 + 1; } else { acc = acc + i; }
                    i = i + 1;
                }
                out(acc);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn campaign_is_deterministic() {
        let img = image();
        let c = Campaign::new(RunConfig::technique(TechniqueKind::EdgCf), 30);
        let a = c.run(&img).unwrap();
        let b = c.run(&img).unwrap();
        for cat in Category::ALL {
            assert_eq!(a.category(cat), b.category(cat));
        }
    }

    #[test]
    fn trials_accounted_for() {
        let img = image();
        let c = Campaign::new(RunConfig::technique(TechniqueKind::Rcf), 40);
        let r = c.run(&img).unwrap();
        let total: u64 = Category::ALL.iter().map(|&cat| r.category(cat).total()).sum();
        assert_eq!(total + r.skipped, 40);
    }

    #[test]
    fn rcf_cmov_campaign_produces_no_sdc() {
        // Under the safe (CMOVcc) configuration RCF prevents every SDC.
        let img = image();
        let cfg = RunConfig {
            technique: Some(TechniqueKind::Rcf),
            style: cfed_dbt::UpdateStyle::CMov,
            ..RunConfig::default()
        };
        let r = Campaign::new(cfg, 60).run(&img).unwrap();
        let s = r.sdc_prone_total();
        assert_eq!(s.sdc, 0, "RCF/CMOVcc must prevent SDC: {:?}", s);
    }

    #[test]
    fn rcf_jcc_campaign_leaks_only_selector_flag_faults() {
        // Under Jcc updates the one irreducible leak is a flag fault at the
        // inserted selector branch (equivalent to a data fault in the
        // flag-producing instruction — outside any signature scheme's
        // reach). Those classify as category A; B–E stay SDC-free.
        let img = image();
        let r = Campaign::new(RunConfig::technique(TechniqueKind::Rcf), 60).run(&img).unwrap();
        for c in [Category::B, Category::C, Category::D, Category::E] {
            assert_eq!(r.category(c).sdc, 0, "RCF/Jcc leaked category {c}");
        }
    }

    #[test]
    fn exhaustive_sweep_covers_the_prefix() {
        let img = image();
        let cfg = RunConfig::technique(TechniqueKind::EdgCf);
        let sweep = ExhaustiveSweep::new(cfg, 3);
        let r = sweep.run(&img).unwrap();
        let total: u64 = Category::ALL.iter().map(|&c| r.category(c).total()).sum();
        assert_eq!(total + r.skipped, 3 * 38, "3 branches x 38 bits");
        // Deterministic: same result twice.
        let r2 = sweep.run(&img).unwrap();
        for c in Category::ALL {
            assert_eq!(r.category(c), r2.category(c));
        }
    }

    #[test]
    fn render_is_nonempty() {
        let img = image();
        let r = Campaign::new(RunConfig::baseline(), 20).run(&img).unwrap();
        assert!(r.render("x").contains("Category"));
    }

    #[test]
    fn shard_merge_equals_serial_run() {
        // The serial path is defined as the in-order shard merge; merging
        // the same shards in reverse must produce identical tallies.
        let img = image();
        let c = Campaign::new(RunConfig::technique(TechniqueKind::EdgCf), 150);
        let serial = c.run(&img).unwrap();
        let golden = crate::inject::golden_run(&img, &c.config).unwrap();
        let mut merged = CampaignReport::new(golden.clone());
        for shard in (0..c.num_shards()).rev() {
            merged.merge(&c.run_shard(&img, &golden, shard).unwrap());
        }
        for cat in Category::ALL {
            assert_eq!(serial.category(cat), merged.category(cat));
        }
        assert_eq!(serial.skipped, merged.skipped);
        assert_eq!(serial.latency_totals(), merged.latency_totals());
        // Exact mergeability extends to every latency histogram cell.
        for cat in Category::ALL {
            for o in Outcome::ALL {
                assert_eq!(serial.latency_hist(cat, o), merged.latency_hist(cat, o));
            }
        }
    }

    #[test]
    fn observer_does_not_change_tallies() {
        let img = image();
        let c = Campaign::new(RunConfig::technique(TechniqueKind::EdgCf), 30);
        let golden = crate::inject::golden_run(&img, &c.config).unwrap();
        let plain = c.run_shard(&img, &golden, 0).unwrap();
        let mut observed = 0u64;
        let with = c.run_shard_with(&img, &golden, None, 0, |_, _| observed += 1).unwrap();
        for cat in Category::ALL {
            assert_eq!(plain.category(cat), with.category(cat));
        }
        assert_eq!(plain.latency_totals(), with.latency_totals());
        let placed: u64 = Category::ALL.iter().map(|&c| with.category(c).total()).sum();
        assert_eq!(observed, placed);
    }

    #[test]
    fn latency_recorded_for_every_outcome() {
        let img = image();
        let c = Campaign::new(RunConfig::technique(TechniqueKind::EdgCf), 120);
        let r = c.run(&img).unwrap();
        for cat in Category::ALL {
            let s = r.category(cat);
            let per_outcome = [
                (s.detected_check, Outcome::DetectedByCheck),
                (s.detected_hw, Outcome::DetectedByHw),
                (s.other_fault, Outcome::OtherFault),
                (s.benign, Outcome::Benign),
                (s.sdc, Outcome::Sdc),
                (s.timeout, Outcome::Timeout),
            ];
            for (tally, o) in per_outcome {
                assert_eq!(
                    r.latency_hist(cat, o).count(),
                    tally,
                    "histogram count must match tally for {cat} / {o}"
                );
            }
        }
    }

    #[test]
    fn fast_forward_shard_matches_scratch_shard() {
        let img = image();
        let cfg = RunConfig::technique(TechniqueKind::EdgCf);
        let c = Campaign::new(cfg, 128);
        let (golden, snaps) = crate::snapshot::SnapshotSet::capture(&img, &cfg).unwrap();
        for shard in 0..c.num_shards() {
            let scratch = c.run_shard(&img, &golden, shard).unwrap();
            let fast = c.run_shard_with(&img, &golden, Some(&snaps), shard, |_, _| {}).unwrap();
            for cat in Category::ALL {
                assert_eq!(scratch.category(cat), fast.category(cat), "shard {shard}");
            }
            assert_eq!(scratch.skipped, fast.skipped);
            for cat in Category::ALL {
                for o in Outcome::ALL {
                    assert_eq!(scratch.latency_hist(cat, o), fast.latency_hist(cat, o));
                }
            }
        }
        let stats = snaps.stats();
        assert!(stats.restores > 0, "fast path must actually restore checkpoints");
        assert!(stats.branches_fast_forwarded > stats.branches_stepped);
    }

    #[test]
    fn shard_trials_partition_the_campaign() {
        let c = Campaign::new(RunConfig::baseline(), 150);
        assert_eq!(c.num_shards(), 3);
        let total: u64 = (0..c.num_shards()).map(|s| c.shard_trials(s)).sum();
        assert_eq!(total, 150);
        // Seeds are pairwise distinct and depend only on (seed, index).
        assert_ne!(c.shard_seed(0), c.shard_seed(1));
        assert_eq!(c.shard_seed(2), Campaign::new(RunConfig::baseline(), 999).shard_seed(2));
    }

    #[test]
    fn run_with_golden_matches_run() {
        let img = image();
        let cfg = RunConfig::technique(TechniqueKind::Ecf);
        let c = Campaign::new(cfg, 70);
        let golden = crate::inject::golden_run(&img, &cfg).unwrap();
        let a = c.run(&img).unwrap();
        let b = c.run_with_golden(&img, &golden, None).unwrap();
        for cat in Category::ALL {
            assert_eq!(a.category(cat), b.category(cat));
        }

        let sweep = ExhaustiveSweep::new(cfg, 2);
        let a = sweep.run(&img).unwrap();
        let b = sweep.run_with_golden(&img, &golden, None).unwrap();
        for cat in Category::ALL {
            assert_eq!(a.category(cat), b.category(cat));
        }
    }
}
