//! The attack taxonomy, exhaustively: every archetype's A–F pin is
//! table-driven, and classification is *total* and *stable* as properties —
//! a placed attack always classifies inside its archetype's pinned
//! category set (never `NoError`, never outside A–F), identically whether
//! the trial replays from scratch, fast-forwards through snapshots, or
//! runs traced for forensics, over every workload × technique × style.

use cfed_core::{Category, RunConfig, TechniqueKind};
use cfed_dbt::UpdateStyle;
use cfed_fault::{
    attack, attack_traced_with, attack_with, AttackKind, AttackModel, AttackSpec, SnapshotSet,
};
use proptest::prelude::*;

/// Small MiniC workloads with different branch mixes: a counted loop, a
/// data-dependent branchy loop, and nested loops with a call.
const PROGRAMS: [&str; 3] = [
    r#"
        fn main() {
            let i = 0;
            let acc = 7;
            while (i < 60) { acc = acc + i * 2; i = i + 1; }
            out(acc);
        }
    "#,
    r#"
        fn main() {
            let i = 0;
            let acc = 11;
            while (i < 45) {
                if (i % 5 == 2) { acc = acc * 2 - i; } else { acc = acc + 3; }
                if (acc > 900) { acc = acc - 700; }
                i = i + 1;
            }
            out(acc);
        }
    "#,
    r#"
        fn leaf(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
        fn main() {
            let i = 0;
            let total = 0;
            while (i < 12) {
                let j = 0;
                while (j < 8) { total = total + leaf(i * j); j = j + 1; }
                i = i + 1;
            }
            out(total);
        }
    "#,
];

const TECHNIQUES: [Option<TechniqueKind>; 6] = [
    None,
    Some(TechniqueKind::Cfcss),
    Some(TechniqueKind::Ecca),
    Some(TechniqueKind::Ecf),
    Some(TechniqueKind::EdgCf),
    Some(TechniqueKind::Rcf),
];

/// The archetype → category table, pinned value by value. This is the
/// contract DESIGN.md's "Attack model" section documents and the frontier
/// report rows are keyed by; changing it is a report-format change.
#[test]
fn archetype_category_table_is_pinned() {
    let table: [(AttackKind, &[Category]); 7] = [
        (AttackKind::FlipBranch, &[Category::A]),
        (AttackKind::ReenterBlock, &[Category::B]),
        (AttackKind::GadgetEntry, &[Category::C]),
        (AttackKind::RetGadget, &[Category::D]),
        (AttackKind::EdgeSplice, &[Category::D, Category::E]),
        (
            AttackKind::JumpCorrupt,
            &[Category::A, Category::B, Category::C, Category::D, Category::E, Category::F],
        ),
        (AttackKind::DataPivot, &[Category::F]),
    ];
    assert_eq!(table.map(|(k, _)| k), AttackKind::ALL, "table rows follow ALL order");
    for (kind, cats) in table {
        assert_eq!(kind.expected_categories(), cats, "{kind}: pinned set changed");
        assert!(!cats.is_empty(), "{kind}: empty pin");
        for c in cats {
            assert_ne!(*c, Category::NoError, "{kind}: NoError is not an attack category");
        }
    }
}

/// Names are wire format (cell-key suffixes, telemetry events): pinned.
#[test]
fn archetype_names_are_pinned_and_roundtrip() {
    let names: Vec<&str> = AttackKind::ALL.iter().map(|k| k.name()).collect();
    assert_eq!(
        names,
        [
            "flip-branch",
            "reenter-block",
            "gadget-entry",
            "ret-gadget",
            "edge-splice",
            "jump-corrupt",
            "data-pivot"
        ]
    );
    for (i, kind) in AttackKind::ALL.into_iter().enumerate() {
        assert_eq!(kind.idx(), i);
        assert_eq!(AttackKind::from_name(kind.name()), Some(kind));
        assert_eq!(kind.to_string(), kind.name());
    }
    assert_eq!(AttackKind::from_name("seu"), None);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// One random attack: if it places, its category sits inside the
    /// archetype's pinned set (so never `NoError`), and the classification
    /// and full outcome are bit-identical across the from-scratch,
    /// fast-forward and traced execution paths.
    #[test]
    fn classification_is_total_and_stable(
        program in 0usize..PROGRAMS.len(),
        technique in 0usize..TECHNIQUES.len(),
        style in 0usize..2,
        kind_idx in 0usize..AttackKind::ALL.len(),
        nth_seed in any::<u64>(),
        param in any::<u64>(),
    ) {
        let cfg = RunConfig {
            technique: TECHNIQUES[technique],
            style: [UpdateStyle::CMov, UpdateStyle::Jcc][style],
            ..RunConfig::default()
        };
        let image = cfed_lang::compile(PROGRAMS[program]).expect("programs compile");
        let (golden, snapshots) = SnapshotSet::capture(&image, &cfg).expect("well-behaved");
        prop_assert!(golden.branches > 0, "looped programs execute branches");

        let kind = AttackKind::ALL[kind_idx];
        let spec = AttackSpec { kind, nth: nth_seed % golden.branches, param };

        let scratch = attack(&image, &cfg, spec, &golden).expect("well-behaved prefix");
        let fast = attack_with(&image, &cfg, spec, &golden, Some(&snapshots))
            .expect("well-behaved prefix");
        prop_assert_eq!(&scratch, &fast, "fast-forward diverged for {:?}", spec);

        let traced = attack_traced_with(&image, &cfg, spec, &golden, 32, Some(&snapshots))
            .expect("well-behaved prefix");
        match (scratch, traced) {
            (Some(r), Some((t, _, provenance))) => {
                prop_assert_eq!(&r, &t, "traced outcome diverged for {:?}", spec);
                prop_assert!(
                    kind.expected_categories().contains(&r.category),
                    "{} classified {} outside its pinned set", kind, r.category
                );
                // Redirect archetypes record where the gadget actually went.
                if kind != AttackKind::FlipBranch {
                    prop_assert!(
                        provenance.target != 0,
                        "{} placed without a target", kind
                    );
                }
            }
            (None, None) => {} // unplaceable on every path — consistent
            (a, b) => prop_assert!(
                false,
                "placement diverged for {:?}: scratch {} vs traced {}",
                spec, a.is_some(), b.is_some()
            ),
        }
    }

    /// The surface analyzer plans all seven archetypes at *every* dynamic
    /// branch: totality means each plan either lands in the pinned set or
    /// is counted unplaceable — nothing else, under any configuration.
    #[test]
    fn surface_analysis_is_total_over_every_branch(
        program in 0usize..PROGRAMS.len(),
        technique in 0usize..TECHNIQUES.len(),
        style in 0usize..2,
    ) {
        let cfg = RunConfig {
            technique: TECHNIQUES[technique],
            style: [UpdateStyle::CMov, UpdateStyle::Jcc][style],
            ..RunConfig::default()
        };
        let image = cfed_lang::compile(PROGRAMS[program]).expect("programs compile");
        let surface = AttackModel::new(cfg).analyze(&image).expect("well-behaved");
        prop_assert!(surface.branches > 0);
        for kind in AttackKind::ALL {
            prop_assert_eq!(
                surface.placed(kind) + surface.unplaceable[kind.idx()],
                surface.branches,
                "{} plans unaccounted for", kind
            );
            prop_assert_eq!(surface.count(kind, Category::NoError), 0u64);
            for c in surface.observed(kind) {
                prop_assert!(
                    kind.expected_categories().contains(&c),
                    "{} reached {} outside its pinned set", kind, c
                );
            }
        }
    }
}
