//! Property tests for the fast-forward engine's core contract: restoring
//! a golden-run checkpoint and stepping the residual prefix must be
//! observationally identical to replaying the whole prefix from scratch —
//! for every workload, technique, update style, checking policy and fault,
//! and for the traced (forensics) path byte for byte, trace included.

use cfed_core::{RunConfig, TechniqueKind};
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_fault::{
    inject, inject_with, FaultSpec, ForensicsBundle, SnapshotSet, DEFAULT_TRACE_WINDOW,
};
use proptest::prelude::*;

/// Small MiniC workloads with different branch mixes: a counted loop, a
/// data-dependent branchy loop, and nested loops.
const PROGRAMS: [&str; 3] = [
    r#"
        fn main() {
            let i = 0;
            let acc = 7;
            while (i < 60) { acc = acc + i * 2; i = i + 1; }
            out(acc);
        }
    "#,
    r#"
        fn main() {
            let i = 0;
            let acc = 11;
            while (i < 45) {
                if (i % 5 == 2) { acc = acc * 2 - i; } else { acc = acc + 3; }
                if (acc > 900) { acc = acc - 700; }
                i = i + 1;
            }
            out(acc);
        }
    "#,
    r#"
        fn main() {
            let i = 0;
            let total = 0;
            while (i < 12) {
                let j = 0;
                while (j < 8) { total = total + i * j; j = j + 1; }
                i = i + 1;
            }
            out(total);
        }
    "#,
];

const TECHNIQUES: [Option<TechniqueKind>; 6] = [
    None,
    Some(TechniqueKind::Cfcss),
    Some(TechniqueKind::Ecca),
    Some(TechniqueKind::Ecf),
    Some(TechniqueKind::EdgCf),
    Some(TechniqueKind::Rcf),
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// `inject_with(…, Some(snapshots))` returns a bit-identical
    /// [`cfed_fault::InjectionResult`] to the from-scratch path, and the
    /// forensics bundle (result *and* tracer export) matches byte for
    /// byte.
    #[test]
    fn fast_forward_is_outcome_equivalent(
        program in 0usize..PROGRAMS.len(),
        technique in 0usize..TECHNIQUES.len(),
        style in 0usize..2,
        policy in 0usize..CheckPolicy::ALL.len(),
        addr_fault in any::<bool>(),
        nth_seed in any::<u64>(),
        bit_seed in any::<u8>(),
    ) {
        let cfg = RunConfig {
            technique: TECHNIQUES[technique],
            style: [UpdateStyle::CMov, UpdateStyle::Jcc][style],
            policy: CheckPolicy::ALL[policy],
            ..RunConfig::default()
        };
        let image = cfed_lang::compile(PROGRAMS[program]).expect("programs compile");
        let (golden, snapshots) = SnapshotSet::capture(&image, &cfg).expect("well-behaved");
        prop_assert!(golden.branches > 0, "looped programs execute branches");

        let nth = nth_seed % golden.branches;
        let spec = if addr_fault {
            FaultSpec::AddrBit { nth, bit: bit_seed % 32 }
        } else {
            FaultSpec::FlagBit { nth, bit: bit_seed % 6 }
        };

        let scratch = inject(&image, &cfg, spec, &golden).expect("well-behaved prefix");
        let fast = inject_with(&image, &cfg, spec, &golden, Some(&snapshots))
            .expect("well-behaved prefix");
        prop_assert_eq!(scratch, fast, "plain injection diverged for {:?}", spec);

        let from_scratch =
            ForensicsBundle::capture(&image, &cfg, spec, &golden, DEFAULT_TRACE_WINDOW);
        let fast_forward = ForensicsBundle::capture_with(
            &image, &cfg, spec, &golden, DEFAULT_TRACE_WINDOW, Some(&snapshots),
        );
        match (from_scratch, fast_forward) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.result, b.result, "traced result diverged for {:?}", spec);
                prop_assert_eq!(a.trace, b.trace, "trace diverged for {:?}", spec);
            }
            (a, b) => prop_assert!(
                false,
                "placement diverged for {:?}: scratch {} vs fast-forward {}",
                spec, a.is_some(), b.is_some()
            ),
        }
    }
}
