//! Forensics-bundle coverage: a known single-bit branch-offset fault must
//! yield a bundle naming the faulted instruction, the flipped bit, and a
//! non-empty trace window ending at the detection point.

use cfed_core::{RunConfig, TechniqueKind};
use cfed_fault::{golden_run, inject, FaultSpec, ForensicsBundle, Outcome};
use cfed_lang::compile;
use cfed_telemetry::json::Json;

fn image() -> cfed_asm::Image {
    compile(
        r#"
        fn main() {
            let i = 0;
            let acc = 0;
            while (i < 40) {
                if (i % 3 == 0) { acc = acc + i; } else { acc = acc + 1; }
                i = i + 1;
            }
            out(acc);
        }
        "#,
    )
    .unwrap()
}

#[test]
fn bundle_names_fault_site_bit_and_trace_window() {
    let img = image();
    let cfg = RunConfig::technique(TechniqueKind::Rcf);
    let g = golden_run(&img, &cfg).unwrap();

    // Scan the low offset bits for a check-detected fault: a known
    // single-bit branch-offset flip with a real detection point.
    let mut found = None;
    'scan: for nth in 0..g.branches.min(80) {
        for bit in [3u8, 4, 5] {
            let spec = FaultSpec::AddrBit { nth, bit };
            if let Some(r) = inject(&img, &cfg, spec, &g).unwrap() {
                if r.outcome == Outcome::DetectedByCheck {
                    found = Some((spec, r));
                    break 'scan;
                }
            }
        }
    }
    let (spec, plain) = found.expect("RCF detects some low-bit offset fault");
    let FaultSpec::AddrBit { bit, .. } = spec else { unreachable!() };

    // Re-injection with a window large enough to retain the whole
    // injection-to-detection stretch.
    let window = (plain.latency_insts + 16) as usize;
    let bundle = ForensicsBundle::capture(&img, &cfg, spec, &g, window)
        .expect("previously placed fault re-injects");

    // Deterministic reproduction: identical result.
    assert_eq!(bundle.result, plain);

    let j = bundle.to_json();
    assert_eq!(j.get("fault").and_then(Json::as_str), Some("addr_bit"));
    assert_eq!(j.get("site").and_then(Json::as_u64), Some(plain.site));
    assert_eq!(j.get("flipped_bit").and_then(Json::as_u64), Some(bit as u64));
    assert_eq!(j.get("outcome").and_then(Json::as_str), Some("detected(check)"));

    let trace = j.get("trace").expect("bundle carries a trace");
    let entries = trace.get("window").and_then(Json::as_arr).expect("window array");
    assert!(!entries.is_empty(), "trace window must be non-empty");

    // The faulted branch itself retired (its corrupted offset stayed in
    // code), so the window contains the fault site...
    let addrs: Vec<u64> =
        entries.iter().filter_map(|e| e.get("addr").and_then(Json::as_u64)).collect();
    assert!(addrs.contains(&plain.site), "window must contain the faulted site {:#x}", plain.site);

    // ...and ends at the detection point: the last retired instruction is
    // the taken check branch into the error stub (the detecting trap never
    // commits, so nothing can follow it).
    let last = entries.last().unwrap();
    assert_eq!(last.get("taken"), Some(&Json::Bool(true)), "trace must end at the detection");

    // The branch history rides along, non-empty as well.
    let branches = trace.get("branches").and_then(Json::as_arr).expect("branches array");
    assert!(!branches.is_empty());
}

#[test]
fn wanted_selects_bad_endings() {
    use cfed_core::Category;
    use cfed_fault::InjectionResult;
    let r = |category, outcome| InjectionResult {
        outcome,
        category,
        site: 0,
        latency_insts: 0,
        instrumentation_landing: false,
    };
    assert!(ForensicsBundle::wanted(&r(Category::A, Outcome::Sdc)));
    assert!(ForensicsBundle::wanted(&r(Category::B, Outcome::Timeout)));
    // Misdetection: supposedly harmless, yet not benign.
    assert!(ForensicsBundle::wanted(&r(Category::NoError, Outcome::DetectedByCheck)));
    assert!(!ForensicsBundle::wanted(&r(Category::NoError, Outcome::Benign)));
    assert!(!ForensicsBundle::wanted(&r(Category::A, Outcome::DetectedByCheck)));
}
