use cfed_core::{Category, RunConfig, TechniqueKind};
use cfed_fault::{golden_run, inject, FaultSpec, Outcome};
use cfed_isa::{Flags, OFFSET_BITS};
use cfed_workloads::{by_name, Scale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    for name in ["164.gzip", "176.gcc", "181.mcf", "171.swim", "183.equake", "191.fma3d"] {
        let img = by_name(name).unwrap().image(Scale::Test).unwrap();
        let cfg = RunConfig::technique(TechniqueKind::Rcf);
        let g = golden_run(&img, &cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(0xCFED_2006);
        for _ in 0..40 {
            let nth = rng.gen_range(0..g.branches.max(1));
            let bit = rng.gen_range(0..OFFSET_BITS + Flags::BITS) as u8;
            let spec = if (bit as u32) < OFFSET_BITS {
                FaultSpec::AddrBit { nth, bit }
            } else {
                FaultSpec::FlagBit { nth, bit: bit - OFFSET_BITS as u8 }
            };
            if let Some(r) = inject(&img, &cfg, spec, &g).unwrap() {
                if r.outcome == Outcome::Timeout {
                    println!("{name}: TIMEOUT nth={nth} spec={spec:?} cat={:?} site={:#x} golden_insts={}", r.category, r.site, g.insts);
                }
                if r.outcome == Outcome::Sdc && r.category == Category::A {
                    println!("{name}: A-SDC nth={nth} spec={spec:?} site={:#x}", r.site);
                }
            }
        }
    }
}
