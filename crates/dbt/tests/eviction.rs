//! Code-cache eviction under pressure: a tight cache limit forces full
//! flushes and retranslation, and guest behaviour must be unchanged.

use std::sync::Arc;

use cfed_dbt::{Dbt, DbtExit, NullInstrumenter, UpdateStyle};
use cfed_lang::compile;
use cfed_sim::Machine;
use cfed_telemetry::{json::Json, MemorySink, Telemetry};

const PROGRAM: &str = r#"
    fn classify(x) {
        let r = 0;
        if (x % 4 == 0) { r = 1; } else { r = 2; }
        if (x % 3 == 0) { r = r + 10; } else { r = r + 20; }
        if (x % 5 == 0) { r = r + 100; } else { r = r + 200; }
        return r;
    }
    fn main() {
        let i = 0;
        let acc = 0;
        while (i < 200) { acc = acc + classify(i); i = i + 1; }
        out(acc);
    }
"#;

fn run(cache_limit: Option<u64>) -> (DbtExit, Vec<u64>, cfed_dbt::DbtStats) {
    let image = compile(PROGRAM).unwrap();
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    if let Some(limit) = cache_limit {
        dbt.set_cache_limit(limit);
    }
    let exit = dbt.run(&mut m, 50_000_000);
    (exit, m.cpu.take_output(), dbt.stats())
}

#[test]
fn roomy_cache_never_evicts() {
    let (exit, _, stats) = run(None);
    assert!(matches!(exit, DbtExit::Halted { .. }));
    assert_eq!(stats.cache_evictions, 0);
    assert_eq!(stats.retranslations, 0);
}

#[test]
fn tight_cache_evicts_and_preserves_behaviour() {
    let (exit_roomy, out_roomy, _) = run(None);
    // The minimum usable limit: eviction fires on almost every translation.
    let (exit_tight, out_tight, stats) = run(Some(0));
    assert_eq!(exit_roomy, exit_tight);
    assert_eq!(out_roomy, out_tight);
    assert!(stats.cache_evictions > 0, "tight cache must evict: {stats:?}");
    assert!(stats.retranslations > 0, "evicted blocks must retranslate: {stats:?}");
}

#[test]
fn run_end_emits_dbt_stats_event() {
    let image = compile(PROGRAM).unwrap();
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    dbt.set_cache_limit(0);
    let sink = Arc::new(MemorySink::new());
    dbt.set_telemetry(Telemetry::to(sink.clone()));
    let exit = dbt.run(&mut m, 50_000_000);
    assert!(matches!(exit, DbtExit::Halted { .. }));

    let events = sink.of_kind("dbt_stats");
    assert_eq!(events.len(), 1);
    let ev = &events[0];
    let stats = dbt.stats();
    assert_eq!(ev.get("blocks").and_then(Json::as_u64), Some(stats.blocks));
    assert_eq!(ev.get("cache_evictions").and_then(Json::as_u64), Some(stats.cache_evictions));
    assert_eq!(ev.get("retranslations").and_then(Json::as_u64), Some(stats.retranslations));
    // The translation-time histogram rides along, one sample per block.
    let hist = cfed_telemetry::Histogram::from_json(ev.get("translate_us").unwrap()).unwrap();
    assert_eq!(hist.count(), stats.blocks);
}
