//! DBT transparency tests: programs must behave identically under the DBT
//! (same outputs, same exit codes, same guest-visible faults) — the paper's
//! core premise that reliability can be added to unmodified binaries.

use cfed_dbt::{Dbt, DbtExit, NullInstrumenter, UpdateStyle};
use cfed_isa::{encode_all, AluOp, Cond, Inst, Reg};
use cfed_lang::compile;
use cfed_sim::{ExitReason, Machine, Trap};

fn native(code: &[u8], data: &[u8], entry: u64) -> (ExitReason, Vec<u64>, u64) {
    let mut m = Machine::load(code, data, entry);
    let exit = m.run(10_000_000);
    let cycles = m.cpu.stats().cycles;
    (exit, m.cpu.take_output(), cycles)
}

fn under_dbt(code: &[u8], data: &[u8], entry: u64) -> (DbtExit, Vec<u64>, u64, Dbt) {
    let mut m = Machine::load(code, data, entry);
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    let exit = dbt.run(&mut m, 20_000_000);
    let cycles = m.cpu.stats().cycles;
    (exit, m.cpu.take_output(), cycles, dbt)
}

fn check_equivalent(src: &str) {
    let image = compile(src).expect("compile");
    let (nexit, nout, _) = native(image.code(), image.data(), image.entry_offset());
    let (dexit, dout, _, _) = under_dbt(image.code(), image.data(), image.entry_offset());
    match (nexit, dexit) {
        (ExitReason::Halted { code: a }, DbtExit::Halted { code: b }) => assert_eq!(a, b),
        (a, b) => panic!("exit mismatch: native {a:?}, dbt {b:?}"),
    }
    assert_eq!(nout, dout, "output stream must match");
}

#[test]
fn straight_line_program() {
    check_equivalent("fn main() { out(1 + 2); out(3 * 4); return 7; }");
}

#[test]
fn loops_and_branches() {
    check_equivalent(
        r#"
        fn main() {
            let i = 0;
            let acc = 0;
            while (i < 200) {
                if (i % 3 == 0) { acc = acc + i; } else { acc = acc - 1; }
                i = i + 1;
            }
            out(acc);
        }
        "#,
    );
}

#[test]
fn calls_and_recursion() {
    check_equivalent(
        r#"
        fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
        fn main() { out(fib(12)); }
        "#,
    );
}

#[test]
fn globals_and_arrays() {
    check_equivalent(
        r#"
        global a[64];
        fn main() {
            let i = 0;
            while (i < 64) { a[i] = i * i; i = i + 1; }
            let s = 0;
            i = 0;
            while (i < 64) { s = s + a[i]; i = i + 1; }
            out(s);
        }
        "#,
    );
}

#[test]
fn guest_assert_trap_surfaces() {
    let image = compile("fn main() { assert(0); }").unwrap();
    let (exit, _, _, _) = under_dbt(image.code(), image.data(), image.entry_offset());
    match exit {
        DbtExit::Trapped(Trap::Software { code, .. }) => {
            assert_eq!(code, cfed_sim::trap_codes::GUEST_ASSERT)
        }
        other => panic!("expected guest assert, got {other:?}"),
    }
}

#[test]
fn div_by_zero_surfaces() {
    let image = compile("fn main() { let z = 0; out(1 / z); }").unwrap();
    let (exit, _, _, _) = under_dbt(image.code(), image.data(), image.entry_offset());
    assert!(matches!(exit, DbtExit::Trapped(Trap::DivByZero { .. })));
}

#[test]
fn indirect_calls_via_ret() {
    // `ret` exercises the indirect dispatcher on every function return.
    let image = compile(
        r#"
        fn leaf(x) { return x * 3; }
        fn main() {
            let i = 0;
            let acc = 0;
            while (i < 50) { acc = acc + leaf(i); i = i + 1; }
            out(acc);
        }
        "#,
    )
    .unwrap();
    let (exit, out, _, dbt) = under_dbt(image.code(), image.data(), image.entry_offset());
    assert!(matches!(exit, DbtExit::Halted { .. }));
    assert_eq!(out, vec![(0..50).map(|i| i * 3).sum::<u64>()]);
    assert!(dbt.stats().dispatches >= 50, "each ret goes through the dispatcher");
}

#[test]
fn blocks_translated_on_demand_only() {
    // The else-branch is never executed, so its block must not be translated.
    let mut never = 0;
    let image = compile(
        r#"
        fn main() {
            if (1) { out(10); } else { out(99); out(98); out(97); }
        }
        "#,
    )
    .unwrap();
    let (exit, out, _, dbt) = under_dbt(image.code(), image.data(), image.entry_offset());
    assert!(matches!(exit, DbtExit::Halted { .. }));
    assert_eq!(out, vec![10]);
    for b in dbt.blocks() {
        never += (b.guest_len == 0) as u32;
    }
    assert_eq!(never, 0);
    // Translating everything would need more blocks than were created.
    let translated: u64 = dbt.stats().guest_insts;
    assert!(
        translated < image.len() as u64,
        "on-demand translation must skip the dead else arm ({translated} of {})",
        image.len()
    );
}

#[test]
fn chaining_eliminates_repeat_exits() {
    let image =
        compile("fn main() { let i = 0; while (i < 1000) { i = i + 1; } out(i); }").unwrap();
    let (_, out, _, dbt) = under_dbt(image.code(), image.data(), image.entry_offset());
    assert_eq!(out, vec![1000]);
    let stats = dbt.stats();
    // Each direct edge is patched once; the 1000-iteration loop must not
    // take 1000 exits.
    assert!(stats.chains <= 20, "chains: {}", stats.chains);
}

#[test]
fn dbt_overhead_is_moderate() {
    // The paper reports ~12% average DBT baseline overhead.
    let image = compile(
        r#"
        fn work(n) {
            let acc = 0;
            let i = 0;
            while (i < n) { acc = acc + i * 3 + (acc >> 2); i = i + 1; }
            return acc;
        }
        fn main() { out(work(5000)); }
        "#,
    )
    .unwrap();
    let (_, nout, ncycles) = native(image.code(), image.data(), image.entry_offset());
    let (_, dout, dcycles, _) = under_dbt(image.code(), image.data(), image.entry_offset());
    assert_eq!(nout, dout);
    let overhead = dcycles as f64 / ncycles as f64;
    assert!(overhead >= 1.0, "dbt cannot be faster than native: {overhead}");
    assert!(overhead < 1.6, "dbt overhead too high: {overhead}");
}

#[test]
fn self_modifying_code_retranslated() {
    // The guest overwrites an upcoming `out r0` (out of its own straight-line
    // code) with `out r1`, then jumps to it. The DBT must flush and
    // retranslate, observing the new instruction.
    let target_patch = Inst::Out { src: Reg::R1 };
    let patch_words = i64::from_le_bytes(target_patch.encode());
    // Build by hand: needs precise addresses.
    let mut asm = cfed_asm::Asm::new();
    let pool = asm.data_u64(&[patch_words as u64]);
    asm.label("start");
    asm.movri(Reg::R0, 1); // r0 = 1
    asm.movri(Reg::R1, 2); // r1 = 2
                           // First execution of `victim`: prints r0 (1).
    asm.call("victim");
    // Patch victim's first instruction to `out r1`.
    asm.mov_addr(Reg::R2, pool);
    asm.ld(Reg::R3, Reg::R2, 0); // r3 = encoded `out r1`
    asm.mov_label(Reg::R4, "victim");
    asm.st(Reg::R4, Reg::R3, 0); // overwrite guest code (SMC!)
    asm.call("victim");
    asm.halt();
    asm.label("victim");
    asm.out(Reg::R0);
    asm.ret();
    let image = asm.assemble("start").unwrap();

    // Natively: prints 1 then 2.
    let (nexit, nout, _) = native(image.code(), image.data(), image.entry_offset());
    assert!(matches!(nexit, ExitReason::Halted { .. }));
    assert_eq!(nout, vec![1, 2]);

    // Under DBT: identical, via the write-protection flush path.
    let (dexit, dout, _, dbt) = under_dbt(image.code(), image.data(), image.entry_offset());
    assert!(matches!(dexit, DbtExit::Halted { .. }), "{dexit:?}");
    assert_eq!(dout, vec![1, 2]);
    assert!(dbt.stats().smc_flushes >= 1, "SMC must trigger a flush");
}

#[test]
fn wild_jump_to_data_detected_by_hardware() {
    // Category F: a branch into the data region must surface PermExec.
    let code = encode_all(&[Inst::Jmp { offset: 0x1F_0000 }]);
    let mut m = Machine::load(&code, &[], 0);
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    match dbt.run(&mut m, 1000) {
        DbtExit::Trapped(t) => assert!(t.is_hardware_cfe_detection(), "{t:?}"),
        other => panic!("expected trap, got {other:?}"),
    }
}

#[test]
fn misaligned_indirect_target_detected() {
    let code = encode_all(&[
        Inst::MovRI { dst: Reg::R1, imm: 0x1_0004 }, // misaligned guest addr
        Inst::JmpR { target: Reg::R1 },
    ]);
    let mut m = Machine::load(&code, &[], 0);
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    match dbt.run(&mut m, 1000) {
        DbtExit::Trapped(Trap::UnalignedFetch { addr }) => assert_eq!(addr, 0x1_0004),
        other => panic!("expected unaligned fetch, got {other:?}"),
    }
}

#[test]
fn step_limit_reported() {
    let code = encode_all(&[Inst::Jmp { offset: -8 }]);
    let mut m = Machine::load(&code, &[], 0);
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    assert_eq!(dbt.run(&mut m, 100), DbtExit::StepLimit);
}

#[test]
fn cond_branch_both_arms_eventually_translated() {
    let code = encode_all(&[
        Inst::MovRI { dst: Reg::R0, imm: 2 },                // 0x10000
        Inst::AluI { op: AluOp::Cmp, dst: Reg::R0, imm: 1 }, // 0x10008: loop head
        Inst::Jcc { cc: Cond::E, offset: 16 },               // 0x10010 -> 0x10028
        Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 }, // 0x10018
        Inst::Jmp { offset: -32 },                           // 0x10020 -> 0x10008
        Inst::Halt,                                          // 0x10028
    ]);
    let mut m = Machine::load(&code, &[], 0);
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    assert_eq!(dbt.run(&mut m, 10_000), DbtExit::Halted { code: 1 });
    assert!(dbt.lookup(0x1_0008).is_some());
    assert!(dbt.lookup(0x1_0018).is_some());
    assert!(dbt.lookup(0x1_0028).is_some());
}

#[test]
fn guest_sees_guest_return_addresses() {
    // Transparency of the stack: a function reading its own return address
    // must see the guest address, not a code-cache address.
    let mut asm = cfed_asm::Asm::new();
    asm.label("start");
    asm.call("probe"); // return addr = start+8 (guest!)
    asm.label("after");
    asm.halt();
    asm.label("probe");
    asm.ld(Reg::R0, Reg::SP, 0); // read return address
    asm.out(Reg::R0);
    asm.ret();
    let image = asm.assemble("start").unwrap();
    let after = image.symbol("after").unwrap();
    let (dexit, dout, _, _) = under_dbt(image.code(), image.data(), image.entry_offset());
    assert!(matches!(dexit, DbtExit::Halted { .. }));
    assert_eq!(dout, vec![after], "return address on stack must be the guest address");
}

#[test]
fn fused_run_matches_per_step() {
    // The block-fused dispatch loop (decode cache attached, default) and the
    // per-instruction path (cache disabled) must agree bit-for-bit: exit,
    // output, cycle count, retired instructions and engine statistics.
    let image = compile(
        r#"
        fn leaf(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
        fn main() {
            let i = 0;
            let acc = 0;
            while (i < 300) { acc = acc + leaf(i); i = i + 1; }
            out(acc);
        }
        "#,
    )
    .unwrap();
    let run = |fused: bool| {
        let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
        m.set_decode_cache(fused);
        let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
        let exit = dbt.run(&mut m, 20_000_000);
        (exit, m.cpu.take_output(), m.cpu.stats().cycles, m.cpu.stats().insts, dbt.stats())
    };
    let (fexit, fout, fcycles, finsts, fstats) = run(true);
    let (sexit, sout, scycles, sinsts, sstats) = run(false);
    assert_eq!(fexit, sexit);
    assert_eq!(fout, sout);
    assert_eq!(fcycles, scycles);
    assert_eq!(finsts, sinsts);
    assert_eq!(fstats.blocks, sstats.blocks);
    assert_eq!(fstats.chains, sstats.chains);
    assert_eq!(fstats.dispatches, sstats.dispatches);
    assert_eq!(fstats.smc_flushes, sstats.smc_flushes);
    // Both paths dispatch the same; the inline cache serves repeat targets.
    assert!(fstats.dispatch_ic_hits > 0, "repeat rets must hit the dispatch IC");
    assert_eq!(fstats.dispatch_ic_hits, sstats.dispatch_ic_hits);
}

#[test]
fn fused_run_handles_smc_and_budget() {
    // Budget exactness under fusion: run the same spin loop twice, once
    // fused and once per-step, to the same instruction budget.
    let code = encode_all(&[Inst::Jmp { offset: -8 }]);
    for budget in [0u64, 1, 7, 100] {
        let mut fused = Machine::load(&code, &[], 0);
        let mut dbt_f = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut fused);
        assert_eq!(dbt_f.run(&mut fused, budget), DbtExit::StepLimit);
        let mut stepped = Machine::load(&code, &[], 0);
        stepped.set_decode_cache(false);
        let mut dbt_s = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut stepped);
        assert_eq!(dbt_s.run(&mut stepped, budget), DbtExit::StepLimit);
        assert_eq!(fused.cpu.stats().insts, stepped.cpu.stats().insts, "budget {budget}");
        assert_eq!(fused.cpu.stats().cycles, stepped.cpu.stats().cycles, "budget {budget}");
    }
}
