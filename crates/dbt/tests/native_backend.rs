//! Native-backend equivalence: `NativeDbt` must be bit-identical to the
//! fused-interpreter `Dbt` — same exit, same output stream, same `ExecStats`
//! (instructions, cycles, branches, taken, traps) and same `DbtStats`
//! (blocks, chains, dispatches, IC hits, SMC flushes). These tests are the
//! backend's detection-guarantee anchor: if the native tier drifted in any
//! observable way, signature checks running on top of it would too.

#![cfg(all(target_arch = "x86_64", target_os = "linux"))]

use cfed_dbt::{Dbt, DbtExit, NativeDbt, NullInstrumenter, UpdateStyle};
use cfed_isa::{encode_all, AluOp, Cond, Inst, Reg};
use cfed_lang::compile;
use cfed_sim::Machine;

struct Outcome {
    exit: DbtExit,
    output: Vec<u64>,
    insts: u64,
    cycles: u64,
    branches: u64,
    branches_taken: u64,
    traps: u64,
    stats: cfed_dbt::DbtStats,
}

fn run_interp(code: &[u8], data: &[u8], entry: u64, budget: u64) -> Outcome {
    let mut m = Machine::load(code, data, entry);
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    let exit = dbt.run(&mut m, budget);
    let s = m.cpu.stats();
    Outcome {
        exit,
        output: m.cpu.take_output(),
        insts: s.insts,
        cycles: s.cycles,
        branches: s.branches,
        branches_taken: s.branches_taken,
        traps: s.traps,
        stats: dbt.stats(),
    }
}

fn run_native(code: &[u8], data: &[u8], entry: u64, budget: u64) -> Outcome {
    let mut m = Machine::load(code, data, entry);
    let mut dbt = NativeDbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    // On this platform the native tier must engage unless the environment
    // opts out; under CFED_NO_NATIVE=1 the suite still runs, pinning the
    // fallback path against the plain engine.
    assert_eq!(dbt.is_native(), cfed_dbt::native_enabled(), "native tier gating");
    let exit = dbt.run(&mut m, budget);
    let s = m.cpu.stats();
    Outcome {
        exit,
        output: m.cpu.take_output(),
        insts: s.insts,
        cycles: s.cycles,
        branches: s.branches,
        branches_taken: s.branches_taken,
        traps: s.traps,
        stats: dbt.stats(),
    }
}

fn check_identical(code: &[u8], data: &[u8], entry: u64, budget: u64) {
    let i = run_interp(code, data, entry, budget);
    let n = run_native(code, data, entry, budget);
    assert_eq!(i.exit, n.exit, "exit");
    assert_eq!(i.output, n.output, "output stream");
    assert_eq!(i.insts, n.insts, "retired instructions");
    assert_eq!(i.cycles, n.cycles, "cycles");
    assert_eq!(i.branches, n.branches, "branches");
    assert_eq!(i.branches_taken, n.branches_taken, "branches taken");
    assert_eq!(i.traps, n.traps, "traps");
    assert_eq!(i.stats.blocks, n.stats.blocks, "blocks");
    assert_eq!(i.stats.guest_insts, n.stats.guest_insts, "guest insts");
    assert_eq!(i.stats.cache_insts, n.stats.cache_insts, "cache insts");
    assert_eq!(i.stats.chains, n.stats.chains, "chains");
    assert_eq!(i.stats.dispatches, n.stats.dispatches, "dispatches");
    assert_eq!(i.stats.dispatch_ic_hits, n.stats.dispatch_ic_hits, "IC hits");
    assert_eq!(i.stats.smc_flushes, n.stats.smc_flushes, "SMC flushes");
    assert_eq!(i.stats.cache_evictions, n.stats.cache_evictions, "evictions");
}

fn check_src(src: &str) {
    let image = compile(src).expect("compile");
    check_identical(image.code(), image.data(), image.entry_offset(), 20_000_000);
}

#[test]
fn straight_line_and_alu_flags() {
    check_src(
        r#"
        fn main() {
            out(1 + 2);
            out(3 * 4);
            out(100 / 7);
            out(100 % 7);
            out(5 - 9);
            out((1 << 40) >> 3);
            out(12345 & 777);
            out(12345 | 777);
            out(12345 ^ 777);
            return 7;
        }
        "#,
    );
}

#[test]
fn loops_and_branches() {
    check_src(
        r#"
        fn main() {
            let i = 0;
            let acc = 0;
            while (i < 500) {
                if (i % 3 == 0) { acc = acc + i; } else { acc = acc - 1; }
                if (i % 7 == 0) { acc = acc * 2; }
                i = i + 1;
            }
            out(acc);
        }
        "#,
    );
}

#[test]
fn calls_recursion_and_dispatch() {
    // Every `ret` exercises the indirect dispatcher and its inline cache.
    check_src(
        r#"
        fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
        fn main() { out(fib(15)); }
        "#,
    );
}

#[test]
fn globals_arrays_and_memory() {
    check_src(
        r#"
        global a[128];
        fn main() {
            let i = 0;
            while (i < 128) { a[i] = i * i + 3; i = i + 1; }
            let s = 0;
            i = 0;
            while (i < 128) { s = s + a[i]; i = i + 2; }
            out(s);
        }
        "#,
    );
}

#[test]
fn shift_edge_cases() {
    // Shift counts of 0, 63 and 64+ hit the ISA's masked-count semantics,
    // whose flag behavior the native backend special-cases.
    check_src(
        r#"
        fn sh(v, n) { return ((v << n) > 0) + ((v >> n) == 0); }
        fn main() {
            let i = 0;
            let acc = 0;
            while (i < 70) { acc = acc + sh(12345, i) + sh(0 - 7, i); i = i + 1; }
            out(acc);
        }
        "#,
    );
}

#[test]
fn div_by_zero_trap_identical() {
    let image = compile("fn main() { let z = 0; out(1 / z); }").unwrap();
    check_identical(image.code(), image.data(), image.entry_offset(), 1_000_000);
}

#[test]
fn guest_assert_trap_identical() {
    let image = compile("fn main() { out(3); assert(0); }").unwrap();
    check_identical(image.code(), image.data(), image.entry_offset(), 1_000_000);
}

#[test]
fn wild_store_fault_identical() {
    // A store far outside the mapped guest space faults mid-block; the
    // native helper must surface the same trap without committing state.
    let code = encode_all(&[
        Inst::MovRI { dst: Reg::R0, imm: 0x7F00_0000 },
        Inst::St { base: Reg::R0, src: Reg::R0, disp: 0 },
        Inst::Halt,
    ]);
    check_identical(&code, &[], 0, 1000);
}

#[test]
fn step_limit_exactness() {
    // Budgets around and below the native session threshold must stop on
    // exactly the same instruction as the interpreter.
    let image = compile(
        r#"
        fn main() {
            let i = 0;
            while (1) { i = i + 3; if (i > 1000000000) { return i; } }
        }
        "#,
    )
    .unwrap();
    for budget in [0u64, 1, 100, 4095, 4096, 5000, 100_000, 1_000_000] {
        let i = run_interp(image.code(), image.data(), image.entry_offset(), budget);
        let n = run_native(image.code(), image.data(), image.entry_offset(), budget);
        assert_eq!(i.exit, n.exit, "budget {budget}");
        assert_eq!(i.insts, n.insts, "budget {budget}");
        assert_eq!(i.cycles, n.cycles, "budget {budget}");
        assert_eq!(i.traps, n.traps, "budget {budget}");
    }
}

#[test]
fn resume_after_step_limit_identical() {
    // Chopping one run into many small budgets must retire the same stream:
    // the native loop hands mid-block tails to the interpreter and re-enters
    // native code at block heads.
    let image = compile(
        r#"
        fn leaf(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
        fn main() {
            let i = 0;
            let acc = 0;
            while (i < 2000) { acc = acc + leaf(i); i = i + 1; }
            out(acc);
        }
        "#,
    )
    .unwrap();
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = NativeDbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    let mut slices = 0u64;
    let exit = loop {
        match dbt.run(&mut m, 4500) {
            DbtExit::StepLimit => slices += 1,
            other => break other,
        }
        assert!(slices < 100_000, "diverged");
    };
    assert!(matches!(exit, DbtExit::Halted { .. }));
    let whole = run_interp(image.code(), image.data(), image.entry_offset(), 20_000_000);
    assert_eq!(whole.exit, exit);
    assert_eq!(whole.output, m.cpu.take_output());
    assert_eq!(whole.insts, m.cpu.stats().insts);
    assert_eq!(whole.cycles, m.cpu.stats().cycles);
    assert_eq!(whole.traps, m.cpu.stats().traps);
    assert_eq!(whole.stats.chains, dbt.stats().chains);
    assert_eq!(whole.stats.dispatches, dbt.stats().dispatches);
    assert_eq!(whole.stats.dispatch_ic_hits, dbt.stats().dispatch_ic_hits);
}

#[test]
fn self_modifying_code_identical() {
    // SMC invalidation nukes native code; results must still match the
    // interpreter's flush-and-retranslate path exactly.
    let target_patch = Inst::Out { src: Reg::R1 };
    let patch_words = i64::from_le_bytes(target_patch.encode());
    let mut asm = cfed_asm::Asm::new();
    let pool = asm.data_u64(&[patch_words as u64]);
    asm.label("start");
    asm.movri(Reg::R0, 1);
    asm.movri(Reg::R1, 2);
    asm.call("victim");
    asm.mov_addr(Reg::R2, pool);
    asm.ld(Reg::R3, Reg::R2, 0);
    asm.mov_label(Reg::R4, "victim");
    asm.st(Reg::R4, Reg::R3, 0);
    asm.call("victim");
    asm.halt();
    asm.label("victim");
    asm.out(Reg::R0);
    asm.ret();
    let image = asm.assemble("start").unwrap();
    let n = run_native(image.code(), image.data(), image.entry_offset(), 1_000_000);
    assert_eq!(n.output, vec![1, 2]);
    assert!(n.stats.smc_flushes >= 1, "SMC must trigger a flush");
    check_identical(image.code(), image.data(), image.entry_offset(), 1_000_000);
}

#[test]
fn smc_store_demotes_installed_trace() {
    // Tier-demotion path: a hot self-loop promotes to a trace, then an SMC
    // store lands inside the guest range the trace covers. The flush must
    // demote the trace (tier-1 fallback + retranslation), the re-armed
    // counter may re-promote the patched loop, and the whole run must stay
    // guest-identical to a never-tiered interpreter run of the same image.
    #[derive(Debug)]
    struct AcceptAll;
    impl cfed_dbt::TraceVerifier for AcceptAll {
        fn verify(&self, _plan: &cfed_dbt::TracePlan) -> Result<(), String> {
            Ok(())
        }
    }

    // Replacement for the patch site: `acc += 2` instead of `acc += i`.
    let patch = Inst::AluI { op: AluOp::Add, dst: Reg::R5, imm: 2 };
    let mut asm = cfed_asm::Asm::new();
    let pool = asm.data_u64(&[u64::from_le_bytes(patch.encode())]);
    asm.label("start");
    asm.call("hotfn");
    asm.mov_addr(Reg::R2, pool);
    asm.ld(Reg::R3, Reg::R2, 0);
    asm.mov_label(Reg::R4, "patchsite");
    asm.st(Reg::R4, Reg::R3, 0); // SMC store into the traced page
    asm.call("hotfn");
    asm.halt();
    asm.label("hotfn");
    asm.movri(Reg::R0, 0);
    asm.movri(Reg::R5, 0);
    asm.label("body");
    asm.label("patchsite");
    asm.alu(AluOp::Add, Reg::R5, Reg::R0);
    asm.alui(AluOp::Add, Reg::R0, 1);
    asm.cmpi(Reg::R0, 200);
    asm.jcc(Cond::L, "body");
    asm.out(Reg::R5);
    asm.ret();
    let image = asm.assemble("start").unwrap();

    let run_tiered = |native: bool| {
        let config = cfed_dbt::TierConfig::new(std::sync::Arc::new(AcceptAll)).with_threshold(16);
        let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
        let mut dbt = NativeDbt::with_options(
            Box::new(NullInstrumenter),
            UpdateStyle::Jcc,
            &mut m,
            native,
            Some(config),
        );
        let exit = dbt.run(&mut m, 1_000_000);
        (exit, m.cpu.take_output(), m.cpu.stats().insts, m.cpu.stats().cycles, dbt.stats())
    };

    let fused = run_tiered(false);
    let (exit, output, _, _, stats) = &fused;
    // First call sums 0..200 = 19900; patched second call adds 2 per
    // iteration = 400 — proof the retranslation picked up the new bytes.
    assert!(matches!(exit, DbtExit::Halted { .. }));
    assert_eq!(*output, vec![19_900, 400]);
    assert!(stats.traces >= 1, "hot loop must promote before the patch: {stats:?}");
    assert!(stats.smc_flushes >= 1, "the patch store must flush: {stats:?}");
    assert!(stats.trace_demotions >= 1, "the flush must demote the trace: {stats:?}");

    if cfed_dbt::native_enabled() {
        let native = run_tiered(true);
        assert_eq!(fused, native, "tiered fused and native must agree through demotion");
    }

    // Guest-observable equivalence against a never-tiered run.
    let plain = run_interp(image.code(), image.data(), image.entry_offset(), 1_000_000);
    assert_eq!(plain.exit, fused.0);
    assert_eq!(plain.output, fused.1);
}

#[test]
fn spin_loop_budget_sweep() {
    let code = encode_all(&[Inst::Jmp { offset: -8 }]);
    for budget in [0u64, 1, 7, 4096, 9999, 50_000] {
        check_identical(&code, &[], 0, budget);
    }
}

#[test]
fn misaligned_indirect_target_identical() {
    let code =
        encode_all(&[Inst::MovRI { dst: Reg::R1, imm: 0x1_0004 }, Inst::JmpR { target: Reg::R1 }]);
    check_identical(&code, &[], 0, 1000);
}

#[test]
fn wild_jump_to_data_identical() {
    // Category F coverage survives native execution: the jump's target is
    // vetted by the translator either way.
    let code = encode_all(&[Inst::Jmp { offset: 0x1F_0000 }]);
    check_identical(&code, &[], 0, 1000);
}

#[test]
fn cond_branch_matrix_identical() {
    // Signed/unsigned comparisons in both directions stress every flag the
    // native ALU capture sequences produce.
    check_src(
        r#"
        fn main() {
            let a = 0 - 5;
            let b = 3;
            out(a < b);
            out(a > b);
            out(a <= a);
            out(b >= b);
            out(a == a);
            out(a != b);
            let i = 0;
            let acc = 0;
            while (i < 64) {
                if ((1 << i) > (1 << (63 - i))) { acc = acc + 1; }
                i = i + 1;
            }
            out(acc);
        }
        "#,
    );
}

#[test]
fn no_native_fallback_is_equivalent() {
    // `with_native(false)` must behave exactly like the plain engine (this
    // is the CFED_NO_NATIVE path without the environment dependency).
    let image = compile("fn main() { let i = 0; while (i < 100) { i = i + 1; } out(i); }").unwrap();
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt =
        NativeDbt::with_native(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m, false);
    assert!(!dbt.is_native());
    let exit = dbt.run(&mut m, 1_000_000);
    let i = run_interp(image.code(), image.data(), image.entry_offset(), 1_000_000);
    assert_eq!(exit, i.exit);
    assert_eq!(m.cpu.take_output(), i.output);
    assert_eq!(m.cpu.stats().insts, i.insts);
    assert_eq!(m.cpu.stats().cycles, i.cycles);
}

#[test]
fn cmov_parity() {
    let code = encode_all(&[
        Inst::MovRI { dst: Reg::R0, imm: 10 },
        Inst::MovRI { dst: Reg::R1, imm: 20 },
        Inst::AluI { op: AluOp::Cmp, dst: Reg::R0, imm: 10 },
        Inst::CMov { cc: Cond::E, dst: Reg::R2, src: Reg::R1 },
        Inst::CMov { cc: Cond::Ne, dst: Reg::R3, src: Reg::R0 },
        Inst::Out { src: Reg::R2 },
        Inst::Out { src: Reg::R3 },
        Inst::Jcc { cc: Cond::E, offset: 8 },
        Inst::Out { src: Reg::R0 },
        Inst::Halt,
    ]);
    check_identical(&code, &[], 0, 1000);
}
