//! Tier-2 engine tests: promotion, rejection, demotion, and equivalence
//! against never-tiered runs. The placement verifier proper lives in
//! cfed-core; here test verifiers (accept-all / reject-all) isolate the
//! engine mechanics.

use cfed_dbt::ir::{TracePlan, TraceVerifier};
use cfed_dbt::{Dbt, DbtExit, NativeDbt, NullInstrumenter, TierConfig, UpdateStyle};
use cfed_lang::compile;
use cfed_sim::Machine;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct AcceptAll {
    seen: AtomicUsize,
}

impl TraceVerifier for AcceptAll {
    fn verify(&self, _plan: &TracePlan) -> Result<(), String> {
        self.seen.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[derive(Debug)]
struct RejectAll;

impl TraceVerifier for RejectAll {
    fn verify(&self, _plan: &TracePlan) -> Result<(), String> {
        Err("rejected by test verifier".into())
    }
}

const HOT_LOOP: &str = r#"
    fn main() {
        let i = 0;
        let acc = 0;
        while (i < 2000) {
            acc = acc + i;
            i = i + 1;
        }
        out(acc);
    }
"#;

fn run_tiered(
    src: &str,
    config: Option<TierConfig>,
    max_insts: u64,
) -> (DbtExit, Vec<u64>, cfed_dbt::DbtStats) {
    let image = compile(src).unwrap();
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = match config {
        Some(c) => Dbt::new_tiered(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m, c),
        None => Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m),
    };
    let exit = dbt.run(&mut m, max_insts);
    (exit, m.cpu.take_output(), dbt.stats())
}

#[test]
fn hot_loop_promotes_to_trace() {
    let verifier = Arc::new(AcceptAll::default());
    let config = TierConfig::new(verifier.clone()).with_threshold(16);
    let (exit, out, stats) = run_tiered(HOT_LOOP, Some(config), 1_000_000);
    assert_eq!(exit, DbtExit::Halted { code: 0 });
    assert_eq!(out, vec![1_999_000]);
    assert!(stats.traces >= 1, "hot loop must promote: {stats:?}");
    assert!(verifier.seen.load(Ordering::Relaxed) >= 1, "verifier must be consulted");
}

#[test]
fn rejected_plans_stay_on_tier_1() {
    let config = TierConfig::new(Arc::new(RejectAll)).with_threshold(16);
    let (exit, out, stats) = run_tiered(HOT_LOOP, Some(config), 1_000_000);
    assert_eq!(exit, DbtExit::Halted { code: 0 });
    assert_eq!(out, vec![1_999_000]);
    assert_eq!(stats.traces, 0);
    assert!(stats.trace_rejected >= 1, "rejections must be counted: {stats:?}");
}

#[test]
fn tiered_run_is_guest_equivalent_to_plain() {
    let config = TierConfig::new(Arc::new(AcceptAll::default())).with_threshold(8);
    let (exit_t, out_t, stats_t) = run_tiered(HOT_LOOP, Some(config), 1_000_000);
    let (exit_p, out_p, stats_p) = run_tiered(HOT_LOOP, None, 1_000_000);
    assert_eq!(exit_t, exit_p);
    assert_eq!(out_t, out_p);
    assert!(stats_t.traces >= 1);
    assert_eq!(stats_p.traces, 0, "plain engine must never trace");
}

const MULTI_BLOCK_LOOP: &str = r#"
    fn main() {
        let i = 0;
        let acc = 0;
        while (i < 2000) {
            // Always-taken branch: the loop is several blocks, and the
            // trace follows the hot path straight through them.
            if (i >= 0) { acc = acc + i; } else { acc = 0 - acc; }
            i = i + 1;
        }
        out(acc);
    }
"#;

#[test]
fn trace_reduces_retired_instructions() {
    // A multi-block loop trace runs straight-line where tier-1 pays a
    // chain jump per merged block edge (plus, in a tiered engine, the
    // countdown prologue per block entry).
    let image = compile(MULTI_BLOCK_LOOP).unwrap();
    let count = |config: Option<TierConfig>| {
        let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
        let mut dbt = match config {
            Some(c) => Dbt::new_tiered(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m, c),
            None => Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m),
        };
        assert_eq!(dbt.run(&mut m, 1_000_000), DbtExit::Halted { code: 0 });
        m.cpu.stats().insts
    };
    let tiered = count(Some(TierConfig::new(Arc::new(AcceptAll::default())).with_threshold(8)));
    let plain = count(None);
    assert!(tiered < plain, "trace tier must retire fewer instructions ({tiered} vs {plain})");
}

#[test]
fn tiered_fused_and_native_agree_exactly() {
    let image = compile(HOT_LOOP).unwrap();
    let run = |native: bool| {
        let config = TierConfig::new(Arc::new(AcceptAll::default())).with_threshold(8);
        let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
        let mut dbt = NativeDbt::with_options(
            Box::new(NullInstrumenter),
            UpdateStyle::Jcc,
            &mut m,
            native,
            Some(config),
        );
        let exit = dbt.run(&mut m, 1_000_000);
        (exit, m.cpu.take_output(), m.cpu.stats().cycles, m.cpu.stats().insts, dbt.stats())
    };
    let fused = run(false);
    if !cfed_dbt::native_enabled() {
        assert!(fused.4.traces >= 1);
        return; // native unavailable: nothing to compare against
    }
    let native = run(true);
    assert_eq!(fused, native, "tiered fused and native runs must be bit-identical");
    assert!(fused.4.traces >= 1);
}

#[test]
fn tier_counters_do_not_leak_into_plain_engines() {
    // A plain engine and the seed layout must match: the counter region is
    // only carved out when the engine is constructed tiered.
    let image = compile("fn main() { out(7); }").unwrap();
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    assert!(!dbt.is_tiered());
    assert_eq!(dbt.run(&mut m, 10_000), DbtExit::Halted { code: 0 });
    assert_eq!(m.cpu.take_output(), vec![7]);
}

#[test]
fn threshold_one_promotes_immediately() {
    let config = TierConfig::new(Arc::new(AcceptAll::default())).with_threshold(1);
    let (exit, out, stats) = run_tiered(HOT_LOOP, Some(config), 1_000_000);
    assert_eq!(exit, DbtExit::Halted { code: 0 });
    assert_eq!(out, vec![1_999_000]);
    assert!(stats.traces >= 1);
}
