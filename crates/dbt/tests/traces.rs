//! Tests for the backend trace-formation option (jump inlining).

use cfed_dbt::{Dbt, DbtExit, NullInstrumenter, UpdateStyle};
use cfed_lang::compile;
use cfed_sim::Machine;

fn run(src: &str, inline: bool) -> (DbtExit, Vec<u64>, u64, cfed_dbt::DbtStats) {
    let image = compile(src).unwrap();
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    dbt.set_inline_jumps(inline);
    let exit = dbt.run(&mut m, 50_000_000);
    (exit, m.cpu.take_output(), m.cpu.stats().cycles, dbt.stats())
}

const PROGRAM: &str = r#"
    fn classify(x) {
        // if/else chains produce join-point jumps that traces can elide.
        let r = 0;
        if (x % 4 == 0) { r = 1; } else { r = 2; }
        if (x % 3 == 0) { r = r + 10; } else { r = r + 20; }
        if (x % 5 == 0) { r = r + 100; } else { r = r + 200; }
        return r;
    }
    fn main() {
        let i = 0;
        let acc = 0;
        while (i < 500) { acc = acc + classify(i); i = i + 1; }
        out(acc);
    }
"#;

#[test]
fn inlining_preserves_behaviour() {
    let (exit_a, out_a, _, _) = run(PROGRAM, false);
    let (exit_b, out_b, _, stats) = run(PROGRAM, true);
    assert_eq!(exit_a, exit_b);
    assert_eq!(out_a, out_b);
    assert!(stats.inlined_jumps > 0, "the if/else joins must be inlined");
}

#[test]
fn inlining_reduces_cycles() {
    let (_, _, cycles_off, _) = run(PROGRAM, false);
    let (_, _, cycles_on, _) = run(PROGRAM, true);
    assert!(
        cycles_on < cycles_off,
        "trace formation should save cycles: {cycles_on} vs {cycles_off}"
    );
}

#[test]
fn inlining_disabled_by_default() {
    let (_, _, _, stats) = run(PROGRAM, false);
    assert_eq!(stats.inlined_jumps, 0);
}

#[test]
fn self_loop_jumps_are_not_inlined() {
    // A tight `while(1)`-style loop ends with a jmp back to its own start;
    // inlining must refuse the cycle and still terminate translation.
    let src = r#"
        fn main() {
            let i = 0;
            while (i < 100000) { i = i + 3; }
            out(i);
        }
    "#;
    let (exit, out, _, _) = run(src, true);
    assert!(matches!(exit, DbtExit::Halted { .. }));
    assert_eq!(out, vec![100002]);
}

#[test]
fn trace_blocks_report_total_guest_coverage() {
    // A trace's guest_len sums its (possibly discontiguous) segments.
    let image = compile(PROGRAM).unwrap();
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    dbt.set_inline_jumps(true);
    let _ = dbt.run(&mut m, 50_000_000);
    for b in dbt.blocks() {
        assert!(b.guest_len >= 8, "block at {:#x} has empty coverage", b.guest_start);
        assert!(b.cache_end > b.cache_start);
    }
}
