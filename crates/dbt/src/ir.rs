//! SSA-lite trace IR for the tier-2 optimizing translator.
//!
//! A trace is a straight-line instruction sequence stitched from chained
//! direct-branch blocks, with *side exits* back to tier-1 translations on the
//! not-followed branch directions. Before emission the sequence runs through
//! a small pass pipeline:
//!
//! 1. **Signature coalescing** — adjacent shadow-PC adjustments fold into
//!    one `lea` (interior `+S`/`-S` pairs from merged block boundaries cancel
//!    to nothing);
//! 2. **`lea`-chain folding** — adjacent guest `lea` instructions that feed
//!    the same register fold their displacements at translation time;
//! 3. **Dead-flag elimination** — a `cmp`/`test` whose flags are overwritten
//!    before any reader (and before any point where architectural flags can
//!    escape the trace) is dropped;
//! 4. **Check hoisting** — redundant signature checks collapse into the one
//!    at the trace head, mirroring the paper's ALLBB→END policy spectrum
//!    (§6): checks may legally move as long as the `GEN_SIG`/`CHECK_SIG`
//!    conditions still hold.
//!
//! The optimized sequence is *not trusted*: the engine hands the final
//! [`TracePlan`] to a [`TraceVerifier`] (implemented in `cfed-core` against
//! the signature algebra) and installs the trace only on `Ok`.

use cfed_isa::{AluOp, Cond, Inst, Reg};

/// How a technique's signature state composes across a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSig {
    /// No signature state at all (the uninstrumented baseline): traces must
    /// carry no signature ops and all exit adjustments are zero.
    Untracked,
    /// A single additive shadow register `PC'`: block heads subtract the
    /// block signature, edges add the successor signature, and a check is
    /// `PC' != 0 → report`. Once wrong, `PC'` stays wrong through any run of
    /// additive updates, so dropping interior checks preserves detection.
    PcPrimeAdditive,
}

/// One operation of a planned trace, in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A guest instruction copied 1:1 (possibly the result of folding).
    Guest {
        /// Guest address the cache copy maps back to (SMC recovery).
        guest_addr: u64,
        /// The instruction as emitted.
        inst: Inst,
    },
    /// `PC' += delta` (emitted as a flag-free `lea`).
    SigAdd {
        /// Signed adjustment applied to the shadow PC.
        delta: i64,
    },
    /// Signature check: `PC' != 0` branches to the shared report-error stub.
    Check,
    /// A conditional exit to a tier-1 block: if `branch` is taken, control
    /// leaves the trace to guest `target` with `PC' += adjust` applied on
    /// the exit path.
    SideExit {
        /// The branch condition, already inverted so that *taken* exits.
        branch: SideBranch,
        /// Guest address execution continues at after the exit.
        target: u64,
        /// Shadow-PC adjustment applied on the exit path.
        adjust: i64,
    },
    /// Unconditional trace end: exit to guest `target` with `PC' += adjust`.
    Exit {
        /// Guest address execution continues at.
        target: u64,
        /// Shadow-PC adjustment applied before leaving.
        adjust: i64,
    },
    /// Back edge to the trace head (`target == trace entry`), with
    /// `PC' += adjust` restoring the entry invariant.
    Loop {
        /// Shadow-PC adjustment applied before looping.
        adjust: i64,
    },
}

/// The branch form of a [`TraceOp::SideExit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideBranch {
    /// Flag-conditional (`jcc`).
    Cc(Cond),
    /// Register-zero (`jrz`).
    Rz(Reg),
    /// Register-nonzero (`jrnz`).
    Rnz(Reg),
}

/// The complete, post-pass description of a trace, handed to the verifier
/// before anything is installed. `ops` is exactly the sequence the emitter
/// will lower — the verifier sees what will run, not what was intended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracePlan {
    /// Guest address of the trace entry block (= its signature).
    pub entry_sig: u64,
    /// Signature composition model of the instrumenter.
    pub sig: TraceSig,
    /// Whether any merged block's check policy requested a signature check;
    /// if so the optimized trace must retain at least a head check.
    pub any_check_wanted: bool,
    /// The operations, in emission order, ending with `Exit` or `Loop`.
    pub ops: Vec<TraceOp>,
}

/// Mechanical re-verification of a [`TracePlan`] against the technique's
/// `GEN_SIG`/`CHECK_SIG` conditions. Implemented in `cfed-core`
/// (`PlacementVerifier`); the engine rejects the trace (staying on tier-1)
/// whenever `verify` errs.
pub trait TraceVerifier: Send + Sync {
    /// Returns `Err` with a human-readable reason when the plan violates the
    /// placement conditions.
    fn verify(&self, plan: &TracePlan) -> Result<(), String>;
}

/// Flag-only writers with no other architectural effect.
fn is_flag_only(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Alu { op: AluOp::Cmp | AluOp::Test, .. }
            | Inst::AluI { op: AluOp::Cmp | AluOp::Test, .. }
    )
}

/// Instructions that can fault mid-trace and surface architectural state
/// (memory ops, division). Flags must be architecturally correct at any such
/// point, so they act as barriers for dead-flag elimination.
fn may_trap(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Ld { .. }
            | Inst::St { .. }
            | Inst::Ld8 { .. }
            | Inst::St8 { .. }
            | Inst::Push { .. }
            | Inst::Pop { .. }
            | Inst::Alu { op: AluOp::Div, .. }
            | Inst::AluI { op: AluOp::Div, .. }
            | Inst::Trap { .. }
    )
}

/// Pass 1: folds adjacent [`TraceOp::SigAdd`] runs into one and drops
/// zero-delta adjustments. Interior `+S`/`-S` pairs from merged block
/// boundaries cancel here, which is the "redundant signature-update
/// coalescing" of the tier-2 pipeline.
pub fn coalesce_sig_updates(ops: Vec<TraceOp>) -> Vec<TraceOp> {
    let mut out: Vec<TraceOp> = Vec::with_capacity(ops.len());
    for op in ops {
        match (out.last_mut(), op) {
            (Some(TraceOp::SigAdd { delta: prev }), TraceOp::SigAdd { delta }) => {
                *prev += delta;
                if *prev == 0 {
                    out.pop();
                }
            }
            (_, TraceOp::SigAdd { delta: 0 }) => {}
            (_, op) => out.push(op),
        }
    }
    out
}

/// Pass 2: folds adjacent guest `lea` instructions `dst = base + d1;
/// dst = dst + d2` into `dst = base + (d1 + d2)` when the displacement sum
/// still fits. `lea` is flag-free, so the fold is architecturally exact; the
/// folded cache instruction maps back to the *first* guest address (only
/// stores need the SMC map, and stores are never folded).
pub fn fold_lea_chains(ops: Vec<TraceOp>) -> Vec<TraceOp> {
    let mut out: Vec<TraceOp> = Vec::with_capacity(ops.len());
    for op in ops {
        if let (
            Some(TraceOp::Guest { inst: Inst::Lea { dst: d1, base: b1, disp: x }, guest_addr }),
            TraceOp::Guest { inst: Inst::Lea { dst: d2, base: b2, disp: y }, .. },
        ) = (out.last().copied(), op)
        {
            if d2 == d1 && b2 == d1 {
                if let Some(disp) = x.checked_add(y) {
                    *out.last_mut().expect("just inspected") =
                        TraceOp::Guest { guest_addr, inst: Inst::Lea { dst: d1, base: b1, disp } };
                    continue;
                }
            }
        }
        out.push(op);
    }
    out
}

/// Pass 3: removes a flag-only writer (`cmp`/`test`) whose flags are
/// provably dead — another flag writer follows before any flag reader,
/// before any instruction that can fault (architectural state escapes at
/// faults), and before any trace exit (tier-1 code after an exit may read
/// flags).
pub fn eliminate_dead_flags(ops: Vec<TraceOp>) -> Vec<TraceOp> {
    let dead = |rest: &[TraceOp]| -> bool {
        for op in rest {
            match op {
                TraceOp::Guest { inst, .. } => {
                    if inst.reads_flags() || may_trap(inst) {
                        return false;
                    }
                    if inst.writes_flags() {
                        return true;
                    }
                }
                TraceOp::SigAdd { .. } | TraceOp::Check => {}
                TraceOp::SideExit { .. } | TraceOp::Exit { .. } | TraceOp::Loop { .. } => {
                    return false;
                }
            }
        }
        false
    };
    let mut out = Vec::with_capacity(ops.len());
    for i in 0..ops.len() {
        if let TraceOp::Guest { inst, .. } = &ops[i] {
            if is_flag_only(inst) && dead(&ops[i + 1..]) {
                continue;
            }
        }
        out.push(ops[i]);
    }
    out
}

/// Pass 4: check hoisting. Under an additive signature, every interior check
/// verifies the same invariant as the head check ("once wrong, always
/// wrong"), so all checks collapse into a single one placed immediately
/// after the head adjustment — the earliest point where the invariant
/// `PC' == 0` holds. Traces whose blocks wanted no check stay check-free.
pub fn hoist_checks(ops: Vec<TraceOp>) -> Vec<TraceOp> {
    if !ops.iter().any(|op| matches!(op, TraceOp::Check)) {
        return ops;
    }
    let mut out: Vec<TraceOp> = Vec::with_capacity(ops.len());
    let mut placed = false;
    for op in ops {
        match op {
            TraceOp::Check => {}
            other => {
                if !placed && !matches!(other, TraceOp::SigAdd { .. }) {
                    out.push(TraceOp::Check);
                    placed = true;
                }
                out.push(other);
            }
        }
    }
    if !placed {
        out.push(TraceOp::Check);
    }
    out
}

/// Runs the full pass pipeline in order.
pub fn optimize(ops: Vec<TraceOp>) -> Vec<TraceOp> {
    hoist_checks(eliminate_dead_flags(fold_lea_chains(coalesce_sig_updates(ops))))
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: i64 = 0x1_0000;
    const S1: i64 = 0x1_0040;

    fn guest(addr: u64, inst: Inst) -> TraceOp {
        TraceOp::Guest { guest_addr: addr, inst }
    }

    #[test]
    fn coalesce_cancels_interior_pairs() {
        let ops = vec![
            TraceOp::SigAdd { delta: -S0 },
            TraceOp::Check,
            guest(0x1_0000, Inst::Nop),
            TraceOp::SigAdd { delta: S1 },
            TraceOp::SigAdd { delta: -S1 },
            TraceOp::Check,
            guest(0x1_0040, Inst::Nop),
            TraceOp::Exit { target: 0x1_0080, adjust: 0x1_0080 },
        ];
        let out = coalesce_sig_updates(ops);
        let adds: Vec<i64> = out
            .iter()
            .filter_map(|op| match op {
                TraceOp::SigAdd { delta } => Some(*delta),
                _ => None,
            })
            .collect();
        assert_eq!(adds, vec![-S0], "interior +S/-S pair must cancel");
    }

    #[test]
    fn coalesce_merges_runs() {
        let ops = vec![
            TraceOp::SigAdd { delta: 8 },
            TraceOp::SigAdd { delta: -3 },
            TraceOp::SigAdd { delta: 1 },
            TraceOp::Exit { target: 0, adjust: 0 },
        ];
        let out = coalesce_sig_updates(ops);
        assert_eq!(out, vec![TraceOp::SigAdd { delta: 6 }, TraceOp::Exit { target: 0, adjust: 0 }]);
    }

    #[test]
    fn lea_chain_folds_pairwise_and_transitively() {
        let r = Reg::R1;
        let b = Reg::R2;
        let ops = vec![
            guest(0x1_0000, Inst::Lea { dst: r, base: b, disp: 4 }),
            guest(0x1_0008, Inst::Lea { dst: r, base: r, disp: 8 }),
            guest(0x1_0010, Inst::Lea { dst: r, base: r, disp: -2 }),
            TraceOp::Exit { target: 0, adjust: 0 },
        ];
        let out = fold_lea_chains(ops);
        assert_eq!(
            out,
            vec![
                guest(0x1_0000, Inst::Lea { dst: r, base: b, disp: 10 }),
                TraceOp::Exit { target: 0, adjust: 0 },
            ]
        );
    }

    #[test]
    fn lea_fold_requires_feeding_same_register() {
        let ops = vec![
            guest(0, Inst::Lea { dst: Reg::R1, base: Reg::R2, disp: 4 }),
            guest(8, Inst::Lea { dst: Reg::R3, base: Reg::R1, disp: 8 }),
            TraceOp::Exit { target: 0, adjust: 0 },
        ];
        assert_eq!(fold_lea_chains(ops.clone()), ops, "dst mismatch must not fold");
    }

    #[test]
    fn lea_fold_rejects_displacement_overflow() {
        let ops = vec![
            guest(0, Inst::Lea { dst: Reg::R1, base: Reg::R1, disp: i32::MAX }),
            guest(8, Inst::Lea { dst: Reg::R1, base: Reg::R1, disp: 1 }),
            TraceOp::Exit { target: 0, adjust: 0 },
        ];
        assert_eq!(fold_lea_chains(ops.clone()), ops);
    }

    #[test]
    fn dead_cmp_eliminated_when_overwritten() {
        let cmp = Inst::AluI { op: AluOp::Cmp, dst: Reg::R0, imm: 1 };
        let add = Inst::AluI { op: AluOp::Add, dst: Reg::R1, imm: 2 };
        let ops = vec![guest(0, cmp), guest(8, add), TraceOp::Exit { target: 0, adjust: 0 }];
        let out = eliminate_dead_flags(ops);
        assert_eq!(out, vec![guest(8, add), TraceOp::Exit { target: 0, adjust: 0 }]);
    }

    #[test]
    fn live_cmp_kept_before_flag_reader_or_exit() {
        let cmp = Inst::AluI { op: AluOp::Cmp, dst: Reg::R0, imm: 1 };
        // Read by a side exit's jcc: must stay.
        let ops = vec![
            guest(0, cmp),
            TraceOp::SideExit { branch: SideBranch::Cc(Cond::E), target: 64, adjust: 64 },
            guest(8, Inst::AluI { op: AluOp::Add, dst: Reg::R1, imm: 2 }),
            TraceOp::Exit { target: 0, adjust: 0 },
        ];
        assert_eq!(eliminate_dead_flags(ops.clone()), ops);
        // Flags escape at the trace end even with no reader in between.
        let tail = vec![guest(0, cmp), TraceOp::Exit { target: 0, adjust: 0 }];
        assert_eq!(eliminate_dead_flags(tail.clone()), tail);
    }

    #[test]
    fn trapping_inst_blocks_flag_elimination() {
        let cmp = Inst::AluI { op: AluOp::Cmp, dst: Reg::R0, imm: 1 };
        let ld = Inst::Ld { dst: Reg::R2, base: Reg::R3, disp: 0 };
        let add = Inst::AluI { op: AluOp::Add, dst: Reg::R1, imm: 2 };
        let ops = vec![
            guest(0, cmp),
            guest(8, ld),
            guest(16, add),
            TraceOp::Exit { target: 0, adjust: 0 },
        ];
        // The load may fault with post-cmp flags architecturally visible.
        assert_eq!(eliminate_dead_flags(ops.clone()), ops);
    }

    #[test]
    fn checks_hoist_to_single_head_check() {
        let ops = vec![
            TraceOp::SigAdd { delta: -S0 },
            TraceOp::Check,
            guest(0x1_0000, Inst::Nop),
            TraceOp::Check,
            guest(0x1_0040, Inst::Nop),
            TraceOp::Loop { adjust: S0 },
        ];
        let out = hoist_checks(ops);
        assert_eq!(
            out,
            vec![
                TraceOp::SigAdd { delta: -S0 },
                TraceOp::Check,
                guest(0x1_0000, Inst::Nop),
                guest(0x1_0040, Inst::Nop),
                TraceOp::Loop { adjust: S0 },
            ]
        );
    }

    #[test]
    fn checkless_trace_stays_checkless() {
        let ops = vec![guest(0, Inst::Nop), TraceOp::Exit { target: 8, adjust: 0 }];
        assert_eq!(hoist_checks(ops.clone()), ops);
    }

    #[test]
    fn full_pipeline_on_two_block_loop() {
        // Naive IR for a two-block loop S0 -> S1 -> S0.
        let ops = vec![
            TraceOp::SigAdd { delta: -S0 },
            TraceOp::Check,
            guest(0x1_0000, Inst::Lea { dst: Reg::R1, base: Reg::R1, disp: 1 }),
            guest(0x1_0008, Inst::Lea { dst: Reg::R1, base: Reg::R1, disp: 2 }),
            TraceOp::SideExit {
                branch: SideBranch::Cc(Cond::E),
                target: 0x2_0000,
                adjust: 0x2_0000,
            },
            TraceOp::SigAdd { delta: S1 },
            TraceOp::SigAdd { delta: -S1 },
            TraceOp::Check,
            guest(0x1_0040, Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 }),
            TraceOp::Loop { adjust: S0 },
        ];
        let out = optimize(ops);
        assert_eq!(
            out,
            vec![
                TraceOp::SigAdd { delta: -S0 },
                TraceOp::Check,
                guest(0x1_0000, Inst::Lea { dst: Reg::R1, base: Reg::R1, disp: 3 }),
                TraceOp::SideExit {
                    branch: SideBranch::Cc(Cond::E),
                    target: 0x2_0000,
                    adjust: 0x2_0000
                },
                guest(0x1_0040, Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 }),
                TraceOp::Loop { adjust: S0 },
            ]
        );
    }
}
