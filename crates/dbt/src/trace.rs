//! Tier-2 trace formation: walking hot guest code into a superblock plan.
//!
//! The engine's per-block countdown counters (the `num_hit` /
//! `compile_threshold` shape of classic tiered DBTs) fire a tier-up exit when
//! a block has executed `compile_threshold` times. The walker here then
//! follows chained *direct* branches from that block, choosing the hotter
//! successor at two-way branches (colder remaining countdown = executed more
//! often), and produces a [`TracePlan`] through the [`crate::ir`] pass
//! pipeline. The plan is verified by the technique's placement verifier
//! before anything is emitted; rejection leaves tier-1 untouched.

use crate::instrument::BlockView;
use crate::ir::{self, SideBranch, TraceOp, TracePlan, TraceSig, TraceVerifier};
use cfed_isa::{Inst, INST_SIZE_U64};
use cfed_sim::Memory;
use std::ops::Range;
use std::sync::Arc;

/// Ceiling on merged blocks per trace.
pub const TRACE_MAX_BLOCKS: usize = 8;

/// Ceiling on guest instructions per trace (kept far below the native
/// backend's per-block compile limit so traces always remain compilable).
pub const TRACE_MAX_INSTS: usize = 256;

/// Default per-block execution count before tier-up is attempted.
pub const DEFAULT_COMPILE_THRESHOLD: u32 = 64;

/// Tier-2 configuration, passed at construction to a tiered engine.
#[derive(Clone)]
pub struct TierConfig {
    /// Block executions before trace formation is attempted.
    pub compile_threshold: u32,
    /// Placement verifier consulted before every trace install.
    pub verifier: Arc<dyn TraceVerifier>,
}

impl std::fmt::Debug for TierConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TierConfig")
            .field("compile_threshold", &self.compile_threshold)
            .finish_non_exhaustive()
    }
}

impl TierConfig {
    /// A config with the default threshold and the given verifier.
    pub fn new(verifier: Arc<dyn TraceVerifier>) -> TierConfig {
        TierConfig { compile_threshold: DEFAULT_COMPILE_THRESHOLD, verifier }
    }

    /// Overrides the compile threshold (tests and fuzzing use small values
    /// to force tier-up mid-run).
    pub fn with_threshold(mut self, threshold: u32) -> TierConfig {
        self.compile_threshold = threshold.max(1);
        self
    }
}

/// Whether the trace tier is enabled for this process: set `CFED_NO_TIER=1`
/// to force harnesses that would construct tiered engines to stay on tier-1
/// (mirrors `CFED_NO_NATIVE` for the native backend). Guest-observable
/// behavior is identical either way; only performance differs.
pub fn tier_enabled() -> bool {
    match std::env::var("CFED_NO_TIER") {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    }
}

/// A walked trace: the verified-plan input plus the guest ranges it covers
/// (for page protection and SMC demotion).
#[derive(Debug, Clone)]
pub(crate) struct TraceCandidate {
    pub(crate) plan: TracePlan,
    /// Guest address ranges of the merged blocks (one per block).
    pub(crate) ranges: Vec<Range<u64>>,
}

/// One decoded block during the walk.
struct WalkBlock {
    start: u64,
    insts: Vec<(u64, Inst)>,
    /// `(side-exit branch, exit target)` for two-way terminators whose other
    /// direction the trace follows; `None` for unconditional terminators.
    side: Option<(SideBranch, u64)>,
    /// Whether the terminator is a loop back edge (check-policy input).
    has_back_edge: bool,
    /// One past the terminator (guest bytes covered by this block).
    end: u64,
}

/// How the final trace transfers control.
enum Closure {
    /// Back edge to the trace entry.
    Loop,
    /// Exit to a guest target outside the trace.
    Exit(u64),
}

/// Walks a trace from `entry`, builds the naive signature-faithful IR,
/// optimizes it, and returns the candidate — or `None` when no profitable
/// trace exists (fewer than two merged blocks, or the entry block does not
/// end in a direct branch).
///
/// `hotness` reports the remaining countdown of a block's tier-up counter
/// (lower = executed more often); `None` for blocks without counters. It is
/// derived from guest-memory counter slots, so fused-interpreter and native
/// runs observe identical values and form identical traces.
pub(crate) fn plan_trace(
    mem: &Memory,
    guest_code: &Range<u64>,
    entry: u64,
    sig: TraceSig,
    wants_check: impl Fn(&BlockView) -> bool,
    hotness: impl Fn(u64) -> Option<u64>,
) -> Option<TraceCandidate> {
    let valid = |addr: u64| addr.is_multiple_of(INST_SIZE_U64) && guest_code.contains(&addr);
    if !valid(entry) {
        return None;
    }

    // ---- phase A: walk and decode ----
    let mut blocks: Vec<WalkBlock> = Vec::new();
    let mut visited: Vec<u64> = Vec::new();
    let mut total_insts = 0usize;
    let mut cur = entry;
    let closure = loop {
        if blocks.len() == TRACE_MAX_BLOCKS {
            break Closure::Exit(cur);
        }
        let Some(DecodedBlock { body: insts, term, term_addr: taddr }) =
            decode_block(mem, guest_code, cur)
        else {
            if blocks.is_empty() {
                return None;
            }
            break Closure::Exit(cur);
        };
        if total_insts + insts.len() + 1 > TRACE_MAX_INSTS {
            if blocks.is_empty() {
                return None;
            }
            break Closure::Exit(cur);
        }
        // Only direct-branch terminators extend a trace; anything else
        // (indirect, call, ret, halt, trap) ends it before this block.
        let (followed, side, back_edge) = match term {
            Inst::Jmp { .. } => {
                let t = term.direct_target(taddr).expect("direct");
                (t, None, t <= taddr)
            }
            Inst::Jcc { .. } | Inst::JRz { .. } | Inst::JRnz { .. } => {
                let taken = term.direct_target(taddr).expect("direct");
                let fall = taddr + INST_SIZE_U64;
                if taken == fall {
                    (fall, None, false)
                } else {
                    let follow_taken = if taken == entry {
                        true
                    } else if fall == entry {
                        false
                    } else {
                        match (hotness(taken), hotness(fall)) {
                            (Some(a), Some(b)) if a != b => a < b,
                            _ => taken <= taddr, // static heuristic: follow back edges
                        }
                    };
                    let (followed, exit_to) =
                        if follow_taken { (taken, fall) } else { (fall, taken) };
                    // The side branch exits the trace, so its sense is
                    // "leave": inverted when the trace follows the taken arm.
                    let branch = match (term, follow_taken) {
                        (Inst::Jcc { .. }, false) => SideBranch::Cc(cc_of(&term)),
                        (Inst::Jcc { .. }, true) => SideBranch::Cc(cc_of(&term).negated()),
                        (Inst::JRz { src, .. }, false) => SideBranch::Rz(src),
                        (Inst::JRz { src, .. }, true) => SideBranch::Rnz(src),
                        (Inst::JRnz { src, .. }, false) => SideBranch::Rnz(src),
                        (Inst::JRnz { src, .. }, true) => SideBranch::Rz(src),
                        _ => unreachable!(),
                    };
                    (followed, Some((branch, exit_to)), taken <= taddr)
                }
            }
            _ => {
                if blocks.is_empty() {
                    return None;
                }
                break Closure::Exit(cur);
            }
        };
        visited.push(cur);
        total_insts += insts.len() + 1;
        blocks.push(WalkBlock {
            start: cur,
            insts,
            side,
            has_back_edge: back_edge,
            end: taddr + INST_SIZE_U64,
        });
        if followed == entry {
            break Closure::Loop;
        }
        if !valid(followed) || visited.contains(&followed) {
            break Closure::Exit(followed);
        }
        cur = followed;
    };
    // Profitability: a loop-closing trace always pays for itself (the back
    // edge elides the per-entry countdown prologue and chain dispatch every
    // iteration — including the common single-block self-loop); a trace that
    // merely exits must merge at least two blocks to beat tier-1 chaining.
    match closure {
        Closure::Loop => {}
        Closure::Exit(_) if blocks.len() < 2 => return None,
        Closure::Exit(_) => {}
    }

    // ---- phase B: naive IR, faithful to tier-1 placement ----
    let additive = sig == TraceSig::PcPrimeAdditive;
    let adj = |target: u64| if additive { target as i64 } else { 0 };
    let mut ops: Vec<TraceOp> = Vec::new();
    let mut any_check_wanted = false;
    let last = blocks.len() - 1;
    for (i, b) in blocks.iter().enumerate() {
        if additive {
            ops.push(TraceOp::SigAdd { delta: -(b.start as i64) });
        }
        let view = BlockView {
            guest_start: b.start,
            ends_with_ret: false,
            ends_with_halt: false,
            has_back_edge: b.has_back_edge,
        };
        if wants_check(&view) {
            any_check_wanted = true;
            if additive {
                ops.push(TraceOp::Check);
            }
        }
        for &(addr, inst) in &b.insts {
            ops.push(TraceOp::Guest { guest_addr: addr, inst });
        }
        if let Some((branch, exit_to)) = b.side {
            ops.push(TraceOp::SideExit { branch, target: exit_to, adjust: adj(exit_to) });
        }
        if i < last {
            if additive {
                ops.push(TraceOp::SigAdd { delta: blocks[i + 1].start as i64 });
            }
        } else {
            match closure {
                Closure::Loop => ops.push(TraceOp::Loop { adjust: adj(entry) }),
                Closure::Exit(target) => ops.push(TraceOp::Exit { target, adjust: adj(target) }),
            }
        }
    }

    let ops = ir::optimize(ops);
    let ranges = blocks.iter().map(|b| b.start..b.end).collect();
    Some(TraceCandidate {
        plan: TracePlan { entry_sig: entry, sig, any_check_wanted, ops },
        ranges,
    })
}

fn cc_of(inst: &Inst) -> cfed_isa::Cond {
    match inst {
        Inst::Jcc { cc, .. } => *cc,
        _ => unreachable!(),
    }
}

/// A decoded guest block: body instructions, terminator, terminator address.
struct DecodedBlock {
    body: Vec<(u64, Inst)>,
    term: Inst,
    term_addr: u64,
}

/// Decodes the block starting at `addr`: body instructions plus terminator.
/// `None` when decoding runs off the code region, hits an invalid
/// instruction, or finds no terminator within the trace instruction budget
/// (such blocks stay tier-1, where the cases surface as aborts or splits).
fn decode_block(mem: &Memory, guest_code: &Range<u64>, start: u64) -> Option<DecodedBlock> {
    let mut body = Vec::new();
    let mut addr = start;
    loop {
        if !guest_code.contains(&addr) {
            return None;
        }
        let bytes: [u8; 8] = mem.peek(addr, 8).try_into().expect("guest code in range");
        let inst = Inst::decode(&bytes).ok()?;
        if inst.is_terminator() {
            return Some(DecodedBlock { body, term: inst, term_addr: addr });
        }
        body.push((addr, inst));
        addr += INST_SIZE_U64;
        if body.len() > TRACE_MAX_INSTS {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_isa::{encode_all, AluOp, Cond, Reg};
    use cfed_sim::Perms;

    const BASE: u64 = 0x1_0000;

    fn memory_with(code: &[Inst]) -> (Memory, Range<u64>) {
        let mut mem = Memory::new(1 << 20);
        mem.map(0..0x4_0000, Perms::R | Perms::X);
        let bytes = encode_all(code);
        mem.install(BASE, &bytes);
        (mem, BASE..BASE + bytes.len() as u64)
    }

    fn plan(code: &[Inst], sig: TraceSig) -> Option<TraceCandidate> {
        let (mem, range) = memory_with(code);
        plan_trace(&mem, &range, BASE, sig, |_| true, |_| None)
    }

    #[test]
    fn two_block_loop_closes() {
        // S0: r0 -= 1; je EXIT (fall to S1); S1: nop; jmp S0.
        let code = [
            Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 }, // S0 @ +0
            Inst::Jcc { cc: Cond::E, offset: 16 },               // @ +8, taken → EXIT @ +32
            Inst::Nop,                                           // S1 @ +16
            Inst::Jmp { offset: -32 },                           // @ +24, back to S0
            Inst::Halt,                                          // EXIT @ +32
        ];
        let cand = plan(&code, TraceSig::PcPrimeAdditive).expect("trace forms");
        assert_eq!(cand.ranges.len(), 2);
        assert!(matches!(cand.plan.ops.last(), Some(TraceOp::Loop { .. })));
        // The fall-through arm is followed; the taken arm (EXIT) becomes a
        // side exit in the branch's original sense.
        assert!(cand.plan.ops.iter().any(|op| matches!(
            op,
            TraceOp::SideExit { branch: SideBranch::Cc(Cond::E), target, .. }
                if *target == BASE + 32
        )));
    }

    #[test]
    fn single_block_self_loop_forms() {
        // The hot-loop shape `while` lowers to: body+test ending in a
        // taken back edge to itself. One block, but loop-closing — the
        // highest-value trace there is.
        let code = [
            Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 },
            Inst::Jcc { cc: Cond::Ne, offset: -16 }, // self loop
            Inst::Halt,
        ];
        let cand = plan(&code, TraceSig::PcPrimeAdditive).expect("self-loop trace forms");
        assert_eq!(cand.ranges.len(), 1);
        assert!(matches!(cand.plan.ops.last(), Some(TraceOp::Loop { .. })));
        // The not-taken arm (fall to Halt) is the side exit, sense inverted.
        assert!(cand.plan.ops.iter().any(|op| matches!(
            op,
            TraceOp::SideExit { branch: SideBranch::Cc(Cond::E), target, .. }
                if *target == BASE + 16
        )));
    }

    #[test]
    fn single_block_straight_line_rejected() {
        // One block ending in a forward jump that leaves immediately: no
        // loop, nothing merged — stays tier-1.
        let code = [Inst::Nop, Inst::Jmp { offset: 8 }, Inst::Nop, Inst::Ret];
        assert!(plan(&code, TraceSig::PcPrimeAdditive).is_none());
    }

    #[test]
    fn indirect_entry_terminator_rejected() {
        let code = [Inst::Nop, Inst::Ret];
        assert!(plan(&code, TraceSig::PcPrimeAdditive).is_none());
    }

    #[test]
    fn trace_stops_before_indirect_block() {
        // S0 -jmp-> S1 -ret: trace = [S0], too short → rejected.
        let code = [
            Inst::Nop,
            Inst::Jmp { offset: 0 }, // to next inst
            Inst::Ret,
        ];
        assert!(plan(&code, TraceSig::PcPrimeAdditive).is_none());
        // With one more chained block it forms and exits before the ret.
        let code = [
            Inst::Nop,               //
            Inst::Jmp { offset: 0 }, // S0 -> S1
            Inst::Nop,               // S1
            Inst::Jmp { offset: 0 }, // S1 -> S2
            Inst::Ret,               // S2: not merged
        ];
        let cand = plan(&code, TraceSig::PcPrimeAdditive).expect("trace forms");
        assert_eq!(cand.ranges.len(), 2);
        assert!(matches!(
            cand.plan.ops.last(),
            Some(TraceOp::Exit { target, .. }) if *target == BASE + 32
        ));
    }

    #[test]
    fn untracked_sig_has_no_sig_ops() {
        let code = [
            Inst::Nop,
            Inst::Jmp { offset: 0 },
            Inst::Nop,
            Inst::Jmp { offset: -32 }, // back to entry
        ];
        let cand = plan(&code, TraceSig::Untracked).expect("trace forms");
        assert!(cand
            .plan
            .ops
            .iter()
            .all(|op| !matches!(op, TraceOp::SigAdd { .. } | TraceOp::Check)));
        assert!(matches!(cand.plan.ops.last(), Some(TraceOp::Loop { adjust: 0 })));
    }

    #[test]
    fn hotness_steers_two_way_branches() {
        // Conditional where neither arm is the entry: the hotter (lower
        // remaining countdown) arm is followed.
        let code = [
            Inst::Nop,                             // entry @ +0
            Inst::Jcc { cc: Cond::E, offset: 16 }, // @ +8, taken → C @ +32, fall → B
            Inst::Nop,                             // B @ +16
            Inst::Jmp { offset: 16 },              // @ +24, B -> D @ +48
            Inst::Nop,                             // C @ +32
            Inst::Jmp { offset: 0 },               // @ +40, C -> D
            Inst::Halt,                            // D @ +48
        ];
        let (mem, range) = memory_with(&code);
        let taken = BASE + 32;
        let hot = |addr: u64| Some(if addr == taken { 1 } else { 50 });
        let cand = plan_trace(&mem, &range, BASE, TraceSig::PcPrimeAdditive, |_| true, hot)
            .expect("trace forms");
        // Followed the taken arm C; side exit goes to the fall block B.
        assert!(cand.plan.ops.iter().any(|op| matches!(
            op,
            TraceOp::SideExit { target, .. } if *target == BASE + 16
        )));
        assert!(cand.ranges.iter().any(|r| r.start == taken));
    }

    #[test]
    fn head_check_retained_and_interior_dropped() {
        let code = [Inst::Nop, Inst::Jmp { offset: 0 }, Inst::Nop, Inst::Jmp { offset: -32 }];
        let cand = plan(&code, TraceSig::PcPrimeAdditive).expect("trace forms");
        let checks = cand.plan.ops.iter().filter(|op| matches!(op, TraceOp::Check)).count();
        assert_eq!(checks, 1, "ALLBB policy hoists to exactly one head check");
        assert!(cand.plan.any_check_wanted);
        assert_eq!(cand.plan.ops[0], TraceOp::SigAdd { delta: -(BASE as i64) });
        assert_eq!(cand.plan.ops[1], TraceOp::Check);
    }
}
