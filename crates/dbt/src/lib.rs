//! # cfed-dbt — dynamic binary translator
//!
//! A user-level dynamic binary translator over the `cfed-sim` guest machine,
//! reproducing the DBT the paper implements its techniques in (§5):
//! translation on demand (only executed blocks are translated), a code cache
//! in executable pages (so category-F errors are still caught by execute
//! protection), direct block chaining, an indirect-branch dispatcher, and
//! self-modifying-code handling via write protection.
//!
//! Control-flow checking techniques plug in through the [`Instrumenter`]
//! trait, contributing `GEN_SIG`/`CHECK_SIG` code at block heads and before
//! every control transfer; [`NullInstrumenter`] is the uninstrumented
//! baseline used to measure raw DBT overhead.
//!
//! ## Example
//!
//! ```
//! use cfed_dbt::{Dbt, DbtExit, NullInstrumenter, UpdateStyle};
//! use cfed_sim::Machine;
//! use cfed_isa::{encode_all, AluOp, Cond, Inst, Reg};
//!
//! // A loop: r0 = 5; while (--r0 != 0) {}; halt
//! let code = encode_all(&[
//!     Inst::MovRI { dst: Reg::R0, imm: 5 },
//!     Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 },
//!     Inst::Jcc { cc: Cond::Ne, offset: -16 },
//!     Inst::Halt,
//! ]);
//! let mut m = Machine::load(&code, &[], 0);
//! let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
//! assert_eq!(dbt.run(&mut m, 10_000), DbtExit::Halted { code: 0 });
//! assert!(dbt.stats().blocks >= 2);
//! ```

pub mod cache;
pub mod codebuf;
pub mod engine;
pub mod instrument;
pub mod ir;
pub mod native;
pub mod trace;
pub mod x86;

pub use cache::CacheAsm;
pub use engine::{Dbt, DbtExit, DbtStats, DbtStep, TransBlock, DEFAULT_DISPATCH_CYCLES};
pub use instrument::{regs, BlockView, CheckPolicy, Instrumenter, NullInstrumenter, UpdateStyle};
pub use ir::{SideBranch, TraceOp, TracePlan, TraceSig, TraceVerifier};
pub use native::{native_enabled, NativeDbt};
pub use trace::{tier_enabled, TierConfig, DEFAULT_COMPILE_THRESHOLD};
