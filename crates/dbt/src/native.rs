//! Native x86-64 backend: compiles translated cache blocks to host code.
//!
//! The fused interpreter executes cache VISA one instruction at a time; this
//! backend lifts each already-translated [`TransBlock`] 1:1 into host x86-64
//! and runs it directly, keeping every architectural contract bit-identical:
//! same register/flag results, same trap addresses (cache addresses, as the
//! interpreter surfaces them), same `ExecStats` accounting, and same
//! [`DbtStats`](crate::DbtStats) (the runtime still services every
//! chain/dispatch event).
//! Instrumentation survives untouched because the *cache* program — with its
//! injected `GEN_SIG`/`CHECK_SIG` sequences — is the compilation source.
//!
//! Layout of a session: guest registers live in a `NativeCtx` pinned in
//! `rbp`; `rbx`/`r15`/`r14`/`r13` carry instruction/cycle/branch/taken
//! deltas that are folded into [`cfed_sim::Cpu`] stats when the session
//! exits. Loads, stores and stack ops run an inline fast path over raw
//! views of guest memory ([`cfed_sim::RawMemParts`]) — the same in-page +
//! permission check the interpreter's fast path performs, including
//! dirty-bit and write-generation bookkeeping — and fall back to outlined
//! `extern "C"` helpers into [`cfed_sim::Memory`] for anything the fast
//! path cannot prove safe, so permissions (including the SMC
//! write-protection that category-F coverage depends on) are enforced by
//! exactly the same code as the interpreter.
//!
//! Block exits reuse the translator's exit-site protocol: a direct exit
//! compiles to a patchable 5-byte jump that initially raises the site's
//! `DBT_EXIT_BASE` software trap; once [`Dbt`] services the exit and patches
//! the cache instruction into a `Jmp`, the native slot is patched to a chain
//! thunk (accounting + direct host jump). Indirect exits get an inline-cache
//! dispatcher in emitted code, kept strictly in sync with the engine's
//! `dispatch_ic` table so hit/miss counts agree with the interpreter.
//! Any cache invalidation (full eviction or SMC flush) nukes all native code
//! back to the shared-stub watermark — the translations it mirrored died.

use crate::codebuf::CodeBuf;
use crate::engine::{Dbt, DbtExit, DbtStep, ExitKind, TransBlock, DISPATCH_IC_SIZE};
use crate::instrument::{regs, Instrumenter, UpdateStyle};
use crate::x86::{
    self, cc, Alu, Asm, HostReg, Label, Shift, R12, R13, R14, R15, RAX, RBP, RBX, RCX, RDI, RDX,
    RSI, RSP,
};
use cfed_isa::{AluOp, Cond, CostModel, Flags, Inst, Reg, INST_SIZE_U64};
use cfed_sim::{trap_codes, Cpu, Machine, Memory, Trap};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Below this remaining budget the tail is run by the interpreter so the
/// step limit lands on the exact instruction it would under [`Dbt::run`].
const NATIVE_MIN_BUDGET: u64 = 4096;
/// Cache-instruction ceiling per compiled block; also the session budget
/// margin (a block checks the budget only at entry, so one block body plus
/// its glue is the worst-case overshoot).
const MAX_BLOCK_CACHE_INSTS: usize = 2048;
/// Session budget margin: block body + chain-thunk glue.
const SESSION_MARGIN: u64 = MAX_BLOCK_CACHE_INSTS as u64 + 64;
/// RWX region size; the nuke-all protocol makes a fixed size fine.
const CODEBUF_CAPACITY: usize = 16 << 20;
/// Inline-cache tag meaning "empty slot" (never a valid guest address here).
const EMPTY_TAG: u64 = u64::MAX;

// Session exit kinds written to `NativeCtx::exit_kind`.
const XK_HALT: u64 = 0;
const XK_TRAP: u64 = 1;
const XK_BUDGET: u64 = 2;
const XK_ENTER: u64 = 3;

/// Per-session state shared between Rust and emitted code. `rbp` points at
/// this for the whole session; all offsets below are baked into the code.
#[repr(C)]
struct NativeCtx {
    /// Guest registers, spilled; emitted code works memory-to-register.
    regs: [u64; 16],
    /// Guest flags in *host* byte layout (see [`host_flags_byte`]).
    flags: u64,
    exit_kind: u64,
    /// Cache ip to resume at / report for the exit.
    exit_ip: u64,
    /// Encoded trap: 0 = none; see [`encode_trap`].
    trap_disc: u64,
    trap_a: u64,
    trap_b: u64,
    /// `XK_ENTER`: cache address the runtime should continue at.
    resume_ip: u64,
    /// `XK_ENTER`: host address of the 5-byte jump slot to patch once the
    /// target block is compiled (0 = nothing to patch).
    slot_addr: u64,
    d_insts: u64,
    d_cycles: u64,
    d_branches: u64,
    d_taken: u64,
    d_traps: u64,
    d_dispatches: u64,
    d_ic_hits: u64,
    /// Retired-instruction ceiling for this session (`rbx` compares against
    /// this at every block entry).
    session_limit: u64,
    /// Raw `*mut Memory`, valid only inside the trampoline call.
    mem: u64,
    /// Raw `*mut Cpu`, valid only inside the trampoline call.
    cpu: u64,
    /// Raw views into guest memory (see [`cfed_sim::RawMemParts`]) for the
    /// inline load/store fast path; valid only inside the trampoline call.
    mem_bytes: u64,
    mem_perms: u64,
    mem_dirty: u64,
    mem_gens: u64,
    mem_pages: u64,
    /// Indirect-dispatch inline cache: guest-target tags...
    ic_tags: [u64; DISPATCH_IC_SIZE],
    /// ...and the matching compiled-entry host addresses.
    ic_vals: [u64; DISPATCH_IC_SIZE],
}

macro_rules! ctx_off {
    ($f:ident) => {
        std::mem::offset_of!(NativeCtx, $f) as i32
    };
}

const O_REGS: i32 = ctx_off!(regs);
const O_FLAGS: i32 = ctx_off!(flags);
const O_EXIT_KIND: i32 = ctx_off!(exit_kind);
const O_EXIT_IP: i32 = ctx_off!(exit_ip);
const O_TRAP_DISC: i32 = ctx_off!(trap_disc);
const O_TRAP_A: i32 = ctx_off!(trap_a);
const O_TRAP_B: i32 = ctx_off!(trap_b);
const O_RESUME_IP: i32 = ctx_off!(resume_ip);
const O_SLOT_ADDR: i32 = ctx_off!(slot_addr);
const O_D_INSTS: i32 = ctx_off!(d_insts);
const O_D_CYCLES: i32 = ctx_off!(d_cycles);
const O_D_BRANCHES: i32 = ctx_off!(d_branches);
const O_D_TAKEN: i32 = ctx_off!(d_taken);
const O_D_TRAPS: i32 = ctx_off!(d_traps);
const O_D_DISPATCHES: i32 = ctx_off!(d_dispatches);
const O_D_IC_HITS: i32 = ctx_off!(d_ic_hits);
const O_SESSION_LIMIT: i32 = ctx_off!(session_limit);
const O_MEM_BYTES: i32 = ctx_off!(mem_bytes);
const O_MEM_PERMS: i32 = ctx_off!(mem_perms);
const O_MEM_DIRTY: i32 = ctx_off!(mem_dirty);
const O_MEM_GENS: i32 = ctx_off!(mem_gens);
const O_MEM_PAGES: i32 = ctx_off!(mem_pages);
const O_IC_TAGS: i32 = ctx_off!(ic_tags);
const O_IC_VALS: i32 = ctx_off!(ic_vals);

/// `log2(PAGE_SIZE)` for the emitted page-index shift.
const PAGE_SHIFT: u8 = cfed_sim::PAGE_SIZE.trailing_zeros() as u8;
/// Largest in-page offset at which an 8-byte access cannot straddle.
const MAX_U64_OFFSET: i32 = (cfed_sim::PAGE_SIZE - 8) as i32;

impl NativeCtx {
    fn new() -> NativeCtx {
        NativeCtx {
            regs: [0; 16],
            flags: 0,
            exit_kind: 0,
            exit_ip: 0,
            trap_disc: 0,
            trap_a: 0,
            trap_b: 0,
            resume_ip: 0,
            slot_addr: 0,
            d_insts: 0,
            d_cycles: 0,
            d_branches: 0,
            d_taken: 0,
            d_traps: 0,
            d_dispatches: 0,
            d_ic_hits: 0,
            session_limit: 0,
            mem: 0,
            cpu: 0,
            mem_bytes: 0,
            mem_perms: 0,
            mem_dirty: 0,
            mem_gens: 0,
            mem_pages: 0,
            ic_tags: [EMPTY_TAG; DISPATCH_IC_SIZE],
            ic_vals: [0; DISPATCH_IC_SIZE],
        }
    }
}

/// Guest [`Flags`] → the byte layout `lahf`/`seto` produce: CF bit 0,
/// PF bit 2, AF bit 4, OF bit 5 (merged in by hand), ZF bit 6, SF bit 7.
/// Bits 1 and 3 are don't-care (lahf forces bit 1 set; the condition
/// tables are indexed over all 256 byte values so both encodings match).
fn host_flags_byte(f: Flags) -> u8 {
    let b = f.bits();
    (b & 1)
        | ((b >> 1) & 1) << 2
        | ((b >> 2) & 1) << 4
        | ((b >> 3) & 1) << 6
        | ((b >> 4) & 1) << 7
        | ((b >> 5) & 1) << 5
}

/// Inverse of [`host_flags_byte`], ignoring the don't-care bits.
fn flags_from_host(h: u8) -> Flags {
    Flags::from_bits(
        (h & 1)
            | ((h >> 2) & 1) << 1
            | ((h >> 4) & 1) << 2
            | ((h >> 6) & 1) << 3
            | ((h >> 7) & 1) << 4
            | ((h >> 5) & 1) << 5,
    )
}

/// Encodes a trap for the ctx `trap_disc`/`trap_a`/`trap_b` slots.
fn encode_trap(t: &Trap) -> (u64, u64, u64) {
    match *t {
        Trap::Software { addr, code } => (1, addr, code as u64),
        Trap::DivByZero { addr } => (2, addr, 0),
        Trap::OutOfRange { addr } => (3, addr, 0),
        Trap::PermRead { addr } => (4, addr, 0),
        Trap::PermWrite { addr } => (5, addr, 0),
        Trap::PermExec { addr } => (6, addr, 0),
        Trap::UnalignedFetch { addr } => (7, addr, 0),
        // Never produced by the memory helpers (cache instructions decode by
        // construction); mapped conservatively so the encoding is total.
        Trap::InvalidInst { addr, .. } => (3, addr, 0),
    }
}

/// Decodes what [`encode_trap`] (or an emitted trap stub) stored.
fn decode_trap(disc: u64, a: u64, b: u64) -> Trap {
    match disc {
        1 => Trap::Software { addr: a, code: b as u32 },
        2 => Trap::DivByZero { addr: a },
        3 => Trap::OutOfRange { addr: a },
        4 => Trap::PermRead { addr: a },
        5 => Trap::PermWrite { addr: a },
        6 => Trap::PermExec { addr: a },
        7 => Trap::UnalignedFetch { addr: a },
        _ => unreachable!("bad native trap discriminant {disc}"),
    }
}

fn set_trap(ctx: &mut NativeCtx, t: &Trap, ip: u64) {
    let (d, a, b) = encode_trap(t);
    ctx.trap_disc = d;
    ctx.trap_a = a;
    ctx.trap_b = b;
    ctx.exit_ip = ip;
}

// Memory helpers called from emitted code (SysV: rdi, rsi, rdx, rcx). On a
// fault they record the trap in the ctx and the emitted trap check routes to
// the shared trap-exit stub; architectural state is committed only on
// success, mirroring the interpreter's no-commit-on-trap contract.

unsafe fn ctx_mem<'a>(ctx: *mut NativeCtx) -> &'a mut Memory {
    unsafe { &mut *((*ctx).mem as *mut Memory) }
}

extern "C" fn nh_read(ctx: *mut NativeCtx, addr: u64, ip: u64) -> u64 {
    unsafe {
        match ctx_mem(ctx).read_u64(addr) {
            Ok(v) => v,
            Err(t) => {
                set_trap(&mut *ctx, &t, ip);
                0
            }
        }
    }
}

extern "C" fn nh_read8(ctx: *mut NativeCtx, addr: u64, ip: u64) -> u64 {
    unsafe {
        match ctx_mem(ctx).read_u8(addr) {
            Ok(v) => v as u64,
            Err(t) => {
                set_trap(&mut *ctx, &t, ip);
                0
            }
        }
    }
}

extern "C" fn nh_write(ctx: *mut NativeCtx, addr: u64, value: u64, ip: u64) {
    unsafe {
        if let Err(t) = ctx_mem(ctx).write_u64(addr, value) {
            set_trap(&mut *ctx, &t, ip);
        }
    }
}

extern "C" fn nh_write8(ctx: *mut NativeCtx, addr: u64, value: u64, ip: u64) {
    unsafe {
        if let Err(t) = ctx_mem(ctx).write_u8(addr, value as u8) {
            set_trap(&mut *ctx, &t, ip);
        }
    }
}

extern "C" fn nh_push(ctx: *mut NativeCtx, value: u64, ip: u64) {
    unsafe {
        let sp = (*ctx).regs[Reg::SP.index()].wrapping_sub(8);
        match ctx_mem(ctx).write_u64(sp, value) {
            Ok(()) => (*ctx).regs[Reg::SP.index()] = sp,
            Err(t) => set_trap(&mut *ctx, &t, ip),
        }
    }
}

extern "C" fn nh_pop(ctx: *mut NativeCtx, ip: u64) -> u64 {
    unsafe {
        let sp = (*ctx).regs[Reg::SP.index()];
        match ctx_mem(ctx).read_u64(sp) {
            Ok(v) => {
                (*ctx).regs[Reg::SP.index()] = sp.wrapping_add(8);
                v
            }
            Err(t) => {
                set_trap(&mut *ctx, &t, ip);
                0
            }
        }
    }
}

extern "C" fn nh_out(ctx: *mut NativeCtx, value: u64) {
    unsafe {
        (*((*ctx).cpu as *mut Cpu)).push_output(value);
    }
}

/// Why a block could not be compiled.
enum CompileBail {
    /// Contains an instruction form the backend does not emit (never the
    /// case for translator output; defensive) or is oversized.
    Unsupported,
    /// The code buffer is full; nuke and retry.
    Full,
}

/// Native patch points for one direct exit site.
#[derive(Clone, Copy)]
struct ChainSite {
    /// 5-byte jump slot inside the block (initially → exit stub).
    slot: u64,
    /// Chain thunk: accounting for the patched cache `Jmp`, then...
    thunk: u64,
    /// ...this 5-byte jump, patched to the target's host entry.
    thunk_jmp: u64,
}

struct Jit {
    buf: CodeBuf,
    ctx: Box<NativeCtx>,
    /// `extern "C" fn(*mut NativeCtx, entry)` — saves host regs, seeds the
    /// delta registers and jumps to `entry`.
    trampoline: u64,
    /// Stores the delta registers back to the ctx and returns.
    epilogue: u64,
    /// Sets `exit_kind = XK_TRAP` and falls into the epilogue; every trap
    /// path (helper fault or emitted stub) jumps here.
    trap_exit: u64,
    /// 16 × 32-byte bitmaps: bit `h` of table `cc` = `cc.eval(flags(h))`.
    cond_tables: u64,
    /// Bump-reset watermark right after the shared stubs.
    blocks_base: u64,
    /// Cache address → host address safe to enter from the runtime loop
    /// (block starts, IC dispatch sequences, patched chain thunks).
    entries: HashMap<u64, u64>,
    /// Block cache_start → host entry (with budget prologue).
    compiled: HashMap<u64, u64>,
    /// Direct exit sites by cache address.
    sites: HashMap<u64, ChainSite>,
    /// Block starts that failed to compile (cleared on nuke).
    uncompilable: HashSet<u64>,
    /// Direct exit sites whose native slot has been chained.
    chained: HashSet<u64>,
    /// Mirror of `Dbt::dispatch_ic` as of the last sync.
    ic_shadow: [Option<(u64, u64)>; DISPATCH_IC_SIZE],
    /// [`Dbt::gen_key`] snapshot; any change nukes native code.
    gen: (u64, u64, u64, u64),
    /// `Dbt::stats.chains` as of the last chain resync.
    chains_shadow: u64,
    /// Bumped by every nuke; guards stale patch addresses across a nuke.
    nukes: u64,
}

impl Jit {
    fn new() -> Option<Jit> {
        let mut buf = CodeBuf::new(CODEBUF_CAPACITY)?;

        // Condition bitmaps, indexed by host flags byte.
        let mut tables = [0u8; 16 * 32];
        for cond in Cond::ALL {
            let base = cond.encoding() as usize * 32;
            for h in 0..256usize {
                if cond.eval(flags_from_host(h as u8)) {
                    tables[base + h / 8] |= 1 << (h % 8);
                }
            }
        }
        let cond_tables = buf.alloc(&tables)?;

        // Epilogue: spill deltas, restore host regs, return.
        let mut a = Asm::new(buf.cursor_addr());
        a.store(RBP, O_D_INSTS, RBX);
        a.store(RBP, O_D_CYCLES, R15);
        a.store(RBP, O_D_BRANCHES, R14);
        a.store(RBP, O_D_TAKEN, R13);
        a.alu_ri(Alu::Add, RSP, 8);
        a.pop_r(R15);
        a.pop_r(R14);
        a.pop_r(R13);
        a.pop_r(R12);
        a.pop_r(RBX);
        a.pop_r(RBP);
        a.ret();
        let epilogue = buf.alloc(&a.finish())?;

        let mut a = Asm::new(buf.cursor_addr());
        a.store_imm32(RBP, O_EXIT_KIND, XK_TRAP as i32);
        a.jmp_abs(epilogue);
        let trap_exit = buf.alloc(&a.finish())?;

        // Trampoline: rdi = ctx, rsi = entry host address.
        let mut a = Asm::new(buf.cursor_addr());
        a.push_r(RBP);
        a.push_r(RBX);
        a.push_r(R12);
        a.push_r(R13);
        a.push_r(R14);
        a.push_r(R15);
        a.mov_rr(RBP, RDI);
        a.load(R12, RBP, O_SESSION_LIMIT);
        a.xor_r32(RBX);
        a.xor_r32(R15);
        a.xor_r32(R14);
        a.xor_r32(R13);
        a.alu_ri(Alu::Sub, RSP, 8); // 16-align rsp for helper calls
        a.jmp_r(RSI);
        let trampoline = buf.alloc(&a.finish())?;

        let blocks_base = buf.cursor_addr();
        Some(Jit {
            buf,
            ctx: Box::new(NativeCtx::new()),
            trampoline,
            epilogue,
            trap_exit,
            cond_tables,
            blocks_base,
            entries: HashMap::new(),
            compiled: HashMap::new(),
            sites: HashMap::new(),
            uncompilable: HashSet::new(),
            chained: HashSet::new(),
            ic_shadow: [None; DISPATCH_IC_SIZE],
            gen: (0, 0, 0, 0),
            chains_shadow: 0,
            nukes: 0,
        })
    }

    /// Discards every compiled block (cache invalidation or full buffer).
    fn nuke(&mut self) {
        self.buf.reset_to(self.blocks_base);
        self.entries.clear();
        self.compiled.clear();
        self.sites.clear();
        self.uncompilable.clear();
        self.chained.clear();
        self.ctx.ic_tags = [EMPTY_TAG; DISPATCH_IC_SIZE];
        self.ctx.ic_vals = [0; DISPATCH_IC_SIZE];
        self.ic_shadow = [None; DISPATCH_IC_SIZE];
        self.nukes += 1;
    }

    /// Nukes when the engine invalidated any translation since last checked.
    fn check_gen(&mut self, dbt: &Dbt) {
        let gen = dbt.gen_key();
        if gen != self.gen {
            self.nuke();
            self.gen = gen;
        }
    }

    fn ensure_compiled(&mut self, dbt: &Dbt, m: &Machine, tb: &TransBlock) -> Option<u64> {
        if let Some(&host) = self.compiled.get(&tb.cache_start) {
            return Some(host);
        }
        if self.uncompilable.contains(&tb.cache_start) {
            return None;
        }
        match self.compile_block(dbt, m, tb) {
            Ok(host) => Some(host),
            Err(CompileBail::Unsupported) => {
                self.uncompilable.insert(tb.cache_start);
                None
            }
            Err(CompileBail::Full) => {
                self.nuke();
                match self.compile_block(dbt, m, tb) {
                    Ok(host) => Some(host),
                    Err(_) => {
                        self.uncompilable.insert(tb.cache_start);
                        None
                    }
                }
            }
        }
    }

    /// Mirrors the engine's dispatcher inline cache into the ctx, compiling
    /// cached targets so hits can jump straight to host code. Keeping the
    /// tag sets identical is what makes native `dispatch_ic_hits` equal the
    /// interpreter's: a native miss that the engine would have hit routes
    /// through `service_exit`, which counts the hit there instead.
    fn resync_ic(&mut self, dbt: &Dbt, m: &Machine) {
        if self.ic_shadow == dbt.dispatch_ic {
            return;
        }
        loop {
            let nukes = self.nukes;
            for entry in dbt.dispatch_ic {
                if let Some((_, cache)) = entry {
                    if !self.compiled.contains_key(&cache) {
                        if let Some(tb) = dbt.blocks().find(|b| b.cache_start == cache).copied() {
                            self.ensure_compiled(dbt, m, &tb);
                        }
                    }
                }
                if self.nukes != nukes {
                    break;
                }
            }
            if self.nukes == nukes {
                break;
            }
        }
        for slot in 0..DISPATCH_IC_SIZE {
            let (tag, val) = match dbt.dispatch_ic[slot] {
                Some((tag, cache)) => match self.compiled.get(&cache) {
                    Some(&host) => (tag, host),
                    None => (EMPTY_TAG, 0),
                },
                None => (EMPTY_TAG, 0),
            };
            self.ctx.ic_tags[slot] = tag;
            self.ctx.ic_vals[slot] = val;
        }
        self.ic_shadow = dbt.dispatch_ic;
    }

    /// Patches the native side of exit `idx` after the engine chained it:
    /// slot → thunk, thunk → target host entry (or an enter stub when the
    /// target block itself is not natively compiled).
    fn try_chain(&mut self, dbt: &Dbt, m: &Machine, idx: usize) {
        let ExitKind::Direct { guest_target, site } = dbt.exits[idx].kind else {
            return;
        };
        if !dbt.exits[idx].patched || self.chained.contains(&site) {
            return;
        }
        let Some(tb) = dbt.lookup(guest_target).copied() else {
            return;
        };
        let nukes = self.nukes;
        let target_host = match self.ensure_compiled(dbt, m, &tb) {
            Some(host) => Some(host),
            None => {
                // Target block is uncompilable: chain into an enter stub so
                // the thunk still retires the cache `Jmp` natively and hands
                // the target back to the runtime loop.
                let mut a = Asm::new(self.buf.cursor_addr());
                if tb.cache_start <= i32::MAX as u64 {
                    a.store_imm32(RBP, O_RESUME_IP, tb.cache_start as i32);
                } else {
                    a.mov_ri64(RAX, tb.cache_start);
                    a.store(RBP, O_RESUME_IP, RAX);
                }
                a.store_imm32(RBP, O_SLOT_ADDR, 0);
                a.store_imm32(RBP, O_EXIT_KIND, XK_ENTER as i32);
                a.jmp_abs(self.epilogue);
                self.buf.alloc(&a.finish())
            }
        };
        if self.nukes != nukes {
            return; // compile overflowed and nuked; the site died with it
        }
        let (Some(target_host), Some(cs)) = (target_host, self.sites.get(&site).copied()) else {
            return;
        };
        self.buf.patch(cs.thunk_jmp, &x86::jmp_rel32_bytes(cs.thunk_jmp, target_host));
        self.buf.patch(cs.slot, &x86::jmp_rel32_bytes(cs.slot, cs.thunk));
        self.chained.insert(site);
        // For a site that is also a block head (single-instruction block),
        // keep the block entry: it runs the budget check before the thunk.
        self.entries.entry(site).or_insert(cs.thunk);
    }

    /// Chains every engine-patched exit that the native code has not picked
    /// up yet (the engine may patch during interpreted stretches).
    fn resync_chains(&mut self, dbt: &Dbt, m: &Machine) {
        if self.chains_shadow == dbt.stats.chains {
            return;
        }
        for idx in 0..dbt.exits.len() {
            if dbt.exits[idx].patched {
                self.try_chain(dbt, m, idx);
            }
        }
        self.chains_shadow = dbt.stats.chains;
    }

    /// Runs one native session starting at host address `entry`; syncs the
    /// cpu in and out and folds the retired-work deltas into its stats.
    fn enter(&mut self, m: &mut Machine, entry: u64, remaining: u64) {
        let ctx = &mut *self.ctx;
        for r in Reg::all() {
            ctx.regs[r.index()] = m.cpu.reg(r);
        }
        ctx.flags = host_flags_byte(m.cpu.flags()) as u64;
        ctx.exit_kind = XK_TRAP;
        ctx.exit_ip = 0;
        ctx.trap_disc = 0;
        ctx.trap_a = 0;
        ctx.trap_b = 0;
        ctx.resume_ip = 0;
        ctx.slot_addr = 0;
        ctx.d_insts = 0;
        ctx.d_cycles = 0;
        ctx.d_branches = 0;
        ctx.d_taken = 0;
        ctx.d_traps = 0;
        ctx.d_dispatches = 0;
        ctx.d_ic_hits = 0;
        ctx.session_limit = remaining - SESSION_MARGIN;
        ctx.mem = &mut m.mem as *mut Memory as u64;
        ctx.cpu = &mut m.cpu as *mut Cpu as u64;
        let parts = m.mem.raw_parts();
        ctx.mem_bytes = parts.bytes as u64;
        ctx.mem_perms = parts.page_perms as u64;
        ctx.mem_dirty = parts.dirty as u64;
        ctx.mem_gens = parts.page_gens as u64;
        ctx.mem_pages = parts.pages;
        let tramp: extern "C" fn(*mut NativeCtx, u64) =
            unsafe { std::mem::transmute(self.trampoline as usize) };
        tramp(ctx as *mut NativeCtx, entry);
        ctx.mem = 0;
        ctx.cpu = 0;
        ctx.mem_bytes = 0;
        ctx.mem_perms = 0;
        ctx.mem_dirty = 0;
        ctx.mem_gens = 0;
        ctx.mem_pages = 0;
        for r in Reg::all() {
            m.cpu.set_reg(r, ctx.regs[r.index()]);
        }
        m.cpu.set_flags(flags_from_host(ctx.flags as u8));
        m.cpu.apply_native_delta(
            ctx.d_insts,
            ctx.d_cycles,
            ctx.d_branches,
            ctx.d_taken,
            ctx.d_traps,
        );
    }

    fn compile_block(
        &mut self,
        dbt: &Dbt,
        m: &Machine,
        tb: &TransBlock,
    ) -> Result<u64, CompileBail> {
        let mut insts = Vec::new();
        let mut addr = tb.cache_start;
        while addr < tb.cache_end {
            let bytes = m.mem.fetch(addr).map_err(|_| CompileBail::Unsupported)?;
            let inst = Inst::decode(&bytes).map_err(|_| CompileBail::Unsupported)?;
            insts.push((addr, inst));
            addr += INST_SIZE_U64;
        }
        if insts.len() > MAX_BLOCK_CACHE_INSTS {
            return Err(CompileBail::Unsupported);
        }

        let base = self.buf.cursor_addr();
        let mut b = BlockAsm {
            a: Asm::new(base),
            exits: &dbt.exits,
            compiled: &self.compiled,
            cost: m.cpu.cost_model(),
            cond_tables: self.cond_tables,
            epilogue: self.epilogue,
            trap_exit: self.trap_exit,
            dispatch_cycles: dbt.dispatch_cycles,
            range: tb.cache_range(),
            labels: HashMap::new(),
            pend_insts: 0,
            pend_cycles: 0,
            outl: Vec::new(),
            sites: Vec::new(),
            ind_entries: Vec::new(),
        };

        // Intra-block branch targets become local labels.
        for (addr, inst) in &insts {
            if matches!(
                inst,
                Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::JRz { .. } | Inst::JRnz { .. }
            ) {
                if let Some(t) = inst.direct_target(*addr) {
                    // Misaligned in-range targets deliberately get no label:
                    // they must surface as UnalignedFetch via the runtime.
                    if b.range.contains(&t)
                        && (t - tb.cache_start).is_multiple_of(INST_SIZE_U64)
                        && !b.labels.contains_key(&t)
                    {
                        let l = b.a.new_label();
                        b.labels.insert(t, l);
                    }
                }
            }
        }

        // A jump back to the block head must re-check the budget, so its
        // label binds before the prologue.
        if let Some(&l) = b.labels.get(&tb.cache_start) {
            b.a.bind(l);
        }
        let l_budget = b.a.new_label();
        b.a.alu_rr(Alu::Cmp, RBX, R12);
        b.a.jcc(cc::AE, l_budget);
        b.outl.push(Outl::Budget { l: l_budget, resume: tb.cache_start });

        for (addr, inst) in &insts {
            if *addr != tb.cache_start {
                if let Some(&l) = b.labels.get(addr) {
                    b.flush();
                    b.a.bind(l);
                }
            }
            b.emit_inst(*addr, *inst)?;
        }
        // Defensive: translator blocks always end in a terminator; if one
        // ever does not, hand the fall-through back to the runtime.
        b.flush();
        b.emit_enter_exit(tb.cache_end, 0);
        b.drain_outlined();

        let BlockAsm { a, sites, ind_entries, .. } = b;
        let bytes = a.finish();
        let host = self.buf.alloc(&bytes).ok_or(CompileBail::Full)?;
        debug_assert_eq!(host, base);
        self.compiled.insert(tb.cache_start, host);
        self.entries.insert(tb.cache_start, host);
        for (site, chain) in sites {
            self.sites.insert(site, chain);
        }
        for (site, seq) in ind_entries {
            self.entries.insert(site, seq);
        }
        Ok(host)
    }
}

/// Which memory helper an outlined slow path calls.
#[derive(Clone, Copy)]
enum MemOp {
    Read,
    Read8,
    Write,
    Write8,
    Push,
    Pop,
}

/// Outlined code emitted after the straight-line block body.
enum Outl {
    /// Conditional-branch taken arm: accounting, then transfer.
    Taken { l: Label, cost: u64, target: u64 },
    /// Hand control to the runtime at cache address `target`; `slot` is the
    /// 5-byte jump to patch once `target`'s block is compiled.
    Enter { l: Label, target: u64, slot: u64 },
    /// Division-by-zero trap for the `Div` at cache address `ip`.
    Div0 { l: Label, ip: u64 },
    /// Session budget exhausted; resume at cache address `resume`.
    Budget { l: Label, resume: u64 },
    /// Memory-access slow path: the inline page check failed (straddle,
    /// out of range, or permission), so call the helper that reproduces
    /// the interpreter's full semantics. `pend_*` snapshot the accounting
    /// pending at the access site: the slow path flushes it before the
    /// call (so a trap exits with prior instructions retired) and undoes
    /// the flush on success (the main line's own flush still runs later).
    MemSlow { l: Label, done: Label, op: MemOp, ip: u64, pend_insts: u64, pend_cycles: u64 },
}

/// Single-block code generator. Accounting is batched: straight-line
/// instruction/cycle counts accumulate at compile time (`pend_*`) and flush
/// to the delta registers before anything that can leave the block.
struct BlockAsm<'a> {
    a: Asm,
    exits: &'a [crate::engine::ExitDesc],
    compiled: &'a HashMap<u64, u64>,
    cost: &'a CostModel,
    cond_tables: u64,
    epilogue: u64,
    trap_exit: u64,
    dispatch_cycles: u64,
    range: Range<u64>,
    labels: HashMap<u64, Label>,
    pend_insts: u64,
    pend_cycles: u64,
    outl: Vec<Outl>,
    sites: Vec<(u64, ChainSite)>,
    ind_entries: Vec<(u64, u64)>,
}

fn rslot(r: Reg) -> i32 {
    O_REGS + (r.index() as i32) * 8
}

impl BlockAsm<'_> {
    fn pend(&mut self, inst: &Inst, taken: bool) {
        self.pend_insts += 1;
        self.pend_cycles += self.cost.cost(inst, taken);
    }

    fn flush(&mut self) {
        if self.pend_insts != 0 {
            self.a.alu_ri(Alu::Add, RBX, self.pend_insts as i32);
            self.pend_insts = 0;
        }
        if self.pend_cycles != 0 {
            self.a.alu_ri(Alu::Add, R15, self.pend_cycles as i32);
            self.pend_cycles = 0;
        }
    }

    fn mov_imm(&mut self, r: HostReg, v: u64) {
        if v <= i32::MAX as u64 {
            self.a.mov_ri32(r, v as i32);
        } else {
            self.a.mov_ri64(r, v);
        }
    }

    fn store_ctx_imm(&mut self, off: i32, v: u64) {
        if v <= i32::MAX as u64 {
            self.a.store_imm32(RBP, off, v as i32);
        } else {
            self.a.mov_ri64(RAX, v);
            self.a.store(RBP, off, RAX);
        }
    }

    fn call_helper(&mut self, f: usize) {
        self.a.mov_ri64(RAX, f as u64);
        self.a.call_r(RAX);
    }

    /// After a helper call: route to the trap-exit stub if it faulted.
    fn trap_check(&mut self) {
        self.a.cmp_mem_imm8(RBP, O_TRAP_DISC, 0);
        self.a.jcc_abs(cc::NE, self.trap_exit);
    }

    /// Inline reproduction of [`Memory::in_page`] + the permission test:
    /// guest address in `rcx`, page index left in `rax`, branches to
    /// `l_slow` whenever the interpreter's general (slow) checks must run.
    /// Clobbers `rax`/`rsi`; preserves `rcx` (address) and `rdx` (value).
    fn emit_mem_check(&mut self, wide: bool, write: bool, l_slow: Label) {
        self.a.mov_rr(RAX, RCX);
        self.a.shift_imm(Shift::Shr, RAX, PAGE_SHIFT);
        self.a.cmp_r_mem(RAX, RBP, O_MEM_PAGES);
        self.a.jcc(cc::AE, l_slow);
        if wide {
            // An 8-byte access must not straddle the page boundary.
            self.a.mov_rr(RSI, RCX);
            self.a.alu_ri(Alu::And, RSI, (cfed_sim::PAGE_SIZE - 1) as i32);
            self.a.alu_ri(Alu::Cmp, RSI, MAX_U64_OFFSET);
            self.a.jcc(cc::A, l_slow);
        }
        self.a.load(RSI, RBP, O_MEM_PERMS);
        self.a.test_mem8_imm2(RSI, RAX, if write { 2 } else { 1 });
        self.a.jcc(cc::E, l_slow);
    }

    /// The write half of the fast path: dirty-bit and page-generation
    /// bookkeeping (bit-for-bit what [`Memory::write_u64`] does in-page),
    /// then the store itself. Page index in `rax`, address in `rcx`,
    /// value in `rdx`.
    fn emit_mem_commit_write(&mut self, wide: bool) {
        self.a.load(RSI, RBP, O_MEM_DIRTY);
        self.a.bts_mem_r(RSI, RAX);
        self.a.load(RSI, RBP, O_MEM_GENS);
        self.a.shift_imm(Shift::Shl, RAX, 3);
        self.a.inc_mem2(RSI, RAX, 0);
        self.a.load(RSI, RBP, O_MEM_BYTES);
        if wide {
            self.a.store2(RSI, RCX, 0, RDX);
        } else {
            self.a.store8_2(RSI, RCX, RDX);
        }
    }

    /// The read half of the fast path: address in `rcx`, value to `rax`.
    fn emit_mem_read(&mut self, wide: bool) {
        self.a.load(RSI, RBP, O_MEM_BYTES);
        if wide {
            self.a.load2(RAX, RSI, RCX, 0);
        } else {
            self.a.load8_2(RAX, RSI, RCX);
        }
    }

    /// Queues the outlined slow path for a memory access at cache address
    /// `ip`, snapshotting the accounting pending at this point.
    fn queue_mem_slow(&mut self, l: Label, done: Label, op: MemOp, ip: u64) {
        self.outl.push(Outl::MemSlow {
            l,
            done,
            op,
            ip,
            pend_insts: self.pend_insts,
            pend_cycles: self.pend_cycles,
        });
    }

    /// Leaves `cc.eval(guest flags)` in the host carry flag.
    fn cond_to_cf(&mut self, cond: Cond) {
        self.a.load_flags_al(O_FLAGS);
        self.a.mov_ri64(RCX, self.cond_tables + 32 * cond.encoding() as u64);
        self.a.bt_mem_r(RCX, RAX);
    }

    /// Captures add/sub/cmp/neg-style flags (all six) from the host ALU op
    /// that just executed. Must run before anything clobbers host flags.
    fn capture_full(&mut self) {
        self.a.seto(RAX);
        self.a.lahf();
        self.a.shl_al_imm(5);
        self.a.or_ah_al();
        self.a.store_ah_rbp(O_FLAGS);
    }

    /// Captures logic-style flags (ZF/SF/PF of the value, rest zero) from
    /// the host flags as currently set.
    fn capture_logic(&mut self) {
        self.a.lahf();
        self.a.and_ah_imm(0xC4);
        self.a.store_ah_rbp(O_FLAGS);
    }

    /// Branch retirement accounting, written directly (never pending).
    fn branch_acct(&mut self, cycles: u64, taken: bool) {
        self.a.alu_ri(Alu::Add, RBX, 1);
        self.a.alu_ri(Alu::Add, R15, cycles as i32);
        self.a.alu_ri(Alu::Add, R14, 1);
        if taken {
            self.a.alu_ri(Alu::Add, R13, 1);
        }
    }

    /// Emits a transfer of control to cache address `target`.
    fn transfer(&mut self, target: u64) {
        if let Some(&l) = self.labels.get(&target) {
            self.a.jmp(l);
        } else if let Some(&host) = self.compiled.get(&target) {
            self.a.jmp_abs(host);
        } else {
            let slot = self.a.here_abs();
            let l = self.a.new_label();
            self.a.jmp(l);
            self.outl.push(Outl::Enter { l, target, slot });
        }
    }

    /// Emits an inline `XK_ENTER` exit (used for the defensive fall-through).
    fn emit_enter_exit(&mut self, target: u64, slot: u64) {
        self.store_ctx_imm(O_RESUME_IP, target);
        self.store_ctx_imm(O_SLOT_ADDR, slot);
        self.a.store_imm32(RBP, O_EXIT_KIND, XK_ENTER as i32);
        self.a.jmp_abs(self.epilogue);
    }

    /// Emits a trap stub: records the trap and exits the session.
    fn emit_trap_exit(&mut self, disc: u64, a_val: u64, b_val: u64, ip: u64) {
        self.store_ctx_imm(O_TRAP_A, a_val);
        if b_val != 0 {
            self.store_ctx_imm(O_TRAP_B, b_val);
        }
        self.store_ctx_imm(O_TRAP_DISC, disc);
        self.store_ctx_imm(O_EXIT_IP, ip);
        self.a.jmp_abs(self.trap_exit);
    }

    fn drain_outlined(&mut self) {
        while let Some(o) = self.outl.pop() {
            match o {
                Outl::Taken { l, cost, target } => {
                    self.a.bind(l);
                    self.branch_acct(cost, true);
                    self.transfer(target);
                }
                Outl::Enter { l, target, slot } => {
                    self.a.bind(l);
                    self.emit_enter_exit(target, slot);
                }
                Outl::Div0 { l, ip } => {
                    self.a.bind(l);
                    self.emit_trap_exit(2, ip, 0, ip);
                }
                Outl::Budget { l, resume } => {
                    self.a.bind(l);
                    self.store_ctx_imm(O_EXIT_IP, resume);
                    self.a.store_imm32(RBP, O_EXIT_KIND, XK_BUDGET as i32);
                    self.a.jmp_abs(self.epilogue);
                }
                Outl::MemSlow { l, done, op, ip, pend_insts, pend_cycles } => {
                    self.a.bind(l);
                    if pend_insts != 0 {
                        self.a.alu_ri(Alu::Add, RBX, pend_insts as i32);
                    }
                    if pend_cycles != 0 {
                        self.a.alu_ri(Alu::Add, R15, pend_cycles as i32);
                    }
                    self.a.mov_rr(RDI, RBP);
                    match op {
                        MemOp::Read | MemOp::Read8 => {
                            self.a.mov_rr(RSI, RCX);
                            self.mov_imm(RDX, ip);
                            let f = if matches!(op, MemOp::Read) {
                                nh_read as *const () as usize
                            } else {
                                nh_read8 as *const () as usize
                            };
                            self.call_helper(f);
                        }
                        MemOp::Write | MemOp::Write8 => {
                            self.a.mov_rr(RSI, RCX);
                            self.mov_imm(RCX, ip);
                            let f = if matches!(op, MemOp::Write) {
                                nh_write as *const () as usize
                            } else {
                                nh_write8 as *const () as usize
                            };
                            self.call_helper(f);
                        }
                        MemOp::Push => {
                            self.a.mov_rr(RSI, RDX);
                            self.mov_imm(RDX, ip);
                            self.call_helper(nh_push as *const () as usize);
                        }
                        MemOp::Pop => {
                            self.mov_imm(RSI, ip);
                            self.call_helper(nh_pop as *const () as usize);
                        }
                    }
                    self.trap_check();
                    if pend_insts != 0 {
                        self.a.alu_ri(Alu::Sub, RBX, pend_insts as i32);
                    }
                    if pend_cycles != 0 {
                        self.a.alu_ri(Alu::Sub, R15, pend_cycles as i32);
                    }
                    self.a.jmp(done);
                }
            }
        }
    }

    /// Emits the trap/exit-site form of a cache `Trap` instruction.
    fn emit_trap_site(&mut self, addr: u64, code: u32) {
        self.flush();
        let idx = (code >= trap_codes::DBT_EXIT_BASE)
            .then(|| (code - trap_codes::DBT_EXIT_BASE) as usize)
            .filter(|&i| i < self.exits.len());
        match idx.map(|i| (i, self.exits[i].kind)) {
            Some((_, ExitKind::Direct { .. })) => {
                // Patchable slot → exit stub; chain thunk parked after it.
                let slot = self.a.here_abs();
                let l_stub = self.a.new_label();
                self.a.jmp(l_stub);
                let thunk = self.a.here_abs();
                let jmp_cost = self.cost.cost(&Inst::Jmp { offset: 0 }, true);
                self.branch_acct(jmp_cost, true);
                let thunk_jmp = self.a.here_abs();
                self.a.jmp(l_stub); // patched to the target host entry
                self.a.bind(l_stub);
                self.emit_trap_exit(1, addr, code as u64, addr);
                self.sites.push((addr, ChainSite { slot, thunk, thunk_jmp }));
            }
            Some((_, ExitKind::Indirect)) => {
                // Inline-cache dispatch: tag-match on the guest target.
                let seq = self.a.here_abs();
                self.a.load(RAX, RBP, rslot(regs::ITARGET));
                self.a.mov_rr(RCX, RAX);
                self.a.shift_imm(Shift::Shr, RCX, 3);
                self.a.and_ecx_imm8(15);
                self.a.shift_imm(Shift::Shl, RCX, 3);
                self.a.cmp_r_mem2(RAX, RBP, RCX, O_IC_TAGS);
                let l_miss = self.a.new_label();
                self.a.jcc(cc::NE, l_miss);
                // Hit: the interpreter's dispatch trap + service accounting.
                self.a.inc_mem(RBP, O_D_TRAPS);
                self.a.alu_ri(Alu::Add, R15, self.dispatch_cycles as i32);
                self.a.inc_mem(RBP, O_D_DISPATCHES);
                self.a.inc_mem(RBP, O_D_IC_HITS);
                self.a.jmp_mem2(RBP, RCX, O_IC_VALS);
                self.a.bind(l_miss);
                self.emit_trap_exit(1, addr, code as u64, addr);
                self.ind_entries.push((addr, seq));
            }
            // Aborts and plain guest traps surface through the runtime.
            _ => self.emit_trap_exit(1, addr, code as u64, addr),
        }
    }

    fn emit_alu(&mut self, addr: u64, inst: &Inst, op: AluOp, dst: Reg) {
        match op {
            AluOp::Add | AluOp::Sub => {
                let host = if op == AluOp::Add { Alu::Add } else { Alu::Sub };
                self.a.alu_rr(host, RAX, RCX);
                self.a.store(RBP, rslot(dst), RAX);
                self.capture_full();
                self.pend(inst, false);
            }
            AluOp::Cmp => {
                self.a.alu_rr(Alu::Cmp, RAX, RCX);
                self.capture_full();
                self.pend(inst, false);
            }
            AluOp::And | AluOp::Or | AluOp::Xor => {
                let host = match op {
                    AluOp::And => Alu::And,
                    AluOp::Or => Alu::Or,
                    _ => Alu::Xor,
                };
                self.a.alu_rr(host, RAX, RCX);
                self.a.store(RBP, rslot(dst), RAX);
                self.capture_logic();
                self.pend(inst, false);
            }
            AluOp::Test => {
                self.a.test_rr(RAX, RCX);
                self.capture_logic();
                self.pend(inst, false);
            }
            AluOp::Shl | AluOp::Shr | AluOp::Sar => {
                let host = match op {
                    AluOp::Shl => Shift::Shl,
                    AluOp::Shr => Shift::Shr,
                    _ => Shift::Sar,
                };
                // Count 0 keeps the value and produces logic-style flags of
                // it (the ISA contract; host shifts leave flags unchanged).
                self.a.and_ecx_imm8(63);
                let l_zero = self.a.new_label();
                let l_done = self.a.new_label();
                self.a.jcc_short(cc::E, l_zero);
                self.a.shift_cl(host, RAX);
                self.a.store(RBP, rslot(dst), RAX);
                self.a.lahf();
                self.a.and_ah_imm(0xC5); // keep CF too
                self.a.jmp_short(l_done);
                self.a.bind(l_zero);
                self.a.store(RBP, rslot(dst), RAX);
                self.a.test_rr(RAX, RAX);
                self.a.lahf();
                self.a.and_ah_imm(0xC4);
                self.a.bind(l_done);
                self.a.store_ah_rbp(O_FLAGS);
                self.pend(inst, false);
            }
            AluOp::Mul => {
                // imul's CF=OF is exactly the ISA's signed-overflow bit;
                // ZF/SF/PF are recomputed from the result.
                self.a.imul_rr(RAX, RCX);
                self.a.seto(RCX);
                self.a.store(RBP, rslot(dst), RAX);
                self.a.test_rr(RAX, RAX);
                self.a.lahf();
                self.a.and_ah_imm(0xC4);
                self.a.movzx_ecx_cl();
                self.a.imul_ecx_imm8(0x21); // CF | OF bit positions
                self.a.or_ah_cl();
                self.a.store_ah_rbp(O_FLAGS);
                self.pend(inst, false);
            }
            AluOp::Div => {
                self.flush();
                self.a.test_rr(RCX, RCX);
                let l_zero = self.a.new_label();
                self.a.jcc(cc::E, l_zero);
                self.outl.push(Outl::Div0 { l: l_zero, ip: addr });
                self.a.xor_r32(RDX);
                self.a.div(RCX);
                self.a.store(RBP, rslot(dst), RAX);
                self.a.test_rr(RAX, RAX);
                self.a.lahf();
                self.a.and_ah_imm(0xC4);
                self.a.store_ah_rbp(O_FLAGS);
                self.pend(inst, false);
            }
        }
    }

    fn emit_inst(&mut self, addr: u64, inst: Inst) -> Result<(), CompileBail> {
        match inst {
            Inst::Nop => self.pend(&inst, false),
            Inst::Halt => {
                self.pend(&inst, false);
                self.flush();
                self.store_ctx_imm(O_EXIT_IP, addr + INST_SIZE_U64);
                self.a.store_imm32(RBP, O_EXIT_KIND, XK_HALT as i32);
                self.a.jmp_abs(self.epilogue);
            }
            Inst::Out { src } => {
                self.flush();
                self.a.mov_rr(RDI, RBP);
                self.a.load(RSI, RBP, rslot(src));
                self.call_helper(nh_out as *const () as usize);
                self.pend(&inst, false);
            }
            Inst::Trap { code } => self.emit_trap_site(addr, code),
            Inst::MovRR { dst, src } => {
                self.a.load(RAX, RBP, rslot(src));
                self.a.store(RBP, rslot(dst), RAX);
                self.pend(&inst, false);
            }
            Inst::MovRI { dst, imm } => {
                self.a.mov_ri32(RAX, imm);
                self.a.store(RBP, rslot(dst), RAX);
                self.pend(&inst, false);
            }
            Inst::Ld { dst, base, disp } | Inst::Ld8 { dst, base, disp } => {
                let wide = matches!(inst, Inst::Ld { .. });
                self.a.load(RCX, RBP, rslot(base));
                if disp != 0 {
                    self.a.lea(RCX, RCX, disp);
                }
                let l_slow = self.a.new_label();
                let l_done = self.a.new_label();
                self.emit_mem_check(wide, false, l_slow);
                self.emit_mem_read(wide);
                self.a.bind(l_done);
                self.a.store(RBP, rslot(dst), RAX);
                let op = if wide { MemOp::Read } else { MemOp::Read8 };
                self.queue_mem_slow(l_slow, l_done, op, addr);
                self.pend(&inst, false);
            }
            Inst::St { base, src, disp } | Inst::St8 { base, src, disp } => {
                let wide = matches!(inst, Inst::St { .. });
                self.a.load(RCX, RBP, rslot(base));
                if disp != 0 {
                    self.a.lea(RCX, RCX, disp);
                }
                self.a.load(RDX, RBP, rslot(src));
                let l_slow = self.a.new_label();
                let l_done = self.a.new_label();
                self.emit_mem_check(wide, true, l_slow);
                self.emit_mem_commit_write(wide);
                self.a.bind(l_done);
                let op = if wide { MemOp::Write } else { MemOp::Write8 };
                self.queue_mem_slow(l_slow, l_done, op, addr);
                self.pend(&inst, false);
            }
            Inst::Push { src } => {
                self.a.load(RCX, RBP, rslot(Reg::SP));
                self.a.lea(RCX, RCX, -8);
                self.a.load(RDX, RBP, rslot(src));
                let l_slow = self.a.new_label();
                let l_done = self.a.new_label();
                self.emit_mem_check(true, true, l_slow);
                self.emit_mem_commit_write(true);
                self.a.store(RBP, rslot(Reg::SP), RCX);
                self.a.bind(l_done);
                self.queue_mem_slow(l_slow, l_done, MemOp::Push, addr);
                self.pend(&inst, false);
            }
            Inst::Pop { dst } => {
                self.a.load(RCX, RBP, rslot(Reg::SP));
                let l_slow = self.a.new_label();
                let l_done = self.a.new_label();
                self.emit_mem_check(true, false, l_slow);
                self.emit_mem_read(true);
                self.a.lea(RCX, RCX, 8);
                self.a.store(RBP, rslot(Reg::SP), RCX);
                self.a.bind(l_done);
                self.a.store(RBP, rslot(dst), RAX);
                self.queue_mem_slow(l_slow, l_done, MemOp::Pop, addr);
                self.pend(&inst, false);
            }
            Inst::CMov { cc: cond, dst, src } => {
                self.cond_to_cf(cond);
                self.a.load(RAX, RBP, rslot(src));
                self.a.load(RDX, RBP, rslot(dst));
                self.a.cmovcc(cc::B, RDX, RAX);
                self.a.store(RBP, rslot(dst), RDX);
                self.pend(&inst, false);
            }
            Inst::Alu { op, dst, src } => {
                self.a.load(RAX, RBP, rslot(dst));
                self.a.load(RCX, RBP, rslot(src));
                self.emit_alu(addr, &inst, op, dst);
            }
            Inst::AluI { op, dst, imm } => {
                self.a.load(RAX, RBP, rslot(dst));
                self.a.mov_ri32(RCX, imm);
                self.emit_alu(addr, &inst, op, dst);
            }
            Inst::Neg { dst } => {
                self.a.load(RAX, RBP, rslot(dst));
                self.a.neg(RAX);
                self.a.store(RBP, rslot(dst), RAX);
                self.capture_full();
                self.pend(&inst, false);
            }
            Inst::Not { dst } => {
                self.a.load(RAX, RBP, rslot(dst));
                self.a.not(RAX);
                self.a.store(RBP, rslot(dst), RAX);
                self.a.test_rr(RAX, RAX);
                self.capture_logic();
                self.pend(&inst, false);
            }
            Inst::Lea { dst, base, disp } => {
                self.a.load(RAX, RBP, rslot(base));
                self.a.lea(RAX, RAX, disp);
                self.a.store(RBP, rslot(dst), RAX);
                self.pend(&inst, false);
            }
            Inst::Lea2 { dst, base, index, disp } => {
                self.a.load(RAX, RBP, rslot(base));
                self.a.load(RCX, RBP, rslot(index));
                self.a.lea2(RAX, RAX, RCX, disp);
                self.a.store(RBP, rslot(dst), RAX);
                self.pend(&inst, false);
            }
            Inst::LeaSub { dst, base, index, disp } => {
                // base - index + disp == base + !index + (disp + 1), which
                // keeps the whole thing flag-free lea arithmetic.
                self.a.load(RCX, RBP, rslot(index));
                self.a.not(RCX);
                self.a.load(RAX, RBP, rslot(base));
                if disp == i32::MAX {
                    self.a.lea2(RAX, RAX, RCX, disp);
                    self.a.lea(RAX, RAX, 1);
                } else {
                    self.a.lea2(RAX, RAX, RCX, disp + 1);
                }
                self.a.store(RBP, rslot(dst), RAX);
                self.pend(&inst, false);
            }
            Inst::Jmp { .. } => {
                let target = inst.direct_target(addr).expect("jmp target");
                self.flush();
                self.branch_acct(self.cost.cost(&inst, true), true);
                self.transfer(target);
            }
            Inst::Jcc { cc: cond, .. } => {
                let target = inst.direct_target(addr).expect("jcc target");
                self.flush();
                self.cond_to_cf(cond);
                let l_taken = self.a.new_label();
                self.a.jcc(cc::B, l_taken);
                self.branch_acct(self.cost.cost(&inst, false), false);
                self.outl.push(Outl::Taken {
                    l: l_taken,
                    cost: self.cost.cost(&inst, true),
                    target,
                });
            }
            Inst::JRz { src, .. } | Inst::JRnz { src, .. } => {
                let target = inst.direct_target(addr).expect("jr target");
                self.flush();
                self.a.load(RAX, RBP, rslot(src));
                self.a.test_rr(RAX, RAX);
                let l_taken = self.a.new_label();
                let host_cc = if matches!(inst, Inst::JRz { .. }) { cc::E } else { cc::NE };
                self.a.jcc(host_cc, l_taken);
                self.branch_acct(self.cost.cost(&inst, false), false);
                self.outl.push(Outl::Taken {
                    l: l_taken,
                    cost: self.cost.cost(&inst, true),
                    target,
                });
            }
            // Translator output never contains raw calls/returns (they are
            // rewritten into glue + exit sites); refuse rather than guess.
            Inst::Call { .. } | Inst::CallR { .. } | Inst::JmpR { .. } | Inst::Ret => {
                return Err(CompileBail::Unsupported)
            }
        }
        Ok(())
    }
}

/// Whether this build/host/environment can run the native backend at all
/// (`x86-64 Linux`, and `CFED_NO_NATIVE` not set to a truthy value).
pub fn native_enabled() -> bool {
    let platform = cfg!(all(target_arch = "x86_64", target_os = "linux"));
    let disabled =
        std::env::var("CFED_NO_NATIVE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    platform && !disabled
}

/// A [`Dbt`] with a native x86-64 execution tier.
///
/// Translation, chaining decisions, dispatch, SMC handling and all
/// statistics remain the engine's; this wrapper only swaps the *execution*
/// of translated cache code from the fused interpreter to compiled host
/// code. Falls back to [`Dbt::run`] wholesale when the platform lacks RWX
/// code buffers, `CFED_NO_NATIVE` is set, or a tracer is attached — results
/// are bit-identical either way.
///
/// # Examples
///
/// ```
/// use cfed_dbt::{DbtExit, NativeDbt, NullInstrumenter, UpdateStyle};
/// use cfed_isa::{encode_all, AluOp, Cond, Inst, Reg};
/// use cfed_sim::Machine;
///
/// let code = encode_all(&[
///     Inst::MovRI { dst: Reg::R0, imm: 5 },
///     Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 },
///     Inst::Jcc { cc: Cond::Ne, offset: -16 },
///     Inst::Halt,
/// ]);
/// let mut m = Machine::load(&code, &[], 0);
/// let mut dbt = NativeDbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
/// assert_eq!(dbt.run(&mut m, 10_000), DbtExit::Halted { code: 0 });
/// ```
pub struct NativeDbt {
    dbt: Dbt,
    jit: Option<Jit>,
}

impl NativeDbt {
    /// Creates the engine; native execution is enabled when
    /// [`native_enabled`] says the platform and environment allow it.
    pub fn new(instr: Box<dyn Instrumenter>, style: UpdateStyle, m: &mut Machine) -> NativeDbt {
        Self::with_native(instr, style, m, native_enabled())
    }

    /// As [`NativeDbt::new`] with an explicit native on/off switch (used by
    /// harnesses that must not depend on ambient environment variables).
    pub fn with_native(
        instr: Box<dyn Instrumenter>,
        style: UpdateStyle,
        m: &mut Machine,
        native: bool,
    ) -> NativeDbt {
        Self::with_options(instr, style, m, native, None)
    }

    /// As [`NativeDbt::with_native`], optionally constructing a tiered
    /// engine (see [`Dbt::new_tiered`]) that promotes hot blocks to
    /// optimized traces. Traces execute natively like any other
    /// translation: installs bump the generation key, which nukes and
    /// lazily recompiles host code.
    pub fn with_options(
        instr: Box<dyn Instrumenter>,
        style: UpdateStyle,
        m: &mut Machine,
        native: bool,
        tier: Option<crate::trace::TierConfig>,
    ) -> NativeDbt {
        let dbt = match tier {
            Some(config) => Dbt::new_tiered(instr, style, m, config),
            None => Dbt::new(instr, style, m),
        };
        let mut jit = if native { Jit::new() } else { None };
        if let Some(j) = jit.as_mut() {
            j.gen = dbt.gen_key();
        }
        NativeDbt { dbt, jit }
    }

    /// `true` when translated blocks actually execute as host code.
    pub fn is_native(&self) -> bool {
        self.jit.is_some()
    }

    /// The underlying engine (stats, block table, cache region...).
    pub fn dbt(&self) -> &Dbt {
        &self.dbt
    }

    /// Mutable access to the underlying engine (tuning knobs).
    pub fn dbt_mut(&mut self) -> &mut Dbt {
        &mut self.dbt
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> crate::engine::DbtStats {
        self.dbt.stats()
    }

    /// Runs until halt, surfaced trap, or `max_insts` retired instructions,
    /// bit-identical to [`Dbt::run`] on the same machine.
    pub fn run(&mut self, m: &mut Machine, max_insts: u64) -> DbtExit {
        let NativeDbt { dbt, jit } = self;
        let Some(jit) = jit.as_mut() else {
            return dbt.run(m, max_insts);
        };
        if m.tracer.is_some() {
            // Tracing wants per-instruction visibility; stay interpreted.
            return dbt.run(m, max_insts);
        }
        jit.check_gen(dbt);
        let start = m.cpu.stats().insts;
        loop {
            let used = m.cpu.stats().insts - start;
            if used >= max_insts {
                dbt.emit_stats();
                return DbtExit::StepLimit;
            }
            let remaining = max_insts - used;
            if remaining < NATIVE_MIN_BUDGET {
                // Interpreted tail: lands the step limit on the exact
                // instruction boundary Dbt::run would.
                return dbt.run(m, remaining);
            }
            if !dbt.attached {
                // Attach strictly after the budget checks, as Dbt::run does.
                if let Err(t) = dbt.attach(m) {
                    dbt.emit_stats();
                    return DbtExit::Trapped(t);
                }
                jit.check_gen(dbt);
            }
            let ip = m.cpu.ip();
            let entry = match jit.entries.get(&ip).copied() {
                Some(e) => Some(e),
                None => match dbt.blocks().find(|b| b.cache_start == ip).copied() {
                    Some(tb) => jit.ensure_compiled(dbt, m, &tb),
                    None => None,
                },
            };
            let Some(entry) = entry else {
                // Not native-executable here (mid-block resume, err stub,
                // uncompilable block): interpret one step and re-evaluate.
                match dbt.step(m) {
                    DbtStep::Continue => {
                        jit.check_gen(dbt);
                        jit.resync_chains(dbt, m);
                        jit.resync_ic(dbt, m);
                        continue;
                    }
                    DbtStep::Halted => {
                        dbt.emit_stats();
                        return DbtExit::Halted { code: m.cpu.reg(Reg::R0) };
                    }
                    DbtStep::Exit(t) => {
                        dbt.emit_stats();
                        return DbtExit::Trapped(t);
                    }
                }
            };
            jit.enter(m, entry, remaining);
            dbt.stats.dispatches += jit.ctx.d_dispatches;
            dbt.stats.dispatch_ic_hits += jit.ctx.d_ic_hits;
            match jit.ctx.exit_kind {
                XK_HALT => {
                    m.cpu.set_ip(jit.ctx.exit_ip);
                    m.cpu.set_halted();
                    dbt.emit_stats();
                    return DbtExit::Halted { code: m.cpu.reg(Reg::R0) };
                }
                XK_BUDGET => {
                    m.cpu.set_ip(jit.ctx.exit_ip);
                }
                XK_ENTER => {
                    let resume = jit.ctx.resume_ip;
                    let slot = jit.ctx.slot_addr;
                    m.cpu.set_ip(resume);
                    if let Some(tb) = dbt.blocks().find(|b| b.cache_start == resume).copied() {
                        let nukes = jit.nukes;
                        if let Some(host) = jit.ensure_compiled(dbt, m, &tb) {
                            if slot != 0 && jit.nukes == nukes {
                                jit.buf.patch(slot, &x86::jmp_rel32_bytes(slot, host));
                            }
                        }
                    }
                }
                XK_TRAP => {
                    m.cpu.set_ip(jit.ctx.exit_ip);
                    // The interpreter counts the trap when raising it.
                    m.cpu.apply_native_delta(0, 0, 0, 0, 1);
                    let trap = decode_trap(jit.ctx.trap_disc, jit.ctx.trap_a, jit.ctx.trap_b);
                    let direct_idx = match trap {
                        Trap::Software { code, .. }
                            if code >= trap_codes::DBT_EXIT_BASE
                                && ((code - trap_codes::DBT_EXIT_BASE) as usize)
                                    < dbt.exits.len() =>
                        {
                            Some((code - trap_codes::DBT_EXIT_BASE) as usize)
                        }
                        _ => None,
                    };
                    let gen_before = dbt.gen_key();
                    match dbt.handle_trap(m, trap) {
                        DbtStep::Continue => {
                            jit.check_gen(dbt);
                            if dbt.gen_key() == gen_before {
                                if let Some(idx) = direct_idx {
                                    jit.try_chain(dbt, m, idx);
                                }
                            }
                            jit.chains_shadow = dbt.stats.chains;
                            jit.resync_ic(dbt, m);
                        }
                        DbtStep::Halted => {
                            dbt.emit_stats();
                            return DbtExit::Halted { code: m.cpu.reg(Reg::R0) };
                        }
                        DbtStep::Exit(t) => {
                            dbt.emit_stats();
                            return DbtExit::Trapped(t);
                        }
                    }
                }
                kind => unreachable!("bad native exit kind {kind}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_byte_roundtrip() {
        for bits in 0..64u8 {
            let f = Flags::from_bits(bits);
            assert_eq!(flags_from_host(host_flags_byte(f)), f, "bits {bits:#08b}");
            // lahf always sets bit 1; the decode must not care.
            assert_eq!(flags_from_host(host_flags_byte(f) | 0b10), f);
        }
    }

    #[test]
    fn cond_tables_match_eval() {
        // The emitted `bt` consults a bitmap; verify it against Cond::eval
        // for every condition and every possible flags byte.
        let mut tables = [0u8; 16 * 32];
        for cond in Cond::ALL {
            let base = cond.encoding() as usize * 32;
            for h in 0..256usize {
                if cond.eval(flags_from_host(h as u8)) {
                    tables[base + h / 8] |= 1 << (h % 8);
                }
            }
        }
        for cond in Cond::ALL {
            let base = cond.encoding() as usize * 32;
            for bits in 0..64u8 {
                let f = Flags::from_bits(bits);
                for noise in [0u8, 0b10, 0b1000, 0b1010] {
                    let h = (host_flags_byte(f) | noise) as usize;
                    let bit = tables[base + h / 8] >> (h % 8) & 1;
                    assert_eq!(bit == 1, cond.eval(f), "{cond:?} flags {bits:#08b}");
                }
            }
        }
    }

    #[test]
    fn trap_encoding_roundtrip() {
        let traps = [
            Trap::Software { addr: 0x1234, code: trap_codes::CFE_DETECTED },
            Trap::Software { addr: 8, code: trap_codes::DBT_EXIT_BASE + 7 },
            Trap::DivByZero { addr: 0x40 },
            Trap::OutOfRange { addr: u64::MAX },
            Trap::PermRead { addr: 0 },
            Trap::PermWrite { addr: 0x7000 },
            Trap::PermExec { addr: 0x9000 },
            Trap::UnalignedFetch { addr: 3 },
        ];
        for t in traps {
            let (d, a, b) = encode_trap(&t);
            assert_eq!(decode_trap(d, a, b), t);
        }
    }

    #[test]
    fn ctx_layout_is_stable() {
        // Emitted code bakes these in; a silent reorder would be chaos.
        assert_eq!(O_REGS, 0);
        assert_eq!(O_FLAGS, 0x80);
        assert_eq!(rslot(Reg::SP), 0x78);
        const { assert!(O_IC_TAGS > O_SESSION_LIMIT) };
        assert_eq!(O_IC_VALS - O_IC_TAGS, 8 * DISPATCH_IC_SIZE as i32);
    }
}
