//! The dynamic binary translator engine.
//!
//! Mirrors the architecture of the paper's DBT (§5): translation happens on
//! demand, one basic block at a time, into a code cache mapped with execute
//! permission; translated blocks chain to each other directly once both
//! sides exist; indirect branches (`ret`, register jumps/calls) exit to a
//! dispatcher; guest pages are write-protected after translation so
//! self-modifying code raises a fault that invalidates stale translations.
//!
//! Control transfers out of not-yet-chained blocks are implemented as
//! software-trap *exit stubs*: the trap suspends simulated execution with
//! all state intact, the runtime translates the target and patches the stub
//! into a direct jump, and execution resumes at the patched site.

use crate::cache::{patch_inst, CacheAsm};
use crate::instrument::{regs, BlockView, Instrumenter, UpdateStyle};
use crate::ir::{SideBranch, TraceOp};
use crate::trace::{plan_trace, TierConfig, TraceCandidate};
use cfed_isa::{Inst, INST_SIZE_U64};
use cfed_sim::{trap_codes, Machine, Memory, Perms, Trap, PAGE_SIZE};
use cfed_telemetry::{Event, Histogram, Telemetry, Timer};
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::Arc;

/// Cycles charged per indirect-branch dispatch, modeling the inline hash
/// lookup a production DBT performs (our runtime does the lookup natively).
pub const DEFAULT_DISPATCH_CYCLES: u64 = 12;

/// Maximum guest instructions per translated block.
const MAX_BLOCK_INSTS: usize = 512;

/// Headroom the cache keeps free for the next translation: when the cursor
/// gets within this of the usable end, the whole cache is evicted first (a
/// single translation is bounded well below this by [`MAX_BLOCK_INSTS`]).
const EVICT_RESERVE: u64 = 64 * 1024;

/// Entries in the indirect-branch dispatcher's inline cache (direct-mapped
/// on the guest target address).
pub(crate) const DISPATCH_IC_SIZE: usize = 16;

/// Bytes carved from the start of the cache region for tier-up counters when
/// the engine is constructed tiered (mapped R/W, never executable; one
/// 8-byte countdown slot per translated block).
const TIER_COUNTER_BYTES: u64 = 4 * PAGE_SIZE;

/// Instructions in the tier-up countdown prologue emitted at the head of a
/// counter-carrying block (`mov`/`ld`/`lea`/`st`/`jrnz`/trap stub); the
/// disarm patch jumps over exactly this many.
const TIER_PROLOGUE_INSTS: u64 = 6;

/// Result of one supervised execution step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbtStep {
    /// Execution continues (possibly after the runtime serviced an exit).
    Continue,
    /// The guest executed `halt`.
    Halted,
    /// A program-level trap surfaced (guest fault, hardware control-flow
    /// error detection, or an instrumentation error report).
    Exit(Trap),
}

/// Result of [`Dbt::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbtExit {
    /// Guest halted; exit code from `r0`.
    Halted { code: u64 },
    /// A program-level trap surfaced.
    Trapped(Trap),
    /// The instruction budget ran out.
    StepLimit,
}

/// Execution statistics for a DBT session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbtStats {
    /// Blocks translated.
    pub blocks: u64,
    /// Guest instructions consumed by translation.
    pub guest_insts: u64,
    /// Cache instructions emitted (instrumentation expansion shows here).
    pub cache_insts: u64,
    /// Exit stubs patched into direct chains.
    pub chains: u64,
    /// Indirect-branch dispatches serviced.
    pub dispatches: u64,
    /// Self-modifying-code flushes.
    pub smc_flushes: u64,
    /// Unconditional jumps elided by trace formation (jump inlining).
    pub inlined_jumps: u64,
    /// Full code-cache evictions (cache pressure flushed every block).
    pub cache_evictions: u64,
    /// Blocks translated again after their translation was discarded by an
    /// eviction or an SMC flush.
    pub retranslations: u64,
    /// Indirect dispatches answered by the dispatcher's inline cache
    /// (subset of `dispatches`; these skip the block-table lookup).
    pub dispatch_ic_hits: u64,
    /// Tier-2 traces installed (each passed the placement verifier).
    pub traces: u64,
    /// Tier-up attempts rejected (verifier refusal, unprofitable shape, or
    /// cache pressure); execution stayed on tier-1.
    pub trace_rejected: u64,
    /// Installed traces demoted back to tier-1 by an SMC flush.
    pub trace_demotions: u64,
    /// Countdown prologues patched out after a failed tier-up: the block
    /// stays tier-1 for good, at one jump of residual per-entry overhead.
    pub trace_disarms: u64,
}

/// A translated block's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransBlock {
    /// Guest address of the first instruction (the block's signature).
    pub guest_start: u64,
    /// Guest bytes covered.
    pub guest_len: u64,
    /// First cache address of the translation.
    pub cache_start: u64,
    /// One past the last cache address.
    pub cache_end: u64,
    /// Cache address where the 1:1 copy of the guest body begins (right
    /// after the instrumentation head).
    pub body_start: u64,
    /// Bytes of 1:1-copied body (excludes the translated terminator and its
    /// glue). Zero for jump-inlined traces, whose bodies are discontiguous.
    pub body_len: u64,
}

impl TransBlock {
    /// The cache address range occupied by the translation.
    pub fn cache_range(&self) -> Range<u64> {
        self.cache_start..self.cache_end
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum ExitKind {
    /// Patchable direct transfer to a guest target.
    Direct { guest_target: u64, site: u64 },
    /// Indirect transfer; dynamic guest target in `regs::ITARGET`.
    Indirect,
    /// Translation-time fault to surface when reached.
    Abort { trap: Trap },
    /// Tier-up request: the block's execution counter reached the compile
    /// threshold. The runtime attempts trace formation and resumes either
    /// in the installed trace or right after the stub.
    TierUp { guest_start: u64 },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct ExitDesc {
    pub(crate) kind: ExitKind,
    pub(crate) patched: bool,
}

/// The dynamic binary translator.
///
/// # Examples
///
/// ```
/// use cfed_dbt::{Dbt, DbtExit, NullInstrumenter, UpdateStyle};
/// use cfed_isa::{encode_all, Inst, Reg};
/// use cfed_sim::Machine;
///
/// let code = encode_all(&[Inst::MovRI { dst: Reg::R0, imm: 9 }, Inst::Halt]);
/// let mut m = Machine::load(&code, &[], 0);
/// let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
/// assert_eq!(dbt.run(&mut m, 1_000), DbtExit::Halted { code: 9 });
/// ```
///
/// # Cloning
///
/// `Dbt` is `Clone`: the clone duplicates all translation bookkeeping
/// (block table, exit descriptors, chain patches, protected-page set,
/// statistics) and shares the instrumenter, which is stateless — every
/// [`Instrumenter`] hook takes `&self`; signature state lives in guest
/// registers, never in the instrumenter. A clone is only meaningful paired
/// with a `Machine` whose memory holds the matching code-cache contents
/// (e.g. a [`cfed_sim::MachineSnapshot`] captured at the same moment):
/// the bookkeeping describes translations physically present in that
/// memory, and restoring either half alone desynchronizes cursor, block
/// table and cache bytes.
pub struct Dbt {
    instr: Arc<dyn Instrumenter>,
    style: UpdateStyle,
    cache: Range<u64>,
    cursor: u64,
    err_stub: u64,
    guest_code: Range<u64>,
    blocks: HashMap<u64, TransBlock>,
    pub(crate) exits: Vec<ExitDesc>,
    patched_by_target: HashMap<u64, Vec<usize>>,
    blocks_by_page: HashMap<u64, Vec<u64>>,
    protected_pages: HashSet<u64>,
    pub(crate) dispatch_cycles: u64,
    inline_jumps: bool,
    pub(crate) stats: DbtStats,
    pub(crate) attached: bool,
    /// Usable cache end; `set_cache_limit` lowers it to force eviction.
    cache_limit: u64,
    /// Cursor value right after the shared stubs — the reset point for a
    /// full eviction.
    base_cursor: u64,
    /// Bumped by every full eviction; exit indices and patch sites from an
    /// older generation are invalid.
    pub(crate) flush_gen: u64,
    /// Guest block starts ever translated, to count retranslations.
    seen_starts: HashSet<u64>,
    /// Direct-mapped inline cache for the indirect-branch dispatcher:
    /// `(guest target, cache entry)` pairs, cleared wholesale whenever any
    /// translation dies (full eviction or SMC flush).
    pub(crate) dispatch_ic: [Option<(u64, u64)>; DISPATCH_IC_SIZE],
    trans_us: Histogram,
    telemetry: Telemetry,
    /// Tier-2 state; `None` for a plain (never-tiered) engine.
    tier: Option<TierState>,
}

/// Bookkeeping of the profile-guided second tier.
#[derive(Clone)]
struct TierState {
    config: TierConfig,
    /// The R/W counter region carved from the cache.
    counters: Range<u64>,
    /// Next free counter slot (reset by full evictions).
    next_slot: u64,
    /// Guest block start → counter slot address.
    slot_of: HashMap<u64, u64>,
    /// Per-trace map of emitted guest-op cache addresses back to guest
    /// addresses (sorted by cache address; SMC recovery inside traces).
    trace_maps: HashMap<u64, Vec<(u64, u64)>>,
}

impl Clone for Dbt {
    fn clone(&self) -> Dbt {
        Dbt {
            instr: Arc::clone(&self.instr),
            style: self.style,
            cache: self.cache.clone(),
            cursor: self.cursor,
            err_stub: self.err_stub,
            guest_code: self.guest_code.clone(),
            blocks: self.blocks.clone(),
            exits: self.exits.clone(),
            patched_by_target: self.patched_by_target.clone(),
            blocks_by_page: self.blocks_by_page.clone(),
            protected_pages: self.protected_pages.clone(),
            dispatch_cycles: self.dispatch_cycles,
            inline_jumps: self.inline_jumps,
            stats: self.stats,
            attached: self.attached,
            cache_limit: self.cache_limit,
            base_cursor: self.base_cursor,
            flush_gen: self.flush_gen,
            seen_starts: self.seen_starts.clone(),
            dispatch_ic: self.dispatch_ic,
            trans_us: self.trans_us.clone(),
            telemetry: self.telemetry.clone(),
            tier: self.tier.clone(),
        }
    }
}

impl std::fmt::Debug for Dbt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dbt")
            .field("technique", &self.instr.name())
            .field("style", &self.style)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl Dbt {
    /// Creates a DBT for the loaded machine, maps the code-cache region, and
    /// emits the shared report-error stub.
    pub fn new(instr: Box<dyn Instrumenter>, style: UpdateStyle, m: &mut Machine) -> Dbt {
        Self::with_tier(instr, style, m, None)
    }

    /// Like [`Dbt::new`], but with the profile-guided second tier enabled:
    /// blocks whose technique supports trace signatures
    /// ([`Instrumenter::trace_sig`]) count their executions, and at the
    /// configured threshold the engine forms, verifies, and installs an
    /// optimized trace (see [`crate::trace`]). Guest-observable behavior is
    /// identical to a never-tiered engine; instruction/cycle costs differ.
    pub fn new_tiered(
        instr: Box<dyn Instrumenter>,
        style: UpdateStyle,
        m: &mut Machine,
        tier: TierConfig,
    ) -> Dbt {
        Self::with_tier(instr, style, m, Some(tier))
    }

    fn with_tier(
        instr: Box<dyn Instrumenter>,
        style: UpdateStyle,
        m: &mut Machine,
        tier: Option<TierConfig>,
    ) -> Dbt {
        let cache = m.layout().cache_region.clone();
        // A tiered engine carves an R/W (never executable) counter region
        // from the start of the cache; code emission starts after it.
        let tier = tier.map(|config| {
            let counters = cache.start..cache.start + TIER_COUNTER_BYTES;
            m.mem.map(counters.clone(), Perms::R | Perms::W);
            TierState {
                config,
                counters,
                next_slot: 0,
                slot_of: HashMap::new(),
                trace_maps: HashMap::new(),
            }
        });
        let code_start = tier.as_ref().map_or(cache.start, |t| t.counters.end);
        m.mem.map(code_start..cache.end, Perms::R | Perms::X);
        let mut a = CacheAsm::new(&mut m.mem, code_start);
        // The `.report_error` target of every signature check.
        let err_stub = a.emit(Inst::Trap { code: trap_codes::CFE_DETECTED });
        let cursor = a.finish();
        let cache_limit = cache.end;
        // Execute permission is enforced at page granularity (the
        // execute-disable bit), so the padding tail of the last code page is
        // fetchable and must fault as InvalidInst exactly as it does on the
        // bare machine — only beyond the page boundary is PermExec correct.
        let code = m.code_range();
        let guest_code = code.start..Memory::page_base(code.end + PAGE_SIZE - 1);
        Dbt {
            instr: Arc::from(instr),
            style,
            cache,
            cursor,
            err_stub,
            guest_code,
            blocks: HashMap::new(),
            exits: Vec::new(),
            patched_by_target: HashMap::new(),
            blocks_by_page: HashMap::new(),
            protected_pages: HashSet::new(),
            dispatch_cycles: DEFAULT_DISPATCH_CYCLES,
            inline_jumps: false,
            stats: DbtStats::default(),
            attached: false,
            cache_limit,
            base_cursor: cursor,
            flush_gen: 0,
            seen_starts: HashSet::new(),
            dispatch_ic: [None; DISPATCH_IC_SIZE],
            trans_us: Histogram::new(),
            telemetry: Telemetry::off(),
            tier,
        }
    }

    /// Whether this engine was constructed with the trace tier.
    pub fn is_tiered(&self) -> bool {
        self.tier.is_some()
    }

    /// Cache-content generation key consumed by the native backend: a full
    /// eviction, an SMC flush, a trace install, or a prologue disarm each
    /// rewrite cache bytes under previously compiled host code.
    pub(crate) fn gen_key(&self) -> (u64, u64, u64, u64) {
        (self.flush_gen, self.stats.smc_flushes, self.stats.traces, self.stats.trace_disarms)
    }

    /// Enables backend trace formation: unconditional direct jumps are
    /// elided and their targets fused into the current translation (blocks
    /// become superblock-style traces). Off by default — the paper's
    /// headline figures are measured block-at-a-time.
    pub fn set_inline_jumps(&mut self, enable: bool) {
        self.inline_jumps = enable;
    }

    /// Overrides the per-dispatch cycle charge (cost-model ablation).
    pub fn set_dispatch_cycles(&mut self, cycles: u64) {
        self.dispatch_cycles = cycles;
    }

    /// Lowers the usable cache end to force eviction under test-sized
    /// workloads (clamped to leave room for the shared stubs plus one
    /// translation's reserve).
    pub fn set_cache_limit(&mut self, limit_end: u64) {
        self.cache_limit = limit_end.clamp(self.base_cursor + EVICT_RESERVE, self.cache.end);
    }

    /// Attaches a telemetry handle; [`Dbt::emit_stats`] and run-end
    /// reporting go through it. Disabled handles cost one branch per emit
    /// site, never per executed instruction.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Per-block translation times in microseconds.
    pub fn translation_hist(&self) -> &Histogram {
        &self.trans_us
    }

    /// Emits a `dbt_stats` event carrying every counter and the
    /// translation-time histogram. Called automatically when [`Dbt::run`]
    /// finishes; call it directly when driving [`Dbt::step`] by hand.
    pub fn emit_stats(&self) {
        let s = self.stats;
        self.telemetry.emit_with(|| {
            Event::new("dbt_stats")
                .str("technique", self.instr.name())
                .u64("blocks", s.blocks)
                .u64("guest_insts", s.guest_insts)
                .u64("cache_insts", s.cache_insts)
                .u64("chains", s.chains)
                .u64("dispatches", s.dispatches)
                .u64("smc_flushes", s.smc_flushes)
                .u64("inlined_jumps", s.inlined_jumps)
                .u64("cache_evictions", s.cache_evictions)
                .u64("retranslations", s.retranslations)
                .u64("dispatch_ic_hits", s.dispatch_ic_hits)
                .u64("traces", s.traces)
                .u64("trace_rejected", s.trace_rejected)
                .u64("trace_demotions", s.trace_demotions)
                .u64("trace_disarms", s.trace_disarms)
                .json("translate_us", self.trans_us.to_json())
        });
    }

    /// The technique driving instrumentation.
    pub fn technique_name(&self) -> &'static str {
        self.instr.name()
    }

    /// Statistics so far.
    pub fn stats(&self) -> DbtStats {
        self.stats
    }

    /// The cache region.
    pub fn cache_region(&self) -> Range<u64> {
        self.cache.clone()
    }

    /// Cache address of the shared report-error stub.
    pub fn err_stub(&self) -> u64 {
        self.err_stub
    }

    /// Translated blocks, in no particular order.
    pub fn blocks(&self) -> impl Iterator<Item = &TransBlock> {
        self.blocks.values()
    }

    /// Looks up the translation of a guest block start address.
    pub fn lookup(&self, guest_addr: u64) -> Option<&TransBlock> {
        self.blocks.get(&guest_addr)
    }

    /// Finds the translated block whose cache range contains `addr`.
    pub fn block_containing(&self, addr: u64) -> Option<&TransBlock> {
        self.blocks.values().find(|b| b.cache_range().contains(&addr))
    }

    /// Maps a cache address inside a translation's 1:1-copied body back to
    /// the guest instruction it mirrors. `None` for instrumentation heads,
    /// translated terminators, exit glue and jump-inlined traces.
    fn guest_body_ip(&self, cache_ip: u64) -> Option<u64> {
        let b = self.block_containing(cache_ip)?;
        let off = cache_ip.checked_sub(b.body_start)?;
        (off < b.body_len).then(|| b.guest_start + off)
    }

    /// Redirects the CPU from the guest entry point into translated code and
    /// initializes the instrumentation registers.
    ///
    /// # Errors
    ///
    /// Surfaces the hardware trap if the entry address is not translatable.
    pub fn attach(&mut self, m: &mut Machine) -> Result<(), Trap> {
        let entry = m.cpu.ip();
        let cache_entry = self.translate(m, entry)?;
        for (reg, value) in self.instr.initial_state(entry) {
            m.cpu.set_reg(reg, value);
        }
        m.cpu.set_ip(cache_entry);
        self.attached = true;
        Ok(())
    }

    /// Executes one instruction under DBT supervision, servicing runtime
    /// exits transparently.
    pub fn step(&mut self, m: &mut Machine) -> DbtStep {
        if !self.attached {
            if let Err(t) = self.attach(m) {
                return DbtStep::Exit(t);
            }
        }
        match m.step_cpu() {
            Ok(cfed_sim::Step::Continue) => DbtStep::Continue,
            Ok(cfed_sim::Step::Halt) => DbtStep::Halted,
            Err(trap) => self.handle_trap(m, trap),
        }
    }

    /// Services a trap raised while executing translated code: runtime-exit
    /// software traps dispatch through [`Dbt::service_exit`], write faults on
    /// pages this engine protected trigger an SMC flush, and anything else
    /// surfaces to the caller.
    pub(crate) fn handle_trap(&mut self, m: &mut Machine, trap: Trap) -> DbtStep {
        match trap {
            Trap::Software { code, .. }
                if code >= trap_codes::DBT_EXIT_BASE
                    && ((code - trap_codes::DBT_EXIT_BASE) as usize) < self.exits.len() =>
            {
                let idx = (code - trap_codes::DBT_EXIT_BASE) as usize;
                self.service_exit(m, idx)
            }
            Trap::PermWrite { addr } if self.protected_pages.contains(&Memory::page_base(addr)) => {
                // A store into a page backing live translations. Flushing
                // the page is not enough when the faulting store and its
                // victim share a translation: resuming in cache would run
                // the stale tail. Hop back to guest space instead — retire
                // the store by interpretation (the page is unprotected after
                // the flush), then re-attach at the next guest instruction
                // so everything downstream is retranslated from the patched
                // bytes.
                let resume =
                    self.guest_body_ip(m.cpu.ip()).or_else(|| self.trace_guest_ip(m.cpu.ip()));
                self.smc_flush(m, Memory::page_base(addr));
                let Some(guest_store) = resume else {
                    // Store came from glue or a jump-inlined trace: the old
                    // path — it re-executes in cache against the
                    // now-unprotected page; only *other* translations could
                    // have been stale, and those were just flushed.
                    return DbtStep::Continue;
                };
                m.cpu.set_ip(guest_store);
                match m.step_cpu() {
                    Ok(cfed_sim::Step::Continue) => {}
                    Ok(cfed_sim::Step::Halt) => return DbtStep::Halted,
                    Err(t) => return DbtStep::Exit(t),
                }
                let next = m.cpu.ip();
                for (reg, value) in self.instr.initial_state(next) {
                    m.cpu.set_reg(reg, value);
                }
                match self.translate(m, next) {
                    Ok(cache_next) => {
                        m.cpu.set_ip(cache_next);
                        DbtStep::Continue
                    }
                    Err(t) => DbtStep::Exit(t),
                }
            }
            other => DbtStep::Exit(other),
        }
    }

    /// Runs under supervision until halt, surfaced trap, or `max_insts`
    /// retired guest+instrumentation instructions.
    ///
    /// When the machine has a decode cache and no tracer attached, execution
    /// proceeds in block-fused bursts ([`Machine::run_burst`]): translated
    /// code re-validates its decoded page once on block entry and then runs
    /// straight-line without per-instruction cache lookups, falling back to
    /// this engine only at traps (runtime exits, SMC faults). Architectural
    /// results are bit-identical to the per-step path.
    pub fn run(&mut self, m: &mut Machine, max_insts: u64) -> DbtExit {
        let start = m.cpu.stats().insts;
        let fused = m.tracer.is_none() && m.has_decode_cache();
        loop {
            let used = m.cpu.stats().insts - start;
            if used >= max_insts {
                self.emit_stats();
                return DbtExit::StepLimit;
            }
            let step = if fused {
                if !self.attached {
                    if let Err(t) = self.attach(m) {
                        self.emit_stats();
                        return DbtExit::Trapped(t);
                    }
                }
                match m.run_burst(max_insts - used) {
                    Ok(cfed_sim::Step::Continue) => DbtStep::Continue,
                    Ok(cfed_sim::Step::Halt) => DbtStep::Halted,
                    Err(trap) => self.handle_trap(m, trap),
                }
            } else {
                self.step(m)
            };
            match step {
                DbtStep::Continue => {}
                DbtStep::Halted => {
                    self.emit_stats();
                    return DbtExit::Halted { code: m.cpu.reg(cfed_isa::Reg::R0) };
                }
                DbtStep::Exit(t) => {
                    self.emit_stats();
                    return DbtExit::Trapped(t);
                }
            }
        }
    }

    fn service_exit(&mut self, m: &mut Machine, idx: usize) -> DbtStep {
        match self.exits[idx].kind {
            ExitKind::Direct { guest_target, site } => {
                let gen = self.flush_gen;
                let cache_target = match self.translate(m, guest_target) {
                    Ok(c) => c,
                    Err(t) => return DbtStep::Exit(t),
                };
                if self.flush_gen != gen {
                    // Translating evicted the cache; the exit site (and its
                    // descriptor index) died with the old generation. Enter
                    // the fresh translation directly instead of patching.
                    m.cpu.set_ip(cache_target);
                    return DbtStep::Continue;
                }
                patch_inst(
                    &mut m.mem,
                    site,
                    Inst::Jmp { offset: CacheAsm::rel(site, cache_target) },
                );
                self.exits[idx].patched = true;
                self.patched_by_target.entry(guest_target).or_default().push(idx);
                self.stats.chains += 1;
                // ip still addresses the (now patched) site; resuming
                // executes the chain jump.
                DbtStep::Continue
            }
            ExitKind::Indirect => {
                let guest_target = m.cpu.reg(regs::ITARGET);
                m.cpu.add_cycles(self.dispatch_cycles);
                self.stats.dispatches += 1;
                let slot = (guest_target / INST_SIZE_U64) as usize % DISPATCH_IC_SIZE;
                if let Some((tag, cached)) = self.dispatch_ic[slot] {
                    if tag == guest_target {
                        self.stats.dispatch_ic_hits += 1;
                        m.cpu.set_ip(cached);
                        return DbtStep::Continue;
                    }
                }
                match self.translate(m, guest_target) {
                    Ok(c) => {
                        self.dispatch_ic[slot] = Some((guest_target, c));
                        m.cpu.set_ip(c);
                        DbtStep::Continue
                    }
                    Err(t) => DbtStep::Exit(t),
                }
            }
            ExitKind::Abort { trap } => DbtStep::Exit(trap),
            ExitKind::TierUp { guest_start } => {
                // ip addresses the tier-up trap stub inside the block head;
                // the instrumentation head has not run yet, so the on-edge
                // signature invariant still holds — a trace entered here
                // starts from the same state as the tier-1 head.
                let resume = m.cpu.ip() + INST_SIZE_U64;
                match self.try_promote(m, guest_start) {
                    Some(trace_entry) => m.cpu.set_ip(trace_entry),
                    None => {
                        // No trace: the counter has fired (and gone
                        // negative), so the countdown is dead weight —
                        // patch the prologue into a jump over itself.
                        self.disarm_tier_counter(m, guest_start);
                        m.cpu.set_ip(resume);
                    }
                }
                DbtStep::Continue
            }
        }
    }

    /// Translates the guest block starting at `guest_addr` (or returns the
    /// existing translation).
    ///
    /// # Errors
    ///
    /// Returns the hardware trap a real machine would raise for the target:
    /// [`Trap::UnalignedFetch`] for misaligned addresses,
    /// [`Trap::PermExec`] for targets outside the guest code region.
    pub fn translate(&mut self, m: &mut Machine, guest_addr: u64) -> Result<u64, Trap> {
        if let Some(b) = self.blocks.get(&guest_addr) {
            return Ok(b.cache_start);
        }
        if !guest_addr.is_multiple_of(INST_SIZE_U64) {
            return Err(Trap::UnalignedFetch { addr: guest_addr });
        }
        if !self.guest_code.contains(&guest_addr) {
            return Err(Trap::PermExec { addr: guest_addr });
        }
        if self.cursor + EVICT_RESERVE > self.cache_limit {
            self.evict_all(m);
        }
        if !self.seen_starts.insert(guest_addr) {
            self.stats.retranslations += 1;
        }
        let timer = Timer::start();

        // ---- decode the guest block (optionally extended into a trace) ----
        let mut insts = Vec::new();
        let mut addr = guest_addr;
        let mut abort: Option<Trap> = None;
        // Guest ranges covered (more than one when jump inlining stitches a
        // trace together); used for page protection.
        let mut ranges: Vec<Range<u64>> = Vec::new();
        let mut seg_start = guest_addr;
        let mut visited_segments = vec![guest_addr];
        let terminator = loop {
            if !self.guest_code.contains(&addr) {
                abort = Some(Trap::PermExec { addr });
                break None;
            }
            let bytes: [u8; 8] = m.mem.peek(addr, 8).try_into().expect("guest code in range");
            match Inst::decode(&bytes) {
                Ok(inst @ Inst::Jmp { .. })
                    if self.inline_jumps && insts.len() < MAX_BLOCK_INSTS =>
                {
                    // Backend trace formation: elide the unconditional jump
                    // and keep decoding at its target, fusing the blocks
                    // into one translation (the paper's Backend module
                    // optimizes hot code similarly, §5).
                    let target = inst.direct_target(addr).expect("direct");
                    let ok = target % INST_SIZE_U64 == 0
                        && self.guest_code.contains(&target)
                        && !visited_segments.contains(&target)
                        && !self.blocks.contains_key(&target);
                    if !ok {
                        break Some((inst, addr));
                    }
                    ranges.push(seg_start..addr + INST_SIZE_U64);
                    self.stats.inlined_jumps += 1;
                    visited_segments.push(target);
                    seg_start = target;
                    addr = target;
                }
                Ok(inst) if inst.is_terminator() => break Some((inst, addr)),
                Ok(inst) => {
                    insts.push(inst);
                    addr += INST_SIZE_U64;
                    if insts.len() >= MAX_BLOCK_INSTS {
                        break None; // split: synthetic fall-through edge
                    }
                }
                Err(cause) => {
                    abort = Some(Trap::InvalidInst { addr, cause });
                    break None;
                }
            }
        };
        let guest_end = terminator.map_or(addr, |(_, taddr)| taddr + INST_SIZE_U64);
        ranges.push(seg_start..guest_end.max(seg_start + INST_SIZE_U64));
        self.stats.guest_insts += insts.len() as u64 + terminator.is_some() as u64;

        let view = BlockView {
            guest_start: guest_addr,
            ends_with_ret: matches!(terminator, Some((Inst::Ret, _))),
            ends_with_halt: matches!(terminator, Some((Inst::Halt, _))),
            has_back_edge: match terminator {
                Some((t, taddr)) => t.direct_target(taddr).is_some_and(|tgt| tgt <= taddr),
                None => false,
            },
        };
        let check = self.instr.wants_check(&view);

        // ---- emit the translation ----
        let tier_counter = self.alloc_tier_counter(m, guest_addr);
        let cache_start = self.cursor;
        // Collect exit descriptors created during emission; allocated after
        // emission because sites are only known then.
        let mut new_exits: Vec<(u64, ExitKind)> = Vec::new(); // (site, kind)

        let mut a = CacheAsm::new(&mut m.mem, cache_start);
        if let Some(counter) = tier_counter {
            // Tier-up countdown, ahead of the instrumentation head so the
            // on-edge signature invariant still holds at the trap stub. All
            // flag-free (`ld`/`st`/`lea`/`jrnz`); `AUX`/`CHK` are dead at
            // block boundaries. The counter goes negative after firing once
            // and never fires again.
            a.emit(Inst::MovRI { dst: regs::AUX, imm: counter as i32 });
            a.emit(Inst::Ld { dst: regs::CHK, base: regs::AUX, disp: 0 });
            a.emit(Inst::Lea { dst: regs::CHK, base: regs::CHK, disp: -1 });
            a.emit(Inst::St { base: regs::AUX, src: regs::CHK, disp: 0 });
            let skip = a.new_label();
            a.jrnz_to(regs::CHK, skip);
            let site = a.here();
            a.emit(Inst::Nop); // becomes the tier-up trap stub
            new_exits.push((site, ExitKind::TierUp { guest_start: guest_addr }));
            a.bind(skip);
            debug_assert_eq!(a.here(), cache_start + TIER_PROLOGUE_INSTS * INST_SIZE_U64);
        }
        self.instr.emit_head(&mut a, guest_addr, check, self.err_stub);
        let body_start = a.here();
        for inst in &insts {
            a.emit(*inst);
        }

        let cur = guest_addr;
        match terminator {
            Some((inst @ Inst::Jmp { .. }, taddr)) => {
                let target = inst.direct_target(taddr).expect("direct");
                self.instr.emit_update_direct(&mut a, cur, target);
                Self::emit_exit_direct(&self.blocks, &mut a, target, &mut new_exits);
            }
            Some((inst @ (Inst::Jcc { .. } | Inst::JRz { .. } | Inst::JRnz { .. }), taddr)) => {
                let taken = inst.direct_target(taddr).expect("direct");
                let fall = taddr + INST_SIZE_U64;
                // Conditional signature update, emitted BEFORE the original
                // branch (the temporal separation that lets the techniques
                // catch mistaken-branch errors, category A). Two flavors:
                // cmov-style (Figure 8) or branch-style via an inserted
                // selector branch mirroring the condition (the paper's
                // "Jcc" configuration, Figure 14).
                if self.instr.has_updates() {
                    let cmov_done = match (self.style, inst) {
                        (UpdateStyle::CMov, Inst::Jcc { cc, .. }) => {
                            self.instr.emit_update_cond_cmov(&mut a, cur, taken, fall, cc)
                        }
                        _ => false,
                    };
                    if !cmov_done {
                        self.instr.emit_pre_selector(&mut a, cur);
                        let lu = a.new_label();
                        let lj = a.new_label();
                        match inst {
                            Inst::Jcc { cc, .. } => a.jcc_to(cc, lu),
                            Inst::JRz { src, .. } => a.jrz_to(src, lu),
                            Inst::JRnz { src, .. } => a.jrnz_to(src, lu),
                            _ => unreachable!(),
                        };
                        self.instr.emit_selector_update(&mut a, cur, fall);
                        a.jmp_to(lj);
                        a.bind(lu);
                        self.instr.emit_selector_update(&mut a, cur, taken);
                        a.bind(lj);
                    }
                }
                // The original branch, translated to target the exit sites.
                let lt = a.new_label();
                match inst {
                    Inst::Jcc { cc, .. } => a.jcc_to(cc, lt),
                    Inst::JRz { src, .. } => a.jrz_to(src, lt),
                    Inst::JRnz { src, .. } => a.jrnz_to(src, lt),
                    _ => unreachable!(),
                };
                Self::emit_exit_direct(&self.blocks, &mut a, fall, &mut new_exits);
                a.bind(lt);
                Self::emit_exit_direct(&self.blocks, &mut a, taken, &mut new_exits);
            }
            Some((inst @ Inst::Call { .. }, taddr)) => {
                let target = inst.direct_target(taddr).expect("direct");
                let guest_ret = taddr + INST_SIZE_U64;
                a.emit(Inst::MovRI { dst: regs::GRET, imm: guest_ret as i32 });
                a.emit(Inst::Push { src: regs::GRET });
                self.instr.emit_update_direct(&mut a, cur, target);
                Self::emit_exit_direct(&self.blocks, &mut a, target, &mut new_exits);
            }
            Some((Inst::CallR { target }, taddr)) => {
                let guest_ret = taddr + INST_SIZE_U64;
                a.emit(Inst::MovRR { dst: regs::ITARGET, src: target });
                a.emit(Inst::MovRI { dst: regs::GRET, imm: guest_ret as i32 });
                a.emit(Inst::Push { src: regs::GRET });
                self.instr.emit_update_indirect(&mut a, cur, regs::ITARGET);
                let site = a.here();
                a.emit(Inst::Nop); // placeholder, rewritten below
                new_exits.push((site, ExitKind::Indirect));
            }
            Some((Inst::JmpR { target }, _)) => {
                a.emit(Inst::MovRR { dst: regs::ITARGET, src: target });
                self.instr.emit_update_indirect(&mut a, cur, regs::ITARGET);
                let site = a.here();
                a.emit(Inst::Nop);
                new_exits.push((site, ExitKind::Indirect));
            }
            Some((Inst::Ret, _)) => {
                a.emit(Inst::Pop { dst: regs::ITARGET });
                self.instr.emit_update_indirect(&mut a, cur, regs::ITARGET);
                let site = a.here();
                a.emit(Inst::Nop);
                new_exits.push((site, ExitKind::Indirect));
            }
            Some((Inst::Halt, _)) => {
                self.instr.emit_end_check(&mut a, cur, self.err_stub);
                a.emit(Inst::Halt);
            }
            Some((Inst::Trap { code }, _)) => {
                a.emit(Inst::Trap { code });
            }
            Some((other, taddr)) => {
                unreachable!("non-terminator {other:?} at {taddr:#x} ended block")
            }
            None => match abort {
                Some(trap) => {
                    let site = a.here();
                    a.emit(Inst::Nop);
                    new_exits.push((site, ExitKind::Abort { trap }));
                }
                None => {
                    // Block split at MAX_BLOCK_INSTS: synthetic fall-through.
                    self.instr.emit_update_direct(&mut a, cur, addr);
                    Self::emit_exit_direct(&self.blocks, &mut a, addr, &mut new_exits);
                }
            },
        }
        let cache_end = a.finish();
        self.register_exits(m, new_exits);

        // Record the block and protect its guest pages (SMC detection).
        let block = TransBlock {
            guest_start: guest_addr,
            guest_len: ranges.iter().map(|r| r.end - r.start).sum(),
            cache_start,
            cache_end,
            body_start,
            body_len: if visited_segments.len() == 1 {
                insts.len() as u64 * INST_SIZE_U64
            } else {
                0
            },
        };
        self.stats.blocks += 1;
        self.stats.cache_insts += (cache_end - cache_start) / INST_SIZE_U64;
        self.blocks.insert(guest_addr, block);
        self.protect_ranges(m, guest_addr, &ranges);

        self.cursor = cache_end;
        assert!(self.cursor <= self.cache_limit, "code cache exhausted");
        timer.observe_into(&mut self.trans_us);
        Ok(cache_start)
    }

    /// Discards every translation: clears the block index, exit
    /// descriptors, chain records and page protections, and resets the
    /// cursor to just past the shared stubs. Bumps the flush generation so
    /// in-flight exit servicing knows its descriptor index is stale. The
    /// old cache bytes stay in memory but become unreachable — nothing
    /// chains into them and the dispatcher only enters fresh translations.
    fn evict_all(&mut self, m: &mut Machine) {
        for page in self.protected_pages.drain() {
            m.mem.unprotect_page(page);
        }
        self.blocks.clear();
        self.exits.clear();
        self.patched_by_target.clear();
        self.blocks_by_page.clear();
        self.dispatch_ic = [None; DISPATCH_IC_SIZE];
        self.cursor = self.base_cursor;
        self.flush_gen += 1;
        self.stats.cache_evictions += 1;
        if let Some(tier) = self.tier.as_mut() {
            tier.slot_of.clear();
            tier.next_slot = 0;
            tier.trace_maps.clear();
        }
    }

    /// Allocates (or reuses) the tier-up counter slot for a block about to
    /// be translated and re-arms it to the compile threshold. `None` when
    /// the engine is untiered, the technique has no trace signature model,
    /// jump inlining owns trace formation, or the slots are exhausted.
    fn alloc_tier_counter(&mut self, m: &mut Machine, guest_addr: u64) -> Option<u64> {
        if self.inline_jumps || self.instr.trace_sig().is_none() {
            return None;
        }
        let tier = self.tier.as_mut()?;
        let addr = match tier.slot_of.get(&guest_addr) {
            Some(&addr) => addr,
            None => {
                let cap = (tier.counters.end - tier.counters.start) / 8;
                if tier.next_slot >= cap {
                    return None;
                }
                let addr = tier.counters.start + tier.next_slot * 8;
                tier.next_slot += 1;
                tier.slot_of.insert(guest_addr, addr);
                addr
            }
        };
        m.mem.install(addr, &u64::from(tier.config.compile_threshold).to_le_bytes());
        Some(addr)
    }

    /// Attempts tier-up at `entry`: walks a trace, verifies the optimized
    /// placement against the technique's `GEN_SIG`/`CHECK_SIG` conditions,
    /// and installs it. Returns the trace's cache entry, or `None` (counted
    /// in [`DbtStats::trace_rejected`] when a formed plan was refused) with
    /// tier-1 left untouched.
    fn try_promote(&mut self, m: &mut Machine, entry: u64) -> Option<u64> {
        let sig = self.instr.trace_sig()?;
        let tier = self.tier.as_ref()?;
        if !self.blocks.contains_key(&entry) {
            return None;
        }
        let cand = {
            let mem = &m.mem;
            let slot_of = &tier.slot_of;
            let instr = &self.instr;
            // Successor hotness = remaining countdown, clamped at zero for
            // blocks that already fired. Counters live in guest memory, so
            // fused-interpreter and native runs read identical profiles and
            // form identical traces.
            plan_trace(
                mem,
                &self.guest_code,
                entry,
                sig,
                |view| instr.wants_check(view),
                |g| {
                    slot_of.get(&g).map(|&addr| {
                        let bytes: [u8; 8] = mem.peek(addr, 8).try_into().expect("counter slot");
                        i64::from_le_bytes(bytes).max(0) as u64
                    })
                },
            )?
        };
        if tier.config.verifier.verify(&cand.plan).is_err() {
            self.stats.trace_rejected += 1;
            return None;
        }
        // Worst-case emission size: every op can cost two cache slots, plus
        // side-exit stubs. Reject under cache pressure rather than evicting
        // (the eviction would discard the very profile that got us here).
        let est = (cand.plan.ops.len() as u64 * 2 + 8) * INST_SIZE_U64;
        if self.cursor + est + EVICT_RESERVE > self.cache_limit {
            self.stats.trace_rejected += 1;
            return None;
        }
        Some(self.install_trace(m, cand))
    }

    /// Emits a verified trace plan into the cache and swaps it in for the
    /// entry block: existing chains into the block are re-pointed at the
    /// trace, covered guest pages are (re)protected, and the guest-op map
    /// is recorded for SMC recovery.
    fn install_trace(&mut self, m: &mut Machine, cand: TraceCandidate) -> u64 {
        let timer = Timer::start();
        let entry_guest = cand.plan.entry_sig;
        let cache_start = self.cursor;
        let mut new_exits: Vec<(u64, ExitKind)> = Vec::new();
        let mut map: Vec<(u64, u64)> = Vec::new();
        let mut stubs: Vec<(crate::cache::Label, u64, i64)> = Vec::new();
        let mut a = CacheAsm::new(&mut m.mem, cache_start);
        fn lea_adjust(a: &mut CacheAsm<'_>, adjust: i64) {
            if adjust != 0 {
                let disp = i32::try_from(adjust).expect("trace adjust fits i32");
                a.emit(Inst::Lea { dst: regs::PC_PRIME, base: regs::PC_PRIME, disp });
            }
        }
        for op in &cand.plan.ops {
            match *op {
                TraceOp::SigAdd { delta } => lea_adjust(&mut a, delta),
                TraceOp::Check => {
                    a.jrnz_abs(regs::PC_PRIME, self.err_stub);
                }
                TraceOp::Guest { guest_addr, inst } => {
                    map.push((a.here(), guest_addr));
                    a.emit(inst);
                }
                TraceOp::SideExit { branch, target, adjust } => {
                    let l = a.new_label();
                    match branch {
                        SideBranch::Cc(cc) => a.jcc_to(cc, l),
                        SideBranch::Rz(r) => a.jrz_to(r, l),
                        SideBranch::Rnz(r) => a.jrnz_to(r, l),
                    };
                    stubs.push((l, target, adjust));
                }
                TraceOp::Exit { target, adjust } => {
                    lea_adjust(&mut a, adjust);
                    Self::emit_exit_direct(&self.blocks, &mut a, target, &mut new_exits);
                }
                TraceOp::Loop { adjust } => {
                    lea_adjust(&mut a, adjust);
                    a.jmp_abs(cache_start);
                }
            }
        }
        // Side-exit stubs after the trace body: adjust the signature for the
        // not-followed edge, then transfer like any tier-1 direct exit.
        for (l, target, adjust) in stubs {
            a.bind(l);
            lea_adjust(&mut a, adjust);
            Self::emit_exit_direct(&self.blocks, &mut a, target, &mut new_exits);
        }
        let cache_end = a.finish();
        self.register_exits(m, new_exits);

        let block = TransBlock {
            guest_start: entry_guest,
            guest_len: cand.ranges.iter().map(|r| r.end - r.start).sum(),
            cache_start,
            cache_end,
            body_start: cache_start,
            body_len: 0, // guest body is discontiguous; SMC uses trace_maps
        };
        self.stats.cache_insts += (cache_end - cache_start) / INST_SIZE_U64;
        self.blocks.insert(entry_guest, block);
        self.protect_ranges(m, entry_guest, &cand.ranges);
        // Re-point every chain into the replaced tier-1 block at the trace.
        for idx in self.patched_by_target.get(&entry_guest).cloned().unwrap_or_default() {
            if let ExitKind::Direct { site, .. } = self.exits[idx].kind {
                if self.exits[idx].patched {
                    patch_inst(
                        &mut m.mem,
                        site,
                        Inst::Jmp { offset: CacheAsm::rel(site, cache_start) },
                    );
                }
            }
        }
        // The dispatcher's inline cache may enter the replaced translation.
        self.dispatch_ic = [None; DISPATCH_IC_SIZE];
        self.tier.as_mut().expect("tiered engine").trace_maps.insert(entry_guest, map);
        self.stats.traces += 1;
        self.cursor = cache_end;
        assert!(self.cursor <= self.cache_limit, "code cache exhausted");
        timer.observe_into(&mut self.trans_us);
        cache_start
    }

    /// Patches the countdown prologue of `guest_start`'s tier-1 block into
    /// a jump over itself. Called after the counter fired but no trace was
    /// installed: the counter is negative and can never fire again, so the
    /// remaining five prologue instructions are pure per-entry overhead.
    /// The block stays tier-1 until a flush retranslates (and re-arms) it.
    fn disarm_tier_counter(&mut self, m: &mut Machine, guest_start: u64) {
        if self.tier.is_none() {
            return;
        }
        let Some(b) = self.blocks.get(&guest_start) else { return };
        let skip = b.cache_start + TIER_PROLOGUE_INSTS * INST_SIZE_U64;
        patch_inst(
            &mut m.mem,
            b.cache_start,
            Inst::Jmp { offset: CacheAsm::rel(b.cache_start, skip) },
        );
        self.stats.trace_disarms += 1;
    }

    /// Maps a cache address inside an installed trace back to the guest
    /// instruction it was emitted for (SMC recovery; stores are never folded
    /// so every faulting store has an exact entry).
    fn trace_guest_ip(&self, cache_ip: u64) -> Option<u64> {
        let tier = self.tier.as_ref()?;
        let b = self.block_containing(cache_ip)?;
        let map = tier.trace_maps.get(&b.guest_start)?;
        map.binary_search_by_key(&cache_ip, |&(c, _)| c).ok().map(|i| map[i].1)
    }

    /// Materializes exit descriptors and their trap stubs after an emission.
    fn register_exits(&mut self, m: &mut Machine, new_exits: Vec<(u64, ExitKind)>) {
        for (site, kind) in new_exits {
            let idx = self.exits.len();
            let patched = matches!(kind, ExitKind::Direct { .. })
                && matches!(read_inst(&m.mem, site), Inst::Jmp { .. });
            if !patched {
                patch_inst(
                    &mut m.mem,
                    site,
                    Inst::Trap { code: trap_codes::DBT_EXIT_BASE + idx as u32 },
                );
            }
            if patched {
                if let ExitKind::Direct { guest_target, .. } = kind {
                    self.patched_by_target.entry(guest_target).or_default().push(idx);
                    self.stats.chains += 1;
                }
            }
            self.exits.push(ExitDesc { kind, patched });
        }
    }

    /// Registers `guest_start` under every page the ranges cover and write-
    /// protects newly covered pages (SMC detection).
    fn protect_ranges(&mut self, m: &mut Machine, guest_start: u64, ranges: &[Range<u64>]) {
        for range in ranges {
            let mut page = Memory::page_base(range.start);
            while page < range.end {
                self.blocks_by_page.entry(page).or_default().push(guest_start);
                if self.protected_pages.insert(page) {
                    m.mem.protect_page(page);
                }
                page += PAGE_SIZE;
            }
        }
    }

    /// Emits the transfer to a guest target: a direct chain jump when the
    /// target is already translated, otherwise a patchable exit site.
    fn emit_exit_direct(
        blocks: &HashMap<u64, TransBlock>,
        a: &mut CacheAsm<'_>,
        guest_target: u64,
        new_exits: &mut Vec<(u64, ExitKind)>,
    ) {
        let site = a.here();
        if let Some(tb) = blocks.get(&guest_target) {
            a.jmp_abs(tb.cache_start);
        } else {
            a.emit(Inst::Nop); // becomes the trap stub once idx is known
        }
        new_exits.push((site, ExitKind::Direct { guest_target, site }));
    }

    /// Invalidates every translation sourced from `page` and unchains jumps
    /// into them; the guest page becomes writable again.
    fn smc_flush(&mut self, m: &mut Machine, page: u64) {
        let Some(guests) = self.blocks_by_page.remove(&page) else {
            return;
        };
        for g in guests {
            if self.blocks.remove(&g).is_none() {
                continue;
            }
            // A flushed translation that was an installed trace demotes:
            // execution falls back to tier-1 until the re-armed counter
            // proves the patched loop hot again.
            if let Some(tier) = self.tier.as_mut() {
                if tier.trace_maps.remove(&g).is_some() {
                    self.stats.trace_demotions += 1;
                }
            }
            // Unchain every patched jump into the flushed block.
            for idx in self.patched_by_target.remove(&g).unwrap_or_default() {
                if let ExitKind::Direct { site, .. } = self.exits[idx].kind {
                    patch_inst(
                        &mut m.mem,
                        site,
                        Inst::Trap { code: trap_codes::DBT_EXIT_BASE + idx as u32 },
                    );
                    self.exits[idx].patched = false;
                }
            }
        }
        // The dispatcher's inline cache may hold entries into the flushed
        // translations; drop it wholesale rather than tracking provenance.
        self.dispatch_ic = [None; DISPATCH_IC_SIZE];
        self.protected_pages.remove(&page);
        m.mem.unprotect_page(page);
        self.stats.smc_flushes += 1;
    }
}

fn read_inst(mem: &Memory, addr: u64) -> Inst {
    let bytes: [u8; 8] = mem.peek(addr, 8).try_into().expect("aligned slot");
    Inst::decode(&bytes).expect("cache instruction decodes")
}
