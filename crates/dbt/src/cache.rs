//! Code-cache emitter: writes translated instructions directly into the
//! guest address space, with local forward-reference labels.

use cfed_isa::{Cond, Inst, Reg, INST_SIZE_U64};
use cfed_sim::Memory;

/// A local label inside one block being emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Emits instructions into the code cache.
///
/// Labels are block-local: created with [`CacheAsm::new_label`], referenced
/// by the `*_to` branch emitters, bound with [`CacheAsm::bind`], and resolved
/// by [`CacheAsm::finish`].
///
/// # Examples
///
/// ```
/// use cfed_dbt::cache::CacheAsm;
/// use cfed_isa::{Inst, Reg};
/// use cfed_sim::{Memory, Perms};
///
/// let mut mem = Memory::new(1 << 16);
/// mem.map(0..0x1000, Perms::RX);
/// let mut a = CacheAsm::new(&mut mem, 0x100);
/// let skip = a.new_label();
/// a.jmp_to(skip);
/// a.emit(Inst::Halt);
/// a.bind(skip);
/// a.emit(Inst::Nop);
/// let end = a.finish();
/// assert_eq!(end, 0x100 + 24);
/// ```
#[derive(Debug)]
pub struct CacheAsm<'m> {
    mem: &'m mut Memory,
    start: u64,
    cursor: u64,
    labels: Vec<Option<u64>>,
    fixups: Vec<(u64, Label)>,
}

impl<'m> CacheAsm<'m> {
    /// Starts emitting at `start` (must be instruction aligned).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not 8-byte aligned.
    pub fn new(mem: &'m mut Memory, start: u64) -> CacheAsm<'m> {
        assert_eq!(start % INST_SIZE_U64, 0, "cache emission must be aligned");
        CacheAsm { mem, start, cursor: start, labels: Vec::new(), fixups: Vec::new() }
    }

    /// Address of the next emitted instruction.
    pub fn here(&self) -> u64 {
        self.cursor
    }

    /// Address where emission started.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Appends an instruction.
    pub fn emit(&mut self, inst: Inst) -> u64 {
        let at = self.cursor;
        self.mem.install(at, &inst.encode());
        self.cursor += INST_SIZE_U64;
        at
    }

    /// Creates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.cursor);
    }

    fn emit_branch_to(&mut self, l: Label, make: impl Fn(i32) -> Inst) -> u64 {
        let at = self.emit(make(0));
        self.fixups.push((at, l));
        // Re-encode with a placeholder; real offset patched in finish().
        at
    }

    /// Emits `jmp` to a local label.
    pub fn jmp_to(&mut self, l: Label) -> u64 {
        self.emit_branch_to(l, |offset| Inst::Jmp { offset })
    }

    /// Emits `j<cc>` to a local label.
    pub fn jcc_to(&mut self, cc: Cond, l: Label) -> u64 {
        self.emit_branch_to(l, move |offset| Inst::Jcc { cc, offset })
    }

    /// Emits `jrz` to a local label.
    pub fn jrz_to(&mut self, src: Reg, l: Label) -> u64 {
        self.emit_branch_to(l, move |offset| Inst::JRz { src, offset })
    }

    /// Emits `jrnz` to a local label.
    pub fn jrnz_to(&mut self, src: Reg, l: Label) -> u64 {
        self.emit_branch_to(l, move |offset| Inst::JRnz { src, offset })
    }

    /// Emits `jrnz` to an absolute cache address (e.g. the shared
    /// report-error stub).
    pub fn jrnz_abs(&mut self, src: Reg, target: u64) -> u64 {
        let at = self.here();
        let offset = Self::rel(at, target);
        self.emit(Inst::JRnz { src, offset })
    }

    /// Emits `jmp` to an absolute cache address.
    pub fn jmp_abs(&mut self, target: u64) -> u64 {
        let at = self.here();
        let offset = Self::rel(at, target);
        self.emit(Inst::Jmp { offset })
    }

    /// The `rel32` offset for a branch at `site` targeting `target`.
    ///
    /// # Panics
    ///
    /// Panics if the displacement overflows 32 bits (the cache region is far
    /// smaller than that).
    pub fn rel(site: u64, target: u64) -> i32 {
        let disp = target as i64 - (site as i64 + INST_SIZE_U64 as i64);
        i32::try_from(disp).expect("cache displacement fits rel32")
    }

    /// Resolves all label fixups and returns the end address.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(self) -> u64 {
        for (site, label) in &self.fixups {
            let target = self.labels[label.0].expect("unbound label at finish");
            let bytes: [u8; 8] = self.mem.peek(*site, 8).try_into().expect("instruction slot");
            let inst = Inst::decode(&bytes).expect("emitted instruction decodes");
            let patched = inst.with_branch_offset(Self::rel(*site, target));
            self.mem.install(*site, &patched.encode());
        }
        self.cursor
    }
}

/// Overwrites the instruction at `site` (used for chaining patches).
pub fn patch_inst(mem: &mut Memory, site: u64, inst: Inst) {
    mem.install(site, &inst.encode());
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_sim::Perms;

    fn mem() -> Memory {
        let mut m = Memory::new(1 << 16);
        m.map(0..0x4000, Perms::RX);
        m
    }

    fn decode_at(mem: &Memory, addr: u64) -> Inst {
        let bytes: [u8; 8] = mem.peek(addr, 8).try_into().unwrap();
        Inst::decode(&bytes).unwrap()
    }

    #[test]
    fn emit_sequence() {
        let mut m = mem();
        let mut a = CacheAsm::new(&mut m, 0x100);
        a.emit(Inst::Nop);
        a.emit(Inst::Halt);
        assert_eq!(a.finish(), 0x110);
        assert_eq!(decode_at(&m, 0x100), Inst::Nop);
        assert_eq!(decode_at(&m, 0x108), Inst::Halt);
    }

    #[test]
    fn forward_label_resolved() {
        let mut m = mem();
        let mut a = CacheAsm::new(&mut m, 0);
        let l = a.new_label();
        a.jmp_to(l); // 0
        a.emit(Inst::Halt); // 8
        a.bind(l); // 16
        a.emit(Inst::Nop);
        a.finish();
        assert_eq!(decode_at(&m, 0), Inst::Jmp { offset: 8 });
    }

    #[test]
    fn backward_label_resolved() {
        let mut m = mem();
        let mut a = CacheAsm::new(&mut m, 0);
        let l = a.new_label();
        a.bind(l); // 0
        a.emit(Inst::Nop); // 0
        a.jcc_to(Cond::Ne, l); // 8 -> 0 : offset -16
        a.finish();
        assert_eq!(decode_at(&m, 8), Inst::Jcc { cc: Cond::Ne, offset: -16 });
    }

    #[test]
    fn absolute_branches() {
        let mut m = mem();
        let mut a = CacheAsm::new(&mut m, 0x200);
        a.jrnz_abs(Reg::R8, 0x100); // site 0x200 -> 0x100: offset -0x108
        a.jmp_abs(0x300);
        a.finish();
        assert_eq!(decode_at(&m, 0x200), Inst::JRnz { src: Reg::R8, offset: -0x108 });
        assert_eq!(decode_at(&m, 0x208), Inst::Jmp { offset: 0xF0 });
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut m = mem();
        let mut a = CacheAsm::new(&mut m, 0);
        let l = a.new_label();
        a.jmp_to(l);
        a.finish();
    }

    #[test]
    fn patch_inst_overwrites() {
        let mut m = mem();
        let mut a = CacheAsm::new(&mut m, 0);
        let site = a.emit(Inst::Trap { code: 5 });
        a.finish();
        patch_inst(&mut m, site, Inst::Jmp { offset: 64 });
        assert_eq!(decode_at(&m, 0), Inst::Jmp { offset: 64 });
    }
}
