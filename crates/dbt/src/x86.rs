//! Minimal x86-64 encoder for the native backend.
//!
//! Emits exactly the instruction forms the translator in [`crate::native`]
//! needs: 64-bit moves and ALU ops against registers and `[base+disp]` /
//! `[base+index+disp]` memory, `lea`, shifts, `imul`/`div`, the
//! flag-capture idiom (`lahf`/`seto`/byte masks), conditional and
//! unconditional jumps in both rel8 and rel32 forms with label fixups,
//! indirect jumps/calls, and `push`/`pop`/`ret` for the trampoline.
//!
//! The builder is position-aware: it is constructed with the host address
//! its bytes will be copied to, so `jmp_abs`/`jcc_abs` can emit rel32
//! displacements to absolute targets (other blocks, shared stubs) and the
//! runtime chaining protocol can re-point already-emitted jumps with
//! [`jmp_rel32_bytes`].

/// A host general-purpose register (hardware encoding 0–15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostReg(pub u8);

/// `rax`.
pub const RAX: HostReg = HostReg(0);
/// `rcx`.
pub const RCX: HostReg = HostReg(1);
/// `rdx`.
pub const RDX: HostReg = HostReg(2);
/// `rbx` (callee-saved; retired-instruction delta).
pub const RBX: HostReg = HostReg(3);
/// `rsp`.
pub const RSP: HostReg = HostReg(4);
/// `rbp` (callee-saved; the `NativeCtx` pointer).
pub const RBP: HostReg = HostReg(5);
/// `rsi`.
pub const RSI: HostReg = HostReg(6);
/// `rdi`.
pub const RDI: HostReg = HostReg(7);
/// `r8`.
pub const R8: HostReg = HostReg(8);
/// `r12` (callee-saved; session instruction limit).
pub const R12: HostReg = HostReg(12);
/// `r13` (callee-saved; taken-branch delta).
pub const R13: HostReg = HostReg(13);
/// `r14` (callee-saved; branch delta).
pub const R14: HostReg = HostReg(14);
/// `r15` (callee-saved; cycle delta).
pub const R15: HostReg = HostReg(15);

/// x86 condition codes for `Jcc`/`SETcc`/`CMOVcc` (the low nibble of the
/// second opcode byte).
pub mod cc {
    /// Overflow.
    pub const O: u8 = 0x0;
    /// Below (carry set).
    pub const B: u8 = 0x2;
    /// Above or equal (carry clear).
    pub const AE: u8 = 0x3;
    /// Equal (zero set).
    pub const E: u8 = 0x4;
    /// Not equal (zero clear).
    pub const NE: u8 = 0x5;
    /// Above (carry clear and zero clear).
    pub const A: u8 = 0x7;
}

/// ALU opcode selector for register-register forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alu {
    /// `add` — opcode `01 /r`, imm slot 0.
    Add,
    /// `or` — opcode `09 /r`, imm slot 1.
    Or,
    /// `and` — opcode `21 /r`, imm slot 4.
    And,
    /// `sub` — opcode `29 /r`, imm slot 5.
    Sub,
    /// `xor` — opcode `31 /r`, imm slot 6.
    Xor,
    /// `cmp` — opcode `39 /r`, imm slot 7.
    Cmp,
}

impl Alu {
    fn rr_opcode(self) -> u8 {
        match self {
            Alu::Add => 0x01,
            Alu::Or => 0x09,
            Alu::And => 0x21,
            Alu::Sub => 0x29,
            Alu::Xor => 0x31,
            Alu::Cmp => 0x39,
        }
    }

    fn imm_slot(self) -> u8 {
        match self {
            Alu::Add => 0,
            Alu::Or => 1,
            Alu::And => 4,
            Alu::Sub => 5,
            Alu::Xor => 6,
            Alu::Cmp => 7,
        }
    }
}

/// Shift opcode selector (`D3 /slot` with `cl`, `C1 /slot` with imm8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// Logical left (`/4`).
    Shl,
    /// Logical right (`/5`).
    Shr,
    /// Arithmetic right (`/7`).
    Sar,
}

impl Shift {
    fn slot(self) -> u8 {
        match self {
            Shift::Shl => 4,
            Shift::Shr => 5,
            Shift::Sar => 7,
        }
    }
}

/// A forward-reference label handle.
#[derive(Debug, Clone, Copy)]
pub struct Label(usize);

#[derive(Debug)]
enum LabelState {
    /// Unbound; holds fixups to patch at bind time.
    Pending(Vec<Fixup>),
    /// Bound at a buffer offset.
    Bound(usize),
}

/// One displacement field awaiting a label bind. `at` is the offset of the
/// displacement bytes; `end` is the offset the displacement is relative to
/// (the end of the branch instruction).
#[derive(Debug, Clone, Copy)]
struct Fixup {
    at: usize,
    end: usize,
    wide: bool,
}

/// Builds the little-endian bytes of `jmp rel32` from `site` to `target`
/// — the 5-byte sequence the chaining protocol patches over a translated
/// exit site at runtime.
///
/// # Panics
///
/// Panics if the displacement does not fit in `i32` (cannot happen for
/// two addresses inside one code buffer).
pub fn jmp_rel32_bytes(site: u64, target: u64) -> [u8; 5] {
    let rel = rel32(site, 5, target);
    let d = rel.to_le_bytes();
    [0xE9, d[0], d[1], d[2], d[3]]
}

/// Builds the bytes of `jmp rel8` from `site` to `target`.
///
/// # Panics
///
/// Panics if the displacement does not fit in `i8`.
pub fn jmp_rel8_bytes(site: u64, target: u64) -> [u8; 2] {
    let rel = rel8(site, 2, target);
    [0xEB, rel as u8]
}

/// Builds the bytes of `jcc rel32` from `site` to `target`.
///
/// # Panics
///
/// Panics if the displacement does not fit in `i32`.
pub fn jcc_rel32_bytes(cond: u8, site: u64, target: u64) -> [u8; 6] {
    let rel = rel32(site, 6, target);
    let d = rel.to_le_bytes();
    [0x0F, 0x80 | cond, d[0], d[1], d[2], d[3]]
}

/// Builds the bytes of `jcc rel8` from `site` to `target`.
///
/// # Panics
///
/// Panics if the displacement does not fit in `i8`.
pub fn jcc_rel8_bytes(cond: u8, site: u64, target: u64) -> [u8; 2] {
    let rel = rel8(site, 2, target);
    [0x70 | cond, rel as u8]
}

fn rel32(site: u64, len: u64, target: u64) -> i32 {
    let rel = (target as i64) - (site as i64) - (len as i64);
    i32::try_from(rel).expect("rel32 displacement out of range")
}

fn rel8(site: u64, len: u64, target: u64) -> i8 {
    let rel = (target as i64) - (site as i64) - (len as i64);
    i8::try_from(rel).expect("rel8 displacement out of range")
}

/// A position-aware x86-64 instruction builder.
#[derive(Debug)]
pub struct Asm {
    base: u64,
    buf: Vec<u8>,
    labels: Vec<LabelState>,
}

impl Asm {
    /// A builder whose bytes will execute at host address `base`.
    pub fn new(base: u64) -> Asm {
        Asm { base, buf: Vec::with_capacity(256), labels: Vec::new() }
    }

    /// Current offset into the buffer.
    pub fn here(&self) -> usize {
        self.buf.len()
    }

    /// Absolute host address of the next emitted byte.
    pub fn here_abs(&self) -> u64 {
        self.base + self.buf.len() as u64
    }

    /// The emitted bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the builder, asserting every label was bound.
    pub fn finish(self) -> Vec<u8> {
        for state in &self.labels {
            assert!(matches!(state, LabelState::Bound(_)), "unbound label at finish");
        }
        self.buf
    }

    // ---- labels ------------------------------------------------------

    /// Allocates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(LabelState::Pending(Vec::new()));
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position, patching pending branches.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound, or if a pending rel8 branch
    /// cannot reach the bind point.
    pub fn bind(&mut self, label: Label) {
        let here = self.buf.len();
        let state = std::mem::replace(&mut self.labels[label.0], LabelState::Bound(here));
        let LabelState::Pending(fixups) = state else { panic!("label bound twice") };
        for f in fixups {
            let rel = here as i64 - f.end as i64;
            if f.wide {
                let rel = i32::try_from(rel).expect("rel32 fixup out of range");
                self.buf[f.at..f.at + 4].copy_from_slice(&rel.to_le_bytes());
            } else {
                let rel = i8::try_from(rel).expect("rel8 fixup out of range");
                self.buf[f.at] = rel as u8;
            }
        }
    }

    fn branch_disp(&mut self, label: Label, wide: bool) {
        let at = self.buf.len();
        let end = at + if wide { 4 } else { 1 };
        match &mut self.labels[label.0] {
            LabelState::Pending(fixups) => {
                fixups.push(Fixup { at, end, wide });
                self.buf.extend_from_slice(if wide { &[0; 4][..] } else { &[0][..] });
            }
            LabelState::Bound(target) => {
                let rel = *target as i64 - end as i64;
                if wide {
                    let rel = i32::try_from(rel).expect("rel32 backward out of range");
                    self.buf.extend_from_slice(&rel.to_le_bytes());
                } else {
                    let rel = i8::try_from(rel).expect("rel8 backward out of range");
                    self.buf.push(rel as u8);
                }
            }
        }
    }

    /// `jcc rel32` to a label.
    pub fn jcc(&mut self, cond: u8, label: Label) {
        self.buf.extend_from_slice(&[0x0F, 0x80 | cond]);
        self.branch_disp(label, true);
    }

    /// `jcc rel8` to a label (must bind within ±127 bytes).
    pub fn jcc_short(&mut self, cond: u8, label: Label) {
        self.buf.push(0x70 | cond);
        self.branch_disp(label, false);
    }

    /// `jmp rel32` to a label.
    pub fn jmp(&mut self, label: Label) {
        self.buf.push(0xE9);
        self.branch_disp(label, true);
    }

    /// `jmp rel8` to a label (must bind within ±127 bytes).
    pub fn jmp_short(&mut self, label: Label) {
        self.buf.push(0xEB);
        self.branch_disp(label, false);
    }

    /// `jmp rel32` to an absolute host address.
    pub fn jmp_abs(&mut self, target: u64) {
        let bytes = jmp_rel32_bytes(self.here_abs(), target);
        self.buf.extend_from_slice(&bytes);
    }

    /// `jcc rel32` to an absolute host address.
    pub fn jcc_abs(&mut self, cond: u8, target: u64) {
        let bytes = jcc_rel32_bytes(cond, self.here_abs(), target);
        self.buf.extend_from_slice(&bytes);
    }

    // ---- encoding helpers -------------------------------------------

    fn rex(&mut self, w: bool, reg: u8, index: u8, base: u8) {
        let rex =
            0x40 | (u8::from(w) << 3) | ((reg >> 3) << 2) | (((index >> 3) & 1) << 1) | (base >> 3);
        if rex != 0x40 {
            self.buf.push(rex);
        }
    }

    fn modrm_reg(&mut self, reg: u8, rm: u8) {
        self.buf.push(0xC0 | ((reg & 7) << 3) | (rm & 7));
    }

    /// ModRM (+SIB) (+disp) for `[base + disp]`.
    fn modrm_mem(&mut self, reg: u8, base: HostReg, disp: i32) {
        let b = base.0 & 7;
        let need_sib = b == 4; // rsp/r12 escape to SIB
        let rm = if need_sib { 4 } else { b };
        let (mode, d8) = if disp == 0 && b != 5 {
            (0x00u8, None)
        } else if let Ok(d) = i8::try_from(disp) {
            (0x40, Some(d))
        } else {
            (0x80, None)
        };
        self.buf.push(mode | ((reg & 7) << 3) | rm);
        if need_sib {
            self.buf.push(0x20 | b); // scale=1, index=none
        }
        match (mode, d8) {
            (0x40, Some(d)) => self.buf.push(d as u8),
            (0x80, _) => self.buf.extend_from_slice(&disp.to_le_bytes()),
            _ => {}
        }
    }

    /// ModRM + SIB (+disp) for `[base + index + disp]` (scale 1).
    fn modrm_mem2(&mut self, reg: u8, base: HostReg, index: HostReg, disp: i32) {
        assert!(index.0 & 7 != 4, "rsp cannot be an index");
        let b = base.0 & 7;
        let (mode, d8) = if disp == 0 && b != 5 {
            (0x00u8, None)
        } else if let Ok(d) = i8::try_from(disp) {
            (0x40, Some(d))
        } else {
            (0x80, None)
        };
        self.buf.push(mode | ((reg & 7) << 3) | 4);
        self.buf.push(((index.0 & 7) << 3) | b);
        match (mode, d8) {
            (0x40, Some(d)) => self.buf.push(d as u8),
            (0x80, _) => self.buf.extend_from_slice(&disp.to_le_bytes()),
            _ => {}
        }
    }

    // ---- moves -------------------------------------------------------

    /// `mov dst, src` (64-bit).
    pub fn mov_rr(&mut self, dst: HostReg, src: HostReg) {
        self.rex(true, src.0, 0, dst.0);
        self.buf.push(0x89);
        self.modrm_reg(src.0, dst.0);
    }

    /// `mov dst, imm64`.
    pub fn mov_ri64(&mut self, dst: HostReg, imm: u64) {
        self.rex(true, 0, 0, dst.0);
        self.buf.push(0xB8 | (dst.0 & 7));
        self.buf.extend_from_slice(&imm.to_le_bytes());
    }

    /// `mov dst, imm32` sign-extended to 64 bits (`C7 /0`).
    pub fn mov_ri32(&mut self, dst: HostReg, imm: i32) {
        self.rex(true, 0, 0, dst.0);
        self.buf.push(0xC7);
        self.modrm_reg(0, dst.0);
        self.buf.extend_from_slice(&imm.to_le_bytes());
    }

    /// `mov dst, [base + disp]` (64-bit load).
    pub fn load(&mut self, dst: HostReg, base: HostReg, disp: i32) {
        self.rex(true, dst.0, 0, base.0);
        self.buf.push(0x8B);
        self.modrm_mem(dst.0, base, disp);
    }

    /// `mov [base + disp], src` (64-bit store).
    pub fn store(&mut self, base: HostReg, disp: i32, src: HostReg) {
        self.rex(true, src.0, 0, base.0);
        self.buf.push(0x89);
        self.modrm_mem(src.0, base, disp);
    }

    /// `mov dst, [base + index + disp]` (64-bit load, scale 1).
    pub fn load2(&mut self, dst: HostReg, base: HostReg, index: HostReg, disp: i32) {
        self.rex(true, dst.0, index.0, base.0);
        self.buf.push(0x8B);
        self.modrm_mem2(dst.0, base, index, disp);
    }

    /// `mov [base + index + disp], src` (64-bit store, scale 1).
    pub fn store2(&mut self, base: HostReg, index: HostReg, disp: i32, src: HostReg) {
        self.rex(true, src.0, index.0, base.0);
        self.buf.push(0x89);
        self.modrm_mem2(src.0, base, index, disp);
    }

    /// `movzx dst, byte [base + index]` (zero-extending byte load, scale 1).
    pub fn load8_2(&mut self, dst: HostReg, base: HostReg, index: HostReg) {
        self.rex(true, dst.0, index.0, base.0);
        self.buf.extend_from_slice(&[0x0F, 0xB6]);
        self.modrm_mem2(dst.0, base, index, 0);
    }

    /// `mov byte [base + index], src8` — `src` must be rax/rcx/rdx/rbx so
    /// the low-byte register encodes without a REX prefix.
    pub fn store8_2(&mut self, base: HostReg, index: HostReg, src: HostReg) {
        assert!(src.0 < 4, "byte store source must be a/c/d/b");
        self.rex(false, src.0, index.0, base.0);
        self.buf.push(0x88);
        self.modrm_mem2(src.0, base, index, 0);
    }

    /// `mov qword [base + disp], imm32` sign-extended.
    pub fn store_imm32(&mut self, base: HostReg, disp: i32, imm: i32) {
        self.rex(true, 0, 0, base.0);
        self.buf.push(0xC7);
        self.modrm_mem(0, base, disp);
        self.buf.extend_from_slice(&imm.to_le_bytes());
    }

    /// `mov [rbp + disp], ah` — spills the captured-flags byte.
    pub fn store_ah_rbp(&mut self, disp: i32) {
        self.buf.push(0x88);
        self.modrm_mem(4, RBP, disp); // reg field 100 = AH (no REX)
    }

    /// `movzx eax, byte [rbp + disp]` — reloads the flags byte.
    pub fn load_flags_al(&mut self, disp: i32) {
        self.buf.extend_from_slice(&[0x0F, 0xB6]);
        self.modrm_mem(0, RBP, disp);
    }

    /// `movzx ecx, cl`.
    pub fn movzx_ecx_cl(&mut self) {
        self.buf.extend_from_slice(&[0x0F, 0xB6, 0xC9]);
    }

    // ---- ALU ---------------------------------------------------------

    /// `op dst, src` (64-bit register-register ALU).
    pub fn alu_rr(&mut self, op: Alu, dst: HostReg, src: HostReg) {
        self.rex(true, src.0, 0, dst.0);
        self.buf.push(op.rr_opcode());
        self.modrm_reg(src.0, dst.0);
    }

    /// `op dst, imm` (64-bit; imm8 form when it fits).
    pub fn alu_ri(&mut self, op: Alu, dst: HostReg, imm: i32) {
        self.rex(true, 0, 0, dst.0);
        if let Ok(d) = i8::try_from(imm) {
            self.buf.push(0x83);
            self.modrm_reg(op.imm_slot(), dst.0);
            self.buf.push(d as u8);
        } else {
            self.buf.push(0x81);
            self.modrm_reg(op.imm_slot(), dst.0);
            self.buf.extend_from_slice(&imm.to_le_bytes());
        }
    }

    /// `test dst, src` (64-bit).
    pub fn test_rr(&mut self, dst: HostReg, src: HostReg) {
        self.rex(true, src.0, 0, dst.0);
        self.buf.push(0x85);
        self.modrm_reg(src.0, dst.0);
    }

    /// `cmp reg, [base + index + disp]`.
    pub fn cmp_r_mem2(&mut self, reg: HostReg, base: HostReg, index: HostReg, disp: i32) {
        self.rex(true, reg.0, index.0, base.0);
        self.buf.push(0x3B);
        self.modrm_mem2(reg.0, base, index, disp);
    }

    /// `cmp reg, [base + disp]` (64-bit).
    pub fn cmp_r_mem(&mut self, reg: HostReg, base: HostReg, disp: i32) {
        self.rex(true, reg.0, 0, base.0);
        self.buf.push(0x3B);
        self.modrm_mem(reg.0, base, disp);
    }

    /// `test byte [base + index], imm8`.
    pub fn test_mem8_imm2(&mut self, base: HostReg, index: HostReg, imm: u8) {
        self.rex(false, 0, index.0, base.0);
        self.buf.push(0xF6);
        self.modrm_mem2(0, base, index, 0);
        self.buf.push(imm);
    }

    /// `bts qword [base], bit` — sets bit `bit` of the bit string at
    /// `[base]` (the memory form addresses the containing qword itself).
    pub fn bts_mem_r(&mut self, base: HostReg, bit: HostReg) {
        self.rex(true, bit.0, 0, base.0);
        self.buf.extend_from_slice(&[0x0F, 0xAB]);
        self.modrm_mem(bit.0, base, 0);
    }

    /// `inc qword [base + index + disp]`.
    pub fn inc_mem2(&mut self, base: HostReg, index: HostReg, disp: i32) {
        self.rex(true, 0, index.0, base.0);
        self.buf.push(0xFF);
        self.modrm_mem2(0, base, index, disp);
    }

    /// `cmp qword [base + disp], imm8`.
    pub fn cmp_mem_imm8(&mut self, base: HostReg, disp: i32, imm: i8) {
        self.rex(true, 0, 0, base.0);
        self.buf.push(0x83);
        self.modrm_mem(7, base, disp);
        self.buf.push(imm as u8);
    }

    /// `inc qword [base + disp]`.
    pub fn inc_mem(&mut self, base: HostReg, disp: i32) {
        self.rex(true, 0, 0, base.0);
        self.buf.push(0xFF);
        self.modrm_mem(0, base, disp);
    }

    /// `add qword [base + disp], imm` (imm8 form when it fits).
    pub fn add_mem_imm(&mut self, base: HostReg, disp: i32, imm: i32) {
        self.rex(true, 0, 0, base.0);
        if let Ok(d) = i8::try_from(imm) {
            self.buf.push(0x83);
            self.modrm_mem(0, base, disp);
            self.buf.push(d as u8);
        } else {
            self.buf.push(0x81);
            self.modrm_mem(0, base, disp);
            self.buf.extend_from_slice(&imm.to_le_bytes());
        }
    }

    /// `lea dst, [base + disp]` — flag-free add.
    pub fn lea(&mut self, dst: HostReg, base: HostReg, disp: i32) {
        self.rex(true, dst.0, 0, base.0);
        self.buf.push(0x8D);
        self.modrm_mem(dst.0, base, disp);
    }

    /// `lea dst, [base + index + disp]` — flag-free three-operand add.
    pub fn lea2(&mut self, dst: HostReg, base: HostReg, index: HostReg, disp: i32) {
        self.rex(true, dst.0, index.0, base.0);
        self.buf.push(0x8D);
        self.modrm_mem2(dst.0, base, index, disp);
    }

    /// `neg dst` (64-bit; sets flags exactly as `sub 0, dst`).
    pub fn neg(&mut self, dst: HostReg) {
        self.rex(true, 0, 0, dst.0);
        self.buf.push(0xF7);
        self.modrm_reg(3, dst.0);
    }

    /// `not dst` (64-bit; leaves flags untouched).
    pub fn not(&mut self, dst: HostReg) {
        self.rex(true, 0, 0, dst.0);
        self.buf.push(0xF7);
        self.modrm_reg(2, dst.0);
    }

    /// `imul dst, src` (64-bit signed multiply, low half).
    pub fn imul_rr(&mut self, dst: HostReg, src: HostReg) {
        self.rex(true, dst.0, 0, src.0);
        self.buf.extend_from_slice(&[0x0F, 0xAF]);
        self.modrm_reg(dst.0, src.0);
    }

    /// `imul ecx, ecx, imm8` — scales the overflow bit into flag bits.
    pub fn imul_ecx_imm8(&mut self, imm: i8) {
        self.buf.extend_from_slice(&[0x6B, 0xC9, imm as u8]);
    }

    /// `div src` — unsigned `rdx:rax / src`, quotient in `rax`.
    pub fn div(&mut self, src: HostReg) {
        self.rex(true, 0, 0, src.0);
        self.buf.push(0xF7);
        self.modrm_reg(6, src.0);
    }

    /// `shift dst, cl` (64-bit).
    pub fn shift_cl(&mut self, op: Shift, dst: HostReg) {
        self.rex(true, 0, 0, dst.0);
        self.buf.push(0xD3);
        self.modrm_reg(op.slot(), dst.0);
    }

    /// `shift dst, imm8` (64-bit).
    pub fn shift_imm(&mut self, op: Shift, dst: HostReg, imm: u8) {
        self.rex(true, 0, 0, dst.0);
        self.buf.push(0xC1);
        self.modrm_reg(op.slot(), dst.0);
        self.buf.push(imm);
    }

    /// `xor dst32, dst32` — zero-extends, clears the full register.
    pub fn xor_r32(&mut self, dst: HostReg) {
        self.rex(false, dst.0, 0, dst.0);
        self.buf.push(0x31);
        self.modrm_reg(dst.0, dst.0);
    }

    /// `and ecx, imm8` (32-bit; masks a shift count or cache index).
    pub fn and_ecx_imm8(&mut self, imm: i8) {
        self.buf.extend_from_slice(&[0x83, 0xE1, imm as u8]);
    }

    // ---- flags capture ----------------------------------------------

    /// `lahf` — loads SF/ZF/AF/PF/CF into `ah`.
    pub fn lahf(&mut self) {
        self.buf.push(0x9F);
    }

    /// `seto al` / `seto cl`.
    pub fn seto(&mut self, dst: HostReg) {
        assert!(dst.0 < 8, "seto needs a REX-free register");
        self.buf.extend_from_slice(&[0x0F, 0x90, 0xC0 | dst.0]);
    }

    /// `shl al, imm8` — positions the overflow bit for merging.
    pub fn shl_al_imm(&mut self, imm: u8) {
        self.buf.extend_from_slice(&[0xC0, 0xE0, imm]);
    }

    /// `or ah, al` — merges overflow into the captured flag byte.
    pub fn or_ah_al(&mut self) {
        self.buf.extend_from_slice(&[0x08, 0xC4]);
    }

    /// `or ah, cl`.
    pub fn or_ah_cl(&mut self) {
        self.buf.extend_from_slice(&[0x08, 0xCC]);
    }

    /// `and ah, imm8` — masks undefined host flag bits.
    pub fn and_ah_imm(&mut self, imm: u8) {
        self.buf.extend_from_slice(&[0x80, 0xE4, imm]);
    }

    /// `bt [table], bit` — condition lookup in a 256-bit truth table.
    pub fn bt_mem_r(&mut self, table: HostReg, bit: HostReg) {
        self.rex(true, bit.0, 0, table.0);
        self.buf.extend_from_slice(&[0x0F, 0xA3]);
        self.modrm_mem(bit.0, table, 0);
    }

    /// `cmovcc dst, src` (64-bit).
    pub fn cmovcc(&mut self, cond: u8, dst: HostReg, src: HostReg) {
        self.rex(true, dst.0, 0, src.0);
        self.buf.extend_from_slice(&[0x0F, 0x40 | cond]);
        self.modrm_reg(dst.0, src.0);
    }

    // ---- control transfer -------------------------------------------

    /// `jmp reg`.
    pub fn jmp_r(&mut self, target: HostReg) {
        self.rex(false, 0, 0, target.0);
        self.buf.push(0xFF);
        self.modrm_reg(4, target.0);
    }

    /// `jmp qword [base + index + disp]` — the inline-cache dispatch.
    pub fn jmp_mem2(&mut self, base: HostReg, index: HostReg, disp: i32) {
        self.rex(false, 0, index.0, base.0);
        self.buf.push(0xFF);
        self.modrm_mem2(4, base, index, disp);
    }

    /// `call reg`.
    pub fn call_r(&mut self, target: HostReg) {
        self.rex(false, 0, 0, target.0);
        self.buf.push(0xFF);
        self.modrm_reg(2, target.0);
    }

    /// `push reg`.
    pub fn push_r(&mut self, reg: HostReg) {
        self.rex(false, 0, 0, reg.0);
        self.buf.push(0x50 | (reg.0 & 7));
    }

    /// `pop reg`.
    pub fn pop_r(&mut self, reg: HostReg) {
        self.rex(false, 0, 0, reg.0);
        self.buf.push(0x58 | (reg.0 & 7));
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.buf.push(0xC3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm() -> Asm {
        Asm::new(0)
    }

    #[track_caller]
    fn check(f: impl FnOnce(&mut Asm), want: &[u8]) {
        let mut a = asm();
        f(&mut a);
        assert_eq!(a.bytes(), want, "bytes {:02x?} != want {:02x?}", a.bytes(), want);
    }

    #[test]
    fn moves_round_trip() {
        check(|a| a.mov_rr(RBP, RDI), &[0x48, 0x89, 0xFD]);
        check(|a| a.mov_rr(RAX, R8), &[0x4C, 0x89, 0xC0]);
        check(
            |a| a.mov_ri64(RAX, 0x1122_3344_5566_7788),
            &[0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11],
        );
        check(|a| a.mov_ri64(HostReg(10), 1), &[0x49, 0xBA, 1, 0, 0, 0, 0, 0, 0, 0]);
        check(|a| a.mov_ri32(RAX, -1), &[0x48, 0xC7, 0xC0, 0xFF, 0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn memory_forms_cover_rbp_r12_r13_escapes() {
        // [rbp] always needs a disp byte; [r12] always needs a SIB byte.
        check(|a| a.load(RAX, RBP, 0x10), &[0x48, 0x8B, 0x45, 0x10]);
        check(|a| a.load(RAX, RBP, 0x180), &[0x48, 0x8B, 0x85, 0x80, 0x01, 0x00, 0x00]);
        check(|a| a.load(RCX, R12, 0), &[0x49, 0x8B, 0x0C, 0x24]);
        check(|a| a.load(RAX, R13, 0), &[0x49, 0x8B, 0x45, 0x00]);
        check(|a| a.store(RBP, 0x10, RAX), &[0x48, 0x89, 0x45, 0x10]);
        check(|a| a.store(RBP, -8, RCX), &[0x48, 0x89, 0x4D, 0xF8]);
        check(|a| a.store_imm32(RBP, 8, 7), &[0x48, 0xC7, 0x45, 0x08, 7, 0, 0, 0]);
        check(
            |a| a.cmp_r_mem2(RAX, RBP, RCX, 0x100),
            &[0x48, 0x3B, 0x84, 0x0D, 0x00, 0x01, 0x00, 0x00],
        );
        check(|a| a.jmp_mem2(RBP, RCX, 0x180), &[0xFF, 0xA4, 0x0D, 0x80, 0x01, 0x00, 0x00]);
    }

    /// The inline memory fast path's instruction forms: base+index
    /// addressing for the flat guest byte array, the permission-byte test,
    /// and the dirty-bit/generation bookkeeping.
    #[test]
    fn memory_fast_path_forms() {
        // cmp rax, [rbp + 0x10] — page-count bound check.
        check(|a| a.cmp_r_mem(RAX, RBP, 0x10), &[0x48, 0x3B, 0x45, 0x10]);
        // test byte [rsi + rax], imm — per-page permission probe.
        check(|a| a.test_mem8_imm2(RSI, RAX, 2), &[0xF6, 0x04, 0x06, 0x02]);
        // bts [rsi], rax — dirty-bitmap set (memory form is bit-string).
        check(|a| a.bts_mem_r(RSI, RAX), &[0x48, 0x0F, 0xAB, 0x06]);
        // inc qword [rsi + rax (+ disp)] — page-generation bump.
        check(|a| a.inc_mem2(RSI, RAX, 0), &[0x48, 0xFF, 0x04, 0x06]);
        check(|a| a.inc_mem2(RSI, RAX, 0x180), &[0x48, 0xFF, 0x84, 0x06, 0x80, 0x01, 0x00, 0x00]);
        // Guest loads/stores through bytes-base + guest-address index.
        check(|a| a.load2(RAX, RSI, RCX, 0), &[0x48, 0x8B, 0x04, 0x0E]);
        check(|a| a.load2(RAX, RSI, HostReg(9), 0), &[0x4A, 0x8B, 0x04, 0x0E]);
        check(|a| a.store2(RSI, RCX, 0, RDX), &[0x48, 0x89, 0x14, 0x0E]);
        check(|a| a.load8_2(RAX, RSI, RCX), &[0x48, 0x0F, 0xB6, 0x04, 0x0E]);
        check(|a| a.store8_2(RSI, RCX, RDX), &[0x88, 0x14, 0x0E]);
        // cc::A (unsigned above) guards the in-page span check.
        assert_eq!(cc::A, 0x7);
        check(|a| a.cmovcc(cc::A, RDX, RAX), &[0x48, 0x0F, 0x47, 0xD0]);
    }

    #[test]
    #[should_panic(expected = "byte store source")]
    fn byte_store_rejects_rex_only_sources() {
        let mut a = asm();
        a.store8_2(RSI, RCX, R8);
    }

    #[test]
    fn alu_forms() {
        check(|a| a.alu_rr(Alu::Add, RAX, RCX), &[0x48, 0x01, 0xC8]);
        check(|a| a.alu_rr(Alu::Sub, RAX, RCX), &[0x48, 0x29, 0xC8]);
        check(|a| a.alu_rr(Alu::Cmp, RBX, R12), &[0x4C, 0x39, 0xE3]);
        check(|a| a.alu_rr(Alu::And, RAX, RCX), &[0x48, 0x21, 0xC8]);
        check(|a| a.alu_rr(Alu::Or, RAX, RCX), &[0x48, 0x09, 0xC8]);
        check(|a| a.alu_rr(Alu::Xor, RAX, RCX), &[0x48, 0x31, 0xC8]);
        check(|a| a.test_rr(RAX, RCX), &[0x48, 0x85, 0xC8]);
        check(|a| a.alu_ri(Alu::Add, RBX, 1), &[0x48, 0x83, 0xC3, 0x01]);
        check(|a| a.alu_ri(Alu::Add, R15, 300), &[0x49, 0x81, 0xC7, 0x2C, 0x01, 0x00, 0x00]);
        check(|a| a.alu_ri(Alu::Sub, RSP, 8), &[0x48, 0x83, 0xEC, 0x08]);
        check(|a| a.cmp_mem_imm8(RBP, 0x90, 0), &[0x48, 0x83, 0xBD, 0x90, 0, 0, 0, 0x00]);
        check(|a| a.inc_mem(RBP, 0xA0), &[0x48, 0xFF, 0x85, 0xA0, 0, 0, 0]);
        check(|a| a.add_mem_imm(RBP, 0x20, 12), &[0x48, 0x83, 0x45, 0x20, 12]);
        check(|a| a.neg(RAX), &[0x48, 0xF7, 0xD8]);
        check(|a| a.not(RCX), &[0x48, 0xF7, 0xD1]);
        check(|a| a.imul_rr(RAX, RCX), &[0x48, 0x0F, 0xAF, 0xC1]);
        check(|a| a.imul_ecx_imm8(0x21), &[0x6B, 0xC9, 0x21]);
        check(|a| a.div(RCX), &[0x48, 0xF7, 0xF1]);
        check(|a| a.xor_r32(RDX), &[0x31, 0xD2]);
        check(|a| a.xor_r32(R15), &[0x45, 0x31, 0xFF]);
        check(|a| a.and_ecx_imm8(63), &[0x83, 0xE1, 0x3F]);
    }

    #[test]
    fn lea_and_shift_forms() {
        check(|a| a.lea(RAX, RAX, 8), &[0x48, 0x8D, 0x40, 0x08]);
        check(|a| a.lea2(RAX, RAX, RCX, 1), &[0x48, 0x8D, 0x44, 0x08, 0x01]);
        check(|a| a.lea2(RAX, RBP, R13, 0), &[0x4A, 0x8D, 0x44, 0x2D, 0x00]);
        check(|a| a.shift_cl(Shift::Shl, RAX), &[0x48, 0xD3, 0xE0]);
        check(|a| a.shift_cl(Shift::Shr, RAX), &[0x48, 0xD3, 0xE8]);
        check(|a| a.shift_cl(Shift::Sar, RAX), &[0x48, 0xD3, 0xF8]);
        check(|a| a.shift_imm(Shift::Shr, RCX, 3), &[0x48, 0xC1, 0xE9, 0x03]);
        check(|a| a.shift_imm(Shift::Shl, RCX, 3), &[0x48, 0xC1, 0xE1, 0x03]);
    }

    #[test]
    fn flag_capture_idiom() {
        check(|a| a.lahf(), &[0x9F]);
        check(|a| a.seto(RAX), &[0x0F, 0x90, 0xC0]);
        check(|a| a.seto(RCX), &[0x0F, 0x90, 0xC1]);
        check(|a| a.shl_al_imm(5), &[0xC0, 0xE0, 0x05]);
        check(|a| a.or_ah_al(), &[0x08, 0xC4]);
        check(|a| a.or_ah_cl(), &[0x08, 0xCC]);
        check(|a| a.and_ah_imm(0xC4), &[0x80, 0xE4, 0xC4]);
        check(|a| a.store_ah_rbp(0x80), &[0x88, 0xA5, 0x80, 0, 0, 0]);
        check(|a| a.store_ah_rbp(0x40), &[0x88, 0x65, 0x40]);
        check(|a| a.load_flags_al(0x80), &[0x0F, 0xB6, 0x85, 0x80, 0, 0, 0]);
        check(|a| a.movzx_ecx_cl(), &[0x0F, 0xB6, 0xC9]);
        check(|a| a.bt_mem_r(RCX, RAX), &[0x48, 0x0F, 0xA3, 0x01]);
        check(|a| a.cmovcc(cc::B, RDX, RAX), &[0x48, 0x0F, 0x42, 0xD0]);
    }

    #[test]
    fn stack_and_indirect_forms() {
        check(|a| a.push_r(RBX), &[0x53]);
        check(|a| a.push_r(R12), &[0x41, 0x54]);
        check(|a| a.pop_r(RBP), &[0x5D]);
        check(|a| a.pop_r(R15), &[0x41, 0x5F]);
        check(|a| a.jmp_r(RAX), &[0xFF, 0xE0]);
        check(|a| a.jmp_r(RSI), &[0xFF, 0xE6]);
        check(|a| a.jmp_r(R8), &[0x41, 0xFF, 0xE0]);
        check(|a| a.call_r(RAX), &[0xFF, 0xD0]);
        check(|a| a.ret(), &[0xC3]);
    }

    /// The chaining protocol rewrites exit sites with rel8/rel32 jumps;
    /// cover every condition code in both widths, forward and backward.
    #[test]
    fn jcc_and_jmp_rel8_vs_rel32_patching() {
        for cond in 0..16u8 {
            // rel8 forward: site at 0x1000, target site+2+0x7F (max i8).
            let b = jcc_rel8_bytes(cond, 0x1000, 0x1000 + 2 + 0x7F);
            assert_eq!(b, [0x70 | cond, 0x7F]);
            // rel8 backward: max negative reach.
            let b = jcc_rel8_bytes(cond, 0x1000, 0x1000 + 2 - 0x80);
            assert_eq!(b, [0x70 | cond, 0x80]);
            // rel32 forward and backward with multi-byte displacements.
            let b = jcc_rel32_bytes(cond, 0x4000_0000, 0x4000_0000 + 6 + 0x0102_0304);
            assert_eq!(b, [0x0F, 0x80 | cond, 0x04, 0x03, 0x02, 0x01]);
            let b = jcc_rel32_bytes(cond, 0x4000_0000, 0x4000_0000 + 6 - 0x0102_0304);
            let want = (-0x0102_0304i32).to_le_bytes();
            assert_eq!(&b[2..], &want);
        }
        assert_eq!(jmp_rel8_bytes(0x2000, 0x2000 + 2 + 0x10), [0xEB, 0x10]);
        assert_eq!(jmp_rel8_bytes(0x2000, 0x2000), [0xEB, 0xFE]); // self-loop
        assert_eq!(jmp_rel32_bytes(0x1_0000, 0x2_0000), [0xE9, 0xFB, 0xFF, 0x00, 0x00]);
        let back = jmp_rel32_bytes(0x2_0000, 0x1_0000);
        assert_eq!(back[0], 0xE9);
        assert_eq!(i32::from_le_bytes(back[1..].try_into().unwrap()), -0x1_0005);
    }

    #[test]
    #[should_panic(expected = "rel8 displacement out of range")]
    fn rel8_overflow_panics() {
        jmp_rel8_bytes(0x1000, 0x1000 + 2 + 0x80);
    }

    #[test]
    fn labels_fix_up_forward_and_backward() {
        let mut a = asm();
        let top = a.new_label();
        a.bind(top);
        let out = a.new_label();
        a.jcc_short(cc::E, out); // 2 bytes
        a.jcc(cc::NE, out); // 6 bytes
        a.jmp_short(out); // 2 bytes
        a.jmp(out); // 5 bytes
        a.bind(out);
        a.jmp_short(top); // backward rel8
        a.jmp(top); // backward rel32
        let bytes = a.finish();
        // out is at offset 15.
        assert_eq!(&bytes[..2], &[0x74, 13]); // 15 - 2
        assert_eq!(&bytes[2..8], &[0x0F, 0x85, 7, 0, 0, 0]); // 15 - 8
        assert_eq!(&bytes[8..10], &[0xEB, 5]); // 15 - 10
        assert_eq!(&bytes[10..15], &[0xE9, 0, 0, 0, 0]); // 15 - 15
        assert_eq!(&bytes[15..17], &[0xEB, 0xEF]); // 0 - 17 = -17
        assert_eq!(&bytes[17..22], &[0xE9, 0xEA, 0xFF, 0xFF, 0xFF]); // -22
    }

    /// The trace tier's signature coalescing folds chains of `lea` adjusts
    /// into single instructions whose displacements routinely exceed i8, and
    /// its side exits are `jcc rel32` jumps out of the trace body. Pin the
    /// exact encodings across displacement widths and the ModRM escape
    /// registers (RBP/R13 force a disp byte, R12 forces a SIB byte).
    #[test]
    fn trace_emitter_lea_folding_forms() {
        check(|a| a.lea(RAX, RAX, 0x180), &[0x48, 0x8D, 0x80, 0x80, 0x01, 0x00, 0x00]);
        check(|a| a.lea(RAX, RAX, -0x1234), &[0x48, 0x8D, 0x80, 0xCC, 0xED, 0xFF, 0xFF]);
        check(|a| a.lea(HostReg(8), HostReg(8), -8), &[0x4D, 0x8D, 0x40, 0xF8]);
        check(
            |a| a.lea(HostReg(11), HostReg(11), 0x100),
            &[0x4D, 0x8D, 0x9B, 0x00, 0x01, 0x00, 0x00],
        );
        check(|a| a.lea(RCX, RBP, 0), &[0x48, 0x8D, 0x4D, 0x00]);
        check(|a| a.lea(RAX, R12, 8), &[0x49, 0x8D, 0x44, 0x24, 0x08]);
        check(|a| a.lea(RAX, R13, 0), &[0x49, 0x8D, 0x45, 0x00]);
        // Register-zero test feeding a side exit (`jrz`/`jrnz` lowering).
        check(|a| a.test_rr(HostReg(10), HostReg(10)), &[0x4D, 0x85, 0xD2]);
    }

    #[test]
    fn trace_side_exit_jcc_rel32_forms() {
        // Side exits always use the rel32 form (stub distance is unknown at
        // emission time); every condition code, forward and backward, from a
        // non-zero builder base as the trace cache uses.
        for cond in 0..16u8 {
            let mut a = Asm::new(0x20_0000);
            a.jcc_abs(cond, 0x20_0000 + 6 + 0x1234);
            let b = a.finish();
            assert_eq!(&b[..2], &[0x0F, 0x80 | cond]);
            assert_eq!(i32::from_le_bytes(b[2..6].try_into().unwrap()), 0x1234);

            let mut a = Asm::new(0x20_0000);
            a.jcc_abs(cond, 0x1F_FF00);
            let b = a.finish();
            assert_eq!(&b[..2], &[0x0F, 0x80 | cond]);
            assert_eq!(i32::from_le_bytes(b[2..6].try_into().unwrap()), -0x106);
        }
    }

    #[test]
    fn abs_jumps_use_builder_base() {
        let mut a = Asm::new(0x10_0000);
        a.jmp_abs(0x10_0100);
        a.jcc_abs(cc::AE, 0x10_0000);
        let bytes = a.finish();
        assert_eq!(&bytes[..5], &[0xE9, 0xFB, 0x00, 0x00, 0x00]);
        assert_eq!(bytes[5..7], [0x0F, 0x83]);
        assert_eq!(i32::from_le_bytes(bytes[7..11].try_into().unwrap()), -(5 + 6));
    }
}
