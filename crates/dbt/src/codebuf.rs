//! Executable code buffer for the native backend.
//!
//! One anonymous `mmap`'d RWX region with bump allocation: shared stubs
//! and condition tables are laid down first, then translated blocks are
//! appended per-block. SMC invalidation and cache eviction reset the bump
//! cursor back to the end of the shared prefix (the nuke-all protocol —
//! see DESIGN.md "Native backend"), so no free-list is needed. Chaining
//! patches bytes in place; x86 needs no explicit icache flush for
//! same-core cross-modifying writes from the thread that executes them.
//!
//! On platforms without `mmap`+RWX support (anything but x86-64 Linux
//! here), [`CodeBuf::new`] returns `None` and the DBT stays on the fused
//! interpreter.

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const PROT_EXEC: i32 = 4;
    pub const MAP_PRIVATE: i32 = 0x02;
    pub const MAP_ANONYMOUS: i32 = 0x20;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }
}

/// A bump-allocated executable memory region.
#[derive(Debug)]
pub struct CodeBuf {
    base: *mut u8,
    capacity: usize,
    cursor: usize,
}

// The buffer is only ever driven from the thread owning the DBT; the raw
// pointer does not alias Rust-managed memory.
unsafe impl Send for CodeBuf {}

impl CodeBuf {
    /// Maps a fresh RWX region of at least `capacity` bytes, or `None`
    /// when the platform cannot provide one.
    pub fn new(capacity: usize) -> Option<CodeBuf> {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let capacity = capacity.max(4096).checked_next_multiple_of(4096)?;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    capacity,
                    sys::PROT_READ | sys::PROT_WRITE | sys::PROT_EXEC,
                    sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                    -1,
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return None;
            }
            Some(CodeBuf { base: ptr.cast(), capacity, cursor: 0 })
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            let _ = capacity;
            None
        }
    }

    /// Host address of the start of the region.
    pub fn base(&self) -> u64 {
        self.base as u64
    }

    /// Host address the next allocation will land at (16-byte aligned).
    pub fn cursor_addr(&self) -> u64 {
        self.base as u64 + self.cursor as u64
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.capacity - self.cursor
    }

    /// Copies `bytes` into the region and returns their host address, or
    /// `None` when the region is full (caller evicts and retries).
    pub fn alloc(&mut self, bytes: &[u8]) -> Option<u64> {
        if bytes.len() > self.remaining() {
            return None;
        }
        let addr = self.cursor_addr();
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.base.add(self.cursor), bytes.len());
        }
        self.cursor = (self.cursor + bytes.len()).next_multiple_of(16).min(self.capacity);
        Some(addr)
    }

    /// Overwrites already-allocated bytes at `addr` — the chaining patch
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics if the span is not inside the allocated prefix.
    pub fn patch(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr - self.base as u64) as usize;
        assert!(off + bytes.len() <= self.cursor, "patch outside allocated code");
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.base.add(off), bytes.len());
        }
    }

    /// Resets the bump cursor back to `addr` (a value previously returned
    /// by [`CodeBuf::cursor_addr`]), discarding everything after it.
    pub fn reset_to(&mut self, addr: u64) {
        let off = (addr - self.base as u64) as usize;
        assert!(off <= self.cursor, "reset past cursor");
        self.cursor = off;
    }
}

impl Drop for CodeBuf {
    fn drop(&mut self) {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        unsafe {
            sys::munmap(self.base.cast(), self.capacity);
        }
    }
}

#[cfg(all(test, target_arch = "x86_64", target_os = "linux"))]
mod tests {
    use super::*;
    use crate::x86::{self, Asm, RAX};

    #[test]
    fn bump_alloc_aligns_and_resets() {
        let mut buf = CodeBuf::new(4096).expect("mmap RWX");
        let a = buf.alloc(&[0x90; 3]).unwrap();
        let b = buf.alloc(&[0x90; 17]).unwrap();
        assert_eq!(a % 16, 0);
        assert_eq!(b, a + 16);
        let mark = buf.cursor_addr();
        assert_eq!(mark, b + 32);
        buf.alloc(&[0xCC; 64]).unwrap();
        buf.reset_to(mark);
        assert_eq!(buf.cursor_addr(), mark);
        assert!(CodeBuf::new(usize::MAX).is_none(), "absurd mapping must fail cleanly");
    }

    #[test]
    fn emitted_code_executes_and_patches() {
        let mut buf = CodeBuf::new(4096).expect("mmap RWX");
        // ret-42 stub, then a function that jumps to it.
        let mut a = Asm::new(0);
        a.mov_ri32(RAX, 42);
        a.ret();
        let stub = buf.alloc(&a.finish()).unwrap();

        let entry_addr = buf.cursor_addr();
        let mut a = Asm::new(entry_addr);
        a.mov_ri32(RAX, 7);
        let site = a.here_abs(); // patchable exit: initially falls through to ret
        a.jmp_abs(a.here_abs() + 5);
        a.ret();
        let entry = buf.alloc(&a.finish()).unwrap();
        assert_eq!(entry, entry_addr);

        let f: extern "C" fn() -> u64 = unsafe { std::mem::transmute(entry) };
        assert_eq!(f(), 7);
        // Chain the exit to the stub and observe the new return value.
        buf.patch(site, &x86::jmp_rel32_bytes(site, stub));
        assert_eq!(f(), 42);
    }
}
