//! The instrumentation pass API: how control-flow checking techniques plug
//! into block translation.
//!
//! The DBT owns block discovery, terminator translation, chaining and
//! dispatch; an [`Instrumenter`] contributes signature code at four points
//! (paper §4.2: the `GEN_SIG` / `CHECK_SIG` instrumentation points):
//!
//! * **head** of every translated block — `CHECK_SIG` and/or the head-block
//!   `GEN_SIG` (the `Bh` block of the paper's split-block formalization);
//! * **direct update** before an unconditional transfer to a known target;
//! * **conditional update** before a two-way branch — either branch-style
//!   (the update sits inside the taken/fall-through arms, the paper's "Jcc"
//!   configuration) or cmov-style (flag-conditional select, the "CMOVcc"
//!   configuration, Figure 8);
//! * **indirect update** before a `ret`/indirect jump, with the dynamic
//!   guest target in a register (Figure 7).
//!
//! Signatures are guest basic-block start addresses, which the paper also
//! uses ("the address of the first instruction in a basic block as the
//! signature", §5) — unique for free, and the indirect-target mapping costs
//! nothing.

use crate::cache::CacheAsm;
use cfed_isa::{Cond, Reg};

/// Registers reserved for instrumentation and DBT plumbing (the EM64T
/// registers that IA-32 guest code never uses, §5.1).
pub mod regs {
    use cfed_isa::Reg;

    /// The shadow program counter `PC'`.
    pub const PC_PRIME: Reg = Reg::R8;
    /// The run-time adjusting signature register of the ECF technique.
    pub const RTS: Reg = Reg::R9;
    /// Scratch used by cmov-style conditional updates (`AUX` in Figure 8).
    pub const AUX: Reg = Reg::R10;
    /// Scratch used by signature checks.
    pub const CHK: Reg = Reg::R11;
    /// Guest return-address scratch used by translated calls.
    pub const GRET: Reg = Reg::R12;
    /// Canonical register holding the dynamic guest target at indirect
    /// exits.
    pub const ITARGET: Reg = Reg::R13;
}

/// How conditional signature updates are implemented (paper Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateStyle {
    /// Branch-style: the update sits inside the branch arms. Cheap, but the
    /// arm-selecting branch itself is a new unprotected branch (the paper's
    /// "unsafe" configurations, shaded in Figure 14) — except under RCF.
    #[default]
    Jcc,
    /// Flag-conditional select via `cmov` (Figure 8). Safe for ECF/EdgCF but
    /// slower.
    CMov,
}

impl std::fmt::Display for UpdateStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateStyle::Jcc => f.write_str("Jcc"),
            UpdateStyle::CMov => f.write_str("CMOVcc"),
        }
    }
}

/// The signature checking policies of paper §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckPolicy {
    /// Check in every basic block.
    #[default]
    AllBb,
    /// Check in blocks with back edges and blocks with `ret` (bounds error
    /// latency and prevents undetected infinite loops).
    RetBe,
    /// Check only in blocks with `ret`.
    Ret,
    /// Check only at the end of the application.
    End,
}

impl CheckPolicy {
    /// All four policies in decreasing checking frequency.
    pub const ALL: [CheckPolicy; 4] =
        [CheckPolicy::AllBb, CheckPolicy::RetBe, CheckPolicy::Ret, CheckPolicy::End];

    /// Decides whether a block with the given shape gets a signature check.
    pub fn wants_check(self, block: &BlockView) -> bool {
        match self {
            CheckPolicy::AllBb => true,
            CheckPolicy::RetBe => {
                block.ends_with_ret || block.has_back_edge || block.ends_with_halt
            }
            CheckPolicy::Ret => block.ends_with_ret || block.ends_with_halt,
            CheckPolicy::End => block.ends_with_halt,
        }
    }
}

impl std::fmt::Display for CheckPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckPolicy::AllBb => f.write_str("ALLBB"),
            CheckPolicy::RetBe => f.write_str("RET-BE"),
            CheckPolicy::Ret => f.write_str("RET"),
            CheckPolicy::End => f.write_str("END"),
        }
    }
}

/// Shape summary of a guest block, given to [`CheckPolicy`] /
/// [`Instrumenter::wants_check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockView {
    /// Guest address of the block's first instruction (= its signature).
    pub guest_start: u64,
    /// Terminator is `ret`.
    pub ends_with_ret: bool,
    /// Terminator is `halt` (program end).
    pub ends_with_halt: bool,
    /// Terminator is a direct branch whose target does not lie after the
    /// branch (a loop back edge).
    pub has_back_edge: bool,
}

/// A control-flow checking technique, invoked during block translation.
///
/// Implementations live in `cfed-core` (ECF, EdgCF, RCF); the
/// [`NullInstrumenter`] here is the uninstrumented baseline.
///
/// `Send + Sync` is a supertrait: instrumenters are stateless (running
/// signatures live in guest registers), and [`crate::Dbt`] clones inside
/// fault-injection snapshot sets share one instrumenter across worker
/// threads.
pub trait Instrumenter: Send + Sync {
    /// Short technique name for reports.
    fn name(&self) -> &'static str;

    /// Emits head-of-block code. `sig` is the guest block start address;
    /// `check` says whether the policy requests a signature check here;
    /// `err_stub` is the cache address of the shared report-error stub.
    fn emit_head(&self, a: &mut CacheAsm<'_>, sig: u64, check: bool, err_stub: u64);

    /// Emits the signature update for the edge `cur → next` (both guest
    /// block addresses).
    fn emit_update_direct(&self, a: &mut CacheAsm<'_>, cur: u64, next: u64);

    /// Emits the signature update for a dynamic edge out of `cur` whose
    /// guest target is in `target`.
    fn emit_update_indirect(&self, a: &mut CacheAsm<'_>, cur: u64, target: Reg);

    /// Emits a flag-conditional (cmov-style) update selecting between
    /// `taken` and `fall` according to `cc`, without branches and without
    /// touching the flags. Returns `false` when the technique does not
    /// support cmov-style updates (the DBT then uses branch-style arms).
    fn emit_update_cond_cmov(
        &self,
        a: &mut CacheAsm<'_>,
        cur: u64,
        taken: u64,
        fall: u64,
        cc: Cond,
    ) -> bool {
        let _ = (a, cur, taken, fall, cc);
        false
    }

    /// Whether the technique emits any update code at all. When `false`
    /// (the baseline), the DBT skips the conditional-update skeleton
    /// entirely.
    fn has_updates(&self) -> bool {
        true
    }

    /// Emitted immediately before the inserted selector branch of a
    /// branch-style conditional update. Techniques that protect their own
    /// inserted branches (RCF) transition into a dedicated region here;
    /// others leave it empty.
    fn emit_pre_selector(&self, a: &mut CacheAsm<'_>, cur: u64) {
        let _ = (a, cur);
    }

    /// Emits one arm of a branch-style conditional update: the signature
    /// update for the edge `cur → next`, executed after
    /// [`Instrumenter::emit_pre_selector`]. Defaults to the plain direct
    /// update.
    fn emit_selector_update(&self, a: &mut CacheAsm<'_>, cur: u64, next: u64) {
        self.emit_update_direct(a, cur, next);
    }

    /// Emitted immediately before a `halt`: the end-of-application check
    /// that every policy keeps (§6's END policy is exactly this check and
    /// nothing else). Implementations should check via `PC'` itself rather
    /// than a scratch register, so that an error landing *on* the check
    /// branch still finds a mismatching value.
    fn emit_end_check(&self, a: &mut CacheAsm<'_>, cur: u64, err_stub: u64) {
        let _ = (a, cur, err_stub);
    }

    /// Whether the translated block should include a signature check.
    fn wants_check(&self, block: &BlockView) -> bool;

    /// Extra instrumentation registers whose architectural state must be
    /// initialized before entering translated code; returns `(reg, value)`
    /// pairs given the entry block signature.
    fn initial_state(&self, entry_sig: u64) -> Vec<(Reg, u64)> {
        let _ = entry_sig;
        Vec::new()
    }

    /// Signature model for trace-tier (tier-2) formation, or `None` when the
    /// technique's updates cannot be modeled (and hence not legally coalesced
    /// or moved) by the trace IR — the tier then stays disabled for it.
    fn trace_sig(&self) -> Option<crate::ir::TraceSig> {
        None
    }
}

/// The uninstrumented baseline: no signature code at all (used to measure
/// raw DBT overhead, the paper's ~12% baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullInstrumenter;

impl Instrumenter for NullInstrumenter {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn emit_head(&self, _a: &mut CacheAsm<'_>, _sig: u64, _check: bool, _err: u64) {}

    fn emit_update_direct(&self, _a: &mut CacheAsm<'_>, _cur: u64, _next: u64) {}

    fn emit_update_indirect(&self, _a: &mut CacheAsm<'_>, _cur: u64, _target: Reg) {}

    fn has_updates(&self) -> bool {
        false
    }

    fn wants_check(&self, _block: &BlockView) -> bool {
        false
    }

    fn trace_sig(&self) -> Option<crate::ir::TraceSig> {
        Some(crate::ir::TraceSig::Untracked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(ret: bool, halt: bool, back: bool) -> BlockView {
        BlockView {
            guest_start: 0x1_0000,
            ends_with_ret: ret,
            ends_with_halt: halt,
            has_back_edge: back,
        }
    }

    #[test]
    fn policy_frequency_ordering() {
        // ALLBB ⊇ RET-BE ⊇ RET ⊇ END on every block shape.
        let shapes = [
            view(false, false, false),
            view(true, false, false),
            view(false, true, false),
            view(false, false, true),
            view(true, false, true),
        ];
        for b in shapes {
            let all = CheckPolicy::AllBb.wants_check(&b);
            let retbe = CheckPolicy::RetBe.wants_check(&b);
            let ret = CheckPolicy::Ret.wants_check(&b);
            let end = CheckPolicy::End.wants_check(&b);
            assert!(all || !retbe);
            assert!(retbe || !ret);
            assert!(ret || !end);
        }
    }

    #[test]
    fn policy_specifics() {
        assert!(!CheckPolicy::RetBe.wants_check(&view(false, false, false)));
        assert!(CheckPolicy::RetBe.wants_check(&view(false, false, true)));
        assert!(CheckPolicy::Ret.wants_check(&view(true, false, false)));
        assert!(!CheckPolicy::Ret.wants_check(&view(false, false, true)));
        assert!(CheckPolicy::End.wants_check(&view(false, true, false)));
        assert!(!CheckPolicy::End.wants_check(&view(true, false, true)));
    }

    #[test]
    fn reserved_registers_distinct() {
        use regs::*;
        let all = [PC_PRIME, RTS, AUX, CHK, GRET, ITARGET];
        for (i, a) in all.iter().enumerate() {
            assert!(!a.is_guest_conventional(), "{a} must be DBT-reserved");
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_strings() {
        assert_eq!(CheckPolicy::AllBb.to_string(), "ALLBB");
        assert_eq!(CheckPolicy::RetBe.to_string(), "RET-BE");
        assert_eq!(UpdateStyle::CMov.to_string(), "CMOVcc");
    }
}
