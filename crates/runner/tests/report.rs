//! Acceptance check for the `report` path: rendering the store of a
//! campaign killed midway (even mid-write) and resumed must be
//! byte-identical to rendering the store of an uninterrupted run. The
//! report derives exclusively from shard tallies — meta records carrying
//! wall-clock and thread counts are ignored — and percentiles are integer
//! bucket bounds, so no float formatting or environment noise leaks in.

use std::io::Write as _;
use std::path::PathBuf;

use cfed_core::TechniqueKind;
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec};
use cfed_runner::pool::{run_matrix, RunnerOptions};
use cfed_runner::report::render_report;

const PROGRAM: &str = r#"
    fn main() {
        let i = 0;
        let acc = 5;
        while (i < 35) {
            if (i % 4 == 1) { acc = acc * 2 - i; } else { acc = acc + 7; }
            i = i + 1;
        }
        out(acc);
    }
"#;

fn matrix() -> CampaignMatrix {
    CampaignMatrix {
        workloads: vec![WorkloadSpec::inline("rep", PROGRAM)],
        techniques: vec![None, Some(TechniqueKind::EdgCf), Some(TechniqueKind::Rcf)],
        styles: vec![UpdateStyle::CMov],
        policies: vec![CheckPolicy::AllBb],
        trials: 256,
        seed: 0xBEE,
        attacks: vec![None],
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfed-report-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("run.jsonl")
}

#[test]
fn report_on_resumed_store_is_byte_identical() {
    let m = matrix();

    // Uninterrupted reference run.
    let clean = tmp("clean");
    let full =
        run_matrix(&m, "rep", Some(&clean), &RunnerOptions { threads: 4, ..Default::default() })
            .unwrap();
    assert!(full.complete());

    // Killed midway: 5 of the 12 shards, then a record cut mid-write.
    let broken = tmp("resumed");
    let killed = run_matrix(
        &m,
        "rep",
        Some(&broken),
        &RunnerOptions { threads: 2, max_shards: Some(5), ..Default::default() },
    )
    .unwrap();
    assert!(!killed.complete());
    {
        let mut raw = std::fs::OpenOptions::new().append(true).open(&broken).unwrap();
        write!(raw, "{{\"shard\":\"inline:rep").unwrap();
    }
    let resumed =
        run_matrix(&m, "rep", Some(&broken), &RunnerOptions { threads: 4, ..Default::default() })
            .unwrap();
    assert!(resumed.complete());
    assert_eq!(resumed.resumed_shards, 5);

    let a = render_report(&clean).unwrap();
    let b = render_report(&broken).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "resumed-store report must match the uninterrupted one byte for byte");

    // Sanity on the rendered content itself.
    assert!(a.contains("run rep | seed 3054"), "{a}");
    assert!(a.contains("detection latency (instructions):"), "{a}");
    assert!(a.contains("p99<="), "{a}");
}
