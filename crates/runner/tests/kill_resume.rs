//! Integration test for the checkpoint/resume path: a campaign killed
//! midway (and even mid-write) must, after resuming from its JSONL store,
//! produce tallies bit-identical to an uninterrupted run.

use std::io::Write as _;
use std::path::PathBuf;

use cfed_core::{Category, TechniqueKind};
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_fault::Outcome;
use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec};
use cfed_runner::pool::{run_matrix, RunSummary, RunnerOptions};

const PROGRAM: &str = r#"
    fn main() {
        let i = 0;
        let acc = 11;
        while (i < 40) {
            if (i % 5 == 2) { acc = acc * 2 - i; } else { acc = acc + 3; }
            i = i + 1;
        }
        out(acc);
    }
"#;

fn matrix() -> CampaignMatrix {
    CampaignMatrix {
        workloads: vec![WorkloadSpec::inline("kr", PROGRAM)],
        techniques: vec![None, Some(TechniqueKind::EdgCf), Some(TechniqueKind::Rcf)],
        styles: vec![UpdateStyle::CMov],
        policies: vec![CheckPolicy::AllBb],
        trials: 256,
        seed: 0xDECAF,
        attacks: vec![None],
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfed-kr-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("run.jsonl")
}

fn assert_summaries_equal(a: &RunSummary, b: &RunSummary) {
    assert_eq!(a.cells.len(), b.cells.len());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.key, y.key);
        let (rx, ry) = (x.report.as_ref().unwrap(), y.report.as_ref().unwrap());
        for c in Category::ALL {
            assert_eq!(rx.category(c), ry.category(c), "cell {} category {c}", x.key);
            for o in Outcome::ALL {
                assert_eq!(
                    rx.latency_hist(c, o),
                    ry.latency_hist(c, o),
                    "cell {} hist {c}/{o:?}",
                    x.key
                );
            }
        }
        assert_eq!(rx.skipped, ry.skipped, "cell {}", x.key);
        assert_eq!(rx.latency_totals(), ry.latency_totals(), "cell {}", x.key);
        assert_eq!(rx.golden, ry.golden, "cell {}", x.key);
    }
}

#[test]
fn killed_then_resumed_matches_uninterrupted() {
    let m = matrix();
    // Reference: one uninterrupted run (ephemeral store).
    let uninterrupted =
        run_matrix(&m, "kr", None, &RunnerOptions { threads: 4, ..Default::default() }).unwrap();
    assert!(uninterrupted.complete());

    // "Kill" the run partway through: execute only 5 of the 12 shards.
    let path = tmp("mid");
    let killed = run_matrix(
        &m,
        "kr",
        Some(&path),
        &RunnerOptions { threads: 2, max_shards: Some(5), ..Default::default() },
    )
    .unwrap();
    assert!(!killed.complete());
    assert_eq!(killed.executed_shards, 5);

    // Simulate dying mid-write on top of that: append half a record.
    {
        let mut raw = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(raw, "{{\"shard\":\"inline:kr").unwrap();
    }

    // Resume: only the remaining shards run; the half-written record is
    // discarded, persisted shards are loaded, and the merged tallies are
    // bit-identical to the uninterrupted run.
    let resumed =
        run_matrix(&m, "kr", Some(&path), &RunnerOptions { threads: 4, ..Default::default() })
            .unwrap();
    assert!(resumed.complete());
    assert_eq!(resumed.resumed_shards, 5);
    assert_eq!(resumed.executed_shards + resumed.resumed_shards, 12);
    assert_summaries_equal(&uninterrupted, &resumed);

    // A third invocation is a pure resume: nothing left to execute.
    let noop =
        run_matrix(&m, "kr", Some(&path), &RunnerOptions { threads: 1, ..Default::default() })
            .unwrap();
    assert!(noop.complete());
    assert_eq!(noop.executed_shards, 0);
    assert_eq!(noop.resumed_shards, 12);
    assert_summaries_equal(&uninterrupted, &noop);
}

/// Fast-forward snapshots (the default) are purely an optimization: a
/// full run with them disabled — and a killed-then-resumed run with them
/// enabled — produce byte-identical reports.
#[test]
fn snapshot_fast_forward_preserves_kill_resume_identity() {
    let m = matrix();
    let scratch = run_matrix(
        &m,
        "kr",
        None,
        &RunnerOptions { threads: 4, snapshots: false, ..Default::default() },
    )
    .unwrap();
    assert!(scratch.complete());
    assert!(!scratch.perf.snapshots_enabled);
    assert_eq!(scratch.perf.snapshots.restores, 0);

    // Kill a snapshots-enabled run midway, then resume it.
    let path = tmp("ff");
    let killed = run_matrix(
        &m,
        "kr",
        Some(&path),
        &RunnerOptions { threads: 2, max_shards: Some(7), ..Default::default() },
    )
    .unwrap();
    assert!(!killed.complete());
    let resumed =
        run_matrix(&m, "kr", Some(&path), &RunnerOptions { threads: 4, ..Default::default() })
            .unwrap();
    assert!(resumed.complete());
    assert_eq!(resumed.resumed_shards, 7);
    assert!(resumed.perf.snapshots_enabled);
    assert!(resumed.perf.snapshots.restores > 0, "fast-forward path actually exercised");
    assert_summaries_equal(&scratch, &resumed);
}

#[test]
fn resume_under_different_thread_count_is_identical() {
    let m = matrix();
    let path_a = tmp("threads-a");
    let path_b = tmp("threads-b");
    let a =
        run_matrix(&m, "kr", Some(&path_a), &RunnerOptions { threads: 1, ..Default::default() })
            .unwrap();
    let b =
        run_matrix(&m, "kr", Some(&path_b), &RunnerOptions { threads: 8, ..Default::default() })
            .unwrap();
    assert_summaries_equal(&a, &b);
}

/// Renders every persisted profile to its canonical JSON line, cell key
/// first — the byte-level identity the profiler promises.
fn profile_bytes(path: &std::path::Path) -> String {
    cfed_runner::read_profiles(path)
        .unwrap()
        .iter()
        .map(|(cell, p)| format!("{cell} {}\n", p.to_json().render()))
        .collect()
}

/// The sampling profiler rides the same determinism contract as the
/// tallies: per-cell profiles persisted by a single-threaded run, a
/// many-threaded run, and a killed-then-resumed run are byte-identical.
#[test]
fn profiles_are_byte_identical_across_threads_and_kill_resume() {
    let m = matrix();
    let opts = |threads, max_shards| RunnerOptions {
        threads,
        max_shards,
        profile: true,
        ..Default::default()
    };

    let path_a = tmp("prof-a");
    let a = run_matrix(&m, "kr", Some(&path_a), &opts(1, None)).unwrap();
    assert!(a.complete());
    let reference = profile_bytes(&path_a);
    // One profile per cell (3 techniques × 1 style × 1 policy), none empty.
    assert_eq!(reference.lines().count(), m.cells().len());
    for p in cfed_runner::read_profiles(&path_a).unwrap().values() {
        assert!(!p.is_empty());
        assert!(p.totals().total() > 0);
    }

    let path_b = tmp("prof-b");
    let b = run_matrix(&m, "kr", Some(&path_b), &opts(8, None)).unwrap();
    assert!(b.complete());
    assert_eq!(profile_bytes(&path_b), reference, "threads must not change profile bytes");

    // Kill partway, resume: the resumed run re-appends nothing for cells
    // whose profile already landed, and the final bytes still match.
    let path_c = tmp("prof-c");
    let killed = run_matrix(&m, "kr", Some(&path_c), &opts(2, Some(5))).unwrap();
    assert!(!killed.complete());
    let resumed = run_matrix(&m, "kr", Some(&path_c), &opts(4, None)).unwrap();
    assert!(resumed.complete());
    assert_eq!(profile_bytes(&path_c), reference, "kill/resume must not change profile bytes");
}

/// Profiling changes what is *recorded*, never what is *measured*: the
/// campaign tallies with profiling on are bit-identical to a run with it
/// off, and a store written without profiling holds no profile records.
#[test]
fn profiling_does_not_perturb_tallies() {
    let m = matrix();
    let path_off = tmp("prof-off");
    let off =
        run_matrix(&m, "kr", Some(&path_off), &RunnerOptions { threads: 4, ..Default::default() })
            .unwrap();
    let on = run_matrix(
        &m,
        "kr",
        None,
        &RunnerOptions { threads: 4, profile: true, ..Default::default() },
    )
    .unwrap();
    assert_summaries_equal(&off, &on);
    assert!(cfed_runner::read_profiles(&path_off).unwrap().is_empty());
}
