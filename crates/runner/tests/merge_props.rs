//! Property tests for the algebraic law the runner rests on:
//! [`CampaignReport::merge`] is associative and commutative, so any
//! shard → worker → merge schedule reduces to the same campaign tallies.

use cfed_core::Category;
use cfed_fault::{CampaignReport, CategoryStats, Golden, LatencyGrid, Outcome};
use proptest::prelude::*;

fn golden() -> Golden {
    Golden { output: vec![42], exit_code: 0, insts: 100, branches: 10 }
}

/// Builds a report from 43 raw tallies (7 categories × 6 outcomes, plus
/// skipped) and a latency-sample list of `(category, outcome, latency)`
/// triples recorded into the per-cell histograms.
fn report_from(values: &[u64], samples: &[(usize, usize, u64)]) -> CampaignReport {
    assert_eq!(values.len(), 43);
    let mut stats = [CategoryStats::default(); 7];
    for (i, slot) in stats.iter_mut().enumerate() {
        *slot = CategoryStats {
            detected_check: values[i * 6],
            detected_hw: values[i * 6 + 1],
            other_fault: values[i * 6 + 2],
            benign: values[i * 6 + 3],
            sdc: values[i * 6 + 4],
            timeout: values[i * 6 + 5],
        };
    }
    let mut lat = LatencyGrid::default();
    for &(c, o, l) in samples {
        lat[c][o].record(l);
    }
    CampaignReport::from_parts(golden(), stats, values[42], lat)
}

fn arb_report() -> impl Strategy<Value = CampaignReport> {
    (
        proptest::collection::vec(0u64..1_000_000, 43),
        proptest::collection::vec((0usize..7, 0usize..6, 0u64..1_000_000), 0..32),
    )
        .prop_map(|(v, samples)| report_from(&v, &samples))
}

fn assert_reports_equal(a: &CampaignReport, b: &CampaignReport) {
    for c in Category::ALL {
        assert_eq!(a.category(c), b.category(c), "category {c}");
        for o in Outcome::ALL {
            assert_eq!(a.latency_hist(c, o), b.latency_hist(c, o), "hist {c}/{o:?}");
        }
    }
    assert_eq!(a.skipped, b.skipped);
    assert_eq!(a.latency_totals(), b.latency_totals());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in arb_report(), b in arb_report()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_reports_equal(&ab, &ba);
    }

    #[test]
    fn merge_is_associative(a in arb_report(), b in arb_report(), c in arb_report()) {
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_reports_equal(&left, &right);
    }

    #[test]
    fn empty_report_is_identity(a in arb_report()) {
        let mut merged = a.clone();
        merged.merge(&CampaignReport::new(golden()));
        assert_reports_equal(&merged, &a);
    }
}
