//! Property tests for the algebraic law the runner rests on:
//! [`CampaignReport::merge`] is associative and commutative, so any
//! shard → worker → merge schedule reduces to the same campaign tallies —
//! plus the store-level corollary the `cfed-serve` coordinator leans on:
//! however a delivery schedule duplicates, reorders, or interleaves
//! failures with shard records, the persisted store renders the same
//! report as a clean in-order run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use cfed_core::Category;
use cfed_fault::{CampaignReport, CategoryStats, Golden, LatencyGrid, Outcome};
use cfed_runner::report::{render_parts, summarize};
use cfed_runner::store::{read_profiles, read_store, CampaignStore, ShardTallies, StoreHeader};
use cfed_telemetry::{BlockProfile, Profile};
use proptest::prelude::*;

fn golden() -> Golden {
    Golden { output: vec![42], exit_code: 0, insts: 100, branches: 10 }
}

/// Builds a report from 43 raw tallies (7 categories × 6 outcomes, plus
/// skipped) and a latency-sample list of `(category, outcome, latency)`
/// triples recorded into the per-cell histograms.
fn report_from(values: &[u64], samples: &[(usize, usize, u64)]) -> CampaignReport {
    assert_eq!(values.len(), 43);
    let mut stats = [CategoryStats::default(); 7];
    for (i, slot) in stats.iter_mut().enumerate() {
        *slot = CategoryStats {
            detected_check: values[i * 6],
            detected_hw: values[i * 6 + 1],
            other_fault: values[i * 6 + 2],
            benign: values[i * 6 + 3],
            sdc: values[i * 6 + 4],
            timeout: values[i * 6 + 5],
        };
    }
    let mut lat = LatencyGrid::default();
    for &(c, o, l) in samples {
        lat[c][o].record(l);
    }
    CampaignReport::from_parts(golden(), stats, values[42], lat)
}

fn arb_report() -> impl Strategy<Value = CampaignReport> {
    (
        proptest::collection::vec(0u64..1_000_000, 43),
        proptest::collection::vec((0usize..7, 0usize..6, 0u64..1_000_000), 0..32),
    )
        .prop_map(|(v, samples)| report_from(&v, &samples))
}

fn assert_reports_equal(a: &CampaignReport, b: &CampaignReport) {
    for c in Category::ALL {
        assert_eq!(a.category(c), b.category(c), "category {c}");
        for o in Outcome::ALL {
            assert_eq!(a.latency_hist(c, o), b.latency_hist(c, o), "hist {c}/{o:?}");
        }
    }
    assert_eq!(a.skipped, b.skipped);
    assert_eq!(a.latency_totals(), b.latency_totals());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in arb_report(), b in arb_report()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_reports_equal(&ab, &ba);
    }

    #[test]
    fn merge_is_associative(a in arb_report(), b in arb_report(), c in arb_report()) {
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_reports_equal(&left, &right);
    }

    #[test]
    fn empty_report_is_identity(a in arb_report()) {
        let mut merged = a.clone();
        merged.merge(&CampaignReport::new(golden()));
        assert_reports_equal(&merged, &a);
    }
}

// ---- store-level idempotency (the coordinator's merge contract) --------

static STORE_SEQ: AtomicUsize = AtomicUsize::new(0);

fn store_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cfed-mp-{}-{}.jsonl",
        std::process::id(),
        STORE_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn header(total_shards: u64) -> StoreHeader {
    StoreHeader {
        run_id: "mp".to_string(),
        seed: 7,
        trials: 256,
        shard_trials: 64,
        digest: 0xFACE,
        total_shards,
    }
}

fn arb_tallies() -> impl Strategy<Value = ShardTallies> {
    (
        proptest::collection::vec(0u64..1_000_000, 43),
        proptest::collection::vec((0usize..7, 0usize..6, 0u64..1_000_000), 0..16),
    )
        .prop_map(|(v, samples)| ShardTallies::from_report(&report_from(&v, &samples)))
}

/// Distinct shard keys over two cells, so `summarize` exercises grouping.
fn unit_key(i: usize) -> String {
    format!("cell{}#{}", i % 2, i)
}

/// Renders the report exactly as `cfed-campaign report` would.
fn rendered(path: &Path) -> String {
    let (h, done, failed) = read_store(path).unwrap();
    render_parts(&h, &summarize(&done), &failed)
}

/// The reference: every unit appended exactly once, in key order.
fn clean_render(units: &[ShardTallies]) -> String {
    let path = store_path();
    let mut store = CampaignStore::open(&path, &header(units.len() as u64)).unwrap();
    for (i, tallies) in units.iter().enumerate() {
        store.append_ok(&unit_key(i), tallies.clone()).unwrap();
    }
    drop(store);
    let out = rendered(&path);
    let _ = std::fs::remove_file(&path);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Duplicate deliveries and arbitrary completion order — the store a
    /// coordinator writes under re-leases and worker races — render the
    /// same report as a clean one-shot run.
    #[test]
    fn store_ignores_duplicate_and_out_of_order_delivery(
        units in proptest::collection::vec(arb_tallies(), 1..6),
        schedule in proptest::collection::vec(0usize..1024, 0..24),
    ) {
        let reference = clean_render(&units);
        let path = store_path();
        let mut store = CampaignStore::open(&path, &header(units.len() as u64)).unwrap();
        // Random subset, random order, with duplicates...
        let mut seen = vec![false; units.len()];
        for idx in &schedule {
            let i = idx % units.len();
            store.append_ok(&unit_key(i), units[i].clone()).unwrap();
            seen[i] = true;
        }
        // ...then whatever the schedule missed lands late.
        for i in (0..units.len()).rev() {
            if !seen[i] {
                store.append_ok(&unit_key(i), units[i].clone()).unwrap();
            }
        }
        drop(store);
        assert_eq!(rendered(&path), reference);
        let _ = std::fs::remove_file(&path);
    }

    /// Profile merging obeys the same algebra as report merging: any
    /// partition of the recordings, folded in any order, accumulates to
    /// bit-identical counters — and therefore byte-identical JSON.
    #[test]
    fn profile_merge_is_order_and_partition_invariant(
        rows in proptest::collection::vec(
            (0u64..64, 0u64..100, 0u64..10_000, 0u64..1_000, 0u64..1_000),
            1..24,
        ),
        split in 0usize..24,
        others in proptest::collection::vec(0u64..10_000, 2usize),
    ) {
        let block = |&(addr, hits, payload, head, tail): &(u64, u64, u64, u64, u64)| {
            (addr, BlockProfile {
                hits,
                payload_cycles: payload,
                head_cycles: head,
                tail_cycles: tail,
            })
        };
        let mut serial = Profile::new();
        for r in &rows {
            let (addr, sample) = block(r);
            serial.record_block(addr, sample);
        }
        serial.record_other(others[0] + others[1]);

        let cut = split % rows.len();
        let (mut a, mut b) = (Profile::new(), Profile::new());
        for (i, r) in rows.iter().enumerate() {
            let (addr, sample) = block(r);
            if i < cut { a.record_block(addr, sample) } else { b.record_block(addr, sample) }
        }
        a.record_other(others[0]);
        b.record_other(others[1]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(&ab, &serial);
        prop_assert_eq!(&ba, &serial);
        prop_assert_eq!(ab.to_json().render(), serial.to_json().render());
        prop_assert_eq!(ba.to_json().render(), serial.to_json().render());
    }

    /// Profile persistence is first-wins idempotent: however a delivery
    /// schedule repeats and reorders per-cell profile records (worker
    /// races, re-leases, resumed stores), the persisted set reloads
    /// byte-identical to a clean one-append-per-cell run.
    #[test]
    fn store_profiles_survive_duplicate_and_out_of_order_delivery(
        cells in proptest::collection::vec(
            proptest::collection::vec(
                (0u64..64, 1u64..100, 0u64..10_000, 0u64..1_000, 0u64..1_000),
                1..8,
            ),
            1..5,
        ),
        schedule in proptest::collection::vec(0usize..1024, 0..16),
    ) {
        let profiles: Vec<Profile> = cells
            .iter()
            .map(|rows| {
                let mut p = Profile::new();
                for &(addr, hits, payload, head, tail) in rows {
                    p.record_block(addr, BlockProfile {
                        hits,
                        payload_cycles: payload,
                        head_cycles: head,
                        tail_cycles: tail,
                    });
                }
                p
            })
            .collect();
        let cell_key = |i: usize| format!("cell{i}");

        // Reference: each cell's profile appended exactly once, in order.
        let clean = store_path();
        let mut store = CampaignStore::open(&clean, &header(4)).unwrap();
        for (i, p) in profiles.iter().enumerate() {
            prop_assert!(store.append_profile(&cell_key(i), p).unwrap());
        }
        drop(store);
        let reference = read_profiles(&clean).unwrap();
        let _ = std::fs::remove_file(&clean);

        // Scrambled: duplicates and arbitrary order, stragglers last. A
        // repeat append must report "not written".
        let path = store_path();
        let mut store = CampaignStore::open(&path, &header(4)).unwrap();
        let mut seen = vec![false; profiles.len()];
        for idx in &schedule {
            let i = idx % profiles.len();
            let written = store.append_profile(&cell_key(i), &profiles[i]).unwrap();
            prop_assert_eq!(written, !seen[i]);
            seen[i] = true;
        }
        for i in (0..profiles.len()).rev() {
            if !seen[i] {
                prop_assert!(store.append_profile(&cell_key(i), &profiles[i]).unwrap());
            }
        }
        drop(store);
        let reloaded = read_profiles(&path).unwrap();
        prop_assert_eq!(reloaded.len(), reference.len());
        for (key, p) in &reference {
            prop_assert_eq!(
                reloaded[key].to_json().render(),
                p.to_json().render(),
                "cell {}", key
            );
        }
        // Reloading must not perturb the tallies path either.
        let (_, done, failed) = read_store(&path).unwrap();
        prop_assert!(done.is_empty());
        prop_assert!(failed.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    /// A unit that fails (worker death, expired lease) and is later
    /// re-delivered successfully leaves no trace: the failure record is
    /// superseded and the report equals a clean run's.
    #[test]
    fn store_resolves_interleaved_failures_to_the_final_result(
        units in proptest::collection::vec(arb_tallies(), 1..6),
        fails in proptest::collection::vec(any::<bool>(), 5usize),
    ) {
        let reference = clean_render(&units);
        let path = store_path();
        let mut store = CampaignStore::open(&path, &header(units.len() as u64)).unwrap();
        for (i, tallies) in units.iter().enumerate() {
            if fails[i % fails.len()] {
                store.append_failed(&unit_key(i), "worker died mid-unit").unwrap();
            }
            store.append_ok(&unit_key(i), tallies.clone()).unwrap();
        }
        prop_assert!(store.failed.is_empty(), "successes supersede failures");
        drop(store);
        // The reload path agrees with the in-memory view.
        let (_, done, failed) = read_store(&path).unwrap();
        prop_assert!(failed.is_empty());
        prop_assert_eq!(done.len(), units.len());
        assert_eq!(rendered(&path), reference);
        let _ = std::fs::remove_file(&path);
    }
}
