//! # cfed-runner — sharded parallel campaign engine
//!
//! Fault-injection campaigns are embarrassingly parallel — every trial is
//! an independent whole-program run — but naive parallelism loses the
//! property the rest of the workspace leans on: campaigns are
//! deterministic given a seed. This crate keeps both:
//!
//! * [`matrix`] — a campaign matrix (workload × technique × update style ×
//!   policy) exploded into fixed-size shards whose RNG seeds depend only
//!   on `(campaign seed, shard index)`;
//! * [`pool`] — a `std::thread` worker pool executing shards with
//!   per-worker image/golden caches and panic isolation; merged per-cell
//!   tallies are bit-identical to the serial [`cfed_fault::Campaign::run`]
//!   path for any thread count or scheduling order;
//! * [`retry`] — the bounded-retry/backoff policy for failed shards,
//!   shared (type and semantics) with the `cfed-serve` campaign service;
//! * [`store`] — a checkpointed JSONL result store: every finished shard
//!   is appended and flushed, so a killed run resumes by skipping
//!   persisted shards (half-written trailing lines are detected and
//!   dropped);
//! * [`json`] — re-export of the hand-rolled JSON subset, which now lives
//!   in `cfed-telemetry` so event sinks and the store share one writer
//!   and one corruption-detecting parser;
//! * [`report`] — offline renderer for a finished (or resumed) store:
//!   per-category coverage tables and detection-latency percentiles,
//!   byte-identical regardless of interruption or thread count;
//! * [`cli`] — the tiny friendly flag parser shared by the workspace
//!   binaries.
//!
//! The `cfed-campaign` binary drives the full coverage + latency study
//! through this machinery.
//!
//! ## Example
//!
//! ```
//! use cfed_core::TechniqueKind;
//! use cfed_dbt::{CheckPolicy, UpdateStyle};
//! use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec};
//! use cfed_runner::pool::{run_matrix, RunnerOptions};
//!
//! let matrix = CampaignMatrix {
//!     workloads: vec![WorkloadSpec::inline(
//!         "demo",
//!         "fn main() { let i = 0; while (i < 20) { i = i + 1; } out(i); }",
//!     )],
//!     techniques: vec![Some(TechniqueKind::EdgCf)],
//!     styles: vec![UpdateStyle::CMov],
//!     policies: vec![CheckPolicy::AllBb],
//!     trials: 64,
//!     seed: 1,
//!     attacks: vec![None],
//! };
//! let options = RunnerOptions { threads: 2, ..Default::default() };
//! let summary = run_matrix(&matrix, "demo", None, &options)?;
//! assert!(summary.complete());
//! # Ok::<(), String>(())
//! ```

pub mod cli;
pub mod matrix;
pub mod pool;
pub mod report;
pub mod retry;
pub mod store;

pub use cfed_telemetry::json;

pub use matrix::{CampaignMatrix, CellSpec, ShardTask, WorkloadSpec};
pub use pool::{
    parallel_map, run_matrix, CellResult, GoldenCache, RunSummary, RunnerOptions, UnitExecutor,
    UnitRun,
};
pub use retry::RetryPolicy;
pub use store::{read_meta, read_profiles, read_store, CampaignStore, ShardTallies, StoreHeader};
