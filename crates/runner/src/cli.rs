//! Tiny shared command-line parser for the workspace binaries.
//!
//! Replaces the ad-hoc `args().position(..).expect(..)` parsing the bench
//! binaries started with: unknown flags, missing values and malformed
//! numbers produce a one-line error plus usage (exit code 2) instead of a
//! panic, and every binary gains `--help`.

use std::fmt::Write as _;

use cfed_workloads::Scale;

/// One `--flag VALUE` option.
#[derive(Debug, Clone)]
struct FlagSpec {
    name: &'static str,
    value_name: &'static str,
    default: Option<String>,
    help: &'static str,
    is_switch: bool,
}

/// Declarative parser for a binary's flags.
#[derive(Debug, Clone)]
pub struct Parser {
    bin: &'static str,
    about: &'static str,
    flags: Vec<FlagSpec>,
}

/// Parsed arguments: flag name → value.
#[derive(Debug, Clone)]
pub struct Args {
    values: Vec<(&'static str, String)>,
    switches: Vec<&'static str>,
}

impl Parser {
    /// A parser for binary `bin` with a one-line description.
    pub fn new(bin: &'static str, about: &'static str) -> Parser {
        Parser { bin, about, flags: Vec::new() }
    }

    /// Adds a `--name VALUE` flag with a default (shown in `--help`).
    pub fn flag(
        mut self,
        name: &'static str,
        value_name: &'static str,
        default: &str,
        help: &'static str,
    ) -> Parser {
        self.flags.push(FlagSpec {
            name,
            value_name,
            default: Some(default.to_string()),
            help,
            is_switch: false,
        });
        self
    }

    /// Adds a required `--name VALUE` flag (no default).
    pub fn required_flag(
        mut self,
        name: &'static str,
        value_name: &'static str,
        help: &'static str,
    ) -> Parser {
        self.flags.push(FlagSpec { name, value_name, default: None, help, is_switch: false });
        self
    }

    /// Adds a boolean `--name` switch.
    pub fn switch(mut self, name: &'static str, help: &'static str) -> Parser {
        self.flags.push(FlagSpec { name, value_name: "", default: None, help, is_switch: true });
        self
    }

    /// Renders the `--help` text.
    pub fn usage(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.bin, self.about);
        let _ = writeln!(out, "\nUsage: {} [OPTIONS]\n\nOptions:", self.bin);
        for f in &self.flags {
            let head = if f.is_switch {
                format!("--{}", f.name)
            } else {
                format!("--{} <{}>", f.name, f.value_name)
            };
            let tail = match &f.default {
                Some(d) => format!("{} [default: {d}]", f.help),
                None => f.help.to_string(),
            };
            let _ = writeln!(out, "  {head:<24} {tail}");
        }
        let _ = writeln!(out, "  {:<24} Print this help", "--help");
        out
    }

    /// Parses the given argument list (without the binary name).
    pub fn try_parse(&self, argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            values: self
                .flags
                .iter()
                .filter_map(|f| f.default.as_ref().map(|d| (f.name, d.clone())))
                .collect(),
            switches: Vec::new(),
        };
        let mut it = argv.iter();
        while let Some(raw) = it.next() {
            let name = raw
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument {raw:?} (flags start with --)"))?;
            let (name, inline_value) = match name.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (name, None),
            };
            let spec = self
                .flags
                .iter()
                .find(|f| f.name == name)
                .ok_or_else(|| format!("unknown flag --{name}"))?;
            if spec.is_switch {
                if inline_value.is_some() {
                    return Err(format!("--{name} takes no value"));
                }
                args.switches.push(spec.name);
                continue;
            }
            let value = match inline_value {
                Some(v) => v,
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("--{name} requires a <{}> value", spec.value_name))?,
            };
            args.values.retain(|(n, _)| *n != spec.name);
            args.values.push((spec.name, value));
        }
        for f in &self.flags {
            if !f.is_switch && f.default.is_none() && args.get(f.name).is_none() {
                return Err(format!("missing required flag --{}", f.name));
            }
        }
        Ok(args)
    }

    /// Parses `std::env::args()`, handling `--help` (exit 0) and printing a
    /// friendly error plus usage on bad input (exit 2).
    pub fn parse(&self) -> Args {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        self.parse_from(&argv)
    }

    /// As [`Parser::parse`], over an explicit argument list — used by
    /// binaries with subcommands, which peel the subcommand word off
    /// before parsing the rest.
    pub fn parse_from(&self, argv: &[String]) -> Args {
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            print!("{}", self.usage());
            std::process::exit(0);
        }
        match self.try_parse(argv) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{}: {e}\n\n{}", self.bin, self.usage());
                std::process::exit(2);
            }
        }
    }
}

impl Args {
    /// Raw string value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Whether a switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }

    /// A flag parsed as `u64`.
    pub fn get_u64(&self, name: &str) -> Result<u64, String> {
        let raw = self.get(name).ok_or_else(|| format!("missing --{name}"))?;
        raw.parse::<u64>()
            .map_err(|_| format!("--{name} expects a non-negative integer, got {raw:?}"))
    }

    /// A flag parsed as `usize`.
    pub fn get_usize(&self, name: &str) -> Result<usize, String> {
        let raw = self.get(name).ok_or_else(|| format!("missing --{name}"))?;
        raw.parse::<usize>()
            .map_err(|_| format!("--{name} expects a non-negative integer, got {raw:?}"))
    }

    /// A flag parsed as a workload [`Scale`].
    pub fn get_scale(&self, name: &str) -> Result<Scale, String> {
        parse_scale(self.get(name).ok_or_else(|| format!("missing --{name}"))?)
    }
}

/// Parses a scale argument: `test`, `full`, or an iteration count.
pub fn parse_scale(raw: &str) -> Result<Scale, String> {
    match raw {
        "test" => Ok(Scale::Test),
        "full" => Ok(Scale::Full),
        n => n
            .parse::<u64>()
            .map(Scale::Custom)
            .map_err(|_| format!("--scale expects test, full, or an iteration count, got {raw:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> Parser {
        Parser::new("demo", "demo binary")
            .flag("trials", "N", "500", "injections per cell")
            .flag("scale", "SCALE", "test", "workload scale")
            .required_flag("out", "PATH", "output path")
            .switch("quiet", "suppress progress")
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parser().try_parse(&argv(&["--out", "x.jsonl"])).unwrap();
        assert_eq!(a.get_u64("trials").unwrap(), 500);
        assert!(!a.has("quiet"));
        let a = parser().try_parse(&argv(&["--trials=9", "--out", "x", "--quiet"])).unwrap();
        assert_eq!(a.get_u64("trials").unwrap(), 9);
        assert!(a.has("quiet"));
    }

    #[test]
    fn friendly_errors() {
        let p = parser();
        assert!(p
            .try_parse(&argv(&["--out", "x", "--nope"]))
            .unwrap_err()
            .contains("unknown flag"));
        assert!(p.try_parse(&argv(&["--out"])).unwrap_err().contains("requires"));
        assert!(p.try_parse(&argv(&[])).unwrap_err().contains("missing required flag --out"));
        assert!(p.try_parse(&argv(&["positional"])).unwrap_err().contains("unexpected argument"));
        let a = p.try_parse(&argv(&["--out", "x", "--trials", "many"])).unwrap();
        assert!(a.get_u64("trials").unwrap_err().contains("non-negative integer"));
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("test").unwrap(), Scale::Test);
        assert_eq!(parse_scale("full").unwrap(), Scale::Full);
        assert_eq!(parse_scale("250").unwrap(), Scale::Custom(250));
        assert!(parse_scale("enormous").is_err());
    }

    #[test]
    fn usage_mentions_every_flag() {
        let text = parser().usage();
        for flag in ["--trials", "--scale", "--out", "--quiet", "--help"] {
            assert!(text.contains(flag), "usage missing {flag}");
        }
    }
}
