//! Checkpointed JSONL result store.
//!
//! One file per campaign run: a header line identifying the matrix (run id,
//! seed, trials, shard size, cell-list digest), then one line per completed
//! shard carrying its raw tallies. Records are appended and flushed as
//! shards finish, so a killed run loses at most the line being written;
//! on reopen the store truncates any half-written trailing line and hands
//! back the set of persisted shards, which the pool skips.
//!
//! Record shapes (all numbers are `u64`):
//!
//! ```text
//! {"cfed_campaign":2,"run_id":"…","seed":S,"trials":T,"shard_trials":64,
//!  "digest":D,"total_shards":N}
//! {"shard":"<cell key>#<shard index>",
//!  "cats":[[chk,hw,fault,benign,sdc,timeout] × 7 in Category::ALL order],
//!  "skipped":K,
//!  "lat":[[hist|null × 6 in Outcome::ALL order] × 7 in Category::ALL order]}
//! {"shard":"<cell key>#<shard index>","error":"…"}
//! {"meta":"run", …}
//! {"meta":"profile","cell":"<cell key>","profile":{…}}
//! ```
//!
//! Histograms use the sparse `cfed_telemetry::Histogram` form
//! (`{"n":…,"sum":…,"min":…,"max":…,"b":[[bucket,count],…]}`, `null` when
//! empty). Error records mark shards whose worker panicked; they are *not*
//! treated as done, so a resume retries them. Meta records carry run-level
//! telemetry (wall-clock, thread count); they are ignored when loading, so
//! reports derive exclusively from shard tallies and stay byte-identical
//! across kill/resume. The one exception is the `profile` meta kind: a
//! cell's execution profile is a deterministic function of `(workload,
//! configuration)`, so it is persisted at most once per cell
//! ([`CampaignStore::append_profile`] is idempotent across kill/resume)
//! and its record bytes are identical for any thread count.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use cfed_core::Category;
use cfed_fault::{CampaignReport, CategoryStats, Golden, LatencyGrid};
use cfed_telemetry::{Histogram, Profile};

use crate::json::{obj, parse, Json};

/// Identity of a campaign run, written as the first line of the store file.
/// A resume validates every field; a mismatch means the file belongs to a
/// different campaign and is refused rather than silently merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHeader {
    /// Human-chosen run identifier.
    pub run_id: String,
    /// Campaign seed shared by every cell.
    pub seed: u64,
    /// Trials per cell.
    pub trials: u64,
    /// Shard size in trials ([`cfed_fault::SHARD_TRIALS`]).
    pub shard_trials: u64,
    /// FNV digest of the full cell-key list.
    pub digest: u64,
    /// Total shards across all cells.
    pub total_shards: u64,
}

impl StoreHeader {
    /// Serializes the header line (public: the `cfed-serve` protocol ships
    /// headers over the wire in the same shape the store persists).
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("cfed_campaign", Json::UInt(2)),
            ("run_id", Json::Str(self.run_id.clone())),
            ("seed", Json::UInt(self.seed)),
            ("trials", Json::UInt(self.trials)),
            ("shard_trials", Json::UInt(self.shard_trials)),
            ("digest", Json::UInt(self.digest)),
            ("total_shards", Json::UInt(self.total_shards)),
        ])
    }

    /// Parses a header produced by [`StoreHeader::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<StoreHeader, String> {
        let field = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("header missing {k}"));
        if field("cfed_campaign")? != 2 {
            return Err("unsupported store version".into());
        }
        Ok(StoreHeader {
            run_id: v
                .get("run_id")
                .and_then(Json::as_str)
                .ok_or("header missing run_id")?
                .to_string(),
            seed: field("seed")?,
            trials: field("trials")?,
            shard_trials: field("shard_trials")?,
            digest: field("digest")?,
            total_shards: field("total_shards")?,
        })
    }
}

/// Raw tallies of one shard, as persisted (a [`CampaignReport`] minus the
/// golden reference, which is recomputed on resume rather than stored).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardTallies {
    /// Per-category outcome tallies in [`Category::ALL`] order.
    pub stats: [CategoryStats; 7],
    /// Injections that could not be placed.
    pub skipped: u64,
    /// Latency histograms per category × outcome.
    pub lat: LatencyGrid,
}

impl ShardTallies {
    /// Extracts the persisted tallies from a shard report.
    pub fn from_report(report: &CampaignReport) -> ShardTallies {
        let mut stats = [CategoryStats::default(); 7];
        for (slot, c) in stats.iter_mut().zip(Category::ALL) {
            *slot = *report.category(c);
        }
        ShardTallies { stats, skipped: report.skipped, lat: report.latency_grid().clone() }
    }

    /// Rebuilds a mergeable report around a (recomputed) golden reference.
    pub fn to_report(&self, golden: Golden) -> CampaignReport {
        CampaignReport::from_parts(golden, self.stats, self.skipped, self.lat.clone())
    }

    /// Folds another shard's tallies into this one — the same associative,
    /// commutative algebra as [`CampaignReport::merge`], minus the golden
    /// reference. Lets the report path merge persisted shards without
    /// recompiling workloads.
    pub fn absorb(&mut self, other: &ShardTallies) {
        for (into, from) in self.stats.iter_mut().zip(&other.stats) {
            into.detected_check += from.detected_check;
            into.detected_hw += from.detected_hw;
            into.other_fault += from.other_fault;
            into.benign += from.benign;
            into.sdc += from.sdc;
            into.timeout += from.timeout;
        }
        self.skipped += other.skipped;
        for (into_row, from_row) in self.lat.iter_mut().zip(&other.lat) {
            for (into, from) in into_row.iter_mut().zip(from_row) {
                into.merge(from);
            }
        }
    }

    /// Serializes the tallies as the store's shard record (public: the
    /// `cfed-serve` result frames carry exactly this shape, so a
    /// coordinator appends worker results without re-encoding).
    pub fn to_json(&self, shard_key: &str) -> Json {
        let cats = self
            .stats
            .iter()
            .map(|s| {
                Json::Arr(vec![
                    Json::UInt(s.detected_check),
                    Json::UInt(s.detected_hw),
                    Json::UInt(s.other_fault),
                    Json::UInt(s.benign),
                    Json::UInt(s.sdc),
                    Json::UInt(s.timeout),
                ])
            })
            .collect();
        let lat = self
            .lat
            .iter()
            .map(|row| Json::Arr(row.iter().map(Histogram::to_json).collect()))
            .collect();
        obj(vec![
            ("shard", Json::Str(shard_key.to_string())),
            ("cats", Json::Arr(cats)),
            ("skipped", Json::UInt(self.skipped)),
            ("lat", Json::Arr(lat)),
        ])
    }

    /// Parses a shard record produced by [`ShardTallies::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed field.
    pub fn from_json(v: &Json) -> Result<ShardTallies, String> {
        let cats = v.get("cats").and_then(Json::as_arr).ok_or("record missing cats")?;
        if cats.len() != 7 {
            return Err(format!("expected 7 categories, got {}", cats.len()));
        }
        let mut stats = [CategoryStats::default(); 7];
        for (slot, cat) in stats.iter_mut().zip(cats) {
            let nums = cat.as_arr().ok_or("category tallies must be an array")?;
            if nums.len() != 6 {
                return Err(format!("expected 6 tallies, got {}", nums.len()));
            }
            let n = |i: usize| nums[i].as_u64().ok_or("tally must be a number".to_string());
            *slot = CategoryStats {
                detected_check: n(0)?,
                detected_hw: n(1)?,
                other_fault: n(2)?,
                benign: n(3)?,
                sdc: n(4)?,
                timeout: n(5)?,
            };
        }
        let field = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("record missing {k}"));
        let rows = v.get("lat").and_then(Json::as_arr).ok_or("record missing lat")?;
        if rows.len() != 7 {
            return Err(format!("expected 7 latency rows, got {}", rows.len()));
        }
        let mut tallies =
            ShardTallies { stats, skipped: field("skipped")?, lat: LatencyGrid::default() };
        for (slot_row, row) in tallies.lat.iter_mut().zip(rows) {
            let cells = row.as_arr().ok_or("latency row must be an array")?;
            if cells.len() != 6 {
                return Err(format!("expected 6 latency cells, got {}", cells.len()));
            }
            for (slot, cell) in slot_row.iter_mut().zip(cells) {
                *slot = Histogram::from_json(cell)?;
            }
        }
        Ok(tallies)
    }
}

/// The open store: an append-only JSONL file plus the in-memory map of
/// shards it already holds. A store can also be purely in-memory (no
/// persistence, no resume) for callers that only want the pool.
#[derive(Debug)]
pub struct CampaignStore {
    path: Option<PathBuf>,
    writer: Option<BufWriter<File>>,
    /// Shards with persisted results, by shard key.
    pub done: BTreeMap<String, ShardTallies>,
    /// Shards whose last persisted record is a failure (retried on resume).
    pub failed: BTreeMap<String, String>,
    /// Per-cell execution profiles, by cell key (at most one per cell).
    pub profiles: BTreeMap<String, Profile>,
    /// Whether the store resumed an existing file.
    pub resumed: bool,
}

/// Everything [`CampaignStore::load`] recovers from an existing store body.
struct Loaded {
    header: StoreHeader,
    done: BTreeMap<String, ShardTallies>,
    failed: BTreeMap<String, String>,
    profiles: BTreeMap<String, Profile>,
    /// Byte length of the valid prefix (everything before a possible
    /// truncated final line).
    valid_bytes: usize,
}

impl CampaignStore {
    /// An ephemeral store: records are tallied in memory and dropped with
    /// the value. Used when a caller wants the worker pool but not the
    /// checkpoint file.
    pub fn in_memory() -> CampaignStore {
        CampaignStore {
            path: None,
            writer: None,
            done: BTreeMap::new(),
            failed: BTreeMap::new(),
            profiles: BTreeMap::new(),
            resumed: false,
        }
    }

    /// Opens the store at `path`. A missing file is created with a fresh
    /// header; an existing file is validated against `header` and its
    /// records loaded. A half-written trailing line (killed run) is
    /// truncated away; corruption anywhere else is an error.
    pub fn open(path: &Path, header: &StoreHeader) -> Result<CampaignStore, String> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        let existing = path.exists();
        if !existing {
            let file =
                File::create(path).map_err(|e| format!("creating {}: {e}", path.display()))?;
            let mut writer = BufWriter::new(file);
            writeln!(writer, "{}", header.to_json().render())
                .and_then(|()| writer.flush())
                .map_err(|e| format!("writing header: {e}"))?;
            return Ok(CampaignStore {
                path: Some(path.to_path_buf()),
                writer: Some(writer),
                done: BTreeMap::new(),
                failed: BTreeMap::new(),
                profiles: BTreeMap::new(),
                resumed: false,
            });
        }

        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let Loaded { header: found, done, failed, profiles, valid_bytes } =
            Self::load(&text, path)?;
        if found != *header {
            return Err(format!(
                "store {} belongs to a different campaign \
                 (found run_id={:?} seed={} trials={} digest={:#x}, \
                 expected run_id={:?} seed={} trials={} digest={:#x})",
                path.display(),
                found.run_id,
                found.seed,
                found.trials,
                found.digest,
                header.run_id,
                header.seed,
                header.trials,
                header.digest,
            ));
        }

        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        // Drop the half-written tail, if any, before appending new records.
        file.set_len(valid_bytes as u64).map_err(|e| format!("truncating store: {e}"))?;
        file.seek(SeekFrom::Start(valid_bytes as u64))
            .map_err(|e| format!("seeking store: {e}"))?;
        let writer = BufWriter::new(file);
        Ok(CampaignStore {
            path: Some(path.to_path_buf()),
            writer: Some(writer),
            done,
            failed,
            profiles,
            resumed: true,
        })
    }

    /// Parses an existing store body: the header, the shard records, the
    /// per-cell profiles, and the byte length of the valid prefix
    /// (everything up to a possible truncated final line). Other meta
    /// records are skipped.
    fn load(text: &str, path: &Path) -> Result<Loaded, String> {
        let mut header = None;
        let mut done = BTreeMap::new();
        let mut failed: BTreeMap<String, String> = BTreeMap::new();
        let mut profiles: BTreeMap<String, Profile> = BTreeMap::new();
        let mut valid_bytes = 0usize;
        let mut offset = 0usize;
        while offset < text.len() {
            let rest = &text[offset..];
            let (line, consumed, complete) = match rest.find('\n') {
                Some(nl) => (&rest[..nl], nl + 1, true),
                None => (rest, rest.len(), false),
            };
            if line.trim().is_empty() {
                offset += consumed;
                if complete {
                    valid_bytes = offset;
                }
                continue;
            }
            let parsed = parse(line);
            let (value, line_ok) = match parsed {
                Ok(v) => (v, complete),
                // A parse failure is only tolerable as the file's final
                // line — the signature of a write cut short by a kill.
                Err(e) if offset + consumed == text.len() => {
                    eprintln!(
                        "cfed-runner: dropping half-written record at end of {}: {e}",
                        path.display()
                    );
                    (Json::Null, false)
                }
                Err(e) => return Err(format!("corrupt store {}: {e}", path.display())),
            };
            if line_ok {
                if header.is_none() {
                    header = Some(StoreHeader::from_json(&value)?);
                } else if value.get("meta").is_some() {
                    // Run-level telemetry: never part of the tallies. The
                    // profile kind is loaded so resumes stay idempotent.
                    if value.get("meta").and_then(Json::as_str) == Some("profile") {
                        let cell = value.get("cell").and_then(Json::as_str).ok_or_else(|| {
                            format!("profile record missing cell in {}", path.display())
                        })?;
                        let profile = value
                            .get("profile")
                            .ok_or_else(|| {
                                format!("profile record missing profile in {}", path.display())
                            })
                            .and_then(Profile::from_json)?;
                        profiles.insert(cell.to_string(), profile);
                    }
                } else {
                    let key = value
                        .get("shard")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("record missing shard key in {}", path.display()))?
                        .to_string();
                    if let Some(err) = value.get("error").and_then(Json::as_str) {
                        failed.insert(key, err.to_string());
                    } else {
                        failed.remove(&key);
                        done.insert(key, ShardTallies::from_json(&value)?);
                    }
                }
                valid_bytes = offset + consumed;
            }
            offset += consumed;
        }
        let Some(header) = header else {
            return Err(format!("store {} has no header line", path.display()));
        };
        Ok(Loaded { header, done, failed, profiles, valid_bytes })
    }

    fn append_line(&mut self, line: &str) -> Result<(), String> {
        if let Some(writer) = &mut self.writer {
            writeln!(writer, "{line}").and_then(|()| writer.flush()).map_err(|e| {
                let path = self.path.as_deref().map(Path::display);
                format!("appending to {}: {e}", path.map_or("store".to_string(), |p| p.to_string()))
            })?;
        }
        Ok(())
    }

    /// Persists one completed shard (appended and flushed immediately).
    pub fn append_ok(&mut self, shard_key: &str, tallies: ShardTallies) -> Result<(), String> {
        self.append_line(&tallies.to_json(shard_key).render())?;
        self.done.insert(shard_key.to_string(), tallies);
        self.failed.remove(shard_key);
        Ok(())
    }

    /// Persists one failed shard (panic in a worker). Failed shards are
    /// retried on resume.
    pub fn append_failed(&mut self, shard_key: &str, error: &str) -> Result<(), String> {
        let line = obj(vec![
            ("shard", Json::Str(shard_key.to_string())),
            ("error", Json::Str(error.to_string())),
        ])
        .render();
        self.append_line(&line)?;
        self.failed.insert(shard_key.to_string(), error.to_string());
        Ok(())
    }

    /// Persists a cell's execution profile as a `{"meta":"profile",…}`
    /// record, at most once per cell: a repeat append for a cell the store
    /// already holds (including from a resumed file) is a no-op, so the
    /// persisted record set — and its bytes, profiles being deterministic —
    /// is identical across thread counts and kill/resume. Returns whether
    /// the record was written.
    pub fn append_profile(&mut self, cell_key: &str, profile: &Profile) -> Result<bool, String> {
        if self.profiles.contains_key(cell_key) {
            return Ok(false);
        }
        let line = obj(vec![
            ("meta", Json::Str("profile".to_string())),
            ("cell", Json::Str(cell_key.to_string())),
            ("profile", profile.to_json()),
        ])
        .render();
        self.append_line(&line)?;
        self.profiles.insert(cell_key.to_string(), profile.clone());
        Ok(true)
    }

    /// Persists a run-level meta record (`{"meta":kind, …}`). Meta records
    /// are ignored when loading, so wall-clock timings and other
    /// environment-dependent measurements never leak into resumed tallies.
    pub fn append_meta(
        &mut self,
        kind: &str,
        fields: Vec<(&'static str, Json)>,
    ) -> Result<(), String> {
        let mut all = vec![("meta", Json::Str(kind.to_string()))];
        all.extend(fields);
        self.append_line(&obj(all).render())
    }

    /// The store file path (`None` for an in-memory store).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

/// Reads a store file without an expected header: the report path. Returns
/// the header, the completed shards, and the failed shards. A truncated
/// final line is tolerated (and ignored), matching resume semantics.
#[allow(clippy::type_complexity)]
pub fn read_store(
    path: &Path,
) -> Result<(StoreHeader, BTreeMap<String, ShardTallies>, BTreeMap<String, String>), String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    let Loaded { header, done, failed, .. } = CampaignStore::load(&text, path)?;
    Ok((header, done, failed))
}

/// Reads the per-cell execution profiles (`{"meta":"profile",…}` records)
/// from a store file — the `cfed-campaign profile` report path. A truncated
/// final line is tolerated, matching resume semantics.
///
/// # Errors
///
/// Returns a message when the file cannot be read or a record is malformed.
pub fn read_profiles(path: &Path) -> Result<BTreeMap<String, Profile>, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    let Loaded { profiles, .. } = CampaignStore::load(&text, path)?;
    Ok(profiles)
}

/// Reads the `{"meta":kind, …}` records of one kind from a store file, in
/// append order. Meta records never influence tallies (they are skipped by
/// [`CampaignStore::open`] / [`read_store`]); this is the side channel the
/// report path uses to surface run-level telemetry such as the campaign
/// service's `serve_stats` records.
///
/// # Errors
///
/// Returns a message when the file cannot be read or a complete line fails
/// to parse (a truncated final line is tolerated, matching resume
/// semantics).
pub fn read_meta(path: &Path, kind: &str) -> Result<Vec<Json>, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for line in text.split_inclusive('\n') {
        if !line.ends_with('\n') {
            // Half-written trailing line of a killed run: never counted,
            // same as the resume path.
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = parse(line).map_err(|e| format!("corrupt store {}: {e}", path.display()))?;
        if parsed.get("meta").and_then(Json::as_str) == Some(kind) {
            out.push(parsed);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_fault::Outcome;

    fn header() -> StoreHeader {
        StoreHeader {
            run_id: "test-run".into(),
            seed: 7,
            trials: 128,
            shard_trials: 64,
            digest: 0xDEAD_BEEF,
            total_shards: 2,
        }
    }

    fn tallies(n: u64) -> ShardTallies {
        let mut t = ShardTallies { skipped: n, ..Default::default() };
        t.stats[0].detected_check = n + 1;
        t.stats[3].sdc = 2 * n;
        for i in 0..n {
            t.lat[0][0].record(10 + i);
            t.lat[3][4].record(0);
        }
        t
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfed-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("run.jsonl")
    }

    #[test]
    fn create_append_resume() {
        let path = tmp("basic");
        let mut store = CampaignStore::open(&path, &header()).unwrap();
        assert!(!store.resumed);
        store.append_ok("cell#0", tallies(1)).unwrap();
        store.append_failed("cell#1", "worker panicked").unwrap();
        drop(store);

        let store = CampaignStore::open(&path, &header()).unwrap();
        assert!(store.resumed);
        assert_eq!(store.done.len(), 1);
        assert_eq!(store.done["cell#0"], tallies(1));
        assert_eq!(store.failed["cell#1"], "worker panicked");
    }

    #[test]
    fn failure_then_success_counts_as_done() {
        let path = tmp("retry");
        let mut store = CampaignStore::open(&path, &header()).unwrap();
        store.append_failed("cell#0", "boom").unwrap();
        store.append_ok("cell#0", tallies(3)).unwrap();
        drop(store);
        let store = CampaignStore::open(&path, &header()).unwrap();
        assert!(store.failed.is_empty());
        assert_eq!(store.done["cell#0"], tallies(3));
    }

    #[test]
    fn truncated_tail_is_dropped_and_overwritten() {
        let path = tmp("trunc");
        let mut store = CampaignStore::open(&path, &header()).unwrap();
        store.append_ok("cell#0", tallies(1)).unwrap();
        drop(store);
        // Simulate a kill mid-write: append half a record, no newline.
        let mut raw = OpenOptions::new().append(true).open(&path).unwrap();
        write!(raw, "{{\"shard\":\"cell#1\",\"cats\":[[1,2").unwrap();
        drop(raw);

        let mut store = CampaignStore::open(&path, &header()).unwrap();
        assert_eq!(store.done.len(), 1, "half-written shard must not count");
        store.append_ok("cell#1", tallies(2)).unwrap();
        drop(store);

        let store = CampaignStore::open(&path, &header()).unwrap();
        assert_eq!(store.done.len(), 2);
        assert_eq!(store.done["cell#1"], tallies(2));
    }

    #[test]
    fn header_mismatch_is_refused() {
        let path = tmp("mismatch");
        drop(CampaignStore::open(&path, &header()).unwrap());
        let other = StoreHeader { seed: 8, ..header() };
        let err = CampaignStore::open(&path, &other).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
    }

    #[test]
    fn corruption_in_the_middle_is_an_error() {
        let path = tmp("midcorrupt");
        drop(CampaignStore::open(&path, &header()).unwrap());
        let mut raw = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(raw, "not json").unwrap();
        writeln!(raw, "{}", tallies(1).to_json("cell#0").render()).unwrap();
        drop(raw);
        assert!(CampaignStore::open(&path, &header()).is_err());
    }

    #[test]
    fn meta_records_are_ignored_on_load() {
        let path = tmp("meta");
        let mut store = CampaignStore::open(&path, &header()).unwrap();
        store.append_ok("cell#0", tallies(2)).unwrap();
        store
            .append_meta("run", vec![("wall_ms", Json::UInt(1234)), ("threads", Json::UInt(8))])
            .unwrap();
        drop(store);

        let store = CampaignStore::open(&path, &header()).unwrap();
        assert_eq!(store.done.len(), 1);
        assert_eq!(store.done["cell#0"], tallies(2));

        let (found, done, failed) = read_store(&path).unwrap();
        assert_eq!(found, header());
        assert_eq!(done["cell#0"], tallies(2));
        assert!(failed.is_empty());
    }

    #[test]
    fn profile_records_are_idempotent_and_survive_resume() {
        use cfed_telemetry::BlockProfile;
        let path = tmp("profile");
        let mut profile = Profile::new();
        profile.record_block(
            0x100,
            BlockProfile { hits: 3, payload_cycles: 30, head_cycles: 6, tail_cycles: 3 },
        );
        profile.record_other(7);

        let mut store = CampaignStore::open(&path, &header()).unwrap();
        assert!(store.append_profile("cell", &profile).unwrap());
        assert!(!store.append_profile("cell", &profile).unwrap(), "second append is a no-op");
        drop(store);

        let mut store = CampaignStore::open(&path, &header()).unwrap();
        assert_eq!(store.profiles["cell"], profile);
        assert!(!store.append_profile("cell", &profile).unwrap(), "resume keeps idempotency");
        drop(store);

        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"meta\":\"profile\"").count(), 1);
        assert_eq!(read_profiles(&path).unwrap()["cell"], profile);
        // Profile records are meta: they never influence tallies.
        let (_, done, _) = read_store(&path).unwrap();
        assert!(done.is_empty());
    }

    #[test]
    fn tallies_roundtrip_through_report() {
        let golden = Golden { output: vec![1, 2], exit_code: 0, insts: 10, branches: 3 };
        let mut report = CampaignReport::new(golden.clone());
        report.record(Category::A, Outcome::DetectedByCheck, 17);
        report.record(Category::F, Outcome::Sdc, 0);
        report.skipped = 4;
        let t = ShardTallies::from_report(&report);
        let back = t.to_report(golden);
        for c in Category::ALL {
            assert_eq!(report.category(c), back.category(c));
        }
        assert_eq!(back.skipped, 4);
        assert_eq!(back.latency_totals(), (17, 1));
    }
}
