//! The worker pool: executes a campaign matrix's shards on `std::thread`
//! workers, checkpointing each finished shard to the JSONL store.
//!
//! Workers pop [`ShardTask`]s from a shared queue and send results over a
//! channel to the main thread, which is the store's single writer. Each
//! worker keeps its own compiled-image cache, while golden runs — and the
//! fast-forward [`SnapshotSet`]s captured alongside them — live in one
//! pool-wide cache keyed on the cell's golden identity, so every worker
//! shares a single translated code cache per `(image, config)` instead of
//! re-golden-running per thread. Shard panics and fault-free-run failures
//! are caught and recorded as failed shards (retried on a later resume)
//! instead of taking the pool down.
//!
//! Determinism: a shard's tallies depend only on `(cell, shard index)` —
//! see [`crate::matrix`] — so the merged per-cell reports are bit-identical
//! to the serial [`cfed_fault::Campaign::run`] path for any thread count.

use std::collections::{BTreeMap, HashMap};
use std::io::IsTerminal as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cfed_asm::Image;
use cfed_core::{profile_dbt, RunConfig};
use cfed_fault::{
    golden_run, AttackForensics, AttackSpec, CampaignReport, FaultSpec, ForensicsBundle, Golden,
    SnapshotSet, SnapshotStats, WorkloadError, DEFAULT_TRACE_WINDOW,
};
use cfed_telemetry::{Event, EventSink, FlightRecorder, Profile, Telemetry};

use crate::json::Json;
use crate::matrix::{CampaignMatrix, CellSpec, ShardTask};
use crate::retry::RetryPolicy;
use crate::store::{CampaignStore, ShardTallies, StoreHeader};

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Stop after executing this many shards (in addition to any already
    /// persisted). Used by tests to simulate a killed run; `None` runs to
    /// completion.
    pub max_shards: Option<usize>,
    /// Print per-shard progress to stderr.
    pub progress: bool,
    /// Suppress all stderr progress output (per-shard lines and the live
    /// status line; failures are still reported).
    pub quiet: bool,
    /// Structured-event handle. Disabled by default; when a sink is
    /// attached the pool emits `shard_done` / `shard_failed` / `run_done`
    /// events and any forensics bundles.
    pub telemetry: Telemetry,
    /// Re-inject SDC / timeout / misdetection trials with a tracer
    /// attached and emit the forensics bundles as telemetry events.
    pub forensics: bool,
    /// Capture golden-run snapshots and fast-forward injections through
    /// them (the default). Disable to force every trial to replay its
    /// fault-free prefix from scratch — outcomes are identical either way.
    pub snapshots: bool,
    /// Bounded retry with backoff for failed shards — the same policy (and
    /// config type) `cfed-serve` applies to expired or failed leases. Each
    /// failed attempt is reported via `shard_failed` telemetry; only the
    /// final outcome reaches the store.
    pub retry: RetryPolicy,
    /// Collect a per-cell execution profile (payload vs instrumentation
    /// cycle attribution, [`cfed_core::profile_dbt`]) alongside each cell's
    /// golden run and persist it as an idempotent store record. Off by
    /// default: a profile costs one extra full run of the workload per
    /// cell.
    pub profile: bool,
}

impl Default for RunnerOptions {
    fn default() -> RunnerOptions {
        RunnerOptions {
            threads: 0,
            max_shards: None,
            progress: false,
            quiet: false,
            telemetry: Telemetry::off(),
            forensics: false,
            snapshots: true,
            retry: RetryPolicy::default(),
            profile: false,
        }
    }
}

/// The live stderr status line (`done/total | shards/s | ETA`).
///
/// Shown only when stderr is a terminal — redirected runs get the plain
/// per-shard lines behind `RunnerOptions::progress` instead — and colored
/// only when `NO_COLOR` is unset (per the no-color convention, any
/// non-empty value disables color). Progress writes exclusively to stderr;
/// the result store has its own dedicated file writer, so progress output
/// can never interleave with store records.
struct ProgressLine {
    live: bool,
    color: bool,
    start: Instant,
    open: bool,
}

impl ProgressLine {
    fn new(quiet: bool) -> ProgressLine {
        let live = !quiet && std::io::stderr().is_terminal();
        let color = live && std::env::var_os("NO_COLOR").is_none_or(|v| v.is_empty());
        ProgressLine { live, color, start: Instant::now(), open: false }
    }

    fn update(&mut self, done: usize, failed: usize, total: usize) {
        if !self.live {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 { done as f64 / elapsed } else { 0.0 };
        let eta = if rate > 0.0 {
            format!("{}s", ((total.saturating_sub(done)) as f64 / rate).round() as u64)
        } else {
            "?".to_string()
        };
        let failures = if failed > 0 { format!(", {failed} failed") } else { String::new() };
        let body = format!(
            "cfed-runner: {done}/{total} shards{failures} | {rate:.1} shards/s | ETA {eta}"
        );
        if self.color {
            eprint!("\r\x1b[2K\x1b[36m{body}\x1b[0m");
        } else {
            eprint!("\r{body:<78}");
        }
        self.open = true;
    }

    /// Clears the live line so a regular stderr message starts on a clean
    /// column.
    fn clear(&mut self) {
        if self.open {
            if self.color {
                eprint!("\r\x1b[2K");
            } else {
                eprint!("\r{:<78}\r", "");
            }
            self.open = false;
        }
    }

    fn finish(&mut self) {
        if self.open {
            eprintln!();
            self.open = false;
        }
    }
}

impl RunnerOptions {
    /// The worker count a pool will actually use: `threads` capped at
    /// `std::thread::available_parallelism()` (oversubscribing a CPU-bound
    /// pool only adds scheduler churn, and recorded host metadata must
    /// never claim more resolved workers than the host has CPUs), or
    /// available parallelism itself when `threads` is `0`.
    pub fn resolved_threads(&self) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if self.threads > 0 {
            return self.threads.min(cores);
        }
        cores
    }
}

/// Maps `0..n` through `f` on a scoped worker pool and returns the results
/// in index order, exactly as `(0..n).map(f).collect()` would.
///
/// `threads == 0` resolves to `std::thread::available_parallelism()`; the
/// worker count is additionally capped at `n`. With one worker (or `n <= 1`)
/// the map runs inline on the caller's thread. Workers claim indices from a
/// shared atomic counter, so scheduling is dynamic, but results are placed
/// by index — callers observe a deterministic, order-independent `Vec`.
///
/// This is the shared harness the `fig*` reproduction binaries use to fan
/// per-workload analyses out across cores while keeping their printed
/// figures byte-identical to a serial run.
///
/// # Panics
///
/// Panics if `f` panics on any index (the panic is propagated).
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = RunnerOptions { threads, ..Default::default() }.resolved_threads().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        let next = &next;
        let f = &f;
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in rx {
            out[i] = Some(v);
        }
        // A missing slot means a worker died before sending; scope join
        // propagates its panic before we can get here, so every index is
        // present.
        out.into_iter().map(|v| v.expect("every index produced")).collect()
    })
}

/// Result of one cell after the run.
#[derive(Debug)]
pub struct CellResult {
    /// Index into the matrix's cell list.
    pub cell: usize,
    /// The cell's identity key.
    pub key: String,
    /// Merged report over the cell's completed shards, `None` if the cell's
    /// golden run failed (e.g. the workload traps under this configuration).
    pub report: Option<CampaignReport>,
    /// Completed shards.
    pub done_shards: u64,
    /// Total shards in the cell.
    pub total_shards: u64,
    /// Error messages of failed shards (panics, golden failures).
    pub failures: Vec<String>,
}

impl CellResult {
    /// Whether every shard of the cell completed.
    pub fn complete(&self) -> bool {
        self.done_shards == self.total_shards
    }
}

/// Throughput and fast-forward statistics for one pool invocation.
#[derive(Debug, Clone, Copy)]
pub struct RunPerf {
    /// Wall-clock time of the invocation.
    pub wall_ms: u64,
    /// Injection trials executed (excludes resumed shards).
    pub executed_trials: u64,
    /// `executed_trials` per wall-clock second.
    pub trials_per_sec: f64,
    /// Whether fast-forward snapshots were enabled.
    pub snapshots_enabled: bool,
    /// Aggregated snapshot shape / usage counters across the run's cells.
    pub snapshots: SnapshotStats,
}

/// Result of a pool run over a matrix.
#[derive(Debug)]
pub struct RunSummary {
    /// One entry per matrix cell, in matrix cell order.
    pub cells: Vec<CellResult>,
    /// Shards executed by this invocation.
    pub executed_shards: u64,
    /// Shards skipped because the store already held their results.
    pub resumed_shards: u64,
    /// Failed shard attempts that were retried under the retry policy
    /// (counts attempts, not shards; a shard retried twice counts 2).
    pub retried_attempts: u64,
    /// Throughput and snapshot statistics for this invocation.
    pub perf: RunPerf,
}

impl RunSummary {
    /// Whether every cell completed all shards.
    pub fn complete(&self) -> bool {
        self.cells.iter().all(CellResult::complete)
    }

    /// Looks up a completed cell's report by workload key and configuration.
    pub fn report_for(&self, cell_key: &str) -> Option<&CampaignReport> {
        self.cells.iter().find(|c| c.key == cell_key).and_then(|c| c.report.as_ref())
    }
}

enum ShardOutcome {
    Ok(Box<ShardTallies>),
    Failed(String),
}

struct ShardDone {
    task: ShardTask,
    key: String,
    outcome: ShardOutcome,
    /// Errors of failed attempts that preceded `outcome` (bounded retry).
    attempt_errors: Vec<String>,
    /// The cell's golden run, sent with the first shard a worker completes
    /// for a cell so the main thread can build reports without recomputing.
    golden: Option<Golden>,
    /// The cell's execution profile (when profiling is enabled); the main
    /// thread persists it once per cell.
    profile: Option<Arc<Profile>>,
    /// Serialized forensics bundles captured for this shard.
    forensics: Vec<Json>,
    /// Trials that warranted a bundle (may exceed `forensics.len()` when
    /// the per-shard cap truncated the captures).
    forensics_wanted: u64,
}

/// Per-worker cache of compiled images, keyed by the workload identity
/// string (compilation is cheap; sharing it across threads isn't worth a
/// lock on the hot path).
#[derive(Default)]
struct WorkerCache {
    images: HashMap<String, Arc<Image>>,
}

impl WorkerCache {
    fn image(&mut self, cell: &CellSpec) -> Result<Arc<Image>, String> {
        let key = cell.workload.key();
        if let Some(img) = self.images.get(&key) {
            return Ok(Arc::clone(img));
        }
        let img = Arc::new(cell.workload.image()?);
        self.images.insert(key, Arc::clone(&img));
        Ok(img)
    }
}

/// A cell's golden run plus the snapshot set captured alongside it
/// (`None` when snapshots are disabled) and, under `--profile`, the cell's
/// execution profile. Shared read-only by every worker draining that
/// cell's shards.
#[derive(Clone)]
struct PreparedGolden {
    golden: Arc<Golden>,
    snapshots: Option<Arc<SnapshotSet>>,
    /// Execution profile of the cell's fault-free run (`None` when
    /// profiling is disabled). Deterministic in `(workload, config)`.
    profile: Option<Arc<Profile>>,
}

/// Pool-wide golden cache, keyed by [`CellSpec::golden_key`]. One golden
/// run (and one translated code cache, inside the snapshot set) serves
/// every worker and every shard of a cell. Failures are cached too, so a
/// cell whose fault-free run traps fails each shard fast instead of
/// re-running the program per shard.
///
/// Public so `cfed-serve` worker processes share one cache across their
/// executor threads exactly as the in-process pool does.
pub struct GoldenCache {
    snapshots_enabled: bool,
    profile_enabled: bool,
    prepared: Mutex<HashMap<String, Result<PreparedGolden, String>>>,
}

impl GoldenCache {
    /// An empty cache; `snapshots_enabled` decides whether prepared
    /// goldens carry fast-forward snapshot sets, `profile_enabled` whether
    /// they carry execution profiles.
    pub fn new(snapshots_enabled: bool, profile_enabled: bool) -> GoldenCache {
        GoldenCache { snapshots_enabled, profile_enabled, prepared: Mutex::new(HashMap::new()) }
    }

    fn get(&self, cell: &CellSpec, image: &Image) -> Result<PreparedGolden, String> {
        let key = cell.golden_key();
        if let Some(hit) = self.prepared.lock().expect("golden cache poisoned").get(&key) {
            return hit.clone();
        }
        // Computed outside the lock: two workers may race on a fresh key,
        // but the first insert wins and both use the same prepared golden.
        let computed =
            prepare_golden(image, &cell.config, self.snapshots_enabled, self.profile_enabled);
        let mut map = self.prepared.lock().expect("golden cache poisoned");
        map.entry(key).or_insert(computed).clone()
    }

    /// Aggregated stats over every successfully prepared snapshot set.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        let map = self.prepared.lock().expect("golden cache poisoned");
        let mut stats = SnapshotStats::default();
        for prepared in map.values().filter_map(|r| r.as_ref().ok()) {
            if let Some(set) = &prepared.snapshots {
                stats.absorb(&set.stats());
            }
        }
        stats
    }
}

/// Result of executing one work unit (one shard of one cell).
pub struct UnitRun {
    /// The shard's persisted tallies, or the failure message.
    pub tallies: Result<Box<ShardTallies>, String>,
    /// The cell's golden run, when it was computable (present even for
    /// shard-level failures so callers can still assemble partial reports).
    pub golden: Option<Golden>,
    /// The cell's execution profile, when the shared cache collects them
    /// (every unit of a cell carries the same `Arc`'d profile; the store
    /// writer persists it once per cell).
    pub profile: Option<Arc<Profile>>,
    /// Serialized forensics bundles captured for this unit.
    pub forensics: Vec<Json>,
    /// Trials that warranted a bundle (may exceed `forensics.len()` when
    /// the per-unit cap truncated the captures).
    pub forensics_wanted: u64,
}

/// Executes single work units against a shared [`GoldenCache`] — the unit
/// extraction the worker pool and the `cfed-serve` worker processes share.
/// One executor per thread; the image cache inside is thread-local, the
/// golden/snapshot cache is whatever the caller shares.
pub struct UnitExecutor {
    cache: WorkerCache,
    goldens: Arc<GoldenCache>,
    forensics: bool,
}

impl UnitExecutor {
    /// An executor over `goldens`; `forensics` re-injects interesting
    /// trials with a tracer and captures bundles.
    pub fn new(goldens: Arc<GoldenCache>, forensics: bool) -> UnitExecutor {
        UnitExecutor { cache: WorkerCache::default(), goldens, forensics }
    }

    /// Runs shard `shard_index` of `cell`. Deterministic in
    /// `(cell, shard_index)`: any executor on any host produces identical
    /// tallies. Panics inside the unit are caught and surface as `Err`.
    pub fn run(&mut self, cell: &CellSpec, shard_index: u64) -> UnitRun {
        let run = run_shard(&mut self.cache, &self.goldens, cell, shard_index, self.forensics);
        let tallies = match run.outcome {
            ShardOutcome::Ok(tallies) => Ok(tallies),
            ShardOutcome::Failed(e) => Err(e),
        };
        UnitRun {
            tallies,
            golden: run.golden,
            profile: run.profile,
            forensics: run.forensics,
            forensics_wanted: run.forensics_wanted,
        }
    }

    /// As [`UnitExecutor::run`], retrying failed attempts under `policy`
    /// (sleeping the policy's backoff between attempts). Returns the final
    /// outcome plus the errors of every failed attempt that preceded it.
    pub fn run_with_retry(
        &mut self,
        cell: &CellSpec,
        shard_index: u64,
        policy: &RetryPolicy,
    ) -> (UnitRun, Vec<String>) {
        let mut attempt_errors = Vec::new();
        loop {
            let run = self.run(cell, shard_index);
            match &run.tallies {
                Ok(_) => return (run, attempt_errors),
                Err(e) => {
                    let attempts = attempt_errors.len() as u32 + 1;
                    if !policy.allows(attempts) {
                        return (run, attempt_errors);
                    }
                    attempt_errors.push(e.clone());
                    std::thread::sleep(policy.backoff(attempts));
                }
            }
        }
    }
}

fn prepare_golden(
    image: &Image,
    config: &RunConfig,
    snapshots: bool,
    profile: bool,
) -> Result<PreparedGolden, String> {
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut prepared = if snapshots {
            SnapshotSet::capture(image, config).map(|(golden, set)| PreparedGolden {
                golden: Arc::new(golden),
                snapshots: Some(Arc::new(set)),
                profile: None,
            })?
        } else {
            golden_run(image, config).map(|golden| PreparedGolden {
                golden: Arc::new(golden),
                snapshots: None,
                profile: None,
            })?
        };
        if profile {
            // One extra fault-free run with the execution profiler
            // attached; deterministic, so every worker racing on this key
            // computes the identical profile.
            prepared.profile = Some(Arc::new(profile_dbt(image, config).1));
        }
        Ok::<_, WorkloadError>(prepared)
    }));
    match run {
        Ok(Ok(prepared)) => Ok(prepared),
        Ok(Err(e)) => Err(format!("golden run failed: {e}")),
        Err(e) => Err(format!("golden run panicked: {}", panic_message(&e))),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Forensics bundles captured per shard are capped: a configuration with
/// rampant SDC (e.g. the uninstrumented baseline) would otherwise
/// re-inject hundreds of traced runs per shard. The wanted total rides
/// along in each bundle's event, so truncation is visible.
const MAX_FORENSICS_PER_SHARD: usize = 8;

/// Flight-recorder window: the recent events attached to each forensics
/// bundle event (enough context to see the shards and retries leading up
/// to an SDC/timeout without unbounded history).
const FLIGHT_WINDOW: usize = 64;

struct ShardRun {
    outcome: ShardOutcome,
    golden: Option<Golden>,
    profile: Option<Arc<Profile>>,
    forensics: Vec<Json>,
    forensics_wanted: u64,
}

/// Trials of one shard that warranted a forensics capture — fault specs
/// for classic cells, attack specs for attack cells. Either way the
/// capture criterion is [`ForensicsBundle::wanted`].
enum WantedSpecs {
    Faults(Vec<FaultSpec>),
    Attacks(Vec<AttackSpec>),
}

impl WantedSpecs {
    fn len(&self) -> usize {
        match self {
            WantedSpecs::Faults(v) => v.len(),
            WantedSpecs::Attacks(v) => v.len(),
        }
    }
}

fn run_shard(
    cache: &mut WorkerCache,
    goldens: &GoldenCache,
    cell: &CellSpec,
    shard_index: u64,
    forensics: bool,
) -> ShardRun {
    let failed = |message: String, golden: Option<Golden>| ShardRun {
        outcome: ShardOutcome::Failed(message),
        golden,
        profile: None,
        forensics: Vec::new(),
        forensics_wanted: 0,
    };
    let image = match cache.image(cell) {
        Ok(img) => img,
        Err(e) => return failed(e, None),
    };
    let prepared = match goldens.get(cell, &image) {
        Ok(p) => p,
        Err(e) => return failed(e, None),
    };
    let PreparedGolden { golden, snapshots, profile } = prepared;
    let snaps = snapshots.as_deref();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(attack) = cell.attack_campaign() {
            let mut wanted: Vec<AttackSpec> = Vec::new();
            let report =
                attack.run_shard_with(&image, &golden, snaps, shard_index, |spec, r| {
                    if forensics && ForensicsBundle::wanted(r) {
                        wanted.push(spec);
                    }
                })?;
            return Ok::<_, WorkloadError>((report, WantedSpecs::Attacks(wanted)));
        }
        let mut wanted: Vec<FaultSpec> = Vec::new();
        let report =
            cell.campaign().run_shard_with(&image, &golden, snaps, shard_index, |spec, r| {
                if forensics && ForensicsBundle::wanted(r) {
                    wanted.push(spec);
                }
            })?;
        Ok::<_, WorkloadError>((report, WantedSpecs::Faults(wanted)))
    }));
    match result {
        Ok(Ok((report, wanted))) => {
            let bundles = match &wanted {
                WantedSpecs::Faults(specs) => specs
                    .iter()
                    .take(MAX_FORENSICS_PER_SHARD)
                    .filter_map(|&spec| {
                        ForensicsBundle::capture_with(
                            &image,
                            &cell.config,
                            spec,
                            &golden,
                            DEFAULT_TRACE_WINDOW,
                            snaps,
                        )
                    })
                    .map(|b| b.to_json())
                    .collect(),
                WantedSpecs::Attacks(specs) => specs
                    .iter()
                    .take(MAX_FORENSICS_PER_SHARD)
                    .filter_map(|&spec| {
                        AttackForensics::capture_with(
                            &image,
                            &cell.config,
                            spec,
                            &golden,
                            DEFAULT_TRACE_WINDOW,
                            snaps,
                        )
                    })
                    .map(|b| b.to_json())
                    .collect(),
            };
            ShardRun {
                outcome: ShardOutcome::Ok(Box::new(ShardTallies::from_report(&report))),
                golden: Some((*golden).clone()),
                profile,
                forensics: bundles,
                forensics_wanted: wanted.len() as u64,
            }
        }
        Ok(Err(e)) => failed(format!("shard failed: {e}"), Some((*golden).clone())),
        Err(e) => failed(format!("shard panicked: {}", panic_message(&e)), Some((*golden).clone())),
    }
}

/// Runs (or resumes) a campaign matrix.
///
/// With a `store_path`, every finished shard is checkpointed to the JSONL
/// file there and persisted shards from a previous invocation are loaded
/// rather than re-executed; with `None` the run is ephemeral (pool only).
/// Returns the per-cell merged reports.
pub fn run_matrix(
    matrix: &CampaignMatrix,
    run_id: &str,
    store_path: Option<&Path>,
    options: &RunnerOptions,
) -> Result<RunSummary, String> {
    let run_timer = Instant::now();
    let cells = matrix.cells();
    let all_shards = CampaignMatrix::shards(&cells);
    let header = StoreHeader {
        run_id: run_id.to_string(),
        seed: matrix.seed,
        trials: matrix.trials,
        shard_trials: CampaignMatrix::shard_trials(),
        digest: CampaignMatrix::digest(&cells),
        total_shards: all_shards.len() as u64,
    };
    let mut store = match store_path {
        Some(path) => CampaignStore::open(path, &header)?,
        None => CampaignStore::in_memory(),
    };

    let mut pending: Vec<ShardTask> =
        all_shards.iter().copied().filter(|t| !store.done.contains_key(&t.key(&cells))).collect();
    let resumed_shards = (all_shards.len() - pending.len()) as u64;
    if let Some(max) = options.max_shards {
        pending.truncate(max);
    }
    let to_run = pending.len();
    let executed_trials: u64 =
        pending.iter().map(|t| cells[t.cell].campaign().shard_trials(t.shard_index)).sum();

    // Cell goldens observed during this run (from workers) — saves the
    // main thread recomputing them for report assembly.
    let mut goldens: BTreeMap<usize, Golden> = BTreeMap::new();
    let golden_cache = Arc::new(GoldenCache::new(options.snapshots, options.profile));
    let mut retried_attempts = 0u64;

    // The always-on flight recorder tees in front of the configured sink
    // (or stands alone when telemetry is off), so anomaly paths can attach
    // the recent-event window without changing what downstream sees.
    let flight = Arc::new(match options.telemetry.sink() {
        Some(inner) => FlightRecorder::tee(FLIGHT_WINDOW, inner),
        None => FlightRecorder::new(FLIGHT_WINDOW),
    });
    let telemetry = Telemetry::to(Arc::clone(&flight) as Arc<dyn EventSink>);

    let threads = options.resolved_threads().min(to_run.max(1)).max(1);
    if to_run > 0 {
        let queue = Mutex::new(pending.into_iter().collect::<std::collections::VecDeque<_>>());
        let (tx, rx) = mpsc::channel::<ShardDone>();
        let cells_ref = &cells;
        let queue_ref = &queue;
        let golden_cache_ref = &golden_cache;
        let forensics_on = options.forensics;
        let retry = options.retry;
        std::thread::scope(|scope| -> Result<(), String> {
            for _ in 0..threads {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut executor =
                        UnitExecutor::new(Arc::clone(golden_cache_ref), forensics_on);
                    loop {
                        let task = match queue_ref.lock().expect("queue poisoned").pop_front() {
                            Some(t) => t,
                            None => break,
                        };
                        let cell = &cells_ref[task.cell];
                        let (run, attempt_errors) =
                            executor.run_with_retry(cell, task.shard_index, &retry);
                        let outcome = match run.tallies {
                            Ok(tallies) => ShardOutcome::Ok(tallies),
                            Err(e) => ShardOutcome::Failed(e),
                        };
                        let done = ShardDone {
                            task,
                            key: task.key(cells_ref),
                            outcome,
                            attempt_errors,
                            golden: run.golden,
                            profile: run.profile,
                            forensics: run.forensics,
                            forensics_wanted: run.forensics_wanted,
                        };
                        if tx.send(done).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            // Main thread: single store writer, checkpointing as results land.
            let mut progress = ProgressLine::new(options.quiet);
            let mut received = 0usize;
            let mut failed = 0usize;
            for done in rx {
                received += 1;
                let ShardDone {
                    task,
                    key,
                    outcome,
                    attempt_errors,
                    golden,
                    profile,
                    forensics,
                    forensics_wanted,
                } = done;
                if let (Some(g), false) = (golden, goldens.contains_key(&task.cell)) {
                    goldens.insert(task.cell, g);
                }
                if let Some(p) = profile {
                    // Idempotent: only the first shard of a cell (and only
                    // on a run that doesn't already hold the record) writes.
                    let cell_key = cells_ref[task.cell].key();
                    if store.append_profile(&cell_key, &p)? {
                        telemetry.emit_with(|| {
                            let t = p.totals();
                            Event::new("profile")
                                .str("cell", &cell_key)
                                .u64("blocks", p.num_blocks() as u64)
                                .u64("payload_cycles", t.payload)
                                .u64("instr_cycles", t.instr())
                                .u64("other_cycles", t.other)
                        });
                    }
                }
                let done_attempts = attempt_errors.len() as u64 + 1;
                // Failed attempts that were retried: visible in telemetry
                // (one shard_failed per attempt), never in the store.
                for (attempt, err) in attempt_errors.iter().enumerate() {
                    retried_attempts += 1;
                    telemetry.emit_with(|| {
                        Event::new("shard_failed")
                            .str("shard", &key)
                            .str("error", err)
                            .u64("attempt", attempt as u64 + 1)
                            .u64("retried", 1)
                    });
                    if options.progress && !options.quiet {
                        progress.clear();
                        eprintln!(
                            "cfed-runner: shard {key} attempt {} failed, retrying: {err}",
                            attempt + 1
                        );
                    }
                }
                match outcome {
                    ShardOutcome::Ok(tallies) => {
                        if let Some(kind) = cells_ref[task.cell].attack {
                            // Attack cells additionally report per-outcome
                            // counters: the raw material of the detection
                            // frontier, queryable live from the event plane.
                            let mut sums = [0u64; 6];
                            for s in &tallies.stats {
                                sums[0] += s.detected_check;
                                sums[1] += s.detected_hw;
                                sums[2] += s.other_fault;
                                sums[3] += s.benign;
                                sums[4] += s.sdc;
                                sums[5] += s.timeout;
                            }
                            let skipped = tallies.skipped;
                            telemetry.emit_with(|| {
                                Event::new("attack_outcomes")
                                    .str("shard", &key)
                                    .str("attack", kind.name())
                                    .u64("detected_check", sums[0])
                                    .u64("detected_hw", sums[1])
                                    .u64("other_fault", sums[2])
                                    .u64("benign", sums[3])
                                    .u64("sdc", sums[4])
                                    .u64("timeout", sums[5])
                                    .u64("unplaced", skipped)
                            });
                        }
                        store.append_ok(&key, *tallies)?;
                        telemetry.emit_with(|| {
                            Event::new("shard_done")
                                .str("shard", &key)
                                .u64("done", received as u64)
                                .u64("of", to_run as u64)
                        });
                        if options.progress && !options.quiet {
                            progress.clear();
                            eprintln!("cfed-runner: [{received}/{to_run}] {key}");
                        }
                    }
                    ShardOutcome::Failed(err) => {
                        failed += 1;
                        store.append_failed(&key, &err)?;
                        telemetry.emit_with(|| {
                            Event::new("shard_failed")
                                .str("shard", &key)
                                .str("error", &err)
                                .u64("attempt", done_attempts)
                        });
                        progress.clear();
                        eprintln!(
                            "cfed-runner: shard {key} FAILED after {done_attempts} attempt(s): {err}"
                        );
                    }
                }
                let bundle_kind = if cells_ref[task.cell].attack.is_some() {
                    "attack_forensics"
                } else {
                    "forensics"
                };
                for bundle in forensics {
                    // SDC/timeout forensics carry the flight-recorder
                    // window: the recent events leading up to the anomaly.
                    // Emitted past the recorder (straight to the configured
                    // sink) so windows never nest inside later windows.
                    options.telemetry.emit_with(|| {
                        Event::new(bundle_kind)
                            .str("shard", &key)
                            .u64("wanted", forensics_wanted)
                            .json("bundle", bundle)
                            .u64("flight_dropped", flight.dropped())
                            .json("window", flight.recent_json())
                    });
                }
                progress.update(received, failed, to_run);
            }
            progress.finish();
            Ok(())
        })?;
    }

    let wall_s = run_timer.elapsed().as_secs_f64();
    let wall_ms = u64::try_from(run_timer.elapsed().as_millis()).unwrap_or(u64::MAX);
    let trials_per_sec = if wall_s > 0.0 { executed_trials as f64 / wall_s } else { 0.0 };
    let perf = RunPerf {
        wall_ms,
        executed_trials,
        trials_per_sec,
        snapshots_enabled: options.snapshots,
        snapshots: golden_cache.snapshot_stats(),
    };
    store.append_meta(
        "run",
        vec![
            ("run_id", Json::Str(run_id.to_string())),
            ("executed", Json::UInt(to_run as u64)),
            ("resumed", Json::UInt(resumed_shards)),
            ("threads", Json::UInt(threads as u64)),
            ("wall_ms", Json::UInt(wall_ms)),
        ],
    )?;
    telemetry.emit_with(|| {
        Event::new("run_done")
            .str("run_id", run_id)
            .u64("executed", to_run as u64)
            .u64("resumed", resumed_shards)
            .u64("retried", retried_attempts)
            .u64("threads", threads as u64)
            .u64("wall_ms", wall_ms)
            .u64("flight_recorded", flight.recorded())
            .u64("flight_dropped", flight.dropped())
    });
    telemetry.emit_with(|| {
        // No float type in the event subset: the rate rides as millitrials
        // per second (trials_per_sec × 1000).
        Event::new("campaign_perf")
            .str("run_id", run_id)
            .u64("wall_ms", perf.wall_ms)
            .u64("executed_trials", perf.executed_trials)
            .u64("trials_per_sec_milli", (perf.trials_per_sec * 1000.0).round() as u64)
            .u64("snapshots_enabled", u64::from(perf.snapshots_enabled))
            .u64("snapshot_sets", perf.snapshots.snapshot_sets)
            .u64("snapshots_held", perf.snapshots.snapshots)
            .u64("snapshot_bytes", perf.snapshots.bytes)
            .u64("restores", perf.snapshots.restores)
            .u64("misses", perf.snapshots.misses)
            .u64("branches_fast_forwarded", perf.snapshots.branches_fast_forwarded)
            .u64("branches_stepped", perf.snapshots.branches_stepped)
            .u64("benign_pruned", perf.snapshots.benign_pruned)
    });

    let mut cell_results = Vec::with_capacity(cells.len());
    for (index, cell) in cells.iter().enumerate() {
        cell_results.push(assemble_cell(index, cell, &store, goldens.get(&index)));
    }
    Ok(RunSummary {
        cells: cell_results,
        executed_shards: to_run as u64,
        resumed_shards,
        retried_attempts,
        perf,
    })
}

/// Merges a cell's persisted shard tallies into one report, in shard-index
/// order (any order gives identical tallies; fixed order keeps it obvious).
fn assemble_cell(
    index: usize,
    cell: &CellSpec,
    store: &CampaignStore,
    observed_golden: Option<&Golden>,
) -> CellResult {
    let total_shards = cell.num_shards();
    let cell_key = cell.key();
    let mut failures: Vec<String> = store
        .failed
        .iter()
        .filter(|(k, _)| k.rsplit_once('#').map(|(c, _)| c) == Some(cell_key.as_str()))
        .map(|(k, e)| format!("{k}: {e}"))
        .collect();

    let mut done: Vec<(u64, ShardTallies)> = Vec::new();
    for shard_index in 0..total_shards {
        let key = format!("{cell_key}#{shard_index}");
        if let Some(t) = store.done.get(&key) {
            done.push((shard_index, t.clone()));
        }
    }
    if done.is_empty() {
        return CellResult {
            cell: index,
            key: cell_key,
            report: None,
            done_shards: 0,
            total_shards,
            failures,
        };
    }

    // A fully-resumed cell has tallies but no golden from this run's
    // workers; recompute it here (cheap relative to a campaign — report
    // assembly needs only the golden, not snapshots).
    let golden = match observed_golden.cloned() {
        Some(g) => Some(g),
        None => match cell
            .workload
            .image()
            .and_then(|img| prepare_golden(&img, &cell.config, false, false))
            .map(|p| (*p.golden).clone())
        {
            Ok(g) => Some(g),
            Err(e) => {
                failures.push(format!("{cell_key}: {e}"));
                None
            }
        },
    };
    let report = golden.map(|g| {
        let mut report = CampaignReport::new(g.clone());
        for (_, tallies) in &done {
            report.merge(&tallies.to_report(g.clone()));
        }
        report
    });
    CellResult {
        cell: index,
        key: cell_key,
        report,
        done_shards: done.len() as u64,
        total_shards,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::WorkloadSpec;
    use cfed_core::TechniqueKind;
    use cfed_dbt::{CheckPolicy, UpdateStyle};

    const PROGRAM: &str = r#"
        fn main() {
            let i = 0;
            let acc = 3;
            while (i < 30) {
                if (i % 3 == 0) { acc = acc * 2 + 1; } else { acc = acc + i; }
                i = i + 1;
            }
            out(acc);
        }
    "#;

    fn tiny_matrix(trials: u64, seed: u64) -> CampaignMatrix {
        CampaignMatrix {
            workloads: vec![WorkloadSpec::inline("tiny", PROGRAM)],
            techniques: vec![None, Some(TechniqueKind::EdgCf), Some(TechniqueKind::Rcf)],
            styles: vec![UpdateStyle::Jcc],
            policies: vec![CheckPolicy::AllBb],
            trials,
            seed,
            attacks: vec![None],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cfed-pool-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("run.jsonl")
    }

    #[test]
    fn parallel_map_is_in_order_and_complete() {
        for threads in [0usize, 1, 2, 7] {
            for n in [0usize, 1, 2, 5, 64] {
                let got = parallel_map(n, threads, |i| i * i + 1);
                let want: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
                assert_eq!(got, want, "threads {threads}, n {n}");
            }
        }
    }

    #[test]
    fn parallel_map_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            parallel_map(8, 4, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn parallel_matches_serial_campaign() {
        use cfed_core::Category;
        for seed in [0u64, 1, 0xCFED_2006] {
            let matrix = tiny_matrix(150, seed);
            let path = tmp(&format!("eq-{seed}"));
            let options = RunnerOptions { threads: 4, ..Default::default() };
            let summary = run_matrix(&matrix, "eq", Some(&path), &options).unwrap();
            assert!(summary.complete());
            for (cell, result) in matrix.cells().iter().zip(&summary.cells) {
                let image = cell.workload.image().unwrap();
                let serial = cell.campaign().run(&image).unwrap();
                let parallel = result.report.as_ref().expect("cell completed");
                for c in Category::ALL {
                    assert_eq!(
                        serial.category(c),
                        parallel.category(c),
                        "seed {seed}, {}",
                        result.key
                    );
                }
                assert_eq!(serial.skipped, parallel.skipped);
                assert_eq!(serial.latency_totals(), parallel.latency_totals());
                assert_eq!(serial.golden, parallel.golden);
            }
        }
    }

    #[test]
    fn resume_skips_persisted_shards() {
        let matrix = tiny_matrix(200, 5);
        let path = tmp("resume");
        let options = RunnerOptions { threads: 2, max_shards: Some(4), ..Default::default() };
        let partial = run_matrix(&matrix, "resume", Some(&path), &options).unwrap();
        assert!(!partial.complete());
        assert_eq!(partial.executed_shards, 4);

        let finish = RunnerOptions { threads: 2, ..Default::default() };
        let full = run_matrix(&matrix, "resume", Some(&path), &finish).unwrap();
        assert!(full.complete());
        assert_eq!(full.resumed_shards, 4);
        assert_eq!(full.executed_shards + full.resumed_shards, 200u64.div_ceil(64) * 3);
    }

    #[test]
    fn broken_workload_fails_cell_not_pool() {
        let mut matrix = tiny_matrix(64, 0);
        matrix.workloads.push(WorkloadSpec::inline("broken", "fn main() { this is not minic"));
        let path = tmp("broken");
        let summary = run_matrix(
            &matrix,
            "broken",
            Some(&path),
            &RunnerOptions { threads: 2, ..Default::default() },
        )
        .unwrap();
        let broken: Vec<_> =
            summary.cells.iter().filter(|c| c.key.contains("inline:broken")).collect();
        assert_eq!(broken.len(), 3);
        for cell in &broken {
            assert!(cell.report.is_none());
            assert!(!cell.failures.is_empty());
        }
        // The healthy workload still completed.
        assert!(summary
            .cells
            .iter()
            .filter(|c| c.key.contains("inline:tiny"))
            .all(|c| c.complete()));
    }
}
