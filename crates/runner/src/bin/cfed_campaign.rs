//! `cfed-campaign` — the full fault-injection study as one resumable run.
//!
//! Drives two campaign matrices over the `cfed-runner` worker pool:
//!
//! * **coverage** — baseline + five techniques × both update styles over
//!   the six campaign workloads (ALLBB policy), tallied per branch-error
//!   category;
//! * **latency** — EdgCF/CMOVcc under the four checking policies,
//!   measuring mean instructions from injection to the check report.
//!
//! Every finished shard is checkpointed to a JSONL store under `--out`;
//! re-running with the same `--run-id`, `--seed` and `--trials` resumes
//! from the checkpoints instead of re-executing. Tallies are bit-identical
//! for any `--threads` value.
//!
//! Usage: `cargo run --release -p cfed-runner --bin cfed-campaign -- [OPTIONS]`
//!
//! The `report` subcommand renders a finished (or partial) store:
//! `cfed-campaign report --store results/campaigns/<run>-coverage.jsonl`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cfed_core::{Category, TechniqueKind};
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_fault::CategoryStats;
use cfed_runner::cli::Parser;
use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec, CAMPAIGN_WORKLOADS};
use cfed_runner::pool::{run_matrix, RunSummary, RunnerOptions};
use cfed_runner::report::render_report;
use cfed_telemetry::{JsonlSink, Telemetry};
use cfed_workloads::Scale;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("report") {
        run_report(&argv[1..]);
        return;
    }
    run_campaign(&argv);
}

fn run_report(argv: &[String]) {
    let args = Parser::new("cfed-campaign report", "render a campaign result store")
        .required_flag("store", "PATH", "JSONL result store to render")
        .parse_from(argv);
    match render_report(Path::new(args.get("store").expect("required"))) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("cfed-campaign: {e}");
            std::process::exit(2);
        }
    }
}

fn run_campaign(argv: &[String]) {
    let args = Parser::new("cfed-campaign", "full coverage + latency fault-injection study")
        .flag("trials", "N", "500", "injections per workload per configuration")
        .flag("threads", "N", "0", "worker threads (0 = all cores)")
        .flag("seed", "SEED", "3488423942", "campaign RNG seed")
        .flag("out", "DIR", "results/campaigns", "directory for the JSONL result stores")
        .flag(
            "run-id",
            "ID",
            "",
            "run identifier; re-use to resume (default: derived from seed/trials)",
        )
        .flag("events", "PATH", "", "write structured telemetry events (JSONL) to PATH")
        .switch("progress", "print per-shard progress to stderr")
        .switch("quiet", "suppress stderr progress output")
        .switch(
            "forensics",
            "re-inject SDC/timeout/misdetection trials and emit forensics events (use with --events)",
        )
        .parse_from(argv);
    let die = |message: String| -> ! {
        eprintln!("cfed-campaign: {message}");
        std::process::exit(2);
    };
    let trials = args.get_u64("trials").unwrap_or_else(|e| die(e));
    let threads = args.get_usize("threads").unwrap_or_else(|e| die(e));
    let seed = args.get_u64("seed").unwrap_or_else(|e| die(e));
    let out = PathBuf::from(args.get("out").expect("has default"));
    let run_id = match args.get("run-id").filter(|s| !s.is_empty()) {
        Some(id) => id.to_string(),
        None => format!("campaign-s{seed}-t{trials}"),
    };
    let quiet = args.has("quiet");
    let telemetry = match args.get("events").filter(|s| !s.is_empty()) {
        Some(path) => {
            let path = PathBuf::from(path);
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| die(format!("creating {}: {e}", dir.display())));
            }
            Telemetry::to(Arc::new(JsonlSink::create(&path).unwrap_or_else(|e| die(e))))
        }
        None => Telemetry::off(),
    };
    let options = RunnerOptions {
        threads,
        max_shards: None,
        progress: args.has("progress"),
        quiet,
        telemetry,
        forensics: args.has("forensics"),
    };

    let workloads: Vec<WorkloadSpec> =
        CAMPAIGN_WORKLOADS.iter().map(|name| WorkloadSpec::named(name, Scale::Test)).collect();

    // Coverage: baseline + five techniques, both update styles, ALLBB.
    let mut techniques: Vec<Option<TechniqueKind>> = vec![None];
    techniques.extend(TechniqueKind::ALL_FIVE.into_iter().map(Some));
    let coverage = CampaignMatrix {
        workloads: workloads.clone(),
        techniques: techniques.clone(),
        styles: vec![UpdateStyle::CMov, UpdateStyle::Jcc],
        policies: vec![CheckPolicy::AllBb],
        trials,
        seed,
    };
    let coverage_store = out.join(format!("{run_id}-coverage.jsonl"));
    if !quiet {
        eprintln!(
            "cfed-campaign: coverage matrix — {} cells, {} shards, store {}",
            coverage.cells().len(),
            CampaignMatrix::shards(&coverage.cells()).len(),
            coverage_store.display()
        );
    }
    let coverage_run =
        run_matrix(&coverage, &run_id, Some(&coverage_store), &options).unwrap_or_else(|e| die(e));
    if !quiet {
        report_progress(&coverage_run);
    }

    // Latency: EdgCF under CMOVcc for each checking policy.
    let latency = CampaignMatrix {
        workloads,
        techniques: vec![Some(TechniqueKind::EdgCf)],
        styles: vec![UpdateStyle::CMov],
        policies: CheckPolicy::ALL.to_vec(),
        trials,
        seed,
    };
    let latency_store = out.join(format!("{run_id}-latency.jsonl"));
    if !quiet {
        eprintln!(
            "cfed-campaign: latency matrix — {} cells, {} shards, store {}",
            latency.cells().len(),
            CampaignMatrix::shards(&latency.cells()).len(),
            latency_store.display()
        );
    }
    let latency_run =
        run_matrix(&latency, &run_id, Some(&latency_store), &options).unwrap_or_else(|e| die(e));
    if !quiet {
        report_progress(&latency_run);
    }

    for style in [UpdateStyle::CMov, UpdateStyle::Jcc] {
        println!("=== Coverage, {style} update style ({trials} trials/workload/config) ===");
        print!("{}", render_coverage(&coverage, &coverage_run, style, &techniques));
        println!();
    }
    println!("=== Detection latency by checking policy (EdgCF, CMOVcc) ===");
    print!("{}", render_latency(&latency, &latency_run));

    if !quiet {
        eprintln!(
            "cfed-campaign: full per-cell tables: cfed-campaign report --store {}",
            coverage_store.display()
        );
    }

    if !coverage_run.complete() || !latency_run.complete() {
        eprintln!("cfed-campaign: some shards failed; re-run with the same --run-id to retry them");
        std::process::exit(1);
    }
}

fn report_progress(run: &RunSummary) {
    eprintln!(
        "cfed-campaign: executed {} shards, resumed {} from checkpoints",
        run.executed_shards, run.resumed_shards
    );
}

/// Sums category tallies across one configuration's workload cells.
fn technique_totals(
    matrix: &CampaignMatrix,
    summary: &RunSummary,
    technique: Option<TechniqueKind>,
    style: UpdateStyle,
) -> (Vec<(Category, CategoryStats)>, u64) {
    let mut totals: Vec<(Category, CategoryStats)> =
        Category::ALL.iter().map(|&c| (c, CategoryStats::default())).collect();
    let mut missing = 0u64;
    for (cell, result) in matrix.cells().iter().zip(&summary.cells) {
        if cell.config.technique != technique || cell.config.style != style {
            continue;
        }
        let Some(report) = result.report.as_ref() else {
            missing += 1;
            continue;
        };
        for (c, slot) in &mut totals {
            let s = report.category(*c);
            slot.detected_check += s.detected_check;
            slot.detected_hw += s.detected_hw;
            slot.other_fault += s.other_fault;
            slot.benign += s.benign;
            slot.sdc += s.sdc;
            slot.timeout += s.timeout;
        }
    }
    (totals, missing)
}

fn render_coverage(
    matrix: &CampaignMatrix,
    summary: &RunSummary,
    style: UpdateStyle,
    techniques: &[Option<TechniqueKind>],
) -> String {
    let mut out = String::new();
    for &technique in techniques {
        let (totals, missing) = technique_totals(matrix, summary, technique, style);
        let name = technique.map_or("baseline".to_string(), |k| k.to_string());
        let _ = writeln!(out, "\n== {name} ==");
        if missing > 0 {
            let _ = writeln!(out, "   ({missing} workload cells missing — run incomplete)");
        }
        let _ = writeln!(
            out,
            "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>8}",
            "Category", "chk", "hw", "fault", "benign", "SDC", "timeout", "coverage"
        );
        let _ = writeln!(out, "{}", "-".repeat(72));
        for (c, s) in &totals {
            if s.total() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>7.1}%",
                c.to_string(),
                s.detected_check,
                s.detected_hw,
                s.other_fault,
                s.benign,
                s.sdc,
                s.timeout,
                100.0 * s.coverage()
            );
        }
    }
    out
}

fn render_latency(matrix: &CampaignMatrix, summary: &RunSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>8} | {:>16} | {:>12}", "policy", "mean latency", "check share");
    let _ = writeln!(out, "{}", "-".repeat(44));
    for policy in CheckPolicy::ALL {
        let mut lat_sum = 0.0;
        let mut lat_n = 0u64;
        let mut chk = 0u64;
        let mut hw = 0u64;
        for (cell, result) in matrix.cells().iter().zip(&summary.cells) {
            if cell.config.policy != policy {
                continue;
            }
            let Some(report) = result.report.as_ref() else { continue };
            if let Some(l) = report.mean_detection_latency() {
                lat_sum += l;
                lat_n += 1;
            }
            let t = report.sdc_prone_total();
            chk += t.detected_check;
            hw += t.detected_hw + t.other_fault;
        }
        let mean = if lat_n > 0 { lat_sum / lat_n as f64 } else { f64::NAN };
        let share = if chk + hw > 0 { chk as f64 / (chk + hw) as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "{:>8} | {:>11.0} insts | {:>11.1}%",
            policy.to_string(),
            mean,
            100.0 * share
        );
    }
    out
}
