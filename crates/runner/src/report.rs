//! `cfed-campaign report` — renders a persisted campaign store.
//!
//! Reads a v2 JSONL store, merges each cell's shard tallies with the same
//! associative algebra the pool uses, and renders the per-category outcome
//! table plus detection-latency histograms and p50/p90/p99 percentiles for
//! every cell. Everything derives from the shard records alone — meta
//! records (wall-clock, thread count) are ignored — and percentiles are
//! integer bucket bounds, so a killed-and-resumed store renders
//! byte-identically to an uninterrupted one.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use cfed_core::{Category, TechniqueKind};
use cfed_fault::{AttackKind, Outcome};
use cfed_telemetry::{bucket_high, Histogram};

use crate::store::{read_store, ShardTallies, StoreHeader};

/// Width of the widest histogram bar, in characters.
const BAR_WIDTH: u64 = 40;

/// A cell's merged view over its completed shards.
#[derive(Debug)]
pub struct CellSummary {
    /// The cell key (shard key minus the trailing `#<index>`).
    pub key: String,
    /// Shards merged into `tallies`.
    pub shards_done: u64,
    /// Merged tallies.
    pub tallies: ShardTallies,
}

impl CellSummary {
    /// The merged detection-latency histogram (`DetectedByCheck` across
    /// all categories).
    pub fn detection_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for row in self.tallies.lat.iter() {
            h.merge(&row[Outcome::DetectedByCheck.idx()]);
        }
        h
    }
}

/// Groups a store's shard records by cell key (the part before the final
/// `#`) and merges each group. `BTreeMap` input and output keep the order
/// deterministic.
pub fn summarize(done: &BTreeMap<String, ShardTallies>) -> Vec<CellSummary> {
    let mut cells: BTreeMap<String, CellSummary> = BTreeMap::new();
    for (shard_key, tallies) in done {
        let cell_key = shard_key.rsplit_once('#').map_or(shard_key.as_str(), |(c, _)| c);
        let entry = cells.entry(cell_key.to_string()).or_insert_with(|| CellSummary {
            key: cell_key.to_string(),
            shards_done: 0,
            tallies: ShardTallies::default(),
        });
        entry.shards_done += 1;
        entry.tallies.absorb(tallies);
    }
    cells.into_values().collect()
}

/// Renders the report for the store at `path`.
///
/// # Errors
///
/// Returns a message when the store cannot be read or fails to parse.
pub fn render_report(path: &Path) -> Result<String, String> {
    let (header, done, failed) = read_store(path)?;
    Ok(render_parts(&header, &summarize(&done), &failed))
}

/// Renders a report from already-loaded parts — the entry point the
/// `cfed-serve` coordinator uses to serve `/report` over HTTP from its
/// in-memory mirror while a campaign runs. Byte-identical to
/// [`render_report`] over the persisted store holding the same shards.
pub fn render_parts(
    header: &StoreHeader,
    cells: &[CellSummary],
    failed: &BTreeMap<String, String>,
) -> String {
    let mut out = String::new();
    let done: u64 = cells.iter().map(|c| c.shards_done).sum();
    let _ = writeln!(
        out,
        "run {} | seed {} | {} trials/cell | shards {done}/{}",
        header.run_id, header.seed, header.trials, header.total_shards
    );
    if !failed.is_empty() {
        let _ = writeln!(out, "failed shards: {}", failed.len());
        for (key, err) in failed {
            let _ = writeln!(out, "  {key}: {err}");
        }
    }
    if cells.is_empty() {
        let _ = writeln!(out, "no completed shards");
        return out;
    }
    for cell in cells {
        render_cell(&mut out, cell);
    }
    out
}

fn render_cell(out: &mut String, cell: &CellSummary) {
    let _ = writeln!(out, "\n== {} ==", cell.key);
    let _ = writeln!(out, "shards merged: {}", cell.shards_done);
    if cell.tallies.skipped > 0 {
        let _ = writeln!(out, "skipped injections: {}", cell.tallies.skipped);
    }

    let _ = writeln!(
        out,
        "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>8}",
        "category", "chk", "hw", "fault", "benign", "SDC", "timeout", "coverage"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for (c, s) in Category::ALL.iter().zip(&cell.tallies.stats) {
        if s.total() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>7.1}%",
            c.to_string(),
            s.detected_check,
            s.detected_hw,
            s.other_fault,
            s.benign,
            s.sdc,
            s.timeout,
            100.0 * s.coverage()
        );
    }

    let all = cell.detection_latency();
    if all.is_empty() {
        let _ = writeln!(out, "no check-detected faults");
        return;
    }
    let _ = writeln!(
        out,
        "detection latency (instructions): n={} sum={} min={} max={} p50<={} p90<={} p99<={}",
        all.count(),
        all.sum(),
        all.min().unwrap_or(0),
        all.max().unwrap_or(0),
        all.percentile(0.50).unwrap_or(0),
        all.percentile(0.90).unwrap_or(0),
        all.percentile(0.99).unwrap_or(0),
    );
    render_bars(out, &all);

    // Per-category percentile rows (check-detected faults only).
    let _ = writeln!(
        out,
        "{:>9} | {:>6} | {:>8} {:>8} {:>8} | {:>8}",
        "category", "n", "p50<=", "p90<=", "p99<=", "max"
    );
    let _ = writeln!(out, "{}", "-".repeat(60));
    for (c, row) in Category::ALL.iter().zip(cell.tallies.lat.iter()) {
        let h = &row[Outcome::DetectedByCheck.idx()];
        if h.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "{:>9} | {:>6} | {:>8} {:>8} {:>8} | {:>8}",
            c.to_string(),
            h.count(),
            h.percentile(0.50).unwrap_or(0),
            h.percentile(0.90).unwrap_or(0),
            h.percentile(0.99).unwrap_or(0),
            h.max().unwrap_or(0),
        );
    }
}

/// Splits an attack cell's key into its archetype and technique column.
/// Fault cells (no `|atk:` suffix) return `None` and are left to the
/// regular report.
fn attack_cell(key: &str) -> Option<(AttackKind, String)> {
    let (rest, name) = key.rsplit_once("|atk:")?;
    let kind = AttackKind::from_name(name)?;
    let technique = rest.split('|').nth(1)?.to_string();
    Some((kind, technique))
}

/// Renders the attack detection frontier for the store at `path`: one row
/// per attack archetype, one column per technique, aggregated over every
/// workload in the store. The rendering derives exclusively from shard
/// tallies, so it is byte-identical across thread counts, kill/resume, and
/// single-process vs service runs.
///
/// # Errors
///
/// Returns a message when the store cannot be read, fails to parse, or
/// holds no attack cells.
pub fn render_attack_frontier(path: &Path) -> Result<String, String> {
    let (header, done, failed) = read_store(path)?;
    render_attack_parts(&header, &summarize(&done), &failed)
}

/// [`render_attack_frontier`] over already-loaded parts (the in-memory
/// mirror path, mirroring [`render_parts`]).
///
/// # Errors
///
/// Returns a message when the store holds no attack cells.
pub fn render_attack_parts(
    header: &StoreHeader,
    cells: &[CellSummary],
    failed: &BTreeMap<String, String>,
) -> Result<String, String> {
    // (archetype, technique) -> (detected check, detected hw, sdc, total, unplaced)
    type Tally = (u64, u64, u64, u64, u64);
    let mut grid: BTreeMap<(usize, String), Tally> = BTreeMap::new();
    let mut workloads: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for cell in cells {
        let Some((kind, technique)) = attack_cell(&cell.key) else { continue };
        workloads.insert(cell.key.split('|').next().unwrap_or("").to_string());
        let slot = grid.entry((kind.idx(), technique)).or_default();
        for s in &cell.tallies.stats {
            slot.0 += s.detected_check;
            slot.1 += s.detected_hw;
            slot.2 += s.sdc;
            slot.3 += s.total();
        }
        slot.4 += cell.tallies.skipped;
    }
    if grid.is_empty() {
        return Err("store holds no attack cells (run `cfed-campaign attack` first)".to_string());
    }

    // Canonical column order: baseline, then the paper's five techniques;
    // only columns present in the store are rendered.
    let canonical: Vec<String> = std::iter::once("baseline".to_string())
        .chain(TechniqueKind::ALL_FIVE.iter().map(ToString::to_string))
        .collect();
    let columns: Vec<&String> =
        canonical.iter().filter(|t| grid.keys().any(|(_, tech)| tech == *t)).collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "run {} | seed {} | {} trials/cell | attack detection frontier over {} workload(s)",
        header.run_id,
        header.seed,
        header.trials,
        workloads.len()
    );
    if !failed.is_empty() {
        let _ = writeln!(out, "failed shards: {}", failed.len());
        for (key, err) in failed {
            let _ = writeln!(out, "  {key}: {err}");
        }
    }
    let _ = writeln!(out, "detected = signature check + hardware trap; SDC in parentheses");
    let _ = write!(out, "{:>14}", "archetype");
    for t in &columns {
        let _ = write!(out, " | {t:>14}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(14 + columns.len() * 17));
    for kind in AttackKind::ALL {
        if !grid.keys().any(|(k, _)| *k == kind.idx()) {
            continue;
        }
        let _ = write!(out, "{:>14}", kind.name());
        for t in &columns {
            match grid.get(&(kind.idx(), (*t).clone())) {
                Some(&(chk, hw, sdc, total, _)) if total > 0 => {
                    let pct = 100.0 * (chk + hw) as f64 / total as f64;
                    let _ = write!(out, " | {:>8.1}% ({sdc:>3})", pct);
                }
                _ => {
                    let _ = write!(out, " | {:>14}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }

    // Check-only view: the frontier with hardware traps excluded, which is
    // what separates instrumentation coverage from machine luck.
    let _ = writeln!(out, "\nsignature-check detection only");
    let _ = write!(out, "{:>14}", "archetype");
    for t in &columns {
        let _ = write!(out, " | {t:>14}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(14 + columns.len() * 17));
    for kind in AttackKind::ALL {
        if !grid.keys().any(|(k, _)| *k == kind.idx()) {
            continue;
        }
        let _ = write!(out, "{:>14}", kind.name());
        for t in &columns {
            match grid.get(&(kind.idx(), (*t).clone())) {
                Some(&(chk, _, _, total, _)) if total > 0 => {
                    let _ = write!(out, " | {:>13.1}%", 100.0 * chk as f64 / total as f64);
                }
                _ => {
                    let _ = write!(out, " | {:>14}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }

    let unplaced: u64 = grid.values().map(|v| v.4).sum();
    if unplaced > 0 {
        let _ = writeln!(out, "\nunplaceable attack trials (no viable target): {unplaced}");
    }
    Ok(out)
}

/// One bar per non-empty bucket, scaled to the fullest bucket.
fn render_bars(out: &mut String, h: &Histogram) {
    let peak = h.nonzero_buckets().map(|(_, c)| c).max().unwrap_or(1);
    for (i, count) in h.nonzero_buckets() {
        let low = if i == 0 { 0 } else { bucket_high(i - 1) + 1 };
        let width = ((count * BAR_WIDTH) / peak).max(1) as usize;
        let _ = writeln!(
            out,
            "  [{:>8}..{:>8}] {:>6} |{}",
            low,
            bucket_high(i),
            count,
            "#".repeat(width)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_fault::{CampaignReport, Golden};

    fn golden() -> Golden {
        Golden { output: vec![7], exit_code: 0, insts: 100, branches: 9 }
    }

    fn shard(latencies: &[(Category, Outcome, u64)]) -> ShardTallies {
        let mut report = CampaignReport::new(golden());
        for &(c, o, l) in latencies {
            report.record(c, o, l);
        }
        ShardTallies::from_report(&report)
    }

    #[test]
    fn summarize_groups_and_merges_by_cell() {
        let mut done = BTreeMap::new();
        done.insert("cellA#0".to_string(), shard(&[(Category::A, Outcome::DetectedByCheck, 10)]));
        done.insert("cellA#1".to_string(), shard(&[(Category::A, Outcome::DetectedByCheck, 20)]));
        done.insert("cellB#0".to_string(), shard(&[(Category::B, Outcome::Sdc, 0)]));
        let cells = summarize(&done);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].key, "cellA");
        assert_eq!(cells[0].shards_done, 2);
        let lat = cells[0].detection_latency();
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.sum(), 30);
        assert_eq!(cells[1].key, "cellB");
        assert_eq!(cells[1].tallies.stats[1].sdc, 1);
    }

    #[test]
    fn attack_frontier_renders_archetype_by_technique() {
        let header = StoreHeader {
            run_id: "atk".into(),
            seed: 3,
            trials: 64,
            shard_trials: 64,
            digest: 1,
            total_shards: 3,
        };
        let mut done = BTreeMap::new();
        done.insert(
            "w@test|baseline|CMOVcc|ALLBB|100000|s3|t64|atk:ret-gadget#0".to_string(),
            shard(&[(Category::D, Outcome::Sdc, 0), (Category::D, Outcome::DetectedByHw, 4)]),
        );
        done.insert(
            "w@test|EdgCF|CMOVcc|ALLBB|100000|s3|t64|atk:ret-gadget#0".to_string(),
            shard(&[(Category::D, Outcome::DetectedByCheck, 9)]),
        );
        // Fault cells in the same store are ignored by the frontier.
        done.insert(
            "w@test|EdgCF|CMOVcc|ALLBB|100000|s3|t64#0".to_string(),
            shard(&[(Category::A, Outcome::Benign, 0)]),
        );
        let empty = BTreeMap::new();
        let text = render_attack_parts(&header, &summarize(&done), &empty).unwrap();
        assert!(text.contains("ret-gadget"), "{text}");
        assert!(text.contains("baseline"), "{text}");
        assert!(text.contains("EdgCF"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
        assert!(text.contains("50.0%"), "{text}");

        let faults_only: BTreeMap<String, ShardTallies> = done
            .iter()
            .filter(|(k, _)| !k.contains("|atk:"))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        assert!(render_attack_parts(&header, &summarize(&faults_only), &empty).is_err());
    }

    #[test]
    fn render_is_deterministic_over_merge_order() {
        let header = StoreHeader {
            run_id: "r".into(),
            seed: 1,
            trials: 128,
            shard_trials: 64,
            digest: 9,
            total_shards: 2,
        };
        let a =
            shard(&[(Category::A, Outcome::DetectedByCheck, 5), (Category::F, Outcome::Sdc, 0)]);
        let b = shard(&[(Category::A, Outcome::DetectedByCheck, 90)]);
        let mut forward = BTreeMap::new();
        forward.insert("c#0".to_string(), a.clone());
        forward.insert("c#1".to_string(), b.clone());
        // Same shards, merged from a different insertion order.
        let mut backward = BTreeMap::new();
        backward.insert("c#1".to_string(), b);
        backward.insert("c#0".to_string(), a);
        let empty = BTreeMap::new();
        assert_eq!(
            render_parts(&header, &summarize(&forward), &empty),
            render_parts(&header, &summarize(&backward), &empty)
        );
        let text = render_parts(&header, &summarize(&forward), &empty);
        assert!(text.contains("== c =="), "{text}");
        assert!(text.contains("p50<="), "{text}");
    }
}
