//! The campaign job model: a matrix of `(workload × technique × update
//! style × policy)` cells, each a [`Campaign`], exploded into independent
//! [`ShardTask`]s of [`SHARD_TRIALS`] trials for the worker pool.
//!
//! Determinism contract: a shard's fault stream depends only on the cell's
//! campaign seed and the shard index (see [`Campaign::shard_seed`]), and
//! tallies merge associatively, so any schedule over any worker count
//! reproduces the serial [`Campaign::run`] tallies bit for bit.

use cfed_asm::Image;
use cfed_core::RunConfig;
use cfed_core::TechniqueKind;
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_fault::{AttackCampaign, AttackKind, Campaign, SHARD_TRIALS};
use cfed_workloads::Scale;

/// Workloads used for injection campaigns (kept small — every injection is
/// a whole program run). Shared by `cfed-bench` and `cfed-campaign`.
pub const CAMPAIGN_WORKLOADS: [&str; 6] =
    ["164.gzip", "176.gcc", "181.mcf", "171.swim", "183.equake", "191.fma3d"];

/// A guest program a campaign runs against.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// One of the 26 SPEC2000-analog workloads, by name.
    Named {
        /// Workload name, e.g. `"164.gzip"`.
        name: String,
        /// Workload size preset.
        scale: Scale,
    },
    /// An inline MiniC program (tests and ad-hoc campaigns).
    Inline {
        /// Display name for keys and reports.
        name: String,
        /// MiniC source text.
        source: String,
    },
}

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

fn scale_key(scale: Scale) -> String {
    match scale {
        Scale::Test => "test".to_string(),
        Scale::Full => "full".to_string(),
        Scale::Custom(n) => n.to_string(),
    }
}

impl WorkloadSpec {
    /// A named workload at the given scale.
    pub fn named(name: &str, scale: Scale) -> WorkloadSpec {
        WorkloadSpec::Named { name: name.to_string(), scale }
    }

    /// An inline MiniC program.
    pub fn inline(name: &str, source: &str) -> WorkloadSpec {
        WorkloadSpec::Inline { name: name.to_string(), source: source.to_string() }
    }

    /// Stable identity string (part of shard keys; for inline programs the
    /// source is hashed in so a changed program never matches old records).
    pub fn key(&self) -> String {
        match self {
            WorkloadSpec::Named { name, scale } => format!("{name}@{}", scale_key(*scale)),
            WorkloadSpec::Inline { name, source } => {
                format!("inline:{name}@{:016x}", fnv1a(source))
            }
        }
    }

    /// Compiles the workload to an image.
    pub fn image(&self) -> Result<Image, String> {
        match self {
            WorkloadSpec::Named { name, scale } => cfed_workloads::by_name(name)
                .ok_or_else(|| format!("unknown workload {name:?}"))?
                .image(*scale)
                .map_err(|e| format!("{name} failed to compile: {e}")),
            WorkloadSpec::Inline { name, source } => cfed_lang::compile(source)
                .map_err(|e| format!("inline workload {name} failed to compile: {e}")),
        }
    }
}

/// One campaign cell: a workload under one DBT configuration.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// The guest program.
    pub workload: WorkloadSpec,
    /// DBT configuration under test.
    pub config: RunConfig,
    /// Total fault injections for this cell.
    pub trials: u64,
    /// Campaign RNG seed.
    pub seed: u64,
    /// When set, the cell mounts this attack archetype instead of sampling
    /// random soft errors — the second cell-space dimension. Attack cells
    /// share shard geometry, seed derivation and tally shape with fault
    /// cells, so everything downstream of the report is unchanged.
    pub attack: Option<AttackKind>,
}

impl CellSpec {
    /// The equivalent serial campaign.
    pub fn campaign(&self) -> Campaign {
        Campaign { config: self.config, trials: self.trials, seed: self.seed }
    }

    /// The equivalent attack campaign, for attack cells. Shard counts and
    /// seeds agree with [`CellSpec::campaign`], which is why the scheduling
    /// and accounting code never needs to distinguish the two.
    pub fn attack_campaign(&self) -> Option<AttackCampaign> {
        self.attack.map(|kind| AttackCampaign {
            config: self.config,
            kind,
            trials: self.trials,
            seed: self.seed,
        })
    }

    /// The golden-run cache key: workload identity + everything of the
    /// configuration that affects execution.
    pub fn golden_key(&self) -> String {
        let t = self.config.technique.map_or("baseline".to_string(), |k| k.to_string());
        format!(
            "{}|{t}|{}|{}|{}",
            self.workload.key(),
            self.config.style,
            self.config.policy,
            self.config.max_insts
        )
    }

    /// The cell's identity in the result store. Attack cells carry an
    /// `|atk:<archetype>` suffix; fault cells keep the historical 7-part
    /// key, so existing stores resume unchanged. The golden key is shared
    /// either way — golden runs are attack-independent.
    pub fn key(&self) -> String {
        let base = format!("{}|s{}|t{}", self.golden_key(), self.seed, self.trials);
        match self.attack {
            Some(kind) => format!("{base}|atk:{}", kind.name()),
            None => base,
        }
    }

    /// Shards in this cell.
    pub fn num_shards(&self) -> u64 {
        self.campaign().num_shards()
    }
}

/// One unit of worker-pool work: a shard of a cell.
#[derive(Debug, Clone, Copy)]
pub struct ShardTask {
    /// Index into the matrix's cell list.
    pub cell: usize,
    /// Shard index within the cell's campaign.
    pub shard_index: u64,
}

impl ShardTask {
    /// The shard's identity in the result store.
    pub fn key(&self, cells: &[CellSpec]) -> String {
        format!("{}#{}", cells[self.cell].key(), self.shard_index)
    }
}

/// A campaign matrix: the cross product of workloads, techniques, update
/// styles and checking policies, each cell running `trials` injections.
#[derive(Debug, Clone)]
pub struct CampaignMatrix {
    /// Guest programs.
    pub workloads: Vec<WorkloadSpec>,
    /// Techniques (`None` = uninstrumented baseline).
    pub techniques: Vec<Option<TechniqueKind>>,
    /// Conditional-update styles.
    pub styles: Vec<UpdateStyle>,
    /// Checking policies.
    pub policies: Vec<CheckPolicy>,
    /// Trials per cell.
    pub trials: u64,
    /// Campaign seed, used by every cell (cells differ in configuration,
    /// so equal seeds give independent fault streams over different golden
    /// runs — and keep cells comparable across techniques).
    pub seed: u64,
    /// Attack archetypes (`None` = random soft errors). The default
    /// `[None]` reproduces the historical fault-only cell space — same
    /// keys, same digest.
    pub attacks: Vec<Option<AttackKind>>,
}

impl CampaignMatrix {
    /// A matrix over the paper's six coverage configurations (baseline +
    /// five techniques) for one update style, ALLBB policy.
    pub fn coverage(
        workloads: Vec<WorkloadSpec>,
        style: UpdateStyle,
        trials: u64,
        seed: u64,
    ) -> CampaignMatrix {
        let mut techniques: Vec<Option<TechniqueKind>> = vec![None];
        techniques.extend(TechniqueKind::ALL_FIVE.into_iter().map(Some));
        CampaignMatrix {
            workloads,
            techniques,
            styles: vec![style],
            policies: vec![CheckPolicy::AllBb],
            trials,
            seed,
            attacks: vec![None],
        }
    }

    /// The adversarial matrix: every attack archetype against the paper's
    /// six coverage configurations (baseline + five techniques), CMOVcc
    /// style, ALLBB policy — the detection-frontier experiment behind
    /// `cfed-campaign report --attacks`.
    pub fn attacks(workloads: Vec<WorkloadSpec>, trials: u64, seed: u64) -> CampaignMatrix {
        let mut techniques: Vec<Option<TechniqueKind>> = vec![None];
        techniques.extend(TechniqueKind::ALL_FIVE.into_iter().map(Some));
        CampaignMatrix {
            workloads,
            techniques,
            styles: vec![UpdateStyle::CMov],
            policies: vec![CheckPolicy::AllBb],
            trials,
            seed,
            attacks: AttackKind::ALL.into_iter().map(Some).collect(),
        }
    }

    /// The exploded cell list, in deterministic iteration order
    /// (attack-major, then technique, style, policy, workload). With the
    /// default `attacks: [None]` the order and keys are identical to the
    /// historical fault-only matrix.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::new();
        for &attack in &self.attacks {
            for &technique in &self.techniques {
                for &style in &self.styles {
                    for &policy in &self.policies {
                        for workload in &self.workloads {
                            let config =
                                RunConfig { technique, style, policy, ..RunConfig::default() };
                            out.push(CellSpec {
                                workload: workload.clone(),
                                config,
                                trials: self.trials,
                                seed: self.seed,
                                attack,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// All shard tasks, cell-major (maximizes per-worker golden-cache
    /// hits: a worker draining the queue sees one cell's shards together).
    pub fn shards(cells: &[CellSpec]) -> Vec<ShardTask> {
        let mut out = Vec::new();
        for (cell, spec) in cells.iter().enumerate() {
            for shard_index in 0..spec.num_shards() {
                out.push(ShardTask { cell, shard_index });
            }
        }
        out
    }

    /// Digest of the full cell list, stored in the JSONL header so a
    /// resume against a different matrix is rejected.
    pub fn digest(cells: &[CellSpec]) -> u64 {
        let all: String = cells.iter().map(|c| c.key()).collect::<Vec<_>>().join("\n");
        fnv1a(&all)
    }

    /// Trials per shard (the unit of checkpointing).
    pub fn shard_trials() -> u64 {
        SHARD_TRIALS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_keys_are_unique_and_stable() {
        let m = CampaignMatrix::coverage(
            vec![
                WorkloadSpec::named("164.gzip", Scale::Test),
                WorkloadSpec::named("181.mcf", Scale::Test),
            ],
            UpdateStyle::CMov,
            100,
            7,
        );
        let cells = m.cells();
        assert_eq!(cells.len(), 12);
        let keys: std::collections::BTreeSet<String> = cells.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), cells.len(), "duplicate cell keys");
        assert_eq!(CampaignMatrix::digest(&cells), CampaignMatrix::digest(&m.cells()));
    }

    #[test]
    fn attack_matrix_suffixes_keys_and_keeps_fault_keys_stable() {
        let workloads = vec![WorkloadSpec::named("164.gzip", Scale::Test)];
        let faults = CampaignMatrix::coverage(workloads.clone(), UpdateStyle::CMov, 100, 7);
        for cell in faults.cells() {
            assert!(!cell.key().contains("|atk:"), "fault cell key grew a suffix");
            assert!(cell.attack_campaign().is_none());
        }

        let m = CampaignMatrix::attacks(workloads, 100, 7);
        let cells = m.cells();
        // 7 archetypes x (baseline + 5 techniques) x 1 workload.
        assert_eq!(cells.len(), 42);
        let keys: std::collections::BTreeSet<String> = cells.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), cells.len(), "duplicate attack cell keys");
        for cell in &cells {
            let kind = cell.attack.expect("attack matrix cell without archetype");
            assert!(cell.key().ends_with(&format!("|atk:{}", kind.name())));
            assert!(!cell.golden_key().contains("atk:"), "golden key must stay attack-free");
            let campaign = cell.attack_campaign().expect("attack campaign");
            assert_eq!(campaign.num_shards(), cell.num_shards());
        }
    }

    #[test]
    fn inline_key_tracks_source() {
        let a = WorkloadSpec::inline("t", "fn main() { out(1); }");
        let b = WorkloadSpec::inline("t", "fn main() { out(2); }");
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn shards_cover_every_cell() {
        let m = CampaignMatrix::coverage(
            vec![WorkloadSpec::named("164.gzip", Scale::Test)],
            UpdateStyle::Jcc,
            150,
            0,
        );
        let cells = m.cells();
        let shards = CampaignMatrix::shards(&cells);
        // 150 trials -> 3 shards per cell, 6 cells.
        assert_eq!(shards.len(), 18);
        let total: u64 =
            shards.iter().map(|s| cells[s.cell].campaign().shard_trials(s.shard_index)).sum();
        assert_eq!(total, 150 * 6);
    }
}
