//! Bounded retry with exponential backoff — the one failure policy shared
//! by the single-process pool and the `cfed-serve` campaign service.
//!
//! A *unit* (one shard of one cell) that fails — worker panic, golden-run
//! failure, lease expiry, worker disconnect — is retried up to
//! [`RetryPolicy::max_attempts`] total attempts, waiting
//! [`RetryPolicy::backoff`] between consecutive attempts (exponential,
//! capped). Retries never touch tallies: a unit's result is deterministic
//! in `(cell, shard index)`, so a retried success is bit-identical to a
//! first-try success, and reports stay byte-identical however many
//! attempts it took.

use std::time::Duration;

/// Retry configuration for failed work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per unit, including the first (`1` disables retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub backoff_ms: u64,
    /// Upper bound on any single backoff.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, backoff_ms: 25, max_backoff_ms: 2_000 }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, backoff_ms: 0, max_backoff_ms: 0 }
    }

    /// Whether a unit that has already made `attempts` attempts gets
    /// another one.
    pub fn allows(&self, attempts: u32) -> bool {
        attempts < self.max_attempts.max(1)
    }

    /// The wait before attempt `attempts + 1`, given `attempts` completed
    /// attempts: `backoff_ms × 2^(attempts-1)`, capped at
    /// `max_backoff_ms`. The first attempt (`attempts == 0`) never waits.
    pub fn backoff(&self, attempts: u32) -> Duration {
        if attempts == 0 {
            return Duration::ZERO;
        }
        let exp = attempts.saturating_sub(1).min(16);
        let ms = self.backoff_ms.saturating_mul(1u64 << exp).min(self.max_backoff_ms);
        Duration::from_millis(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_are_bounded() {
        let p = RetryPolicy { max_attempts: 3, backoff_ms: 10, max_backoff_ms: 1_000 };
        assert!(p.allows(0));
        assert!(p.allows(2));
        assert!(!p.allows(3));
        assert!(!RetryPolicy::none().allows(1));
        // max_attempts 0 still permits the first attempt.
        let degenerate = RetryPolicy { max_attempts: 0, ..p };
        assert!(degenerate.allows(0));
        assert!(!degenerate.allows(1));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy { max_attempts: 10, backoff_ms: 25, max_backoff_ms: 100 };
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), Duration::from_millis(25));
        assert_eq!(p.backoff(2), Duration::from_millis(50));
        assert_eq!(p.backoff(3), Duration::from_millis(100));
        assert_eq!(p.backoff(9), Duration::from_millis(100), "capped");
        // Huge attempt counts must not overflow the shift.
        assert_eq!(p.backoff(200), Duration::from_millis(100));
    }
}
