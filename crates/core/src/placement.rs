//! Mechanical re-verification of tier-2 trace plans against the
//! `GEN_SIG`/`CHECK_SIG` conditions (paper §4.4/§6).
//!
//! The tier-2 pass pipeline in `cfed-dbt` moves and merges signature code:
//! interior `+S/−S` update pairs cancel, and per-block checks hoist to one
//! head check (the ALLBB→END policy spectrum of §6 says checks may legally
//! move as long as the conditions still hold). None of that output is
//! trusted. Before a trace is installed the engine hands the *final* op
//! sequence — exactly what the emitter will lower — to a
//! [`PlacementVerifier`], which replays the signature algebra symbolically
//! along the followed path and every exit path:
//!
//! * entering the trace on a correct edge means `PC' == sig(entry)`
//!   ([`TraceSig::PcPrimeAdditive`]); the verifier tracks the symbolic
//!   offset `v` of `PC'` from "correct" under the plan's `SigAdd`s;
//! * `CHECK_SIG` (a [`TraceOp::Check`]) is only valid where `v == 0`:
//!   there the check fires **iff** an error occurred, because additive
//!   updates keep a wrong `PC'` wrong ("once wrong, always wrong");
//! * every path leaving the trace must re-establish the on-edge invariant
//!   for its target: `v + adjust == sig(target)` at side exits and the
//!   final exit, `v + adjust == sig(entry)` at the loop back edge;
//! * if any merged block's policy wanted a check, the optimized trace must
//!   retain one, placed before the first guest instruction executes — the
//!   hoisted head check strengthens every interior placement it replaced;
//! * [`TraceSig::Untracked`] (the uninstrumented baseline) must carry no
//!   signature ops at all and only zero adjustments.
//!
//! Rejection is not an error condition for the engine — it simply stays on
//! tier-1, preserving the paper's single-fault detection guarantee over
//! raw performance.

use cfed_dbt::{TraceOp, TracePlan, TraceSig, TraceVerifier};

/// The cfed-core implementation of [`TraceVerifier`]: symbolic replay of
/// the signature algebra over a [`TracePlan`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PlacementVerifier;

impl PlacementVerifier {
    fn verify_untracked(plan: &TracePlan) -> Result<(), String> {
        for op in &plan.ops {
            match op {
                TraceOp::SigAdd { .. } | TraceOp::Check => {
                    return Err(format!("untracked trace carries signature op {op:?}"));
                }
                TraceOp::SideExit { adjust, .. }
                | TraceOp::Exit { adjust, .. }
                | TraceOp::Loop { adjust }
                    if *adjust != 0 =>
                {
                    return Err(format!("untracked trace has nonzero adjustment {op:?}"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn verify_additive(plan: &TracePlan) -> Result<(), String> {
        // `v` = PC' assuming the trace was entered on a correct edge. The
        // invariant to re-establish on every outgoing edge is
        // `PC' == sig(target)`.
        let mut v: i64 = plan.entry_sig as i64;
        let mut checked = false;
        let mut guest_seen = false;
        for op in &plan.ops {
            match *op {
                TraceOp::SigAdd { delta } => {
                    v = v.checked_add(delta).ok_or("signature arithmetic overflow")?;
                }
                TraceOp::Check => {
                    if v != 0 {
                        return Err(format!(
                            "CHECK_SIG where correct-path PC' == {v:#x} (must be 0)"
                        ));
                    }
                    checked = true;
                }
                TraceOp::Guest { .. } => {
                    if plan.any_check_wanted && !checked {
                        return Err("policy wants a check, but guest code runs first".into());
                    }
                    guest_seen = true;
                }
                TraceOp::SideExit { target, adjust, .. } => {
                    let out = v.checked_add(adjust).ok_or("signature arithmetic overflow")?;
                    if out != target as i64 {
                        return Err(format!("side exit to {target:#x} leaves PC' == {out:#x}"));
                    }
                }
                TraceOp::Exit { target, adjust } => {
                    let out = v.checked_add(adjust).ok_or("signature arithmetic overflow")?;
                    if out != target as i64 {
                        return Err(format!("exit to {target:#x} leaves PC' == {out:#x}"));
                    }
                }
                TraceOp::Loop { adjust } => {
                    let out = v.checked_add(adjust).ok_or("signature arithmetic overflow")?;
                    if out != plan.entry_sig as i64 {
                        return Err(format!(
                            "loop edge leaves PC' == {out:#x}, entry needs {:#x}",
                            plan.entry_sig
                        ));
                    }
                }
            }
        }
        if plan.any_check_wanted && !checked {
            return Err("policy wants a check, but the trace has none".into());
        }
        if !guest_seen {
            return Err("trace contains no guest instructions".into());
        }
        Ok(())
    }
}

impl TraceVerifier for PlacementVerifier {
    fn verify(&self, plan: &TracePlan) -> Result<(), String> {
        if !matches!(plan.ops.last(), Some(TraceOp::Exit { .. }) | Some(TraceOp::Loop { .. })) {
            return Err("trace does not end in an exit or loop edge".into());
        }
        let terminators = plan
            .ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Exit { .. } | TraceOp::Loop { .. }))
            .count();
        if terminators != 1 {
            return Err(format!("trace has {terminators} unconditional terminators"));
        }
        match plan.sig {
            TraceSig::Untracked => Self::verify_untracked(plan),
            TraceSig::PcPrimeAdditive => Self::verify_additive(plan),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: u64 = 0x1_0000;
    const S1: u64 = 0x1_0040;
    const OUT: u64 = 0x2_0000;

    fn nop(addr: u64) -> TraceOp {
        TraceOp::Guest { guest_addr: addr, inst: cfed_isa::Inst::Nop }
    }

    fn good_plan() -> TracePlan {
        // Optimized two-block loop: head adjust + hoisted check, a side
        // exit to OUT, interior pair cancelled, loop re-adds sig(S0).
        TracePlan {
            entry_sig: S0,
            sig: TraceSig::PcPrimeAdditive,
            any_check_wanted: true,
            ops: vec![
                TraceOp::SigAdd { delta: -(S0 as i64) },
                TraceOp::Check,
                nop(S0),
                TraceOp::SideExit {
                    branch: cfed_dbt::SideBranch::Cc(cfed_isa::Cond::E),
                    target: OUT,
                    adjust: OUT as i64,
                },
                nop(S1),
                TraceOp::Loop { adjust: S0 as i64 },
            ],
        }
    }

    #[test]
    fn accepts_legal_hoisted_plan() {
        PlacementVerifier.verify(&good_plan()).expect("legal plan verifies");
    }

    #[test]
    fn rejects_tampered_exit_adjustment() {
        let mut plan = good_plan();
        plan.ops[3] = TraceOp::SideExit {
            branch: cfed_dbt::SideBranch::Cc(cfed_isa::Cond::E),
            target: OUT,
            adjust: OUT as i64 + 8,
        };
        let err = PlacementVerifier.verify(&plan).unwrap_err();
        assert!(err.contains("side exit"), "{err}");
    }

    #[test]
    fn rejects_dropped_check_when_policy_wants_one() {
        let mut plan = good_plan();
        plan.ops.remove(1);
        let err = PlacementVerifier.verify(&plan).unwrap_err();
        assert!(err.contains("wants a check"), "{err}");
    }

    #[test]
    fn rejects_check_at_nonzero_signature_point() {
        let mut plan = good_plan();
        // Move the check before the head adjustment: PC' there is sig(S0).
        plan.ops.swap(0, 1);
        let err = PlacementVerifier.verify(&plan).unwrap_err();
        assert!(err.contains("CHECK_SIG"), "{err}");
    }

    #[test]
    fn rejects_loop_that_breaks_entry_invariant() {
        let mut plan = good_plan();
        let last = plan.ops.len() - 1;
        plan.ops[last] = TraceOp::Loop { adjust: S0 as i64 - 8 };
        let err = PlacementVerifier.verify(&plan).unwrap_err();
        assert!(err.contains("loop edge"), "{err}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut plan = good_plan();
        plan.ops.pop();
        let err = PlacementVerifier.verify(&plan).unwrap_err();
        assert!(err.contains("does not end"), "{err}");
    }

    #[test]
    fn untracked_must_be_signature_free() {
        let plan = TracePlan {
            entry_sig: S0,
            sig: TraceSig::Untracked,
            any_check_wanted: false,
            ops: vec![nop(S0), TraceOp::Loop { adjust: 0 }],
        };
        PlacementVerifier.verify(&plan).expect("clean untracked plan verifies");
        let bad = TracePlan {
            ops: vec![nop(S0), TraceOp::SigAdd { delta: 1 }, TraceOp::Loop { adjust: 0 }],
            ..plan
        };
        assert!(PlacementVerifier.verify(&bad).is_err());
        let bad_adj = TracePlan {
            entry_sig: S0,
            sig: TraceSig::Untracked,
            any_check_wanted: false,
            ops: vec![nop(S0), TraceOp::Loop { adjust: 8 }],
        };
        assert!(PlacementVerifier.verify(&bad_adj).is_err());
    }
}
