//! # cfed-core — comprehensive control-flow error detection
//!
//! The primary contribution of *"Software-Based Transparent and
//! Comprehensive Control-Flow Error Detection"* (Borin, Wang, Wu, Araujo —
//! CGO 2006), reproduced on the VISA/`cfed-sim`/`cfed-dbt` substrate:
//!
//! * the branch-error classification of §2 ([`Category`], [`classify`]);
//! * static CFG recovery ([`cfg::Cfg`]) for the error-model analyzer and
//!   the CFG-dependent prior techniques;
//! * the signature-monitoring techniques of §3 as DBT instrumentation
//!   ([`techniques`]): ECF (prior work), and the paper's **EdgCF** and
//!   **RCF**;
//! * the formal framework of §4 as executable semantics with exhaustive
//!   single-error enumeration ([`formal`]), covering CFCSS and ECCA
//!   abstractly as well;
//! * the signature-checking policies of §6 (re-exported [`CheckPolicy`]:
//!   ALLBB / RET-BE / RET / END) and the Jcc-vs-CMOVcc update styles of
//!   Figure 14 ([`UpdateStyle`]);
//! * a run harness ([`run_dbt`], [`run_native`]) producing the cycle
//!   counts the slowdown figures are computed from.
//!
//! ## Example: detect an injected control-flow error
//!
//! ```
//! use cfed_core::{run_dbt, RunConfig, TechniqueKind};
//! use cfed_lang::compile;
//!
//! let image = compile("fn main() { let i = 0; while (i < 9) { i = i + 1; } out(i); }")?;
//! let outcome = run_dbt(&image, &RunConfig::technique(TechniqueKind::Rcf));
//! assert_eq!(outcome.output, vec![9]); // instrumentation is transparent
//! # Ok::<(), cfed_lang::CompileError>(())
//! ```

pub mod category;
pub mod cfg;
pub mod classify;
pub mod formal;
pub mod placement;
pub mod profile;
pub mod run;
pub mod techniques;

pub use category::Category;
pub use cfed_dbt::{CheckPolicy, UpdateStyle};
pub use classify::{
    classify_addr_fault, classify_flag_fault, BlockLayout, BranchFault, CacheLayout, CachePart,
};
pub use placement::PlacementVerifier;
pub use profile::{profile_dbt, profile_dbt_telemetry};
pub use run::{
    geomean, run_dbt, run_dbt_native, run_dbt_native_enabled, run_dbt_telemetry, run_dbt_tiered,
    run_dbt_tiered_enabled, run_dbt_with, run_dbt_with_telemetry, run_native, slowdown,
    trace_tier_config, RunConfig, RunOutcome, DEFAULT_MAX_INSTS,
};
pub use techniques::{
    CfcssInstrumenter, EccaInstrumenter, EcfInstrumenter, EdgCfInstrumenter, RcfInstrumenter,
    TechniqueKind,
};
