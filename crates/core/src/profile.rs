//! The `cfed-profile` collection harness: one profiled DBT run, folded
//! into a mergeable per-static-block [`Profile`].
//!
//! The fused execution engine tallies raw `(cache address, hits, cycles)`
//! samples ([`cfed_sim::ExecProfiler`]); this module maps each sample onto
//! the translated-block layout ([`CacheLayout::attribute`]) to produce
//! per-guest-block payload / head / tail cycle attribution, with every
//! unattributed cycle — dispatcher charges, pre-translation interpretation,
//! translations discarded by evictions or SMC flushes — accounted in the
//! profile's `other` bucket. The fold is exhaustive by construction:
//! `profile.totals().total()` equals the run's total cycle count exactly,
//! which is what lets `cfed-campaign profile` reconstruct the Figure 12
//! slowdowns from profiles alone.
//!
//! Profiled runs are deterministic (the profiler observes, never
//! influences), so the profile of a `(workload, configuration)` pair is a
//! pure function of that pair — the basis for the store's idempotent
//! per-cell profile records.

use crate::classify::{CacheLayout, CachePart};
use crate::run::{RunConfig, RunOutcome};
use cfed_asm::Image;
use cfed_dbt::{Dbt, NullInstrumenter};
use cfed_sim::Machine;
use cfed_telemetry::{BlockProfile, Profile, Telemetry};

/// Runs `image` under the DBT as [`crate::run_dbt`] would, with the
/// execution profiler attached, and returns the outcome together with the
/// attributed profile. The outcome (exit, output, cycles, instructions) is
/// identical to the unprofiled run's.
pub fn profile_dbt(image: &Image, cfg: &RunConfig) -> (RunOutcome, Profile) {
    profile_dbt_telemetry(image, cfg, &Telemetry::off())
}

/// As [`profile_dbt`], with a telemetry handle attached to the translator.
pub fn profile_dbt_telemetry(
    image: &Image,
    cfg: &RunConfig,
    telemetry: &Telemetry,
) -> (RunOutcome, Profile) {
    let instr: Box<dyn cfed_dbt::Instrumenter> = match cfg.technique {
        Some(kind) => kind.instrumenter_for(image, cfg.policy),
        None => Box::new(NullInstrumenter),
    };
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    m.enable_profiler();
    let mut dbt = Dbt::new(instr, cfg.style, &mut m);
    dbt.set_telemetry(telemetry.clone());
    let exit = dbt.run(&mut m, cfg.max_insts);

    let layout = CacheLayout::snapshot(&dbt, m.code_range());
    let profiler = m.take_profiler().expect("profiler attached above");
    let mut profile = Profile::new();
    let mut attributed = 0u64;
    for (addr, hits, cycles) in profiler.samples() {
        let Some((guest_start, part)) = layout.attribute(addr) else { continue };
        let mut sample = BlockProfile { hits, ..BlockProfile::default() };
        match part {
            CachePart::Head => sample.head_cycles = cycles,
            CachePart::Payload => sample.payload_cycles = cycles,
            CachePart::Tail => sample.tail_cycles = cycles,
        }
        profile.record_block(guest_start, sample);
        attributed += cycles;
    }
    let total = m.cpu.stats().cycles;
    profile.record_other(total - attributed);

    let outcome = RunOutcome {
        exit,
        output: m.cpu.take_output(),
        cycles: total,
        insts: m.cpu.stats().insts,
        dbt: dbt.stats(),
    };
    (outcome, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_dbt;
    use crate::techniques::TechniqueKind;
    use cfed_lang::compile;

    fn image() -> Image {
        compile(
            r#"
            fn main() {
                let i = 0;
                let acc = 1;
                while (i < 40) {
                    if (i % 3 == 0) { acc = acc * 2 + 1; } else { acc = acc + i; }
                    i = i + 1;
                }
                out(acc);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn profiled_outcome_matches_plain_run_and_accounts_every_cycle() {
        let img = image();
        for cfg in [RunConfig::baseline(), RunConfig::technique(TechniqueKind::EdgCf)] {
            let plain = run_dbt(&img, &cfg);
            let (out, profile) = profile_dbt(&img, &cfg);
            assert_eq!(out, plain, "profiling must not change the run");
            assert_eq!(
                profile.totals().total(),
                plain.cycles,
                "every cycle attributed or counted as other"
            );
            assert!(profile.num_blocks() > 0);
        }
    }

    #[test]
    fn instrumented_profile_shows_instrumentation_overhead() {
        let img = image();
        let (_, base) = profile_dbt(&img, &RunConfig::baseline());
        let (_, edg) = profile_dbt(&img, &RunConfig::technique(TechniqueKind::EdgCf));
        let (bt, et) = (base.totals(), edg.totals());
        assert!(et.head > bt.head, "EdgCF emits head checks the baseline lacks: {et:?} vs {bt:?}");
        assert!(et.total() > bt.total(), "instrumentation costs cycles");
        // Payload work is the same program; totals differ only via glue
        // scheduling, so payload stays in the same ballpark.
        let ratio = et.payload as f64 / bt.payload as f64;
        assert!((0.5..2.0).contains(&ratio), "payload ratio {ratio}");
    }

    #[test]
    fn profile_is_deterministic() {
        let img = image();
        let cfg = RunConfig::technique(TechniqueKind::Rcf);
        let (_, a) = profile_dbt(&img, &cfg);
        let (_, b) = profile_dbt(&img, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn reconstructed_slowdown_matches_measured_cycles() {
        // The fig12 reconstruction invariant: profile totals are exact, so
        // slowdown(technique)/slowdown(baseline) computed from profiles
        // equals the cycle-count ratio exactly (well within the 2% gate).
        let img = image();
        let base = run_dbt(&img, &RunConfig::baseline());
        let (_, bp) = profile_dbt(&img, &RunConfig::baseline());
        for kind in [TechniqueKind::Rcf, TechniqueKind::EdgCf, TechniqueKind::Ecf] {
            let cfg = RunConfig::technique(kind);
            let measured = run_dbt(&img, &cfg).cycles as f64 / base.cycles as f64;
            let (_, tp) = profile_dbt(&img, &cfg);
            let reconstructed = tp.totals().total() as f64 / bp.totals().total() as f64;
            let err = (reconstructed / measured - 1.0).abs();
            assert!(err < 0.02, "{kind:?}: reconstructed {reconstructed} vs {measured}");
        }
    }
}
