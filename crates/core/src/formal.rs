//! Executable version of the paper's formal framework (§4).
//!
//! Section 4 formalizes signature monitoring: blocks are split into head
//! (`Bh`) and tail (`Bt`) halves so that "jump to the middle of a block" is
//! representable as a transfer to a tail node; every technique is a pair of
//! functions `GEN_SIG` (instrumented at node exits / entries) and
//! `CHECK_SIG`; a technique detects every single control-flow error without
//! false positives iff it meets the *sufficient* and *necessary* conditions
//! of §4.4.
//!
//! This module makes those definitions executable: a [`SignatureScheme`]
//! gives a technique's abstract semantics, and
//! [`find_undetected_single_errors`] exhaustively enumerates bounded single
//! -error executions over a CFG, returning every error that escapes
//! checking. The paper's claims become unit tests:
//!
//! * EdgCF has **no** undetected single errors (Claim 1: it satisfies the
//!   sufficient condition) and no false positives (necessary condition);
//! * ECF's misses are exactly jumps to the middle of the *same* block
//!   (category C);
//! * CFCSS misses mistaken branches (A), same-block middles (C), and
//!   aliased targets (its common-predecessor signature restriction);
//! * ECCA misses A and C.

use crate::category::Category;
use std::collections::BTreeSet;
use std::fmt;

/// A block index in a [`FormalCfg`].
pub type BlockId = usize;

/// Head/tail half of a split block (§4.1, Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Part {
    /// The entry half (`Bh`): no original instructions, may hold
    /// instrumentation.
    Head,
    /// The tail half (`Bt`): all the original instructions.
    Tail,
}

/// A node of the split-block graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Node {
    /// The logical block.
    pub block: BlockId,
    /// Which half.
    pub part: Part,
}

impl Node {
    /// Head node of a block.
    pub fn head(block: BlockId) -> Node {
        Node { block, part: Part::Head }
    }

    /// Tail node of a block.
    pub fn tail(block: BlockId) -> Node {
        Node { block, part: Part::Tail }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.part {
            Part::Head => write!(f, "B{}h", self.block),
            Part::Tail => write!(f, "B{}t", self.block),
        }
    }
}

/// A control-flow graph for the formal model: block 0 is the entry; every
/// listed successor edge is a legal logical branch target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormalCfg {
    succs: Vec<Vec<BlockId>>,
}

impl FormalCfg {
    /// Builds a CFG from successor lists (`succs[b]` are the blocks `b` may
    /// branch to; empty means `b` exits the program).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a block out of range.
    pub fn new(succs: Vec<Vec<BlockId>>) -> FormalCfg {
        let n = succs.len();
        for (b, ss) in succs.iter().enumerate() {
            for &s in ss {
                assert!(s < n, "block {b} has out-of-range successor {s}");
            }
        }
        FormalCfg { succs }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Legal logical successors of `b`.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b]
    }

    /// The abstract signature value of a node: unique per head; tails get
    /// the head value plus one (distinct from every head because head values
    /// are spaced).
    pub fn addr(&self, n: Node) -> u64 {
        let base = (n.block as u64 + 1) * 0x100;
        match n.part {
            Part::Head => base,
            Part::Tail => base + 1,
        }
    }
}

/// Abstract semantics of one signature-monitoring technique.
pub trait SignatureScheme {
    /// The signature state (e.g. `PC'`, or the pair `(PC', RTS)`).
    type Sig: Clone + PartialEq + fmt::Debug;

    /// Technique name for reports.
    fn name(&self) -> &'static str;

    /// State on the edge into the entry node.
    fn initial(&self, cfg: &FormalCfg) -> Self::Sig;

    /// `GEN_SIG` instrumented at the *entry* of `at` (prologue code owned by
    /// the target block — runs even when control arrives erroneously).
    fn on_entry(&self, cfg: &FormalCfg, s: &Self::Sig, at: Node) -> Self::Sig {
        let _ = (cfg, at);
        s.clone()
    }

    /// `GEN_SIG` instrumented at the *exit* of `cur`, computed for the
    /// logical target (the update code is driven by the program's correct
    /// data; the single fault strikes the branch itself — §2's error model).
    fn on_exit(&self, cfg: &FormalCfg, s: &Self::Sig, cur: Node, logical: Node) -> Self::Sig;

    /// `CHECK_SIG` at the entry of `at` (evaluated after [`Self::on_entry`]);
    /// `None` when the technique places no check at this node.
    fn check(&self, cfg: &FormalCfg, s: &Self::Sig, at: Node) -> Option<bool>;
}

/// One undetected single control-flow error found by enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndetectedError {
    /// The node whose exit suffered the error.
    pub at: Node,
    /// The logical (correct) target.
    pub logical: Node,
    /// The physical (erroneous) target.
    pub physical: Node,
    /// Paper §2 category of the error.
    pub category: Category,
}

/// Classifies a formal-model error by the paper's taxonomy. `at` is always a
/// tail node (errors happen at branch instructions, which live in tails).
pub fn categorize(cfg: &FormalCfg, at: Node, logical: Node, physical: Node) -> Category {
    debug_assert_eq!(at.part, Part::Tail);
    if physical.block == at.block {
        return match physical.part {
            Part::Head => Category::B,
            Part::Tail => Category::C,
        };
    }
    if physical.part == Part::Head && cfg.successors(at.block).contains(&physical.block) {
        // Branch took the wrong — but legal — direction: a mistaken branch.
        let _ = logical;
        return Category::A;
    }
    match physical.part {
        Part::Head => Category::D,
        Part::Tail => Category::E,
    }
}

const MAX_PREFIX: usize = 6;
const MAX_SUFFIX: usize = 6;

/// Exhaustively enumerates bounded single-error executions and returns the
/// errors no check detects.
///
/// An error is *undetected* when some error-free continuation of bounded
/// length from the physical target passes every check it encounters (with at
/// least one check encountered — Assumption 2 guarantees a check is
/// eventually reached).
pub fn find_undetected_single_errors<S: SignatureScheme>(
    cfg: &FormalCfg,
    scheme: &S,
) -> Vec<UndetectedError> {
    let mut found = BTreeSet::new();
    let mut out = Vec::new();
    // Enumerate error-free prefixes ending at a tail exit.
    let mut stack: Vec<(BlockId, S::Sig, usize)> = Vec::new();
    let s0 = scheme.initial(cfg);
    stack.push((0, s0, 0));
    while let Some((block, sig_in, depth)) = stack.pop() {
        // Execute head then tail of `block` error-free.
        let head = Node::head(block);
        let tail = Node::tail(block);
        let s_head = scheme.on_entry(cfg, &sig_in, head);
        let s_after_head = scheme.on_exit(cfg, &s_head, head, tail);
        let s_tail = scheme.on_entry(cfg, &s_after_head, tail);
        // At the tail exit: try every (logical, physical) single error.
        for &logical_block in cfg.successors(block) {
            let logical = Node::head(logical_block);
            let s_exit = scheme.on_exit(cfg, &s_tail, tail, logical);
            for phys_block in 0..cfg.len() {
                for part in [Part::Head, Part::Tail] {
                    let physical = Node { block: phys_block, part };
                    if physical == logical {
                        continue;
                    }
                    let key = (tail, logical, physical);
                    if found.contains(&key) {
                        continue;
                    }
                    if escapes_detection(cfg, scheme, &s_exit, physical, MAX_SUFFIX, false) {
                        found.insert(key);
                        out.push(UndetectedError {
                            at: tail,
                            logical,
                            physical,
                            category: categorize(cfg, tail, logical, physical),
                        });
                    }
                }
            }
            // Extend the error-free prefix.
            if depth + 1 < MAX_PREFIX {
                stack.push((logical_block, s_exit.clone(), depth + 1));
            }
        }
    }
    out.sort_by_key(|e| (e.at, e.logical, e.physical));
    out
}

/// Returns `true` when some bounded error-free continuation from `node`
/// passes every check it meets and meets at least one (`seen` carries
/// whether a passing check already happened earlier on this continuation).
fn escapes_detection<S: SignatureScheme>(
    cfg: &FormalCfg,
    scheme: &S,
    sig: &S::Sig,
    node: Node,
    budget: usize,
    mut seen: bool,
) -> bool {
    // Run `node`'s entry instrumentation and check.
    let s = scheme.on_entry(cfg, sig, node);
    match scheme.check(cfg, &s, node) {
        Some(false) => return false, // every continuation through here is detected
        Some(true) => seen = true,
        None => {}
    }
    if budget == 0 {
        // Horizon reached: escaped only if some check already passed
        // (Assumption 2: a check is finally reached; wrongness persists for
        // every scheme modeled here, so the horizon is safe to truncate).
        return seen;
    }
    let nexts: Vec<Node> = match node.part {
        Part::Head => vec![Node::tail(node.block)],
        Part::Tail => {
            let ss = cfg.successors(node.block);
            if ss.is_empty() {
                return seen; // program exit
            }
            ss.iter().map(|&b| Node::head(b)).collect()
        }
    };
    nexts.into_iter().any(|next| {
        let s_exit = scheme.on_exit(cfg, &s, node, next);
        escapes_detection(cfg, scheme, &s_exit, next, budget - 1, seen)
    })
}

/// Verifies the necessary condition (§4.4): error-free executions never fail
/// a check. Returns the first offending node, if any.
pub fn find_false_positive<S: SignatureScheme>(cfg: &FormalCfg, scheme: &S) -> Option<Node> {
    let mut stack = vec![(0usize, scheme.initial(cfg), 0usize)];
    while let Some((block, sig_in, depth)) = stack.pop() {
        let mut s = sig_in;
        for part in [Part::Head, Part::Tail] {
            let node = Node { block, part };
            s = scheme.on_entry(cfg, &s, node);
            if scheme.check(cfg, &s, node) == Some(false) {
                return Some(node);
            }
            let next = match part {
                Part::Head => Some(Node::tail(block)),
                Part::Tail => None,
            };
            if let Some(n) = next {
                s = scheme.on_exit(cfg, &s, node, n);
            }
        }
        if depth < MAX_PREFIX {
            let tail = Node::tail(block);
            for &succ in cfg.successors(block) {
                let s_exit = scheme.on_exit(cfg, &s, tail, Node::head(succ));
                stack.push((succ, s_exit, depth + 1));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Scheme implementations
// ---------------------------------------------------------------------

/// EdgCF (§4.4, formula 4): `GEN_SIG(x, y, z) = x − y + z`,
/// `CHECK_SIG(x, y): x == y`; heads are represented by their unique block
/// address, tails by 0, checks at tail entries.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgCfScheme;

impl EdgCfScheme {
    fn value(cfg: &FormalCfg, n: Node) -> u64 {
        match n.part {
            Part::Head => cfg.addr(Node::head(n.block)),
            Part::Tail => 0,
        }
    }
}

impl SignatureScheme for EdgCfScheme {
    type Sig = u64;

    fn name(&self) -> &'static str {
        "EdgCF"
    }

    fn initial(&self, cfg: &FormalCfg) -> u64 {
        Self::value(cfg, Node::head(0))
    }

    fn on_exit(&self, cfg: &FormalCfg, s: &u64, cur: Node, logical: Node) -> u64 {
        s.wrapping_sub(Self::value(cfg, cur)).wrapping_add(Self::value(cfg, logical))
    }

    fn check(&self, cfg: &FormalCfg, s: &u64, at: Node) -> Option<bool> {
        (at.part == Part::Tail).then(|| *s == Self::value(cfg, at))
    }
}

/// ECF (Reis et al., as formalized in §4.2): signature pair `(PC', RTS)`;
/// the head folds `RTS` into `PC'`; the tail *assigns* `RTS` the delta to
/// the logical successor; checks compare `PC'` at tail entries.
#[derive(Debug, Clone, Copy, Default)]
pub struct EcfScheme;

impl SignatureScheme for EcfScheme {
    type Sig = (u64, u64); // (PC', RTS)

    fn name(&self) -> &'static str {
        "ECF"
    }

    fn initial(&self, cfg: &FormalCfg) -> (u64, u64) {
        (cfg.addr(Node::head(0)), 0)
    }

    fn on_exit(&self, cfg: &FormalCfg, s: &(u64, u64), cur: Node, logical: Node) -> (u64, u64) {
        let (pc, rts) = *s;
        match cur.part {
            // Head exit: PC' += RTS.
            Part::Head => (pc.wrapping_add(rts), rts),
            // Tail exit: RTS = sig(logical) − sig(cur block).
            Part::Tail => {
                let delta = cfg
                    .addr(Node::head(logical.block))
                    .wrapping_sub(cfg.addr(Node::head(cur.block)));
                (pc, delta)
            }
        }
    }

    fn check(&self, cfg: &FormalCfg, s: &(u64, u64), at: Node) -> Option<bool> {
        (at.part == Part::Tail).then(|| s.0 == cfg.addr(Node::head(at.block)))
    }
}

/// CFCSS (Oh et al.): a static signature per block, updated at block *entry*
/// with a xor difference from the predecessor's signature. Blocks sharing a
/// successor are forced to share a signature (the technique's
/// common-predecessor restriction), which is where the aliasing misses come
/// from.
#[derive(Debug, Clone)]
pub struct CfcssScheme {
    sigs: Vec<u64>,
}

impl CfcssScheme {
    /// Assigns signatures for `cfg`, aliasing common predecessors as the
    /// technique requires.
    pub fn new(cfg: &FormalCfg) -> CfcssScheme {
        // Union-find: predecessors of the same block share one signature.
        let n = cfg.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for b in 0..n {
            for &s in cfg.successors(b) {
                preds[s].push(b);
            }
        }
        for ps in &preds {
            for w in ps.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let sigs = (0..n).map(|b| (find(&mut parent, b) as u64 + 1) * 0x10).collect();
        CfcssScheme { sigs }
    }

    /// The signature assigned to a block.
    pub fn sig(&self, b: BlockId) -> u64 {
        self.sigs[b]
    }

    fn d(&self, cfg: &FormalCfg, b: BlockId) -> u64 {
        // d(B) = s(B) xor s(pred); any predecessor works because they alias.
        let pred = (0..cfg.len()).find(|&p| cfg.successors(p).contains(&b));
        match pred {
            Some(p) => self.sigs[b] ^ self.sigs[p],
            None => 0, // entry
        }
    }
}

impl SignatureScheme for CfcssScheme {
    type Sig = u64;

    fn name(&self) -> &'static str {
        "CFCSS"
    }

    fn initial(&self, cfg: &FormalCfg) -> u64 {
        // Pre-compensate the entry block's own xor so the program start
        // passes its first check (the entry may also be a loop target).
        self.sigs[0] ^ self.d(cfg, 0)
    }

    fn on_entry(&self, cfg: &FormalCfg, s: &u64, at: Node) -> u64 {
        match at.part {
            // PC' ^= d(B) at block entry; skipped entirely when control
            // lands in the middle (the tail).
            Part::Head => s ^ self.d(cfg, at.block),
            Part::Tail => *s,
        }
    }

    fn on_exit(&self, _cfg: &FormalCfg, s: &u64, _cur: Node, _logical: Node) -> u64 {
        *s
    }

    fn check(&self, _cfg: &FormalCfg, s: &u64, at: Node) -> Option<bool> {
        (at.part == Part::Head).then(|| *s == self.sigs[at.block])
    }
}

/// ECCA (Alkhalifa et al.): each block gets a prime id; the end of a block
/// sets the signature to the product of its legal successors' primes; the
/// entry assertion divides by the block's own prime (a mismatch divides by
/// zero in the real encoding). Both legal successors always pass — category
/// A is undetectable by construction — and tails carry no instrumentation.
#[derive(Debug, Clone)]
pub struct EccaScheme {
    primes: Vec<u64>,
}

impl EccaScheme {
    /// Assigns primes to blocks.
    pub fn new(cfg: &FormalCfg) -> EccaScheme {
        const PRIMES: [u64; 24] = [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83,
            89,
        ];
        assert!(cfg.len() <= PRIMES.len(), "formal CFG too large for ECCA prime table");
        EccaScheme { primes: PRIMES[..cfg.len()].to_vec() }
    }
}

impl SignatureScheme for EccaScheme {
    type Sig = u64; // product of the primes of currently-legal targets

    fn name(&self) -> &'static str {
        "ECCA"
    }

    fn initial(&self, _cfg: &FormalCfg) -> u64 {
        self.primes[0]
    }

    fn on_exit(&self, cfg: &FormalCfg, s: &u64, cur: Node, _logical: Node) -> u64 {
        match cur.part {
            Part::Head => *s,
            Part::Tail => {
                cfg.successors(cur.block).iter().map(|&b| self.primes[b]).product::<u64>().max(1)
            }
        }
    }

    fn check(&self, _cfg: &FormalCfg, s: &u64, at: Node) -> Option<bool> {
        (at.part == Part::Head).then(|| s.is_multiple_of(self.primes[at.block]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond with a loop: 0 -> {1, 2}; 1 -> 3; 2 -> 3; 3 -> {0, 4}; 4 exits.
    fn diamond_loop() -> FormalCfg {
        FormalCfg::new(vec![vec![1, 2], vec![3], vec![3], vec![0, 4], vec![]])
    }

    /// A simple chain 0 -> 1 -> 2.
    fn chain() -> FormalCfg {
        FormalCfg::new(vec![vec![1], vec![2], vec![]])
    }

    #[test]
    fn edgcf_detects_all_single_errors() {
        for cfg in [diamond_loop(), chain()] {
            let misses = find_undetected_single_errors(&cfg, &EdgCfScheme);
            assert!(misses.is_empty(), "EdgCF missed: {misses:?}");
        }
    }

    #[test]
    fn edgcf_has_no_false_positives() {
        for cfg in [diamond_loop(), chain()] {
            assert_eq!(find_false_positive(&cfg, &EdgCfScheme), None);
        }
    }

    #[test]
    fn ecf_misses_exactly_category_c() {
        let cfg = diamond_loop();
        let misses = find_undetected_single_errors(&cfg, &EcfScheme);
        assert!(!misses.is_empty(), "ECF must miss something");
        for m in &misses {
            assert_eq!(m.category, Category::C, "unexpected ECF miss: {m:?}");
            assert_eq!(m.physical, Node::tail(m.at.block));
        }
        assert_eq!(find_false_positive(&cfg, &EcfScheme), None);
    }

    #[test]
    fn cfcss_misses_a_and_c_and_aliases() {
        let cfg = diamond_loop();
        let misses = find_undetected_single_errors(&cfg, &CfcssScheme::new(&cfg));
        let cats: BTreeSet<Category> = misses.iter().map(|m| m.category).collect();
        assert!(cats.contains(&Category::A), "CFCSS cannot detect mistaken branches: {cats:?}");
        assert!(cats.contains(&Category::C), "CFCSS cannot detect same-block middles");
        // Blocks 1 and 2 share a successor, hence a signature: jumps between
        // them alias (category D or E misses).
        assert!(
            cats.contains(&Category::D) || cats.contains(&Category::E),
            "aliased signatures must leak D/E errors: {cats:?}"
        );
        assert_eq!(find_false_positive(&cfg, &CfcssScheme::new(&cfg)), None);
    }

    #[test]
    fn ecca_misses_a_and_c() {
        let cfg = diamond_loop();
        let misses = find_undetected_single_errors(&cfg, &EccaScheme::new(&cfg));
        let cats: BTreeSet<Category> = misses.iter().map(|m| m.category).collect();
        assert!(cats.contains(&Category::A), "{cats:?}");
        assert!(cats.contains(&Category::C), "{cats:?}");
        assert_eq!(find_false_positive(&cfg, &EccaScheme::new(&cfg)), None);
    }

    #[test]
    fn coverage_strictly_improves_toward_edgcf() {
        // |misses(EdgCF)| < |misses(ECF)| < |misses(CFCSS)| on the shared CFG.
        let cfg = diamond_loop();
        let edg = find_undetected_single_errors(&cfg, &EdgCfScheme).len();
        let ecf = find_undetected_single_errors(&cfg, &EcfScheme).len();
        let cfcss = find_undetected_single_errors(&cfg, &CfcssScheme::new(&cfg)).len();
        assert!(edg < ecf, "EdgCF ({edg}) must beat ECF ({ecf})");
        assert!(ecf < cfcss, "ECF ({ecf}) must beat CFCSS ({cfcss})");
    }

    #[test]
    fn categorize_follows_the_taxonomy() {
        let cfg = diamond_loop();
        let at = Node::tail(0);
        assert_eq!(categorize(&cfg, at, Node::head(1), Node::head(0)), Category::B);
        assert_eq!(categorize(&cfg, at, Node::head(1), Node::tail(0)), Category::C);
        assert_eq!(categorize(&cfg, at, Node::head(1), Node::head(2)), Category::A);
        assert_eq!(categorize(&cfg, at, Node::head(1), Node::head(3)), Category::D);
        assert_eq!(categorize(&cfg, at, Node::head(1), Node::tail(3)), Category::E);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn bad_edge_rejected() {
        let _ = FormalCfg::new(vec![vec![7]]);
    }
}
