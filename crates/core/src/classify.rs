//! Classification of faulty control transfers into branch-error categories.
//!
//! Classification is purely geometric (paper §2): where does the faulty
//! target land relative to the branch's own basic block and the code region?
//! It is shared by the error-model analyzer (which classifies hypothetical
//! single-bit faults against the static CFG) and the fault-injection
//! campaign (which classifies injected faults against the DBT's translated
//! block layout).

use crate::category::Category;
use crate::cfg::Cfg;
use cfed_dbt::Dbt;
use std::collections::BTreeMap;
use std::ops::Range;

/// Answers "which block contains this address" for a particular notion of
/// code layout.
pub trait BlockLayout {
    /// The extent of the basic block containing `addr`, if any.
    fn block_of(&self, addr: u64) -> Option<Range<u64>>;
    /// Whether `addr` lies in executable memory (code region).
    fn is_code(&self, addr: u64) -> bool;
}

impl BlockLayout for Cfg {
    fn block_of(&self, addr: u64) -> Option<Range<u64>> {
        self.block_containing(addr).map(|id| self.blocks()[id].range())
    }

    fn is_code(&self, addr: u64) -> bool {
        self.code_range().contains(&addr)
    }
}

/// A point-in-time snapshot of a DBT's translated-block layout, used to
/// classify faults injected into code-cache branches.
///
/// The cache region counts as code (it is mapped executable, §5), so a
/// faulty target inside the cache but outside any block (e.g. the shared
/// error stub or an orphaned translation) classifies as E rather than F.
#[derive(Debug, Clone)]
pub struct CacheLayout {
    by_start: BTreeMap<u64, CacheBlock>,
    code: Vec<Range<u64>>,
}

#[derive(Debug, Clone)]
struct CacheBlock {
    cache_end: u64,
    /// Guest address of the block's first instruction (its signature).
    guest_start: u64,
    /// Extent of the 1:1-copied guest body; `None` for jump-inlined traces,
    /// whose bodies are discontiguous.
    body: Option<Range<u64>>,
}

/// Which part of a translated block a cache address falls on — the
/// profiler's attribution buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePart {
    /// The instrumentation head emitted before the body (signature update
    /// plus check under the checking policies).
    Head,
    /// The 1:1 copy of the guest body — the original program's work.
    Payload,
    /// The terminator glue after the body: conditional selector updates,
    /// the translated terminator, end checks and exit stubs.
    Tail,
}

impl CacheLayout {
    /// Snapshots the translated blocks of `dbt`; `guest_code` is the guest
    /// image's executable region.
    pub fn snapshot(dbt: &Dbt, guest_code: Range<u64>) -> CacheLayout {
        let by_start = dbt
            .blocks()
            .map(|b| {
                // `body_len == 0` is ambiguous: a jump-inlined trace (body
                // layout unknown) or a terminator-only block (empty body at
                // `body_start`, known exactly). A trace always covers more
                // than one guest instruction, so `guest_len` separates them.
                let body = (b.body_len > 0 || b.guest_len <= cfed_isa::INST_SIZE_U64)
                    .then(|| b.body_start..b.body_start + b.body_len);
                (
                    b.cache_start,
                    CacheBlock { cache_end: b.cache_end, guest_start: b.guest_start, body },
                )
            })
            .collect();
        CacheLayout { by_start, code: vec![guest_code, dbt.cache_region()] }
    }

    /// Whether `addr` falls on a translated block's *instrumentation* — the
    /// head check sequence or the terminator glue — rather than on a
    /// 1:1-copied guest instruction. Conservatively `false` when the body
    /// layout is unknown (jump-inlined traces) or `addr` is outside every
    /// block.
    pub fn is_instrumentation(&self, addr: u64) -> bool {
        let Some((_, b)) = self.by_start.range(..=addr).next_back() else { return false };
        // Empty body ranges (terminator-only blocks) exist only for the
        // profiler's attribution; this predicate keeps treating them as
        // unknown, exactly like the trace case.
        addr < b.cache_end
            && b.body.as_ref().is_some_and(|body| !body.is_empty() && !body.contains(&addr))
    }

    /// Attributes a cache address to `(guest block start, part)` — the
    /// profiler's per-sample classification. `None` outside every
    /// translated block (shared stubs, dead translations). Jump-inlined
    /// traces, whose body layout is unknown, attribute wholly to
    /// [`CachePart::Payload`], mirroring how [`CacheLayout::is_instrumentation`]
    /// is conservatively `false` for them.
    pub fn attribute(&self, addr: u64) -> Option<(u64, CachePart)> {
        let (_, b) = self.by_start.range(..=addr).next_back()?;
        if addr >= b.cache_end {
            return None;
        }
        let part = match &b.body {
            Some(body) if addr < body.start => CachePart::Head,
            Some(body) if addr >= body.end => CachePart::Tail,
            _ => CachePart::Payload,
        };
        Some((b.guest_start, part))
    }
}

impl BlockLayout for CacheLayout {
    fn block_of(&self, addr: u64) -> Option<Range<u64>> {
        let (&start, b) = self.by_start.range(..=addr).next_back()?;
        (addr < b.cache_end).then_some(start..b.cache_end)
    }

    fn is_code(&self, addr: u64) -> bool {
        self.code.iter().any(|r| r.contains(&addr))
    }
}

/// A faulty control transfer to classify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchFault {
    /// Extent of the basic block containing the branch.
    pub branch_block: Range<u64>,
    /// The branch's fall-through address.
    pub fall_through: u64,
    /// The target the branch would reach without the fault.
    pub correct_target: u64,
    /// The target actually reached under the fault.
    pub faulty_target: u64,
}

/// Classifies an address-offset fault (paper §2, Figure 1).
///
/// # Examples
///
/// ```
/// use cfed_core::{classify_addr_fault, BranchFault, Category};
/// use cfed_core::classify::BlockLayout;
/// # struct OneBlock;
/// # impl BlockLayout for OneBlock {
/// #     fn block_of(&self, a: u64) -> Option<std::ops::Range<u64>> {
/// #         (64..128).contains(&a).then_some(64..128)
/// #     }
/// #     fn is_code(&self, a: u64) -> bool { (0..256).contains(&a) }
/// # }
/// let fault = BranchFault {
///     branch_block: 64..128,
///     fall_through: 128,
///     correct_target: 0,
///     faulty_target: 72, // middle of its own block
/// };
/// assert_eq!(classify_addr_fault(&fault, &OneBlock), Category::C);
/// ```
pub fn classify_addr_fault(fault: &BranchFault, layout: &impl BlockLayout) -> Category {
    if fault.faulty_target == fault.correct_target {
        return Category::NoError;
    }
    // Landing exactly on the fall-through behaves like a mistaken branch.
    if fault.faulty_target == fault.fall_through {
        return Category::A;
    }
    if !layout.is_code(fault.faulty_target) {
        return Category::F;
    }
    match layout.block_of(fault.faulty_target) {
        Some(b) if b == fault.branch_block => {
            if fault.faulty_target == b.start {
                Category::B
            } else {
                Category::C
            }
        }
        Some(b) => {
            if fault.faulty_target == b.start {
                Category::D
            } else {
                Category::E
            }
        }
        // Executable bytes outside any known block (cache stubs, padding):
        // the middle of "other" code.
        None => Category::E,
    }
}

/// Classifies a condition-flags fault: it either flips the branch direction
/// (category A) or does nothing.
pub fn classify_flag_fault(direction_changed: bool) -> Category {
    if direction_changed {
        Category::A
    } else {
        Category::NoError
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoBlocks;

    impl BlockLayout for TwoBlocks {
        fn block_of(&self, addr: u64) -> Option<Range<u64>> {
            if (0x100..0x140).contains(&addr) {
                Some(0x100..0x140)
            } else if (0x140..0x200).contains(&addr) {
                Some(0x140..0x200)
            } else {
                None
            }
        }
        fn is_code(&self, addr: u64) -> bool {
            (0x100..0x300).contains(&addr)
        }
    }

    fn fault(to: u64) -> BranchFault {
        BranchFault {
            branch_block: 0x100..0x140,
            fall_through: 0x140,
            correct_target: 0x180,
            faulty_target: to,
        }
    }

    #[test]
    fn each_category_reachable() {
        assert_eq!(classify_addr_fault(&fault(0x180), &TwoBlocks), Category::NoError);
        assert_eq!(classify_addr_fault(&fault(0x140), &TwoBlocks), Category::A); // fall-through
        assert_eq!(classify_addr_fault(&fault(0x100), &TwoBlocks), Category::B);
        assert_eq!(classify_addr_fault(&fault(0x120), &TwoBlocks), Category::C);
        assert_eq!(classify_addr_fault(&fault(0x120 + 3), &TwoBlocks), Category::C); // byte-granular
        assert_eq!(classify_addr_fault(&fault(0x1F0), &TwoBlocks), Category::E);
        assert_eq!(classify_addr_fault(&fault(0x250), &TwoBlocks), Category::E); // code, no block
        assert_eq!(classify_addr_fault(&fault(0x50), &TwoBlocks), Category::F);
        assert_eq!(classify_addr_fault(&fault(0x1000), &TwoBlocks), Category::F);
    }

    #[test]
    fn d_requires_exact_block_start() {
        let other_start = BranchFault { faulty_target: 0x140, correct_target: 0x180, ..fault(0) };
        // 0x140 is both the fall-through and another block's start; the
        // fall-through rule (category A) wins, as in the paper's taxonomy
        // where A is "mistaken branch".
        assert_eq!(classify_addr_fault(&other_start, &TwoBlocks), Category::A);
        // A non-fall-through other-block start is D.
        let f = BranchFault {
            branch_block: 0x140..0x200,
            fall_through: 0x200,
            correct_target: 0x148,
            faulty_target: 0x100,
        };
        assert_eq!(classify_addr_fault(&f, &TwoBlocks), Category::D);
    }

    #[test]
    fn flag_fault_classification() {
        assert_eq!(classify_flag_fault(true), Category::A);
        assert_eq!(classify_flag_fault(false), Category::NoError);
    }
}
