//! The signature-monitoring control-flow checking techniques (paper §3).
//!
//! All three DBT-implementable techniques use the guest basic-block start
//! address as the block signature (unique, and free to compute for indirect
//! branches — §5) and the flag-preserving `GEN_SIG(x, y, z) = x − y + z`
//! arithmetic of §4.4/§5.1, realized with the `lea` instruction family:
//!
//! * [`EcfInstrumenter`] — ECF (Reis et al., SWIFT): a `(PC', RTS)` pair
//!   with a run-time adjusting signature. Covers A, B, D, E; misses C
//!   because its updates are assignments (re-executing them is idempotent).
//! * [`EdgCfInstrumenter`] — the paper's Edge Control-Flow checking: `PC'`
//!   holds the next block's signature on edges and zero inside blocks;
//!   updates are *relative* (non-idempotent), which is exactly why category
//!   C becomes detectable. Inserted checking branches are unprotected.
//! * [`RcfInstrumenter`] — the paper's Region-based Control-Flow checking:
//!   EdgCF plus distinct per-block regions (entrance / body / selector) so
//!   every *inserted* branch executes under a globally unique signature
//!   value, protecting the instrumentation itself.
//!
//! CFCSS and ECCA need a whole-program CFG and therefore cannot be
//! instrumented by a purely translate-on-demand DBT (the paper leaves them
//! out for that reason, §5). Here they get a hybrid path — signatures
//! assigned statically from the recovered CFG ([`CfcssInstrumenter`],
//! [`EccaInstrumenter`]), instrumentation still applied by the DBT — so the
//! fault-injection experiments can measure their misses next to the other
//! techniques; their abstract semantics also live in [`crate::formal`].

mod cfcss;
mod ecca;
mod ecf;
mod edgcf;
mod rcf;

pub use cfcss::CfcssInstrumenter;
pub use ecca::EccaInstrumenter;
pub use ecf::EcfInstrumenter;
pub use edgcf::EdgCfInstrumenter;
pub use rcf::RcfInstrumenter;

use cfed_asm::Image;
use cfed_dbt::{CheckPolicy, Instrumenter};
use std::fmt;

/// Converts a signature-space value (guest address ± small region offset)
/// into an instruction immediate.
///
/// # Panics
///
/// Panics if the value does not fit in 32 bits (guest code lives far below
/// 2³¹ under the default layout).
pub(crate) fn simm(v: i64) -> i32 {
    i32::try_from(v).expect("signature arithmetic fits imm32")
}

/// Selects a control-flow checking technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechniqueKind {
    /// Control-flow checking by software signatures (Oh et al.) —
    /// CFG-dependent, applied via the hybrid static-CFG path.
    Cfcss,
    /// Enhanced control-flow checking using assertions (Alkhalifa et al.) —
    /// CFG-dependent, div-based checks.
    Ecca,
    /// Enhanced control-flow checking (Reis et al.).
    Ecf,
    /// Edge control-flow checking (this paper).
    EdgCf,
    /// Region-based control-flow checking (this paper).
    Rcf,
}

impl TechniqueKind {
    /// The three DBT-implementable techniques the paper evaluates, in its
    /// presentation order (the paper could not run CFCSS/ECCA in its
    /// translate-on-demand DBT, §5).
    pub const ALL: [TechniqueKind; 3] =
        [TechniqueKind::Rcf, TechniqueKind::EdgCf, TechniqueKind::Ecf];

    /// All five techniques, including the CFG-dependent prior work.
    pub const ALL_FIVE: [TechniqueKind; 5] = [
        TechniqueKind::Rcf,
        TechniqueKind::EdgCf,
        TechniqueKind::Ecf,
        TechniqueKind::Ecca,
        TechniqueKind::Cfcss,
    ];

    /// Whether the technique needs the whole-program CFG (and therefore an
    /// image) to build its instrumenter.
    pub fn needs_cfg(self) -> bool {
        matches!(self, TechniqueKind::Cfcss | TechniqueKind::Ecca)
    }

    /// Whether the technique's signature updates fit the tier-2 trace IR's
    /// additive shadow-PC model (see [`cfed_dbt::ir::TraceSig`]), making it
    /// eligible for profile-guided trace formation. Only EdgCF qualifies:
    /// ECF carries a second run-time-adjusting register, RCF's per-block
    /// region transitions pin code to block boundaries, and the
    /// CFG-dependent techniques use assigned (non-address) signatures.
    pub fn supports_trace_tier(self) -> bool {
        matches!(self, TechniqueKind::EdgCf)
    }

    /// Builds the instrumenter for this technique under a checking policy.
    ///
    /// # Panics
    ///
    /// Panics for the CFG-dependent techniques (CFCSS, ECCA); use
    /// [`TechniqueKind::instrumenter_for`] with the image instead.
    pub fn instrumenter(self, policy: CheckPolicy) -> Box<dyn Instrumenter> {
        match self {
            TechniqueKind::Ecf => Box::new(EcfInstrumenter::new(policy)),
            TechniqueKind::EdgCf => Box::new(EdgCfInstrumenter::new(policy)),
            TechniqueKind::Rcf => Box::new(RcfInstrumenter::new(policy)),
            other => panic!("{other} needs the program CFG; use instrumenter_for"),
        }
    }

    /// Builds the instrumenter, recovering the CFG from `image` when the
    /// technique requires it.
    pub fn instrumenter_for(self, image: &Image, policy: CheckPolicy) -> Box<dyn Instrumenter> {
        match self {
            TechniqueKind::Cfcss => Box::new(CfcssInstrumenter::from_image(image, policy)),
            TechniqueKind::Ecca => Box::new(EccaInstrumenter::from_image(image, policy)),
            other => other.instrumenter(policy),
        }
    }
}

impl fmt::Display for TechniqueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechniqueKind::Cfcss => f.write_str("CFCSS"),
            TechniqueKind::Ecca => f.write_str("ECCA"),
            TechniqueKind::Ecf => f.write_str("ECF"),
            TechniqueKind::EdgCf => f.write_str("EdgCF"),
            TechniqueKind::Rcf => f.write_str("RCF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_distinct_instrumenters() {
        for kind in TechniqueKind::ALL {
            let i = kind.instrumenter(CheckPolicy::AllBb);
            assert_eq!(i.name(), kind.to_string());
            assert!(i.has_updates());
        }
    }

    #[test]
    #[should_panic(expected = "fits imm32")]
    fn simm_rejects_wide_values() {
        let _ = simm(1 << 40);
    }
}
