//! The ECF technique — enhanced control-flow checking with a run-time
//! adjusting signature (Reis et al. [13]; paper §3, Figure 4).

use super::simm;
use cfed_dbt::{regs, BlockView, CacheAsm, CheckPolicy, Instrumenter};
use cfed_isa::{Cond, Inst, Reg};

/// ECF: the signature is the pair `(PC', RTS)`.
///
/// Invariants (with `sig(B)` = guest start address):
///
/// * on the edge from `A` into `B`: `PC' == sig(A)` and
///   `RTS == sig(B) − sig(A)`;
/// * after `B`'s head: `PC' == sig(B)`.
///
/// The head folds the run-time adjusting signature into `PC'`
/// (`PC' += RTS`, Figure 4 instruction 1 in the flag-free `x − y + z` form
/// of §4.4) and, per policy, compares `PC'` against the block signature.
/// Exits **assign** `RTS` the signed delta to the chosen successor
/// (Figure 4 instructions 4–7). Because the tail update is an assignment,
/// re-executing it after a jump back into the *same* block is absorbed —
/// which is precisely why ECF cannot detect category C (paper §3), while
/// the relative updates of EdgCF can.
#[derive(Debug, Clone, Copy)]
pub struct EcfInstrumenter {
    policy: CheckPolicy,
}

impl EcfInstrumenter {
    /// Creates the technique under a signature-checking policy.
    pub fn new(policy: CheckPolicy) -> EcfInstrumenter {
        EcfInstrumenter { policy }
    }

    /// The active checking policy.
    pub fn policy(&self) -> CheckPolicy {
        self.policy
    }
}

impl Instrumenter for EcfInstrumenter {
    fn name(&self) -> &'static str {
        "ECF"
    }

    fn emit_head(&self, a: &mut CacheAsm<'_>, sig: u64, check: bool, err_stub: u64) {
        // PC' += RTS  (Figure 4 instruction 1, `xor` replaced by `lea`).
        a.emit(Inst::Lea2 { dst: regs::PC_PRIME, base: regs::PC_PRIME, index: regs::RTS, disp: 0 });
        if check {
            // Figure 4 instructions 2–3: `PC' == L0`, flag-free.
            a.emit(Inst::Lea { dst: regs::CHK, base: regs::PC_PRIME, disp: simm(-(sig as i64)) });
            a.jrnz_abs(regs::CHK, err_stub);
        }
    }

    fn emit_update_direct(&self, a: &mut CacheAsm<'_>, cur: u64, next: u64) {
        // RTS = sig(next) − sig(cur): an assignment, not an accumulation.
        a.emit(Inst::MovRI { dst: regs::RTS, imm: simm(next as i64 - cur as i64) });
    }

    fn emit_update_indirect(&self, a: &mut CacheAsm<'_>, cur: u64, target: Reg) {
        // RTS = dynamic target − sig(cur).
        a.emit(Inst::Lea { dst: regs::RTS, base: target, disp: simm(-(cur as i64)) });
    }

    fn emit_update_cond_cmov(
        &self,
        a: &mut CacheAsm<'_>,
        cur: u64,
        taken: u64,
        fall: u64,
        cc: Cond,
    ) -> bool {
        // Figure 4 instructions 4–7: select the delta with cmov. One
        // instruction cheaper than EdgCF's cmov sequence — the "cheaper
        // instructions to update the signature" the paper credits ECF with.
        a.emit(Inst::MovRI { dst: regs::RTS, imm: simm(fall as i64 - cur as i64) });
        a.emit(Inst::MovRI { dst: regs::AUX, imm: simm(taken as i64 - cur as i64) });
        a.emit(Inst::CMov { cc, dst: regs::RTS, src: regs::AUX });
        true
    }

    fn emit_end_check(&self, a: &mut CacheAsm<'_>, cur: u64, err_stub: u64) {
        // Fold PC' to zero (it holds sig(cur) in the body) and test PC'
        // itself — an error landing on the test still sees a non-zero value.
        a.emit(Inst::Lea { dst: regs::PC_PRIME, base: regs::PC_PRIME, disp: simm(-(cur as i64)) });
        a.jrnz_abs(regs::PC_PRIME, err_stub);
    }

    fn wants_check(&self, block: &BlockView) -> bool {
        self.policy.wants_check(block)
    }

    fn initial_state(&self, entry_sig: u64) -> Vec<(Reg, u64)> {
        // Entry edge: PC' already holds the entry signature, no adjustment.
        vec![(regs::PC_PRIME, entry_sig), (regs::RTS, 0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_sim::{Memory, Perms};

    fn emit_with(f: impl FnOnce(&mut CacheAsm<'_>)) -> Vec<Inst> {
        let mut mem = Memory::new(1 << 16);
        mem.map(0..0x8000, Perms::RX);
        let mut a = CacheAsm::new(&mut mem, 0x1000);
        f(&mut a);
        let end = a.finish();
        ((0x1000..end).step_by(8))
            .map(|addr| {
                let b: [u8; 8] = mem.peek(addr, 8).try_into().unwrap();
                Inst::decode(&b).unwrap()
            })
            .collect()
    }

    #[test]
    fn tail_update_is_assignment() {
        let t = EcfInstrumenter::new(CheckPolicy::AllBb);
        let insts = emit_with(|a| t.emit_update_direct(a, 0x2000, 0x2800));
        assert_eq!(insts, vec![Inst::MovRI { dst: regs::RTS, imm: 0x800 }]);
        // Negative deltas (back edges) encode too.
        let insts = emit_with(|a| t.emit_update_direct(a, 0x2800, 0x2000));
        assert_eq!(insts, vec![Inst::MovRI { dst: regs::RTS, imm: -0x800 }]);
    }

    #[test]
    fn head_folds_rts_then_checks() {
        let t = EcfInstrumenter::new(CheckPolicy::AllBb);
        let insts = emit_with(|a| t.emit_head(a, 0x2000, true, 0x1000));
        assert_eq!(insts.len(), 3);
        assert!(matches!(insts[0], Inst::Lea2 { index, .. } if index == regs::RTS));
        assert!(matches!(insts[2], Inst::JRnz { src, .. } if src == regs::CHK));
        for i in &insts {
            assert!(!i.writes_flags());
        }
    }

    #[test]
    fn cmov_update_is_three_instructions() {
        let t = EcfInstrumenter::new(CheckPolicy::AllBb);
        let insts = emit_with(|a| {
            assert!(t.emit_update_cond_cmov(a, 0x2000, 0x3000, 0x2800, Cond::L));
        });
        assert_eq!(insts.len(), 3, "one cheaper than EdgCF's four");
        for i in &insts {
            assert!(!i.writes_flags());
        }
    }

    #[test]
    fn indirect_update_uses_target_register() {
        let t = EcfInstrumenter::new(CheckPolicy::AllBb);
        let insts = emit_with(|a| t.emit_update_indirect(a, 0x2000, regs::ITARGET));
        assert_eq!(insts, vec![Inst::Lea { dst: regs::RTS, base: regs::ITARGET, disp: -0x2000 }]);
    }
}
