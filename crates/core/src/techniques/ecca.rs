//! ECCA — enhanced control-flow checking using assertions (Alkhalifa, Nair,
//! Krishnamurthy & Abraham [1]), as a CFG-dependent DBT instrumenter.
//!
//! ECCA gives every block a prime identifier. The end of a block *assigns*
//! the signature register the product of the legal successors' primes; the
//! entry assertion divides by the block's own prime, arranged so that a
//! mismatch raises a **divide-by-zero exception** — the technique's
//! reporting channel ("the divide by zero exception handler is modified to
//! detect if the exception is a control-flow error", §3.1). The paper
//! dismisses ECCA's checks as prohibitively expensive precisely because of
//! the `div`s; this implementation reproduces that cost honestly.
//!
//! Known misses (all reproduced here and in [`crate::formal`]):
//! category A (both legal successors divide the product), category C
//! (re-executing the assignment is absorbed), plus aliasing from the
//! capped, reused prime set (the original assigns unbounded unique primes;
//! we cap at [`PRIME_SET`] so products fit an `imm32`, trading some
//! aliasing — documented, and immaterial next to A/C).

use super::simm;
use crate::cfg::Cfg;
use cfed_asm::Image;
use cfed_dbt::{regs, BlockView, CacheAsm, CheckPolicy, Instrumenter};
use cfed_isa::{AluOp, Cond, Inst, Reg};
use std::collections::{HashMap, HashSet};

/// Number of distinct primes assigned round-robin to blocks.
pub const PRIME_SET: usize = 256;

/// ECCA: prime-product signatures checked with division assertions.
///
/// Register use: the signature (`id`) lives in [`regs::RTS`] (free under
/// this technique), checks scratch through [`regs::CHK`] / [`regs::AUX`] /
/// [`regs::GRET`].
#[derive(Debug, Clone)]
pub struct EccaInstrumenter {
    policy: CheckPolicy,
    /// Block start → assigned prime.
    primes: HashMap<u64, i32>,
    /// Block start → product of successor primes (1 for exits/indirects).
    products: HashMap<u64, i32>,
    /// Interprocedural entries: reseed `id` to the block's own prime.
    reseed: HashSet<u64>,
    entry_prime: i32,
}

fn first_primes(n: usize) -> Vec<i32> {
    let mut primes = Vec::with_capacity(n);
    let mut cand = 2i32;
    while primes.len() < n {
        if primes.iter().all(|p| cand % p != 0) {
            primes.push(cand);
        }
        cand += 1;
    }
    primes
}

impl EccaInstrumenter {
    /// Assigns primes and successor products from the image's CFG.
    pub fn from_image(image: &Image, policy: CheckPolicy) -> EccaInstrumenter {
        let cfg = Cfg::recover(image);
        let table = first_primes(PRIME_SET);
        let mut primes = HashMap::new();
        for (i, blk) in cfg.blocks().iter().enumerate() {
            primes.insert(blk.start, table[i % PRIME_SET]);
        }

        let mut reseed = HashSet::new();
        reseed.insert(image.entry());
        for blk in cfg.blocks() {
            if let Some(term @ (Inst::Call { .. } | Inst::CallR { .. })) = blk.terminator {
                let term_addr = blk.end - cfed_isa::INST_SIZE_U64;
                if let Some(target) = term.direct_target(term_addr) {
                    reseed.insert(target);
                }
                reseed.insert(blk.end);
            }
        }

        // The DBT fuses straight through static leader splits (blocks with
        // no terminator), so a translated block's exit is the terminator of
        // its fall-through *chain*; products must cover the chain end's
        // successors.
        let chain_end = |mut b: usize| -> usize {
            let mut hops = 0;
            while cfg.blocks()[b].terminator.is_none() && hops < cfg.blocks().len() {
                match cfg.blocks()[b].successors.first() {
                    Some(&s) => b = s,
                    None => break,
                }
                hops += 1;
            }
            b
        };
        let mut products = HashMap::new();
        for (b, blk) in cfg.blocks().iter().enumerate() {
            let end = chain_end(b);
            let mut product = 1i64;
            for &s in &cfg.blocks()[end].successors {
                product *= primes[&cfg.blocks()[s].start] as i64;
            }
            // Two successors of ≤1619 each: always fits imm32.
            products.insert(blk.start, simm(product.max(1)));
        }

        let entry_prime = *primes.get(&image.entry()).unwrap_or(&2);
        EccaInstrumenter { policy, primes, products, reseed, entry_prime }
    }

    /// The prime assigned to a block (tests / diagnostics).
    pub fn prime_of(&self, guest_start: u64) -> Option<i32> {
        self.primes.get(&guest_start).copied()
    }
}

impl Instrumenter for EccaInstrumenter {
    fn name(&self) -> &'static str {
        "ECCA"
    }

    fn emit_head(&self, a: &mut CacheAsm<'_>, sig: u64, check: bool, err_stub: u64) {
        let _ = err_stub; // ECCA reports through the divide-by-zero trap.
        let (prime, reseed) = match self.primes.get(&sig) {
            Some(&p) => (p, self.reseed.contains(&sig)),
            None => (2, true),
        };
        if reseed {
            a.emit(Inst::MovRI { dst: regs::RTS, imm: prime });
            return;
        }
        if check {
            // r = id mod prime(B); divisor = (r == 0); CHK / divisor.
            // A mismatch makes the divisor zero and the final `div` trap —
            // the ECCA assertion, expensive by construction (two `div`s,
            // one `mul`, one `cmov`).
            a.emit(Inst::MovRR { dst: regs::CHK, src: regs::RTS });
            a.emit(Inst::MovRI { dst: regs::AUX, imm: prime });
            a.emit(Inst::Alu { op: AluOp::Div, dst: regs::CHK, src: regs::AUX });
            a.emit(Inst::Alu { op: AluOp::Mul, dst: regs::CHK, src: regs::AUX });
            a.emit(Inst::LeaSub { dst: regs::CHK, base: regs::RTS, index: regs::CHK, disp: 0 });
            a.emit(Inst::AluI { op: AluOp::Cmp, dst: regs::CHK, imm: 0 });
            a.emit(Inst::MovRI { dst: regs::AUX, imm: 0 });
            a.emit(Inst::MovRI { dst: regs::GRET, imm: 1 });
            a.emit(Inst::CMov { cc: Cond::E, dst: regs::AUX, src: regs::GRET });
            a.emit(Inst::Alu { op: AluOp::Div, dst: regs::GRET, src: regs::AUX });
        }
    }

    fn emit_update_direct(&self, a: &mut CacheAsm<'_>, cur: u64, _next: u64) {
        // id = product of cur's legal successors — an assignment independent
        // of which successor is taken: why category A is invisible to ECCA.
        let product = self.products.get(&cur).copied().unwrap_or(1);
        a.emit(Inst::MovRI { dst: regs::RTS, imm: product });
    }

    fn emit_update_indirect(&self, a: &mut CacheAsm<'_>, _cur: u64, _target: Reg) {
        // Indirect edges land on reseed blocks; neutral value in between.
        a.emit(Inst::MovRI { dst: regs::RTS, imm: 1 });
    }

    fn emit_update_cond_cmov(
        &self,
        a: &mut CacheAsm<'_>,
        cur: u64,
        _taken: u64,
        _fall: u64,
        _cc: Cond,
    ) -> bool {
        // The product covers both successors; no conditional select needed.
        let product = self.products.get(&cur).copied().unwrap_or(1);
        a.emit(Inst::MovRI { dst: regs::RTS, imm: product });
        true
    }

    fn emit_end_check(&self, a: &mut CacheAsm<'_>, cur: u64, err_stub: u64) {
        self.emit_head(a, cur, true, err_stub);
    }

    fn wants_check(&self, block: &BlockView) -> bool {
        self.policy.wants_check(block)
    }

    fn initial_state(&self, _entry_sig: u64) -> Vec<(Reg, u64)> {
        vec![(regs::RTS, self.entry_prime as u64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_dbt, run_dbt_with, run_native, RunConfig};
    use crate::TechniqueKind;
    use cfed_dbt::UpdateStyle;
    use cfed_lang::compile;

    fn image() -> Image {
        compile(
            r#"
            fn f(x) { if (x % 2 == 0) { return x / 2; } return 3 * x + 1; }
            fn main() {
                let i = 1;
                let acc = 0;
                while (i < 25) { acc = acc + f(i); i = i + 1; }
                out(acc);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn first_primes_correct() {
        assert_eq!(first_primes(8), vec![2, 3, 5, 7, 11, 13, 17, 19]);
        assert_eq!(first_primes(PRIME_SET).len(), PRIME_SET);
        assert!(first_primes(PRIME_SET).last().copied().unwrap() < 2000);
    }

    #[test]
    fn transparent_execution() {
        let img = image();
        let native = run_native(&img, u64::MAX);
        for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
            let instr = EccaInstrumenter::from_image(&img, CheckPolicy::AllBb);
            let got = run_dbt_with(&img, Box::new(instr), style, 100_000_000);
            assert_eq!(got.exit, native.exit, "{style}");
            assert_eq!(got.output, native.output, "{style}");
        }
    }

    #[test]
    fn div_checks_make_ecca_expensive() {
        // The paper dismisses ECCA's div-based checks as prohibitive: it
        // must cost far more than EdgCF.
        let img = image();
        let base = run_dbt(&img, &RunConfig::baseline()).cycles as f64;
        let instr = EccaInstrumenter::from_image(&img, CheckPolicy::AllBb);
        let ecca = run_dbt_with(&img, Box::new(instr), UpdateStyle::Jcc, 100_000_000).cycles as f64;
        let edg = run_dbt(&img, &RunConfig::technique(TechniqueKind::EdgCf)).cycles as f64;
        assert!(
            (ecca / base) > 1.5 * (edg / base) - 0.5,
            "ECCA ({:.3}) should dwarf EdgCF ({:.3})",
            ecca / base,
            edg / base
        );
        assert!(ecca > edg);
    }

    #[test]
    fn primes_assigned_to_every_static_block() {
        let img = image();
        let cfg = Cfg::recover(&img);
        let instr = EccaInstrumenter::from_image(&img, CheckPolicy::AllBb);
        for blk in cfg.blocks() {
            assert!(instr.prime_of(blk.start).is_some());
        }
    }
}
