//! The Edge Control-Flow checking technique (paper §3.1, Figures 5–8).

use super::simm;
use cfed_dbt::{regs, BlockView, CacheAsm, CheckPolicy, Instrumenter};
use cfed_isa::{Cond, Inst, Reg};

/// EdgCF: `PC'` carries the *next* block's signature across every edge and
/// is zero inside block bodies.
///
/// Invariants (with `sig(B)` = guest start address of block `B`):
///
/// * on the edge into `B`: `PC' == sig(B)`;
/// * inside `B`'s body: `PC' == 0`.
///
/// The head transforms `PC' -= sig(B)` and (per policy) checks `PC' == 0`
/// with the flag-free `jrnz` (the `jcxz` analog, §5.1); every exit adds the
/// successor's signature. Updates are **relative**: a control-flow error
/// leaves `PC'` permanently wrong (§6's "once the signature becomes wrong,
/// it will always be wrong"), so even checks far downstream still fire —
/// and re-executing an update (a category-C jump back into the same block)
/// corrupts `PC'` instead of being absorbed, which is exactly how EdgCF
/// covers the category ECF misses.
#[derive(Debug, Clone, Copy)]
pub struct EdgCfInstrumenter {
    policy: CheckPolicy,
}

impl EdgCfInstrumenter {
    /// Creates the technique under a signature-checking policy.
    pub fn new(policy: CheckPolicy) -> EdgCfInstrumenter {
        EdgCfInstrumenter { policy }
    }

    /// The active checking policy.
    pub fn policy(&self) -> CheckPolicy {
        self.policy
    }
}

impl Instrumenter for EdgCfInstrumenter {
    fn name(&self) -> &'static str {
        "EdgCF"
    }

    fn emit_head(&self, a: &mut CacheAsm<'_>, sig: u64, check: bool, err_stub: u64) {
        // PC' -= sig(B): zero on a correct edge (Figure 6, instruction 1;
        // `lea` instead of `xor` per §5.1).
        a.emit(Inst::Lea { dst: regs::PC_PRIME, base: regs::PC_PRIME, disp: simm(-(sig as i64)) });
        if check {
            // Figure 6, instructions 2–3, without clobbering EFLAGS.
            a.jrnz_abs(regs::PC_PRIME, err_stub);
        }
    }

    fn emit_update_direct(&self, a: &mut CacheAsm<'_>, _cur: u64, next: u64) {
        // PC' += sig(next) (Figure 6, instruction 5).
        a.emit(Inst::Lea { dst: regs::PC_PRIME, base: regs::PC_PRIME, disp: simm(next as i64) });
    }

    fn emit_update_indirect(&self, a: &mut CacheAsm<'_>, _cur: u64, target: Reg) {
        // PC' += dynamic target (Figure 7: signature = target address).
        a.emit(Inst::Lea2 { dst: regs::PC_PRIME, base: regs::PC_PRIME, index: target, disp: 0 });
    }

    fn emit_update_cond_cmov(
        &self,
        a: &mut CacheAsm<'_>,
        _cur: u64,
        taken: u64,
        fall: u64,
        cc: Cond,
    ) -> bool {
        // Figure 8, instructions 7–10: compute both candidate signatures and
        // select with cmov; nothing here touches the flags the original
        // branch will read.
        a.emit(Inst::MovRR { dst: regs::AUX, src: regs::PC_PRIME });
        a.emit(Inst::Lea { dst: regs::PC_PRIME, base: regs::PC_PRIME, disp: simm(fall as i64) });
        a.emit(Inst::Lea { dst: regs::AUX, base: regs::AUX, disp: simm(taken as i64) });
        a.emit(Inst::CMov { cc, dst: regs::PC_PRIME, src: regs::AUX });
        true
    }

    fn emit_end_check(&self, a: &mut CacheAsm<'_>, _cur: u64, err_stub: u64) {
        // Inside a body PC' is already zero; one flag-free test suffices.
        a.jrnz_abs(regs::PC_PRIME, err_stub);
    }

    fn wants_check(&self, block: &BlockView) -> bool {
        self.policy.wants_check(block)
    }

    fn initial_state(&self, entry_sig: u64) -> Vec<(Reg, u64)> {
        vec![(regs::PC_PRIME, entry_sig)]
    }

    fn trace_sig(&self) -> Option<cfed_dbt::ir::TraceSig> {
        // EdgCF is exactly the additive shadow-PC model: heads subtract,
        // edges add, checks test `PC' == 0`. The tier-2 walker can therefore
        // re-derive (and the placement verifier re-check) its update code.
        Some(cfed_dbt::ir::TraceSig::PcPrimeAdditive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_sim::{Memory, Perms};

    fn emit_with(f: impl FnOnce(&mut CacheAsm<'_>)) -> Vec<Inst> {
        let mut mem = Memory::new(1 << 16);
        mem.map(0..0x8000, Perms::RX);
        let mut a = CacheAsm::new(&mut mem, 0x1000);
        f(&mut a);
        let end = a.finish();
        ((0x1000..end).step_by(8))
            .map(|addr| {
                let b: [u8; 8] = mem.peek(addr, 8).try_into().unwrap();
                Inst::decode(&b).unwrap()
            })
            .collect()
    }

    #[test]
    fn head_without_check_is_single_lea() {
        let insts = emit_with(|a| {
            EdgCfInstrumenter::new(CheckPolicy::AllBb).emit_head(a, 0x2000, false, 0x1000)
        });
        assert_eq!(insts.len(), 1);
        assert_eq!(
            insts[0],
            Inst::Lea { dst: regs::PC_PRIME, base: regs::PC_PRIME, disp: -0x2000 }
        );
    }

    #[test]
    fn head_with_check_adds_flag_free_branch() {
        let insts = emit_with(|a| {
            EdgCfInstrumenter::new(CheckPolicy::AllBb).emit_head(a, 0x2000, true, 0x1000)
        });
        assert_eq!(insts.len(), 2);
        assert!(matches!(insts[1], Inst::JRnz { src, .. } if src == regs::PC_PRIME));
        assert!(!insts[0].writes_flags() && !insts[1].writes_flags());
    }

    #[test]
    fn cmov_update_preserves_flags() {
        let t = EdgCfInstrumenter::new(CheckPolicy::AllBb);
        let insts = emit_with(|a| {
            assert!(t.emit_update_cond_cmov(a, 0x2000, 0x3000, 0x2800, Cond::Le));
        });
        assert_eq!(insts.len(), 4);
        for i in &insts {
            assert!(!i.writes_flags(), "{i} must not clobber flags before the branch");
        }
        assert!(matches!(insts[3], Inst::CMov { cc: Cond::Le, .. }));
    }

    #[test]
    fn initial_state_sets_pc_prime() {
        let t = EdgCfInstrumenter::new(CheckPolicy::AllBb);
        assert_eq!(t.initial_state(0x1_0000), vec![(regs::PC_PRIME, 0x1_0000)]);
    }
}
