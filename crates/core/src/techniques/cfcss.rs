//! CFCSS — control-flow checking by software signatures (Oh, Shirvani &
//! McCluskey [12]), as a *CFG-dependent* DBT instrumenter.
//!
//! The paper could not implement CFCSS inside its translate-on-demand DBT
//! because CFCSS assigns signatures from the whole-program CFG (§5). Our
//! static CFG recovery makes a hybrid possible: signatures are assigned
//! statically from the recovered CFG, and the DBT splices the (head-only)
//! instrumentation in at translation time. This lets the fault-injection
//! campaigns measure CFCSS's misses — categories A and C, plus the
//! aliasing introduced by its common-predecessor signature restriction —
//! next to the other techniques, rather than only in the abstract model of
//! [`crate::formal`].

use super::simm;
use crate::cfg::Cfg;
use cfed_asm::Image;
use cfed_dbt::{regs, BlockView, CacheAsm, CheckPolicy, Instrumenter};
use cfed_isa::{Inst, Reg};
use std::collections::{HashMap, HashSet};

/// CFCSS: one static signature per block, updated at block *entry* by the
/// difference from the (aliased) predecessor signature.
///
/// Faithful properties:
///
/// * signatures are updated at block heads only — there is no
///   branch-direction-dependent update, so mistaken branches (category A)
///   are invisible by construction;
/// * blocks that share a successor must share a signature (the
///   common-predecessor restriction), so control transfers between aliased
///   blocks escape detection (the paper's D/E caveat);
/// * interprocedural edges (call targets and return sites) *reseed* the
///   signature by assignment, as the original technique does for function
///   boundaries — re-executing a reseed is absorbed, which is also why
///   category C escapes.
///
/// The update arithmetic is the flag-free additive form
/// (`PC' += s(B) − s(pred)`) instead of the original xor, for the same
/// §5.1 EFLAGS reason the paper replaced `xor` with `lea`; the aliasing
/// algebra is unchanged.
#[derive(Debug, Clone)]
pub struct CfcssInstrumenter {
    policy: CheckPolicy,
    /// Block start → assigned signature.
    sigs: HashMap<u64, i32>,
    /// Block start → head update delta (s(B) − s(pred class)).
    diffs: HashMap<u64, i32>,
    /// Blocks entered through interprocedural edges: reseed by assignment.
    reseed: HashSet<u64>,
    entry_sig: i32,
}

impl CfcssInstrumenter {
    /// Assigns CFCSS signatures from the image's recovered CFG.
    pub fn from_image(image: &Image, policy: CheckPolicy) -> CfcssInstrumenter {
        let cfg = Cfg::recover(image);
        let n = cfg.blocks().len();

        // Union-find: blocks sharing a successor share a signature class.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, blk) in cfg.blocks().iter().enumerate() {
            for &s in &blk.successors {
                preds[s].push(b);
            }
        }
        for ps in &preds {
            for w in ps.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        // The DBT's translate-on-demand blocks fuse straight through static
        // leader splits (blocks with no terminator), skipping the head
        // update of the split-off half. Give both halves one signature so
        // the skipped update is the identity — CFCSS's block notion then
        // matches the blocks that actually execute.
        for (b, blk) in cfg.blocks().iter().enumerate() {
            if blk.terminator.is_none() {
                if let Some(&succ) = blk.successors.first() {
                    let (x, y) = (find(&mut parent, b), find(&mut parent, succ));
                    if x != y {
                        parent[x] = y;
                    }
                }
            }
        }

        let mut sigs = HashMap::new();
        let mut class_sig = vec![0i32; n];
        for (b, slot) in class_sig.iter_mut().enumerate() {
            let class = find(&mut parent, b);
            *slot = (class as i32 + 1) << 4;
            sigs.insert(cfg.blocks()[b].start, *slot);
        }

        // Interprocedural reseed points: call targets and return sites.
        let mut reseed = HashSet::new();
        reseed.insert(image.entry());
        for blk in cfg.blocks() {
            if let Some(term @ (Inst::Call { .. } | Inst::CallR { .. })) = blk.terminator {
                let term_addr = blk.end - cfed_isa::INST_SIZE_U64;
                if let Some(target) = term.direct_target(term_addr) {
                    reseed.insert(target);
                }
                reseed.insert(blk.end); // the return site
            }
        }

        // Head deltas: s(B) − s(any pred) (all preds alias by construction).
        let mut diffs = HashMap::new();
        for (b, blk) in cfg.blocks().iter().enumerate() {
            let d = match preds[b].first() {
                Some(&p) => class_sig[b].wrapping_sub(class_sig[p]),
                None => 0,
            };
            diffs.insert(blk.start, d);
        }

        let entry_sig = *sigs.get(&image.entry()).unwrap_or(&0);
        CfcssInstrumenter { policy, sigs, diffs, reseed, entry_sig }
    }

    /// The signature assigned to a block (tests / diagnostics).
    pub fn sig_of(&self, guest_start: u64) -> Option<i32> {
        self.sigs.get(&guest_start).copied()
    }

    /// Whether two blocks alias (share a signature class).
    pub fn aliases(&self, a: u64, b: u64) -> bool {
        match (self.sigs.get(&a), self.sigs.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

impl Instrumenter for CfcssInstrumenter {
    fn name(&self) -> &'static str {
        "CFCSS"
    }

    fn emit_head(&self, a: &mut CacheAsm<'_>, sig: u64, check: bool, err_stub: u64) {
        let (s, d, reseed) = match self.sigs.get(&sig) {
            Some(&s) => (s, self.diffs.get(&sig).copied().unwrap_or(0), self.reseed.contains(&sig)),
            // Dynamically discovered block outside the static CFG (does not
            // occur for MiniC-generated code): reseed with a derived value.
            None => ((sig as i32) | 1, 0, true),
        };
        if reseed {
            // Assignment reseed at interprocedural entries — the
            // CFCSS-characteristic absorbing update.
            a.emit(Inst::MovRI { dst: regs::PC_PRIME, imm: s });
        } else {
            // PC' += d(B): transforms the (aliased) predecessor signature
            // into this block's signature.
            a.emit(Inst::Lea { dst: regs::PC_PRIME, base: regs::PC_PRIME, disp: simm(d as i64) });
        }
        if check {
            a.emit(Inst::Lea { dst: regs::CHK, base: regs::PC_PRIME, disp: simm(-(s as i64)) });
            a.jrnz_abs(regs::CHK, err_stub);
        }
    }

    fn emit_update_direct(&self, _a: &mut CacheAsm<'_>, _cur: u64, _next: u64) {
        // CFCSS has no exit updates: successors transform the predecessor
        // signature themselves. This is exactly why the successors of a
        // branch "cannot distinguish if the last branch was mistaken" (§3).
    }

    fn emit_update_indirect(&self, _a: &mut CacheAsm<'_>, _cur: u64, _target: Reg) {
        // Indirect edges land on reseed blocks.
    }

    fn has_updates(&self) -> bool {
        // No conditional update skeleton needed at all.
        false
    }

    fn emit_end_check(&self, a: &mut CacheAsm<'_>, cur: u64, err_stub: u64) {
        let s = self.sigs.get(&cur).copied().unwrap_or((cur as i32) | 1);
        a.emit(Inst::Lea { dst: regs::PC_PRIME, base: regs::PC_PRIME, disp: simm(-(s as i64)) });
        a.jrnz_abs(regs::PC_PRIME, err_stub);
    }

    fn wants_check(&self, block: &BlockView) -> bool {
        self.policy.wants_check(block)
    }

    fn initial_state(&self, _entry_sig: u64) -> Vec<(Reg, u64)> {
        vec![(regs::PC_PRIME, self.entry_sig as u64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_dbt_with, run_native};
    use cfed_dbt::UpdateStyle;
    use cfed_lang::compile;

    fn image() -> Image {
        compile(
            r#"
            fn leaf(x) { if (x > 2) { return x * 2; } return x + 1; }
            fn main() {
                let i = 0;
                let acc = 0;
                while (i < 30) { acc = acc + leaf(i); i = i + 1; }
                out(acc);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn transparent_execution() {
        let img = image();
        let native = run_native(&img, u64::MAX);
        let instr = CfcssInstrumenter::from_image(&img, CheckPolicy::AllBb);
        let got = run_dbt_with(&img, Box::new(instr), UpdateStyle::Jcc, 50_000_000);
        assert_eq!(got.exit, native.exit);
        assert_eq!(got.output, native.output);
    }

    #[test]
    fn common_successor_blocks_alias() {
        // Both arms of leaf()'s if/else flow to the common return-join; the
        // diamond arms must share a signature.
        let img = image();
        let cfg = Cfg::recover(&img);
        let instr = CfcssInstrumenter::from_image(&img, CheckPolicy::AllBb);
        let mut found_alias = false;
        for blk in cfg.blocks() {
            if blk.successors.len() == 1 {
                let succ = &cfg.blocks()[blk.successors[0]];
                for other in cfg.blocks() {
                    if other.start != blk.start
                        && other.successors.contains(&cfg.block_at(succ.start).unwrap())
                        && instr.aliases(blk.start, other.start)
                    {
                        found_alias = true;
                    }
                }
            }
        }
        assert!(found_alias, "common-predecessor aliasing must occur");
    }

    #[test]
    fn cheaper_than_edgcf() {
        // Head-only instrumentation: CFCSS must expand code less than EdgCF.
        let img = image();
        let cfcss = CfcssInstrumenter::from_image(&img, CheckPolicy::AllBb);
        let a = run_dbt_with(&img, Box::new(cfcss), UpdateStyle::Jcc, 50_000_000);
        let b = crate::run::run_dbt(
            &img,
            &crate::run::RunConfig::technique(crate::TechniqueKind::EdgCf),
        );
        let ea = a.dbt.cache_insts as f64 / a.dbt.guest_insts as f64;
        let eb = b.dbt.cache_insts as f64 / b.dbt.guest_insts as f64;
        assert!(ea < eb, "CFCSS expansion {ea:.2} should undercut EdgCF {eb:.2}");
    }
}
