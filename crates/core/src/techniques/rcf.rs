//! The Region-based Control-Flow checking technique (paper §3.2, Figure 9).

use super::simm;
use cfed_dbt::{regs, BlockView, CacheAsm, CheckPolicy, Instrumenter};
use cfed_isa::{Cond, Inst, Reg};

/// Region signature offsets within one block. Guest block addresses are
/// 8-byte aligned, so `addr + offset` with `offset < 8` is globally unique
/// across all blocks and all regions.
const BODY: i64 = 1; // R1 in Figure 9: the original block instructions
const SELECTOR: i64 = 2; // the inserted conditional-update branch

/// RCF: EdgCF extended with per-block *regions* so that every branch the
/// instrumentation itself inserts runs under a globally unique signature.
///
/// Regions of block `B` (with `sig(B)` = guest start address):
///
/// * **entrance** `E(B) = sig(B)` — covers the signature check and its
///   `report_error` branch (region `R1E` in Figure 9);
/// * **body** `R(B) = sig(B) + 1` — the original block instructions
///   (region `R1`);
/// * **selector** `S(B) = sig(B) + 2` — the inserted branch of a
///   branch-style conditional update (the `R2E`/`R3E` transition code).
///
/// Every transition is a relative `lea`, so — as with EdgCF — a wrong `PC'`
/// stays wrong. The difference from EdgCF is that EdgCF's in-block value is
/// the *same* for every block (zero): a fault on an inserted branch that
/// lands in the middle of some block finds a consistent signature and
/// escapes. Under RCF all regions carry distinct values, so any single
/// control-flow error that crosses an instruction with a region transition
/// (every inserted branch is bracketed by them) is detected at the next
/// check.
#[derive(Debug, Clone, Copy)]
pub struct RcfInstrumenter {
    policy: CheckPolicy,
}

impl RcfInstrumenter {
    /// Creates the technique under a signature-checking policy.
    pub fn new(policy: CheckPolicy) -> RcfInstrumenter {
        RcfInstrumenter { policy }
    }

    /// The active checking policy.
    pub fn policy(&self) -> CheckPolicy {
        self.policy
    }
}

impl Instrumenter for RcfInstrumenter {
    fn name(&self) -> &'static str {
        "RCF"
    }

    fn emit_head(&self, a: &mut CacheAsm<'_>, sig: u64, check: bool, err_stub: u64) {
        if check {
            // Check inside region E(B): the check branch itself executes
            // under the unique value sig(B), unlike EdgCF's shared zero.
            a.emit(Inst::Lea { dst: regs::CHK, base: regs::PC_PRIME, disp: simm(-(sig as i64)) });
            a.jrnz_abs(regs::CHK, err_stub);
        }
        // Transition E(B) -> R(B).
        a.emit(Inst::Lea { dst: regs::PC_PRIME, base: regs::PC_PRIME, disp: simm(BODY) });
    }

    fn emit_update_direct(&self, a: &mut CacheAsm<'_>, cur: u64, next: u64) {
        // R(cur) -> E(next).
        a.emit(Inst::Lea {
            dst: regs::PC_PRIME,
            base: regs::PC_PRIME,
            disp: simm(next as i64 - (cur as i64 + BODY)),
        });
    }

    fn emit_update_indirect(&self, a: &mut CacheAsm<'_>, cur: u64, target: Reg) {
        // R(cur) -> E(dynamic target), one flag-free instruction.
        a.emit(Inst::Lea2 {
            dst: regs::PC_PRIME,
            base: regs::PC_PRIME,
            index: target,
            disp: simm(-(cur as i64 + BODY)),
        });
    }

    fn emit_pre_selector(&self, a: &mut CacheAsm<'_>, _cur: u64) {
        // R(cur) -> S(cur): the inserted selector branch gets its own
        // region, so its own branch-errors cross a region boundary.
        a.emit(Inst::Lea {
            dst: regs::PC_PRIME,
            base: regs::PC_PRIME,
            disp: simm(SELECTOR - BODY),
        });
    }

    fn emit_selector_update(&self, a: &mut CacheAsm<'_>, cur: u64, next: u64) {
        // S(cur) -> E(next).
        a.emit(Inst::Lea {
            dst: regs::PC_PRIME,
            base: regs::PC_PRIME,
            disp: simm(next as i64 - (cur as i64 + SELECTOR)),
        });
    }

    fn emit_update_cond_cmov(
        &self,
        a: &mut CacheAsm<'_>,
        cur: u64,
        taken: u64,
        fall: u64,
        cc: Cond,
    ) -> bool {
        // Figure 9 is the cmov form: no branch is inserted, so no selector
        // region is needed; both candidate transitions leave R(cur).
        a.emit(Inst::MovRR { dst: regs::AUX, src: regs::PC_PRIME });
        a.emit(Inst::Lea {
            dst: regs::PC_PRIME,
            base: regs::PC_PRIME,
            disp: simm(fall as i64 - (cur as i64 + BODY)),
        });
        a.emit(Inst::Lea {
            dst: regs::AUX,
            base: regs::AUX,
            disp: simm(taken as i64 - (cur as i64 + BODY)),
        });
        a.emit(Inst::CMov { cc, dst: regs::PC_PRIME, src: regs::AUX });
        true
    }

    fn emit_end_check(&self, a: &mut CacheAsm<'_>, cur: u64, err_stub: u64) {
        // Fold PC' (== R(cur) in the body) to zero and test it directly.
        a.emit(Inst::Lea {
            dst: regs::PC_PRIME,
            base: regs::PC_PRIME,
            disp: simm(-(cur as i64 + BODY)),
        });
        a.jrnz_abs(regs::PC_PRIME, err_stub);
    }

    fn wants_check(&self, block: &BlockView) -> bool {
        self.policy.wants_check(block)
    }

    fn initial_state(&self, entry_sig: u64) -> Vec<(Reg, u64)> {
        vec![(regs::PC_PRIME, entry_sig)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_sim::{Memory, Perms};

    fn emit_with(f: impl FnOnce(&mut CacheAsm<'_>)) -> Vec<Inst> {
        let mut mem = Memory::new(1 << 16);
        mem.map(0..0x8000, Perms::RX);
        let mut a = CacheAsm::new(&mut mem, 0x1000);
        f(&mut a);
        let end = a.finish();
        ((0x1000..end).step_by(8))
            .map(|addr| {
                let b: [u8; 8] = mem.peek(addr, 8).try_into().unwrap();
                Inst::decode(&b).unwrap()
            })
            .collect()
    }

    #[test]
    fn regions_compose_to_zero_over_a_correct_path() {
        // E(B) -> R(B) -> E(next): the net delta must equal next - cur.
        let t = RcfInstrumenter::new(CheckPolicy::AllBb);
        let (cur, next) = (0x2000i64, 0x2800i64);
        let insts = emit_with(|a| {
            t.emit_head(a, cur as u64, false, 0x1000);
            t.emit_update_direct(a, cur as u64, next as u64);
        });
        let total: i64 = insts
            .iter()
            .map(|i| match i {
                Inst::Lea { disp, .. } => *disp as i64,
                other => panic!("unexpected {other}"),
            })
            .sum();
        assert_eq!(total, next - cur);
    }

    #[test]
    fn selector_path_composes_too() {
        let t = RcfInstrumenter::new(CheckPolicy::AllBb);
        let (cur, next) = (0x2000i64, 0x1800i64);
        let insts = emit_with(|a| {
            t.emit_head(a, cur as u64, false, 0x1000);
            t.emit_pre_selector(a, cur as u64);
            t.emit_selector_update(a, cur as u64, next as u64);
        });
        let total: i64 = insts
            .iter()
            .map(|i| match i {
                Inst::Lea { disp, .. } => *disp as i64,
                other => panic!("unexpected {other}"),
            })
            .sum();
        assert_eq!(total, next - cur);
    }

    #[test]
    fn head_is_costlier_than_edgcf() {
        // RCF inserts more instructions per block than EdgCF (paper §6).
        let rcf = RcfInstrumenter::new(CheckPolicy::AllBb);
        let edg = super::super::EdgCfInstrumenter::new(CheckPolicy::AllBb);
        let r = emit_with(|a| rcf.emit_head(a, 0x2000, true, 0x1000));
        let e = emit_with(|a| edg.emit_head(a, 0x2000, true, 0x1000));
        assert!(r.len() > e.len());
    }

    #[test]
    fn check_branch_runs_under_unique_signature() {
        // The check (jrnz) must execute before the region transition, i.e.
        // while PC' still holds the globally unique entrance signature.
        let t = RcfInstrumenter::new(CheckPolicy::AllBb);
        let insts = emit_with(|a| t.emit_head(a, 0x2000, true, 0x1000));
        assert!(matches!(insts[0], Inst::Lea { dst, .. } if dst == regs::CHK));
        assert!(matches!(insts[1], Inst::JRnz { .. }));
        assert!(matches!(insts[2], Inst::Lea { dst, disp: 1, .. } if dst == regs::PC_PRIME));
    }

    #[test]
    fn all_updates_flag_free() {
        let t = RcfInstrumenter::new(CheckPolicy::AllBb);
        let insts = emit_with(|a| {
            t.emit_head(a, 0x2000, true, 0x1000);
            t.emit_update_direct(a, 0x2000, 0x2800);
            t.emit_update_indirect(a, 0x2000, regs::ITARGET);
            t.emit_pre_selector(a, 0x2000);
            t.emit_selector_update(a, 0x2000, 0x2800);
            assert!(t.emit_update_cond_cmov(a, 0x2000, 0x3000, 0x2800, Cond::G));
        });
        for i in &insts {
            assert!(!i.writes_flags(), "{i}");
        }
    }
}
