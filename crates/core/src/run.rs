//! Convenience harness: run an image natively or under the DBT with a
//! chosen technique, policy and update style, collecting the numbers the
//! experiments need.

use crate::techniques::TechniqueKind;
use cfed_asm::Image;
use cfed_dbt::{CheckPolicy, Dbt, DbtExit, DbtStats, NullInstrumenter, UpdateStyle};
use cfed_sim::{ExitReason, Machine};
use cfed_telemetry::Telemetry;

/// Default instruction budget for experiment runs.
pub const DEFAULT_MAX_INSTS: u64 = 200_000_000;

/// Configuration for one DBT run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// The technique, or `None` for the uninstrumented DBT baseline.
    pub technique: Option<TechniqueKind>,
    /// Signature checking policy.
    pub policy: CheckPolicy,
    /// Conditional-update style.
    pub style: UpdateStyle,
    /// Instruction budget.
    pub max_insts: u64,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            technique: None,
            policy: CheckPolicy::AllBb,
            style: UpdateStyle::Jcc,
            max_insts: DEFAULT_MAX_INSTS,
        }
    }
}

impl RunConfig {
    /// Baseline (uninstrumented DBT) configuration.
    pub fn baseline() -> RunConfig {
        RunConfig::default()
    }

    /// A technique under ALLBB/Jcc defaults.
    pub fn technique(kind: TechniqueKind) -> RunConfig {
        RunConfig { technique: Some(kind), ..RunConfig::default() }
    }
}

/// What a run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// How execution ended.
    pub exit: DbtExit,
    /// The observable output stream.
    pub output: Vec<u64>,
    /// Cycles consumed (cost-model time).
    pub cycles: u64,
    /// Instructions retired.
    pub insts: u64,
    /// Translator statistics.
    pub dbt: DbtStats,
}

/// Runs `image` under the DBT with the given configuration.
///
/// # Examples
///
/// ```
/// use cfed_core::{run_dbt, RunConfig, TechniqueKind};
/// use cfed_dbt::DbtExit;
/// use cfed_lang::compile;
///
/// let image = compile("fn main() { out(6 * 7); }")?;
/// let out = run_dbt(&image, &RunConfig::technique(TechniqueKind::EdgCf));
/// assert_eq!(out.exit, DbtExit::Halted { code: 0 });
/// assert_eq!(out.output, vec![42]);
/// # Ok::<(), cfed_lang::CompileError>(())
/// ```
pub fn run_dbt(image: &Image, cfg: &RunConfig) -> RunOutcome {
    run_dbt_telemetry(image, cfg, &Telemetry::off())
}

/// As [`run_dbt`], with a telemetry handle attached to the translator: the
/// run end emits a `dbt_stats` event (block/chain/eviction counters and
/// the translation-time histogram) to the handle's sink. With the disabled
/// handle this is exactly [`run_dbt`].
pub fn run_dbt_telemetry(image: &Image, cfg: &RunConfig, telemetry: &Telemetry) -> RunOutcome {
    let instr: Box<dyn cfed_dbt::Instrumenter> = match cfg.technique {
        Some(kind) => kind.instrumenter_for(image, cfg.policy),
        None => Box::new(NullInstrumenter),
    };
    run_dbt_with_telemetry(image, instr, cfg.style, cfg.max_insts, telemetry)
}

/// Runs `image` under the DBT with an explicit instrumenter (for custom or
/// CFG-dependent techniques).
pub fn run_dbt_with(
    image: &Image,
    instr: Box<dyn cfed_dbt::Instrumenter>,
    style: UpdateStyle,
    max_insts: u64,
) -> RunOutcome {
    run_dbt_with_telemetry(image, instr, style, max_insts, &Telemetry::off())
}

/// The fully-general harness: explicit instrumenter plus telemetry handle.
pub fn run_dbt_with_telemetry(
    image: &Image,
    instr: Box<dyn cfed_dbt::Instrumenter>,
    style: UpdateStyle,
    max_insts: u64,
    telemetry: &Telemetry,
) -> RunOutcome {
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = Dbt::new(instr, style, &mut m);
    dbt.set_telemetry(telemetry.clone());
    let exit = dbt.run(&mut m, max_insts);
    RunOutcome {
        exit,
        output: m.cpu.take_output(),
        cycles: m.cpu.stats().cycles,
        insts: m.cpu.stats().insts,
        dbt: dbt.stats(),
    }
}

/// Runs `image` under the DBT with the native x86-64 backend when the
/// platform and environment allow it (see [`cfed_dbt::native_enabled`]:
/// non-x86-64 hosts and `CFED_NO_NATIVE=1` fall back to the fused
/// interpreter). Results are bit-identical either way.
///
/// # Examples
///
/// ```
/// use cfed_core::{run_dbt, run_dbt_native, RunConfig, TechniqueKind};
///
/// let image = cfed_lang::compile("fn main() { out(6 * 7); }")?;
/// let cfg = RunConfig::technique(TechniqueKind::Cfcss);
/// let native = run_dbt_native(&image, &cfg);
/// let interp = run_dbt(&image, &cfg);
/// assert_eq!(native.exit, interp.exit);
/// assert_eq!(native.output, interp.output);
/// assert_eq!(native.cycles, interp.cycles);
/// assert_eq!(native.dbt, interp.dbt);
/// # Ok::<(), cfed_lang::CompileError>(())
/// ```
pub fn run_dbt_native(image: &Image, cfg: &RunConfig) -> RunOutcome {
    run_dbt_native_enabled(image, cfg, cfed_dbt::native_enabled())
}

/// As [`run_dbt_native`] with an explicit native on/off switch, for
/// harnesses that must not depend on ambient environment variables.
pub fn run_dbt_native_enabled(image: &Image, cfg: &RunConfig, native: bool) -> RunOutcome {
    let instr: Box<dyn cfed_dbt::Instrumenter> = match cfg.technique {
        Some(kind) => kind.instrumenter_for(image, cfg.policy),
        None => Box::new(NullInstrumenter),
    };
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = cfed_dbt::NativeDbt::with_native(instr, cfg.style, &mut m, native);
    let exit = dbt.run(&mut m, cfg.max_insts);
    RunOutcome {
        exit,
        output: m.cpu.take_output(),
        cycles: m.cpu.stats().cycles,
        insts: m.cpu.stats().insts,
        dbt: dbt.stats(),
    }
}

/// Builds the tier-2 configuration for a run: the crate's
/// [`crate::placement::PlacementVerifier`] at the given compile threshold.
/// `None` when the configured technique's updates cannot be modeled by the
/// trace IR (see [`TechniqueKind::supports_trace_tier`]) — such runs stay
/// on tier-1 even when asked for the trace tier.
pub fn trace_tier_config(cfg: &RunConfig, compile_threshold: u32) -> Option<cfed_dbt::TierConfig> {
    let supported = match cfg.technique {
        None => true,
        Some(kind) => kind.supports_trace_tier(),
    };
    supported.then(|| {
        cfed_dbt::TierConfig::new(std::sync::Arc::new(crate::placement::PlacementVerifier))
            .with_threshold(compile_threshold)
    })
}

/// Runs `image` under the tiered DBT: tier-1 blocks carry hot counters and
/// promote to verified optimized traces at `compile_threshold` executions.
/// The native backend and the trace tier each honor their ambient kill
/// switches (`CFED_NO_NATIVE`, `CFED_NO_TIER`); guest-observable behavior
/// (exit, output) is identical across all four combinations, while cycle
/// and instruction counts improve when traces form.
///
/// # Examples
///
/// ```
/// use cfed_core::{run_dbt_tiered, RunConfig, TechniqueKind};
/// use cfed_dbt::DbtExit;
///
/// let image = cfed_lang::compile(
///     "fn main() { let i = 0; while (i < 999) { i = i + 1; } out(i); }",
/// )?;
/// let out = run_dbt_tiered(&image, &RunConfig::technique(TechniqueKind::EdgCf), 8);
/// assert_eq!(out.exit, DbtExit::Halted { code: 0 });
/// assert_eq!(out.output, vec![999]);
/// # Ok::<(), cfed_lang::CompileError>(())
/// ```
pub fn run_dbt_tiered(image: &Image, cfg: &RunConfig, compile_threshold: u32) -> RunOutcome {
    run_dbt_tiered_enabled(
        image,
        cfg,
        compile_threshold,
        cfed_dbt::native_enabled(),
        cfed_dbt::tier_enabled(),
    )
}

/// As [`run_dbt_tiered`] with explicit native and tier on/off switches, for
/// harnesses that must not depend on ambient environment variables.
pub fn run_dbt_tiered_enabled(
    image: &Image,
    cfg: &RunConfig,
    compile_threshold: u32,
    native: bool,
    tier: bool,
) -> RunOutcome {
    let instr: Box<dyn cfed_dbt::Instrumenter> = match cfg.technique {
        Some(kind) => kind.instrumenter_for(image, cfg.policy),
        None => Box::new(NullInstrumenter),
    };
    let tier_cfg = if tier { trace_tier_config(cfg, compile_threshold) } else { None };
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = cfed_dbt::NativeDbt::with_options(instr, cfg.style, &mut m, native, tier_cfg);
    let exit = dbt.run(&mut m, cfg.max_insts);
    RunOutcome {
        exit,
        output: m.cpu.take_output(),
        cycles: m.cpu.stats().cycles,
        insts: m.cpu.stats().insts,
        dbt: dbt.stats(),
    }
}

/// Runs `image` directly on the interpreter (no DBT).
pub fn run_native(image: &Image, max_insts: u64) -> RunOutcome {
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let exit = match m.run(max_insts) {
        ExitReason::Halted { code } => DbtExit::Halted { code },
        ExitReason::Trapped(t) => DbtExit::Trapped(t),
        ExitReason::StepLimit => DbtExit::StepLimit,
    };
    RunOutcome {
        exit,
        output: m.cpu.take_output(),
        cycles: m.cpu.stats().cycles,
        insts: m.cpu.stats().insts,
        dbt: DbtStats::default(),
    }
}

/// Slowdown of `cycles` relative to a baseline.
pub fn slowdown(instrumented_cycles: u64, baseline_cycles: u64) -> f64 {
    instrumented_cycles as f64 / baseline_cycles as f64
}

/// Geometric mean of a slice of ratios.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }

    #[test]
    fn slowdown_ratio() {
        assert!((slowdown(150, 100) - 1.5).abs() < 1e-12);
    }
}
