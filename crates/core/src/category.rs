//! The branch-error classification of paper §2 (Figure 1).

use std::fmt;

/// A branch-error category.
///
/// Categories classify where a faulty branch transfers control relative to
/// the branch's own basic block (Figure 1):
///
/// * **A** — mistaken branch: the branch was supposed to jump but falls
///   through, or vice versa (including offset faults that happen to land on
///   the fall-through);
/// * **B** — jump to the *beginning* of the same basic block;
/// * **C** — jump to the *middle* (including the end) of the same block;
/// * **D** — jump to the beginning of another block;
/// * **E** — jump to the middle of another block;
/// * **F** — jump to a non-code memory region (caught by execute
///   protection);
/// * **NoError** — the flipped bit does not change the control flow (e.g.
///   offset faults on not-taken branches, or flag faults that do not affect
///   the branch's condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Mistaken branch direction.
    A,
    /// Beginning of the same basic block.
    B,
    /// Middle (incl. end) of the same basic block.
    C,
    /// Beginning of another basic block.
    D,
    /// Middle of another basic block.
    E,
    /// Non-code memory region.
    F,
    /// The fault does not alter control flow.
    NoError,
}

impl Category {
    /// The five categories that can produce silent data corruption (F is
    /// caught by hardware; Figure 3 renormalizes over these).
    pub const SDC_PRONE: [Category; 5] =
        [Category::A, Category::B, Category::C, Category::D, Category::E];

    /// All seven classification outcomes.
    pub const ALL: [Category; 7] = [
        Category::A,
        Category::B,
        Category::C,
        Category::D,
        Category::E,
        Category::F,
        Category::NoError,
    ];

    /// Whether this category is detectable by memory-protection hardware
    /// rather than software checking.
    pub fn hardware_detectable(self) -> bool {
        self == Category::F
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::A => "A",
            Category::B => "B",
            Category::C => "C",
            Category::D => "D",
            Category::E => "E",
            Category::F => "F",
            Category::NoError => "No Error",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdc_prone_excludes_f_and_noerror() {
        assert!(!Category::SDC_PRONE.contains(&Category::F));
        assert!(!Category::SDC_PRONE.contains(&Category::NoError));
        assert_eq!(Category::SDC_PRONE.len(), 5);
    }

    #[test]
    fn only_f_is_hardware_detectable() {
        for c in Category::ALL {
            assert_eq!(c.hardware_detectable(), c == Category::F);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Category::A.to_string(), "A");
        assert_eq!(Category::NoError.to_string(), "No Error");
    }
}
