//! Static control-flow graph recovery from a linked VISA image.
//!
//! Used by the error-model analyzer to decide what counts as "the beginning"
//! versus "the middle" of a basic block (categories B–E), and by the
//! CFG-dependent techniques (CFCSS, ECCA) that the paper could *not*
//! implement inside the translate-on-demand DBT (§5).
//!
//! Leaders are the classic ones: the entry point, targets of direct
//! branches, instructions after terminators, and every symbol address (call
//! targets reached only indirectly still start blocks).

use cfed_asm::Image;
use cfed_isa::{Inst, INST_SIZE_U64};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Identifies a basic block by index into [`Cfg::blocks`].
pub type BlockId = usize;

/// A recovered basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Absolute address of the first instruction.
    pub start: u64,
    /// One past the last instruction byte.
    pub end: u64,
    /// The terminator, when the block ends in one (blocks can also end
    /// because the next instruction is a leader).
    pub terminator: Option<Inst>,
    /// Successor block ids for *direct* edges (taken target, fall-through).
    /// Indirect targets (returns, register jumps) are not enumerated.
    pub successors: Vec<BlockId>,
}

impl BasicBlock {
    /// The address range covered by the block.
    pub fn range(&self) -> Range<u64> {
        self.start..self.end
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        ((self.end - self.start) / INST_SIZE_U64) as usize
    }

    /// Whether the block contains no instructions (never true for recovered
    /// blocks; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A static control-flow graph over an [`Image`].
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    by_start: BTreeMap<u64, BlockId>,
    code: Range<u64>,
}

impl Cfg {
    /// Recovers the CFG of an image.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_core::cfg::Cfg;
    /// use cfed_lang::compile;
    ///
    /// let image = compile("fn main() { let i = 0; while (i < 3) { i = i + 1; } }")?;
    /// let cfg = Cfg::recover(&image);
    /// assert!(cfg.blocks().len() >= 3);
    /// # Ok::<(), cfed_lang::CompileError>(())
    /// ```
    pub fn recover(image: &Image) -> Cfg {
        let base = image.base();
        let insts = image.insts();
        let end = base + insts.len() as u64 * INST_SIZE_U64;

        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        leaders.insert(image.entry());
        for (_, addr) in image.symbols() {
            if (base..end).contains(&addr) {
                leaders.insert(addr);
            }
        }
        for (i, inst) in insts.iter().enumerate() {
            let addr = base + i as u64 * INST_SIZE_U64;
            if let Some(t) = inst.direct_target(addr) {
                if (base..end).contains(&t) {
                    leaders.insert(t);
                }
            }
            if inst.is_terminator() {
                let next = addr + INST_SIZE_U64;
                if next < end {
                    leaders.insert(next);
                }
            }
        }

        // Split into blocks at leaders.
        let leaders: Vec<u64> = leaders.into_iter().collect();
        let mut blocks = Vec::new();
        let mut by_start = BTreeMap::new();
        for (k, &start) in leaders.iter().enumerate() {
            let limit = leaders.get(k + 1).copied().unwrap_or(end);
            let mut addr = start;
            let mut terminator = None;
            while addr < limit {
                let inst = insts[((addr - base) / INST_SIZE_U64) as usize];
                addr += INST_SIZE_U64;
                if inst.is_terminator() {
                    terminator = Some(inst);
                    break;
                }
            }
            let id = blocks.len();
            by_start.insert(start, id);
            blocks.push(BasicBlock { start, end: addr, terminator, successors: Vec::new() });
        }

        // Wire direct successor edges.
        let mut succ: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.len()];
        for (id, b) in blocks.iter().enumerate() {
            let term_addr = b.end - INST_SIZE_U64;
            match b.terminator {
                Some(t) => {
                    if let Some(target) = t.direct_target(term_addr) {
                        if let Some(&tid) = by_start.get(&target) {
                            succ[id].push(tid);
                        }
                    }
                    if t.falls_through() {
                        if let Some(&fid) = by_start.get(&b.end) {
                            succ[id].push(fid);
                        }
                    }
                }
                None => {
                    // Split by a leader: unconditional fall-through edge.
                    if let Some(&fid) = by_start.get(&b.end) {
                        succ[id].push(fid);
                    }
                }
            }
        }
        for (id, s) in succ.into_iter().enumerate() {
            blocks[id].successors = s;
        }

        Cfg { blocks, by_start, code: base..end }
    }

    /// All recovered blocks, ordered by address.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The code region covered by the CFG.
    pub fn code_range(&self) -> Range<u64> {
        self.code.clone()
    }

    /// The block starting exactly at `addr`.
    pub fn block_at(&self, addr: u64) -> Option<BlockId> {
        self.by_start.get(&addr).copied()
    }

    /// The block whose range contains `addr` (byte granularity, like the
    /// paper's classification).
    pub fn block_containing(&self, addr: u64) -> Option<BlockId> {
        let (_, &id) = self.by_start.range(..=addr).next_back()?;
        (addr < self.blocks[id].end).then_some(id)
    }

    /// Mean block length in instructions — the structural property that
    /// separates SPEC-Fp from SPEC-Int behaviour in the paper's results.
    pub fn mean_block_len(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        let total: usize = self.blocks.iter().map(BasicBlock::len).sum();
        total as f64 / self.blocks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_asm::Asm;
    use cfed_isa::{Cond, Reg};

    fn diamond() -> Image {
        // start: cmp; je L1; (then) jmp L2; L1: nop; L2: halt
        let mut a = Asm::new();
        a.label("start");
        a.cmpi(Reg::R0, 0); // b0
        a.jcc(Cond::E, "L1");
        a.movri(Reg::R1, 1); // b1 (fall)
        a.jmp("L2");
        a.label("L1");
        a.movri(Reg::R1, 2); // b2
        a.label("L2");
        a.halt(); // b3
        a.assemble("start").unwrap()
    }

    #[test]
    fn diamond_blocks_and_edges() {
        let img = diamond();
        let cfg = Cfg::recover(&img);
        assert_eq!(cfg.blocks().len(), 4);
        let b0 = cfg.block_at(img.base()).unwrap();
        let succs = &cfg.blocks()[b0].successors;
        assert_eq!(succs.len(), 2, "conditional branch has two successors");
        // Both paths converge on the halt block.
        let l2 = cfg.block_at(img.symbol("L2").unwrap()).unwrap();
        for &s in succs {
            let b = &cfg.blocks()[s];
            assert!(b.successors.contains(&l2) || b.start == cfg.blocks()[l2].start);
        }
    }

    #[test]
    fn block_containing_byte_granularity() {
        let img = diamond();
        let cfg = Cfg::recover(&img);
        let b0 = cfg.block_at(img.base()).unwrap();
        assert_eq!(cfg.block_containing(img.base() + 3), Some(b0));
        assert_eq!(cfg.block_containing(img.base() + 8), Some(b0));
        assert_eq!(cfg.block_containing(img.base().wrapping_sub(1)), None);
        let end = cfg.code_range().end;
        assert_eq!(cfg.block_containing(end), None);
    }

    #[test]
    fn call_targets_are_leaders() {
        let mut a = Asm::new();
        a.label("start");
        a.call("f");
        a.halt();
        a.label("f");
        a.ret();
        let img = a.assemble("start").unwrap();
        let cfg = Cfg::recover(&img);
        let f = img.symbol("f").unwrap();
        assert!(cfg.block_at(f).is_some());
        // The instruction after the call starts a block too.
        assert!(cfg.block_at(img.base() + 8).is_some());
    }

    #[test]
    fn fallthrough_split_blocks_linked() {
        // A branch target in the middle of straight-line code splits it.
        let mut a = Asm::new();
        a.label("start");
        a.movri(Reg::R0, 1);
        a.label("mid"); // leader via the backward branch below
        a.movri(Reg::R1, 2);
        a.cmpi(Reg::R0, 5);
        a.jcc(Cond::Ne, "mid");
        a.halt();
        let img = a.assemble("start").unwrap();
        let cfg = Cfg::recover(&img);
        let b_start = cfg.block_at(img.base()).unwrap();
        let b_mid = cfg.block_at(img.symbol("mid").unwrap()).unwrap();
        assert_eq!(cfg.blocks()[b_start].terminator, None);
        assert_eq!(cfg.blocks()[b_start].successors, vec![b_mid]);
        assert!(cfg.blocks()[b_mid].successors.contains(&b_mid), "self loop via back edge");
    }

    #[test]
    fn minic_program_block_sizes() {
        let branchy = cfed_lang::compile(
            r#"fn main() {
                let i = 0;
                while (i < 10) {
                    if (i % 2 == 0) { out(i); } else if (i % 3 == 0) { out(i + 1); }
                    i = i + 1;
                }
            }"#,
        )
        .unwrap();
        let straight = cfed_lang::compile(
            r#"fn main() {
                let a = 1; let b = 2; let c = 3; let d = 4;
                a = a * b + c * d + a * c + b * d + a * d + b * c;
                a = a * b + c * d + a * c + b * d + a * d + b * c;
                out(a);
            }"#,
        )
        .unwrap();
        let cfg_b = Cfg::recover(&branchy);
        let cfg_s = Cfg::recover(&straight);
        assert!(
            cfg_s.mean_block_len() > cfg_b.mean_block_len(),
            "straight-line code has larger blocks ({} vs {})",
            cfg_s.mean_block_len(),
            cfg_b.mean_block_len()
        );
    }
}
