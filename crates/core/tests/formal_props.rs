//! Property tests over the §4 formal framework: the paper's coverage claims
//! must hold on *arbitrary* control-flow graphs, not just the hand-picked
//! examples in the unit tests.

use cfed_core::formal::{
    find_false_positive, find_undetected_single_errors, CfcssScheme, EccaScheme, EcfScheme,
    EdgCfScheme, FormalCfg, Part,
};
use cfed_core::Category;
use proptest::prelude::*;

/// Random connected CFGs: block 0 is the entry; every block gets one or two
/// forward successors (plus optional back edges) and the last block exits.
fn arb_cfg() -> impl Strategy<Value = FormalCfg> {
    (2usize..8).prop_flat_map(|n| {
        let edges = proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), n - 1);
        edges.prop_map(move |choices| {
            let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (b, &(s1, s2, two)) in choices.iter().enumerate() {
                // Always one forward edge to keep every block reachable and
                // the exit reachable from everywhere.
                let fwd = b + 1 + (s1 as usize) % (n - b - 1).max(1);
                succs[b].push(fwd.min(n - 1));
                if two {
                    // Second edge anywhere (may be a back edge or a self loop
                    // of the CFG — category A/D/E shapes).
                    succs[b].push((s2 as usize) % n);
                }
                succs[b].dedup();
            }
            FormalCfg::new(succs)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Claim 1: EdgCF detects every bounded single control-flow error and
    /// raises no false positives, on any CFG.
    #[test]
    fn edgcf_comprehensive_on_random_cfgs(cfg in arb_cfg()) {
        prop_assert_eq!(find_false_positive(&cfg, &EdgCfScheme), None);
        let misses = find_undetected_single_errors(&cfg, &EdgCfScheme);
        prop_assert!(misses.is_empty(), "EdgCF missed {:?}", misses);
    }

    /// ECF's undetected errors are exactly the same-block-middle jumps
    /// (category C), on any CFG.
    #[test]
    fn ecf_misses_only_category_c(cfg in arb_cfg()) {
        prop_assert_eq!(find_false_positive(&cfg, &EcfScheme), None);
        for m in find_undetected_single_errors(&cfg, &EcfScheme) {
            prop_assert_eq!(m.category, Category::C);
            prop_assert_eq!(m.physical.block, m.at.block);
            prop_assert_eq!(m.physical.part, Part::Tail);
        }
    }

    /// No scheme produces false positives on error-free executions
    /// (the necessary condition of §4.4).
    #[test]
    fn no_scheme_false_positives(cfg in arb_cfg()) {
        prop_assert_eq!(find_false_positive(&cfg, &EdgCfScheme), None);
        prop_assert_eq!(find_false_positive(&cfg, &EcfScheme), None);
        prop_assert_eq!(find_false_positive(&cfg, &CfcssScheme::new(&cfg)), None);
        if cfg.len() <= 24 {
            prop_assert_eq!(find_false_positive(&cfg, &EccaScheme::new(&cfg)), None);
        }
    }

    /// The coverage hierarchy is monotone on every CFG: EdgCF misses ⊆ ECF
    /// misses (as sets of (at, logical, physical) errors).
    #[test]
    fn edgcf_dominates_ecf(cfg in arb_cfg()) {
        let edg: std::collections::BTreeSet<_> = find_undetected_single_errors(&cfg, &EdgCfScheme)
            .into_iter()
            .map(|m| (m.at, m.logical, m.physical))
            .collect();
        let ecf: std::collections::BTreeSet<_> = find_undetected_single_errors(&cfg, &EcfScheme)
            .into_iter()
            .map(|m| (m.at, m.logical, m.physical))
            .collect();
        prop_assert!(edg.is_subset(&ecf), "EdgCF missed something ECF caught");
    }

    /// CFCSS never detects a mistaken branch on a (reachable) block with
    /// two successors — category A is structurally invisible to it.
    #[test]
    fn cfcss_blind_to_category_a(cfg in arb_cfg()) {
        // Reachability from the entry (the enumerator only explores from
        // block 0, so unreachable branches produce no errors to miss).
        let mut reachable = vec![false; cfg.len()];
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reachable[b], true) {
                continue;
            }
            stack.extend(cfg.successors(b).iter().copied());
        }
        let any_two_way = (0..cfg.len()).any(|b| reachable[b] && cfg.successors(b).len() >= 2);
        let misses = find_undetected_single_errors(&cfg, &CfcssScheme::new(&cfg));
        let missed_a = misses.iter().filter(|m| m.category == Category::A).count();
        if any_two_way {
            prop_assert!(missed_a > 0, "expected CFCSS to miss A errors");
        }
    }
}
