//! End-to-end technique tests: every technique × policy × update style must
//! be transparent (identical program behaviour, no false positives), and
//! the instruction-count/cycle relationships the paper reports must hold.

use cfed_core::{geomean, run_dbt, run_native, RunConfig, TechniqueKind};
use cfed_dbt::{CheckPolicy, DbtExit, UpdateStyle};
use cfed_lang::compile;

const PROGRAMS: &[&str] = &[
    // Branchy, call-heavy (int-like).
    r#"
    fn collatz(n) {
        let steps = 0;
        while (n != 1) {
            if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
            steps = steps + 1;
        }
        return steps;
    }
    fn main() {
        let i = 1;
        let total = 0;
        while (i <= 40) { total = total + collatz(i); i = i + 1; }
        out(total);
    }
    "#,
    // Array/loop heavy (fp-like: big straight-line blocks).
    r#"
    global a[128];
    global b[128];
    fn main() {
        let i = 0;
        while (i < 128) { a[i] = i * 7 + 3; b[i] = i * i; i = i + 1; }
        let dot = 0;
        i = 0;
        while (i < 128) {
            dot = dot + a[i] * b[i] + a[i] * 2 + b[i] * 3 + (a[i] ^ b[i]) + (a[i] & 255);
            i = i + 1;
        }
        out(dot);
    }
    "#,
    // Recursion (ret-heavy: indirect control flow).
    r#"
    fn ack(m, n) {
        if (m == 0) { return n + 1; }
        if (n == 0) { return ack(m - 1, 1); }
        return ack(m - 1, ack(m, n - 1));
    }
    fn main() { out(ack(2, 3)); }
    "#,
];

#[test]
fn all_techniques_transparent_under_all_policies_and_styles() {
    for (pi, src) in PROGRAMS.iter().enumerate() {
        let image = compile(src).unwrap();
        let native = run_native(&image, 100_000_000);
        assert!(matches!(native.exit, DbtExit::Halted { .. }), "program {pi} broken natively");
        for kind in TechniqueKind::ALL {
            for policy in CheckPolicy::ALL {
                for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
                    let cfg =
                        RunConfig { technique: Some(kind), policy, style, max_insts: 200_000_000 };
                    let got = run_dbt(&image, &cfg);
                    assert_eq!(
                        got.exit, native.exit,
                        "program {pi} under {kind}/{policy}/{style}: exit mismatch"
                    );
                    assert_eq!(
                        got.output, native.output,
                        "program {pi} under {kind}/{policy}/{style}: output mismatch"
                    );
                }
            }
        }
    }
}

#[test]
fn rcf_is_slowest_edgcf_between() {
    // Paper Figure 12: RCF ≥ EdgCF on every benchmark (more updates per
    // block); both well above baseline.
    let mut rcf_s = Vec::new();
    let mut edg_s = Vec::new();
    let mut ecf_s = Vec::new();
    for src in PROGRAMS {
        let image = compile(src).unwrap();
        let base = run_dbt(&image, &RunConfig::baseline());
        let cyc = |kind| run_dbt(&image, &RunConfig::technique(kind)).cycles as f64;
        rcf_s.push(cyc(TechniqueKind::Rcf) / base.cycles as f64);
        edg_s.push(cyc(TechniqueKind::EdgCf) / base.cycles as f64);
        ecf_s.push(cyc(TechniqueKind::Ecf) / base.cycles as f64);
    }
    let (rcf, edg, ecf) = (geomean(&rcf_s), geomean(&edg_s), geomean(&ecf_s));
    assert!(rcf > edg, "RCF ({rcf:.3}) must be slower than EdgCF ({edg:.3})");
    assert!(rcf > 1.0 && edg > 1.0 && ecf > 1.0, "all techniques cost something");
    assert!(rcf < 3.0, "overhead should stay in a plausible band, got {rcf:.3}");
}

#[test]
fn cmov_style_costs_more_than_jcc() {
    // Paper Figure 14.
    for kind in TechniqueKind::ALL {
        let mut jcc = Vec::new();
        let mut cmov = Vec::new();
        for src in PROGRAMS {
            let image = compile(src).unwrap();
            let base = run_dbt(&image, &RunConfig::baseline()).cycles as f64;
            let mk = |style| RunConfig { technique: Some(kind), style, ..RunConfig::default() };
            jcc.push(run_dbt(&image, &mk(UpdateStyle::Jcc)).cycles as f64 / base);
            cmov.push(run_dbt(&image, &mk(UpdateStyle::CMov)).cycles as f64 / base);
        }
        assert!(
            geomean(&cmov) > geomean(&jcc),
            "{kind}: CMOVcc ({:.3}) must cost more than Jcc ({:.3})",
            geomean(&cmov),
            geomean(&jcc)
        );
    }
}

#[test]
fn relaxed_policies_reduce_overhead_monotonically() {
    // Paper Figure 15: ALLBB ≥ RET-BE ≥ RET ≥ END.
    let image = compile(PROGRAMS[0]).unwrap();
    let base = run_dbt(&image, &RunConfig::baseline()).cycles as f64;
    let mut prev = f64::INFINITY;
    for policy in CheckPolicy::ALL {
        let cfg = RunConfig { technique: Some(TechniqueKind::Rcf), policy, ..RunConfig::default() };
        let s = run_dbt(&image, &cfg).cycles as f64 / base;
        assert!(
            s <= prev + 1e-9,
            "policy {policy} ({s:.4}) must not cost more than the stricter one ({prev:.4})"
        );
        prev = s;
    }
}

#[test]
fn instrumentation_expansion_ordering() {
    // RCF emits more cache instructions per guest instruction than EdgCF.
    let image = compile(PROGRAMS[0]).unwrap();
    let expansion = |kind| {
        let out = run_dbt(&image, &RunConfig::technique(kind));
        out.dbt.cache_insts as f64 / out.dbt.guest_insts as f64
    };
    let base = {
        let out = run_dbt(&image, &RunConfig::baseline());
        out.dbt.cache_insts as f64 / out.dbt.guest_insts as f64
    };
    let rcf = expansion(TechniqueKind::Rcf);
    let edg = expansion(TechniqueKind::EdgCf);
    assert!(rcf > edg, "RCF expansion {rcf:.2} vs EdgCF {edg:.2}");
    assert!(edg > base, "EdgCF expansion {edg:.2} vs baseline {base:.2}");
}

#[test]
fn baseline_dbt_overhead_near_paper() {
    // Paper §6: "average slow down from the native code to running on DBT
    // is about 12%". Allow a generous band.
    let mut ratios = Vec::new();
    for src in PROGRAMS {
        let image = compile(src).unwrap();
        let native = run_native(&image, 200_000_000);
        let dbt = run_dbt(&image, &RunConfig::baseline());
        ratios.push(dbt.cycles as f64 / native.cycles as f64);
    }
    let g = geomean(&ratios);
    assert!((1.0..1.5).contains(&g), "baseline DBT overhead {g:.3} out of band");
}
