//! Regression-corpus serialization.
//!
//! A reproducer is archived as a single self-describing text file in
//! `corpus/regressions/`: `#`-prefixed header lines (mode, replay seed,
//! tier, entry index, the data segment as hex, free-form provenance) above
//! a body of one disassembled instruction per line. Because the textual
//! assembler accepts numeric branch offsets, the disassembly re-assembles
//! verbatim — the file *is* the program, readable in a diff and replayable
//! by `cfed-fuzz replay` and by the `regressions` integration test on every
//! `cargo test`.

use crate::gen::Tier;
use cfed_asm::{parse_asm, Image};
use std::fmt::Write as _;
use std::path::Path;

/// Why a reproducer was archived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressionMode {
    /// Differential divergence between two backends.
    Diff,
    /// Silent data corruption escaping a detection technique.
    Detect,
    /// Cross-engine disagreement under an adversarial attack schedule.
    Attack,
}

impl RegressionMode {
    /// Stable name used in headers and filenames.
    pub fn name(self) -> &'static str {
        match self {
            RegressionMode::Diff => "diff",
            RegressionMode::Detect => "detect",
            RegressionMode::Attack => "attack",
        }
    }

    /// Parses [`RegressionMode::name`] back.
    pub fn parse(s: &str) -> Option<RegressionMode> {
        match s {
            "diff" => Some(RegressionMode::Diff),
            "detect" => Some(RegressionMode::Detect),
            "attack" => Some(RegressionMode::Attack),
            _ => None,
        }
    }
}

/// A parsed (or to-be-written) regression file.
#[derive(Debug, Clone)]
pub struct RegressionFile {
    /// Why it was archived.
    pub mode: RegressionMode,
    /// The generator seed that first produced the failing program.
    pub seed: u64,
    /// Which generator tier it came from.
    pub tier: Tier,
    /// Free-form provenance lines (divergence detail, fault spec, source).
    pub notes: Vec<String>,
    /// The minimized program.
    pub image: Image,
}

impl RegressionFile {
    /// Deterministic filename for this entry.
    pub fn filename(&self) -> String {
        format!("{}-{:016x}.s", self.mode.name(), self.seed)
    }

    /// Serializes to the archive text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# cfed-fuzz regression v1");
        let _ = writeln!(s, "# mode: {}", self.mode.name());
        let _ = writeln!(s, "# seed: {:#018x}", self.seed);
        let _ = writeln!(s, "# tier: {}", self.tier.name());
        let _ = writeln!(s, "# entry: {}", self.image.entry_offset() / 8);
        let data = trim_trailing_zeros(self.image.data());
        let _ = writeln!(s, "# datalen: {}", self.image.data().len());
        if !data.is_empty() {
            let _ = writeln!(s, "# data: {}", hex(data));
        }
        for note in &self.notes {
            for line in note.lines() {
                let _ = writeln!(s, "# note: {line}");
            }
        }
        let entry_index = (self.image.entry_offset() / 8) as usize;
        for (i, inst) in self.image.insts().iter().enumerate() {
            if i == entry_index {
                let _ = writeln!(s, "entry:");
            }
            let _ = writeln!(s, "{inst}");
        }
        s
    }

    /// Parses the archive text format back into a replayable image.
    pub fn from_text(text: &str) -> Result<RegressionFile, String> {
        let mut mode = None;
        let mut seed = None;
        let mut tier = None;
        let mut entry = 0u64;
        let mut datalen = 0usize;
        let mut data_hex = String::new();
        let mut notes = Vec::new();
        let mut body = String::new();
        for line in text.lines() {
            if let Some(h) = line.strip_prefix('#') {
                let h = h.trim();
                if let Some(v) = h.strip_prefix("mode:") {
                    mode = RegressionMode::parse(v.trim());
                } else if let Some(v) = h.strip_prefix("seed:") {
                    let v = v.trim().trim_start_matches("0x");
                    seed = u64::from_str_radix(v, 16).ok();
                } else if let Some(v) = h.strip_prefix("tier:") {
                    tier = Tier::parse(v.trim());
                } else if let Some(v) = h.strip_prefix("entry:") {
                    entry = v.trim().parse().map_err(|e| format!("bad entry: {e}"))?;
                } else if let Some(v) = h.strip_prefix("datalen:") {
                    datalen = v.trim().parse().map_err(|e| format!("bad datalen: {e}"))?;
                } else if let Some(v) = h.strip_prefix("data:") {
                    data_hex = v.trim().to_string();
                } else if let Some(v) = h.strip_prefix("note:") {
                    notes.push(v.trim().to_string());
                }
            } else {
                body.push_str(line);
                body.push('\n');
            }
        }
        let mode = mode.ok_or("missing `# mode:` header")?;
        let seed = seed.ok_or("missing `# seed:` header")?;
        let tier = tier.ok_or("missing `# tier:` header")?;
        let mut data = unhex(&data_hex)?;
        if data.len() > datalen {
            return Err(format!("data ({}) longer than datalen ({datalen})", data.len()));
        }
        data.resize(datalen, 0);

        let mut asm = parse_asm(&body).map_err(|e| e.to_string())?;
        if !data.is_empty() {
            asm.data_bytes(&data);
        }
        // Re-anchor the entry label in case the body moved it; the header is
        // authoritative. The body's own `entry:` (written at index 0 by
        // `to_text`) resolves identically for index-0 entries.
        let image = asm.assemble("entry").map_err(|e| e.to_string())?;
        if image.entry_offset() != entry * 8 {
            return Err(format!(
                "entry mismatch: header says index {entry}, label resolved to byte {}",
                image.entry_offset()
            ));
        }
        Ok(RegressionFile { mode, seed, tier, notes, image })
    }
}

fn trim_trailing_zeros(data: &[u8]) -> &[u8] {
    let end = data.iter().rposition(|b| *b != 0).map_or(0, |i| i + 1);
    &data[..end]
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().fold(String::new(), |mut s, b| {
        let _ = write!(s, "{b:02x}");
        s
    })
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length data hex".into());
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).map_err(|e| format!("bad data hex: {e}"))
        })
        .collect()
}

/// Writes `entry` into `dir` under its deterministic filename, creating
/// the directory if needed. Returns the path written.
pub fn write_regression(dir: &Path, entry: &RegressionFile) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(entry.filename());
    std::fs::write(&path, entry.to_text())?;
    Ok(path)
}

/// Loads one regression file from disk.
pub fn load_regression(path: &Path) -> Result<RegressionFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    RegressionFile::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Lists the regression files in `dir` in deterministic (sorted) order.
/// A missing directory is an empty corpus.
pub fn list_regressions(dir: &Path) -> Vec<std::path::PathBuf> {
    let Ok(rd) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut paths: Vec<_> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    paths.sort();
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Tier};

    #[test]
    fn round_trips_generated_programs() {
        for (seed, tier) in [(9u64, Tier::Visa), (4, Tier::MiniC)] {
            let prog = generate(seed, tier);
            let entry = RegressionFile {
                mode: RegressionMode::Diff,
                seed,
                tier,
                notes: vec!["example".into()],
                image: prog.image.clone(),
            };
            let text = entry.to_text();
            let parsed = RegressionFile::from_text(&text)
                .unwrap_or_else(|e| panic!("seed {seed} {tier:?}: {e}\n{text}"));
            assert_eq!(parsed.image.code(), prog.image.code(), "seed {seed} {tier:?}");
            assert_eq!(parsed.image.data(), prog.image.data());
            assert_eq!(parsed.image.entry_offset(), prog.image.entry_offset());
            assert_eq!(parsed.seed, seed);
            assert_eq!(parsed.mode, RegressionMode::Diff);
            assert_eq!(parsed.notes, vec!["example".to_string()]);
        }
    }

    #[test]
    fn hex_round_trip_and_trim() {
        assert_eq!(trim_trailing_zeros(&[0, 1, 0, 0]), &[0, 1]);
        assert_eq!(trim_trailing_zeros(&[0, 0]), &[] as &[u8]);
        assert_eq!(unhex(&hex(&[0xde, 0xad, 0x00, 0x01])).unwrap(), vec![0xde, 0xad, 0x00, 0x01]);
        assert!(unhex("abc").is_err());
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(RegressionFile::from_text("entry:\nhalt\n").is_err());
        let ok =
            "# mode: diff\n# seed: 0x1\n# tier: visa\n# entry: 0\n# datalen: 0\nentry:\nhalt\n";
        assert!(RegressionFile::from_text(ok).is_ok());
    }
}
